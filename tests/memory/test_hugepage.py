"""Tests for the hugepage memory pool (paper Algorithm 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import HugePageError, MemManager
from repro.sim import Environment


def make_pool(unit_size=1024, unit_count=4, arena=True):
    env = Environment()
    return env, MemManager(env, unit_size=unit_size, unit_count=unit_count,
                           allocate_arena=arena)


def test_pool_seeds_all_units_free():
    _, pool = make_pool()
    assert len(pool.free_batch_queue) == 4
    assert len(pool.full_batch_queue) == 0
    assert pool.in_use == 0
    assert pool.conservation_ok()


def test_pool_validation():
    env = Environment()
    with pytest.raises(ValueError):
        MemManager(env, unit_size=0, unit_count=4)
    with pytest.raises(ValueError):
        MemManager(env, unit_size=16, unit_count=0)


def test_get_and_recycle_item():
    env, pool = make_pool()
    log = []

    def p(env):
        unit = yield from pool.get_item()
        log.append(pool.in_use)
        yield from pool.recycle_item(unit)
        log.append(pool.in_use)

    env.process(p(env))
    env.run()
    assert log == [1, 0]
    assert pool.conservation_ok()


def test_exhaustion_blocks_until_recycle():
    env, pool = make_pool(unit_count=2)
    times = []

    def hog(env):
        u1 = yield from pool.get_item()
        u2 = yield from pool.get_item()
        yield env.timeout(5.0)
        yield from pool.recycle_item(u1)
        yield from pool.recycle_item(u2)

    def latecomer(env):
        yield env.timeout(1.0)
        yield from pool.get_item()
        times.append(env.now)

    env.process(hog(env))
    env.process(latecomer(env))
    env.run()
    assert times == [5.0]


def test_try_get_item_nonblocking():
    env, pool = make_pool(unit_count=1)
    unit = pool.try_get_item()
    assert unit is not None
    assert pool.try_get_item() is None


def test_double_recycle_rejected():
    env, pool = make_pool()

    def p(env):
        unit = yield from pool.get_item()
        yield from pool.recycle_item(unit)
        yield from pool.recycle_item(unit)

    env.process(p(env))
    with pytest.raises(HugePageError, match="double recycle"):
        env.run()


def test_foreign_unit_rejected():
    env, pool = make_pool()
    _, other = make_pool()
    foreign = other.try_get_item()

    def p(env):
        yield from pool.recycle_item(foreign)

    env.process(p(env))
    with pytest.raises(HugePageError):
        env.run()


def test_address_translation_roundtrip():
    _, pool = make_pool(unit_size=512, unit_count=8)
    for unit in [pool.try_get_item() for _ in range(3)]:
        assert pool.phy2virt(unit.phy_addr) == unit.virt_addr
        assert pool.virt2phy(unit.virt_addr) == unit.phy_addr


def test_translation_out_of_range():
    _, pool = make_pool(unit_size=512, unit_count=2)
    with pytest.raises(HugePageError):
        pool.phy2virt(0)
    with pytest.raises(HugePageError):
        pool.virt2phy(0xFFFF_FFFF_FFFF)


def test_units_physically_contiguous():
    _, pool = make_pool(unit_size=256, unit_count=4)
    units = [pool.try_get_item() for _ in range(4)]
    addrs = sorted(u.phy_addr for u in units)
    assert [a - addrs[0] for a in addrs] == [0, 256, 512, 768]


def test_unit_by_phy_with_offset():
    _, pool = make_pool(unit_size=256, unit_count=4)
    unit = pool.try_get_item()
    assert pool.unit_by_phy(unit.phy_addr + 100) is unit


def test_write_read_real_bytes():
    _, pool = make_pool(unit_size=64, unit_count=2)
    unit = pool.try_get_item()
    data = np.arange(16, dtype=np.uint8)
    unit.write(8, data)
    np.testing.assert_array_equal(unit.read(8, 16), data)
    assert unit.used_bytes == 24


def test_write_overflow_rejected():
    _, pool = make_pool(unit_size=16, unit_count=1)
    unit = pool.try_get_item()
    with pytest.raises(HugePageError):
        unit.write(8, np.zeros(16, dtype=np.uint8))
    with pytest.raises(HugePageError):
        unit.read(0, 17)


def test_views_alias_one_arena_zero_copy():
    _, pool = make_pool(unit_size=32, unit_count=2)
    u0 = pool.try_get_item()
    u1 = pool.try_get_item()
    u0.write(0, np.full(32, 7, dtype=np.uint8))
    u1.write(0, np.full(32, 9, dtype=np.uint8))
    # Distinct units never overlap.
    assert u0.read(0, 32)[0] == 7 and u1.read(0, 32)[0] == 9
    # And the views share the arena's memory (no copies were made).
    assert u0.view.base is u1.view.base


def test_recycle_resets_unit_state():
    env, pool = make_pool()

    def p(env):
        unit = yield from pool.get_item()
        unit.payload = "batch"
        unit.item_count = 10
        unit.used_bytes = 100
        yield from pool.recycle_item(unit)

    env.process(p(env))
    env.run()
    unit = pool.try_get_item()
    assert unit.payload is None and unit.item_count == 0
    assert unit.used_bytes == 0


def test_modeled_mode_has_no_arena():
    _, pool = make_pool(unit_size=1 << 30, unit_count=64, arena=False)
    unit = pool.try_get_item()
    assert unit.view.size == 0
    assert pool.phy2virt(unit.phy_addr) == unit.virt_addr


def test_occupancy_tracking():
    env, pool = make_pool(unit_count=4)

    def p(env):
        units = []
        for _ in range(4):
            u = yield from pool.get_item()
            units.append(u)
        yield env.timeout(10.0)
        for u in units:
            yield from pool.recycle_item(u)
        yield env.timeout(10.0)

    env.process(p(env))
    env.run()
    assert pool.occupancy.max_value == 4
    assert pool.occupancy.mean() == pytest.approx(2.0)


@given(st.lists(st.sampled_from(["get", "recycle"]), max_size=40))
@settings(max_examples=40, deadline=None)
def test_conservation_property(ops):
    """No interleaving of get/recycle ever loses or duplicates a unit."""
    env = Environment()
    pool = MemManager(env, unit_size=64, unit_count=4, allocate_arena=False)
    held = []
    for op in ops:
        if op == "get":
            unit = pool.try_get_item()
            if unit is not None:
                held.append(unit)
        elif held:
            unit = held.pop()

            def rec(env, u=unit):
                yield from pool.recycle_item(u)

            env.process(rec(env))
            env.run()
        assert pool.conservation_ok()
        assert pool.in_use == len(held)


def test_exhaustion_is_not_misuse_contract():
    """HugePageError marks pool *misuse* only. Exhaustion never raises:
    try_get_item returns None and get_item blocks until a recycle."""
    env, pool = make_pool(unit_count=1)
    unit = pool.try_get_item()
    assert unit is not None
    for _ in range(3):
        assert pool.try_get_item() is None   # no HugePageError, ever

    got = []

    def blocked_getter(env):
        u = yield from pool.get_item()       # blocks, does not raise
        got.append(env.now)
        yield from pool.recycle_item(u)

    def recycler(env):
        yield env.timeout(2.0)
        yield from pool.recycle_item(unit)

    env.process(blocked_getter(env))
    env.process(recycler(env))
    env.run()
    assert got == [2.0]
    assert pool.conservation_ok()
    # The docstring promises exactly this contract.
    assert "never raises" in HugePageError.__doc__
