"""Smoke tests for the PS study's fleet-style accounting and its
phase-immune measurement.

The study rotted once already: throughput was counted over a fixed
``[warmup, warmup+measure]`` wall window, so a backend whose startup
phase shifted its round completions by a fraction of a round gained or
lost a whole round from the count — at world=4 the default window made
the *CPU* backend measure faster than the offloaded one, inverting the
study's conclusion.  These tests pin the fixed behaviour: rates are
measured between round completions, per-server instruments live in a
namespaced registry, and the sweep point runner round-trips.
"""

import dataclasses

from repro.calib import DEFAULT_TESTBED
from repro.cluster import PsStudyConfig, run_ps_study
from repro.sweep.points import POINT_RUNNERS


def test_backend_parity_exact_with_abundant_cores():
    """32 cores absorb decode + aggregation: both backends run the ring
    at the identical steady-state rate — exactly, not 'within 10%'
    (the old window quantization needed that slack to pass at all)."""
    results = {
        be: run_ps_study(PsStudyConfig(backend=be, world=4,
                                       warmup_s=0.5, measure_s=4.0))
        for be in ("dlbooster", "cpu-online")}
    dlb, cpu = results["dlbooster"], results["cpu-online"]
    assert dlb.iteration_s == cpu.iteration_s
    assert dlb.throughput == cpu.throughput
    # The offloaded backend must never measure slower (the inversion
    # the window-count rot produced).
    assert dlb.throughput >= cpu.throughput


def test_measurement_is_phase_immune():
    """Shifting the window boundary by a fraction of a round must not
    change the measured rate (the rot: ±1 round per boundary)."""
    base = run_ps_study(PsStudyConfig(backend="cpu-online", world=2,
                                      warmup_s=0.50, measure_s=3.0))
    shifted = run_ps_study(PsStudyConfig(backend="cpu-online", world=2,
                                         warmup_s=0.58, measure_s=3.0))
    assert abs(base.iteration_s - shifted.iteration_s) < 1e-12
    assert abs(base.throughput - shifted.throughput) < 1e-9


def test_contention_effect_survives_dequantization():
    """The effect the study exists for — scarce cores hurt only the
    CPU backend — still shows with timestamp-based measurement."""
    tight = dataclasses.replace(DEFAULT_TESTBED, cpu_cores=4)
    results = {
        be: run_ps_study(PsStudyConfig(backend=be, world=2,
                                       warmup_s=0.5, measure_s=3.0),
                         testbed=tight)
        for be in ("dlbooster", "cpu-online")}
    assert results["dlbooster"].throughput > \
        1.1 * results["cpu-online"].throughput


def test_fleet_style_registry_accounting():
    res = run_ps_study(PsStudyConfig(world=2, warmup_s=0.3,
                                     measure_s=1.0))
    names = res.registry.names()
    # Per-server namespaces plus the ring's own instruments.
    assert "server0.cpu.busy" in names
    assert "server1.cpu.busy" in names
    assert "ps.rounds" in names
    assert "ps.round_gap" in names
    assert "server0.psw0.iter_latency" in names
    # Iteration latency was actually recorded.
    rec = res.registry.get("server0.psw0.iter_latency")
    assert rec.count > 0
    # Snapshot exports cleanly (strict JSON, no live objects).
    snap = res.registry.snapshot()
    assert snap["ps.rounds"]["total"] == res.extras["rounds"]
    # Per-server extras mirror the worker counters.
    per = res.extras["per_server"]
    assert [row["server"] for row in per] == ["server0", "server1"]
    assert all(row["iterations"] > 0 for row in per)
    assert res.extras["lockstep_ok"]


def test_ps_point_runner_accepts_seed_and_harvests():
    """The sweep runner injects seeds; the study is deterministic, so
    any seed must work and return identical values (this call used to
    raise TypeError: unexpected keyword argument 'seed')."""
    cfg = {"backend": "dlbooster", "world": 2,
           "warmup_s": 0.3, "measure_s": 1.0}
    a = POINT_RUNNERS["ps_study"](cfg, 0)
    b = POINT_RUNNERS["ps_study"](cfg, 7)
    assert a["values"] == b["values"]
    assert a["values"]["throughput"] > 0
    assert a["metrics"]["schema"] == "repro-metrics/1"
    assert "server0.psw0.iter_latency" in a["recorders"]
