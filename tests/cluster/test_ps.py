"""Tests for the parameter-server ring and the contention study."""

import dataclasses

import pytest

from repro.calib import DEFAULT_TESTBED, TRAIN_MODELS
from repro.cluster import (PsGroup, PsShardConfig, PsStudyConfig, PsWorker,
                           run_ps_study)
from repro.engines import CpuCorePool
from repro.sim import Environment


def test_shard_config_split():
    cfg = PsShardConfig(world=4, param_bytes=1000)
    assert cfg.shard_bytes == 250
    odd = PsShardConfig(world=3, param_bytes=1000)
    assert odd.shard_bytes == 334  # ceil


def make_ring(world=2, cores=32, backend_delay=0.0):
    env = Environment()
    spec = TRAIN_MODELS["alexnet"]
    group = PsGroup(env, PsShardConfig(world=world,
                                       param_bytes=spec.param_bytes),
                    link_rate=40e9 / 8)
    workers = []
    for idx in range(world):
        cpu = CpuCorePool(env, cores, name=f"s{idx}")
        worker = PsWorker(env, DEFAULT_TESTBED, spec, group, cpu, idx)

        def source(env=env):
            if backend_delay:
                yield env.timeout(backend_delay)
            else:
                yield env.timeout(0)
            return spec.batch_size

        worker.start(source)
        workers.append(worker)
    return env, group, workers


def test_ring_makes_lockstep_progress():
    env, group, workers = make_ring(world=3)
    env.run(until=3.0)
    iters = [w.iterations.total for w in workers]
    assert iters[0] > 3
    # BSP: no worker is more than one iteration ahead.
    assert max(iters) - min(iters) <= 1
    assert group.rounds.total >= min(iters)


def test_ring_iteration_includes_comm_and_agg():
    env, group, workers = make_ring(world=2)
    env.run(until=5.0)
    iter_s = 5.0 / workers[0].iterations.total
    from repro.engines import train_iteration_seconds
    compute = train_iteration_seconds(TRAIN_MODELS["alexnet"], 256)
    assert iter_s > compute  # sync adds real time


def test_worker_double_start_rejected():
    env, group, workers = make_ring(world=2)
    with pytest.raises(RuntimeError):
        workers[0].start(lambda: iter(()))


def test_study_validation():
    with pytest.raises(ValueError):
        run_ps_study(PsStudyConfig(world=1))
    with pytest.raises(ValueError):
        run_ps_study(PsStudyConfig(backend="lmdb", world=2,
                                   warmup_s=0.2, measure_s=0.5))


def test_study_offload_immune_to_core_scarcity():
    """S3.1 quantified: scarce cores hurt the CPU backend (decode and
    PS aggregation contend) but not the offloaded one."""
    tight = dataclasses.replace(DEFAULT_TESTBED, cpu_cores=4)
    results = {}
    for backend in ("dlbooster", "cpu-online"):
        results[backend] = run_ps_study(
            PsStudyConfig(backend=backend, world=2, warmup_s=0.5,
                          measure_s=4.0), testbed=tight)
    assert results["dlbooster"].throughput > \
        1.1 * results["cpu-online"].throughput
    assert results["cpu-online"].cpu_cores_per_server > \
        results["dlbooster"].cpu_cores_per_server


def test_study_parity_with_abundant_cores():
    results = {}
    for backend in ("dlbooster", "cpu-online"):
        results[backend] = run_ps_study(
            PsStudyConfig(backend=backend, world=2, warmup_s=0.5,
                          measure_s=4.0))
    ratio = results["dlbooster"].throughput / \
        results["cpu-online"].throughput
    assert 0.9 <= ratio <= 1.1  # 32 cores absorb both workloads


def test_study_reports_aggregation_cores():
    res = run_ps_study(PsStudyConfig(backend="dlbooster", world=2,
                                     warmup_s=0.5, measure_s=3.0))
    assert res.agg_cores_per_server > 0
    assert res.extras["rounds"] > 0
