"""Fleet chaos: conservation under every fleet fault kind, same-seed
determinism, zero-cost hooks, and the recovery machinery (re-dispatch,
hedging, retry budget)."""

import json

import pytest

from repro.calib import DEFAULT_TESTBED
from repro.faults import FaultPlan
from repro.fleet import (DEAD, FleetChaos, HealthView, Host, HostConfig,
                         LoadBalancer, OpenLoopSource, OutlierConfig,
                         RecoveryConfig, fleet_rollup, make_policy)
from repro.sim import Environment, SeedBank
from repro.supervision import SupervisionConfig

SUPERVISION = SupervisionConfig(deadline_s=0.025, admission_margin_s=0.015)
DEADLINE_S = 0.025


def run_chaos(plan=None, recovery=None, outlier=None, k=3, seed=17,
              sim_s=0.3, rate=5000.0, policy="least-loaded"):
    env = Environment()
    bank = SeedBank(seed)
    hosts = []
    for i in range(k):
        namespace = f"host{i:02d}"
        host = Host(env, HostConfig(
            model="googlenet", backend="dlbooster", batch_size=4,
            cpu_cores=8, zone=f"az{i % 2}", supervision=SUPERVISION),
            seeds=bank.spawn(namespace), namespace=namespace)
        host.start()
        hosts.append(host)
    chaos = FleetChaos(env, plan, seeds=bank.spawn("chaos")) \
        if plan is not None else None
    balancer = LoadBalancer(
        env, hosts, make_policy(policy, rng=bank.stream("policy")),
        chaos=chaos, recovery=recovery)
    health = HealthView(env, balancer, outlier=outlier)
    balancer.attach_health(health)
    health.start()
    source = OpenLoopSource(
        env, balancer, rate=rate, image_hw=DEFAULT_TESTBED.client_image_hw,
        rng=bank.stream("arrivals"), num_clients=8,
        deadline_s=DEADLINE_S)
    source.start()
    env.run(until=sim_s)
    health.update()
    payload = fleet_rollup(hosts, balancer=balancer, source=source,
                           health=health, deadline_s=DEADLINE_S,
                           chaos=chaos)
    return payload, balancer, hosts, source


def assert_conserved(payload, balancer, source):
    """The fleet-wide conservation identity under duplicate accounting:
    every injected request has exactly one client outcome, and every
    dispatched copy has exactly one attempt outcome."""
    for row in payload["per_host"]:
        assert row["conserved"], row["host"]
    assert balancer.conservation_ok()
    assert source.conservation_ok()
    flights = payload.get("flights")
    if flights is not None:
        sent = payload["source"]["sent"]
        assert flights["flights"] == sent
        assert sent == (flights["completed"]
                        + flights["redispatched_completed"]
                        + flights["expired"] + flights["shed"]
                        + flights["failed"] + flights["rejected"]
                        + flights["open"])
        assert flights["attempts"] == (
            flights["completed"] + flights["redispatched_completed"]
            + flights["attempt_shed"] + flights["attempt_failed"]
            + flights["cancelled_duplicates"] + flights["blackholed"]
            + flights["outstanding_attempts"])
        assert flights["request_ledger_ok"]
        assert flights["attempt_ledger_ok"]


FAULT_PLANS = {
    "host_crash": FaultPlan.of(FaultPlan.host_crash(0.1, "host01")),
    "host_hang": FaultPlan.of(
        FaultPlan.host_hang(0.05, 0.25, "host01", rate=0.7)),
    "host_slow": FaultPlan.of(
        FaultPlan.host_slow(0.05, 0.25, extra_s=0.02, site="host01")),
    "link_partition": FaultPlan.of(
        FaultPlan.link_partition(0.05, 0.2, "host01")),
    "link_flap": FaultPlan.of(
        FaultPlan.link_flap(0.05, 0.25, "host01", rate=0.5)),
    "zone_outage": FaultPlan.of(FaultPlan.zone_outage(0.1, "az0")),
}


@pytest.mark.parametrize("kind", sorted(FAULT_PLANS))
def test_conservation_and_determinism_under_every_fault_kind(kind):
    plan = FAULT_PLANS[kind]
    recovery = RecoveryConfig(budget_rate_per_s=2000.0, budget_burst=100.0)
    payload, balancer, hosts, source = run_chaos(
        plan=plan, recovery=recovery, outlier=OutlierConfig(
            deadline_s=DEADLINE_S))
    assert payload["chaos"]["by_kind"].get(kind, 0) > 0, \
        f"{kind} never fired"
    assert_conserved(payload, balancer, source)
    # (seed, plan, K) replays bit-identically — per-host-namespaced
    # fault streams keep chaos out of the workload's randomness.
    payload2, *_ = run_chaos(plan=plan, recovery=recovery,
                             outlier=OutlierConfig(deadline_s=DEADLINE_S))
    assert (json.dumps(payload, sort_keys=True, default=str)
            == json.dumps(payload2, sort_keys=True, default=str))


def test_empty_plan_is_bit_identical_to_unarmed():
    # All fleet fault kinds off => the balancer must keep the exact
    # PR 6 route() path: no flights, no sweep, no proxy events.
    armed, balancer_a, *_ = run_chaos(plan=FaultPlan.of(name="empty"))
    unarmed, balancer_u, *_ = run_chaos(plan=None)
    assert balancer_a.flights is None and balancer_u.flights is None
    assert (json.dumps(armed, sort_keys=True, default=str)
            == json.dumps(unarmed, sort_keys=True, default=str))


def test_host_crash_redispatch_reclaims_stranded():
    plan = FAULT_PLANS["host_crash"]
    on, bal_on, hosts_on, src_on = run_chaos(
        plan=plan, recovery=RecoveryConfig(hedging=False))
    off, bal_off, hosts_off, src_off = run_chaos(plan=plan, recovery=None)
    # Recovery ON: stranded requests were re-dispatched within deadline.
    assert on["lb"]["redispatches"] > 0
    assert on["flights"]["redispatched_completed"] > 0
    # Recovery OFF: the same crash black-holes them — they only ever
    # resolve by expiring at the deadline sweep.
    assert off["lb"]["redispatches"] == 0
    assert off["flights"]["expired"] > 0
    assert off["flights"]["blackholed"] > 0
    # The machinery pays for itself on the same seed.
    assert (on["fleet"]["client_failures"]
            <= off["fleet"]["client_failures"])
    # Dead-host ledgers still close: reclaimed attempts settled them.
    for payload, balancer, source in ((on, bal_on, src_on),
                                      (off, bal_off, src_off)):
        crashed = next(r for r in payload["per_host"]
                       if r["host"] == "host01")
        assert not crashed["accepting"]
        assert_conserved(payload, balancer, source)
    assert payload["health"]["host01"] == DEAD


def test_hedging_first_completion_wins_and_cancels_loser():
    # One host uniformly slowed beyond the deadline: only a hedge to
    # the healthy host can save its requests.  Fixed small hedge delay
    # so hedges fire well inside the deadline.
    plan = FaultPlan.of(
        FaultPlan.host_slow(0.02, 0.3, extra_s=0.03, site="host01"))
    recovery = RecoveryConfig(redispatch=False, hedging=True,
                              hedge_delay_s=0.008)
    payload, balancer, hosts, source = run_chaos(
        plan=plan, recovery=recovery, k=2, rate=3000.0,
        policy="round-robin")
    assert payload["lb"]["hedges"] > 0
    # Hedge wins resolved flights whose slow primary then lost the race
    # — the loser is cancelled and counted, never double-counted.
    assert payload["flights"]["redispatched_completed"] > 0
    assert payload["flights"]["cancelled_duplicates"] > 0
    assert_conserved(payload, balancer, source)


def test_retry_budget_bounds_the_storm():
    # A partition generates a flood of alternate retries; a tiny
    # never-refilling budget must cap them at the burst size.
    plan = FAULT_PLANS["link_partition"]
    recovery = RecoveryConfig(redispatch=False, hedging=False,
                              budget_rate_per_s=0.0, budget_burst=5.0)
    payload, balancer, hosts, source = run_chaos(
        plan=plan, recovery=recovery)
    assert payload["lb"]["link_drops"] > 0
    assert payload["lb"]["retries"] <= 5
    assert payload["lb"]["budget_exhausted"] > 0
    assert_conserved(payload, balancer, source)


def test_zone_outage_crashes_the_whole_group():
    payload, balancer, hosts, source = run_chaos(
        plan=FAULT_PLANS["zone_outage"],
        recovery=RecoveryConfig(hedging=False))
    by_name = {h.name: h for h in hosts}
    # az0 = host00 + host02 (i % 2); az1 = host01 survives.
    assert by_name["host00"].crashed and by_name["host02"].crashed
    assert not by_name["host01"].crashed
    assert payload["chaos"]["host_crashes"] == 2
    assert payload["health"]["host00"] == DEAD
    assert payload["health"]["host02"] == DEAD
    assert_conserved(payload, balancer, source)


def test_legacy_alternate_retry_is_budgeted_and_metered():
    # Unarmed balancer (no chaos, no recovery): the one-alternate retry
    # path still runs, but now draws from the budget and is metered.
    env = Environment()
    bank = SeedBank(7)
    hosts = []
    for i in range(2):
        namespace = f"host{i:02d}"
        host = Host(env, HostConfig(
            model="googlenet", backend="dlbooster", batch_size=4,
            cpu_cores=8, rx_capacity=64, supervision=SUPERVISION),
            seeds=bank.spawn(namespace), namespace=namespace)
        host.start()
        hosts.append(host)
    balancer = LoadBalancer(env, hosts, make_policy("round-robin"))
    source = OpenLoopSource(
        env, balancer, rate=20000.0,
        image_hw=DEFAULT_TESTBED.client_image_hw,
        rng=bank.stream("arrivals"), num_clients=8, deadline_s=DEADLINE_S)
    source.start()
    env.run(until=0.2)
    # Tiny RX rings at 4.7x the knee: refusals force alternates.
    assert int(balancer.retries.total) > 0
    assert (int(balancer.retries.total)
            == int(balancer.budget.granted.total))
    assert balancer.flights is None
    assert source.conservation_ok()
