"""HealthView transition journal, DEGRADED-stays-routable edge cases,
and outlier-ejection hysteresis — driven through fake hosts so every
window's evidence is controlled exactly."""

from repro.fleet import (DEAD, DEGRADED, EJECTED, HEALTHY, HealthView,
                         OutlierConfig)
from repro.sim import Environment


class _Total:
    def __init__(self, total=0):
        self.total = total


class FakeHost:
    """Just enough surface for HealthView._classify."""

    def __init__(self, name):
        self.name = name
        self.handled = _Total()
        self.completed = _Total()
        self.draining = False
        self.crashed = False
        self._shed = 0
        self._stalls = 0
        self._breaker = False
        self.accepting = True

    def shed_total(self):
        return self._shed

    def stalls_detected(self):
        return self._stalls

    def breaker_open(self):
        return self._breaker


class FakeBalancer:
    """Hosts + the client-stats feed the ejection detector reads."""

    def __init__(self, hosts):
        self.hosts = list(hosts)
        self.stats = {h.name: {"ok": 0, "fail": 0, "lat_sum": 0.0}
                      for h in hosts}
        self.deaths = []

    def client_stats(self):
        return self.stats

    def on_host_death(self, host):
        self.deaths.append((host.name,))


def advance(env, dt):
    env.timeout(dt)
    env.run(until=env.now + dt)


OUTLIER = OutlierConfig(min_attempts=4, success_floor=0.5,
                        consecutive_bad=2, cooldown_s=0.1,
                        deadline_s=0.025)


def make_view(k=3, outlier=OUTLIER):
    env = Environment()
    hosts = [FakeHost(f"host{i:02d}") for i in range(k)]
    balancer = FakeBalancer(hosts)
    view = HealthView(env, balancer, outlier=outlier)
    view.update()
    return env, hosts, balancer, view


def feed(balancer, name, ok, fail, lat_each=0.005):
    stat = balancer.stats[name]
    stat["ok"] += ok
    stat["fail"] += fail
    stat["lat_sum"] += ok * lat_each


def test_journal_records_flapping_host_with_reasons():
    env, hosts, balancer, view = make_view()
    flapper = hosts[1]
    states = []
    for i in range(6):
        flapper._breaker = (i % 2 == 0)
        advance(env, 0.05)
        view.update()
        states.append(view.status[flapper.name].state)
    assert states == [DEGRADED, HEALTHY] * 3
    mine = [t for t in view.transitions if t[1] == flapper.name]
    assert len(mine) == 6
    # Entries carry monotonically increasing timestamps and a reason
    # on every transition *into* a non-healthy state.
    times = [t[0] for t in mine]
    assert times == sorted(times)
    assert all(t[4] for t in mine if t[3] == DEGRADED)
    # DEGRADED never left the candidate set during the flap.
    flapper._breaker = True
    advance(env, 0.05)
    view.update()
    assert view.state_of(flapper) == DEGRADED
    assert flapper in view.candidates()


def test_simultaneous_multi_host_degradation_stays_routable():
    env, hosts, balancer, view = make_view(k=4)
    for host in hosts[:3]:
        host.handled.total += 100
        host._shed = 50
    advance(env, 0.05)
    view.update()
    degraded = [h for h in hosts if view.state_of(h) == DEGRADED]
    assert len(degraded) == 3
    # Every degraded host is still a candidate — mass degradation must
    # not empty the routable set.
    cands = view.candidates()
    assert all(h in cands for h in degraded)
    assert hosts[3] in cands
    stamp = [t for t in view.transitions if t[3] == DEGRADED]
    assert len(stamp) == 3 and len({t[0] for t in stamp}) == 1


def test_ejection_requires_consecutive_bad_windows():
    env, hosts, balancer, view = make_view()
    bad = hosts[1]
    # One bad window: streak 1 of 2 — must NOT eject (hysteresis).
    feed(balancer, bad.name, ok=1, fail=9)
    advance(env, 0.05)
    view.update()
    assert view.state_of(bad) == HEALTHY
    # Second consecutive bad window: ejected, journaled, notified.
    feed(balancer, bad.name, ok=1, fail=9)
    advance(env, 0.05)
    view.update()
    assert view.state_of(bad) == EJECTED
    assert bad not in view.candidates()
    assert (bad.name,) in balancer.deaths
    assert any(t[1] == bad.name and t[3] == EJECTED and "EWMA" in t[4]
               for t in view.transitions)


def test_ejection_hysteresis_returns_host_after_cooldown():
    env, hosts, balancer, view = make_view()
    bad = hosts[1]
    for _ in range(2):
        feed(balancer, bad.name, ok=0, fail=10)
        advance(env, 0.05)
        view.update()
    assert view.state_of(bad) == EJECTED
    # Cooldown (0.1s) passes with clean traffic: probation return.
    for _ in range(3):
        feed(balancer, bad.name, ok=10, fail=0)
        advance(env, 0.05)
        view.update()
    assert view.state_of(bad) == HEALTHY
    assert bad in view.candidates()
    # No perma-ejection: one fresh bad window alone can't re-eject —
    # the EWMAs were reset, it must re-offend for consecutive_bad
    # windows on fresh evidence.
    feed(balancer, bad.name, ok=0, fail=10)
    advance(env, 0.05)
    view.update()
    assert view.state_of(bad) == HEALTHY


def test_ejection_cap_never_exceeds_max_fraction():
    env, hosts, balancer, view = make_view(
        k=4, outlier=OutlierConfig(min_attempts=4, success_floor=0.5,
                                   consecutive_bad=1, cooldown_s=10.0,
                                   max_eject_frac=0.5))
    # Every host turns bad at once; only half the fleet may be ejected.
    for _ in range(3):
        for host in hosts:
            feed(balancer, host.name, ok=0, fail=10)
        advance(env, 0.05)
        view.update()
    ejected = [h for h in hosts if view.state_of(h) == EJECTED]
    assert len(ejected) == 2
    assert len(view.candidates()) == 2


def test_crashed_host_is_dead_and_triggers_redispatch_notification():
    env, hosts, balancer, view = make_view()
    hosts[2].crashed = True
    hosts[2].accepting = False
    advance(env, 0.05)
    view.update()
    assert view.state_of(hosts[2]) == DEAD
    assert hosts[2] not in view.candidates()
    assert (hosts[2].name,) in balancer.deaths
    assert any(t[1] == hosts[2].name and t[3] == DEAD
               and t[4] == "host crashed" for t in view.transitions)


def test_low_evidence_windows_leave_ewmas_untouched():
    env, hosts, balancer, view = make_view()
    quiet = hosts[0]
    # Windows below min_attempts carry no evidence: even all-fail
    # trickles never move the detector.
    for _ in range(10):
        feed(balancer, quiet.name, ok=0, fail=2)
        advance(env, 0.05)
        view.update()
    assert view.state_of(quiet) == HEALTHY
