"""Host abstraction: namespacing, lifecycle, per-host conservation."""

import pytest

from repro.calib import DEFAULT_TESTBED
from repro.fleet import Host, HostConfig, LoadBalancer, OpenLoopSource, \
    make_policy
from repro.sim import Environment, SeedBank
from repro.supervision import SupervisionConfig
from repro.telemetry import MetricsRegistry


def build_fleet(env, bank, k, supervised=True, registry=None):
    hosts = []
    for i in range(k):
        namespace = f"host{i:02d}"
        cfg = HostConfig(
            model="googlenet", backend="dlbooster", batch_size=4,
            cpu_cores=8,
            supervision=(SupervisionConfig(deadline_s=0.025,
                                           admission_margin_s=0.015)
                         if supervised else None))
        host = Host(env, cfg, seeds=bank.spawn(namespace),
                    namespace=namespace)
        host.start()
        hosts.append(host)
    return hosts


def test_namespaced_hosts_share_one_registry_without_collisions():
    env = Environment()
    bank = SeedBank(3)
    registry = MetricsRegistry(name="fleet-test")
    with registry.installed():
        build_fleet(env, bank, 3)
    keys = list(registry.snapshot().keys())
    assert keys, "registry captured nothing"
    # Per-host namespacing keeps every instrument name unique — the
    # registry never needs its '#2' duplicate-suffix escape hatch.
    assert not [k for k in keys if "#" in k]
    for ns in ("host00.", "host01.", "host02."):
        assert any(k.startswith(ns) for k in keys)


def test_empty_namespace_keeps_flat_metric_names():
    env = Environment()
    registry = MetricsRegistry(name="flat")
    with registry.installed():
        host = Host(env, HostConfig(model="googlenet", backend="dlbooster",
                                    batch_size=4),
                    seeds=SeedBank(0))
        host.start()
    keys = list(registry.snapshot().keys())
    assert any(k.startswith("nic.") for k in keys)   # historical flat name
    assert "host.handled" in keys                    # fleet ledger, unscoped
    assert not any(k.startswith("host0") for k in keys)


def test_host_refuses_before_start_and_while_draining():
    env = Environment()
    host = Host(env, HostConfig(model="googlenet", backend="dlbooster",
                                batch_size=4), seeds=SeedBank(1))
    assert not host.accepting
    host.start()
    assert host.accepting
    host.drain()
    assert host.draining and not host.accepting
    host.undrain()
    assert host.accepting


def test_host_rejects_unknown_model_and_backend():
    env = Environment()
    with pytest.raises(ValueError):
        Host(env, HostConfig(model="nope", backend="dlbooster",
                             batch_size=4))
    with pytest.raises(ValueError):
        Host(env, HostConfig(model="googlenet", backend="nope",
                             batch_size=4))


def test_per_host_conservation_under_load():
    env = Environment()
    bank = SeedBank(11)
    hosts = build_fleet(env, bank, 3)
    balancer = LoadBalancer(env, hosts, make_policy("round-robin"))
    source = OpenLoopSource(
        env, balancer, rate=0.5 * 3 * 4286,
        image_hw=DEFAULT_TESTBED.client_image_hw,
        rng=bank.stream("arrivals"), num_clients=8, deadline_s=0.025)
    source.start()
    env.run(until=0.4)
    for host in hosts:
        assert host.conservation_ok(), host.name
        # The ISSUE's ledger identity, via the backend's own books:
        # accepted == fpga_decoded + cpu_failover + quarantined +
        # shed_expired + integrity_rejected (+ still-open slots).
        assert host.backend.conservation_ok()
        assert int(host.handled.total) > 0
