"""HealthView classification and Autoscaler add/drain behavior."""

import math

import pytest

from repro.calib import DEFAULT_TESTBED
from repro.faults import FaultPlan, RetryPolicy
from repro.fleet import (DEGRADED, DRAINING, HEALTHY, Autoscaler,
                         AutoscalerConfig, HealthView, Host, HostConfig,
                         LoadBalancer, OpenLoopSource, make_policy)
from repro.sim import Environment, SeedBank
from repro.supervision import SupervisionConfig

SUPERVISION = SupervisionConfig(deadline_s=0.025, admission_margin_s=0.015)


def make_host(env, bank, i, degraded=False, start=True):
    plan = retry = None
    if degraded:
        plan = FaultPlan.of(
            FaultPlan.decoder_crash(0.0, math.inf, site="fpga0"),
            name="dead-fpga")
        retry = RetryPolicy(max_attempts=2)
    namespace = f"host{i:02d}"
    host = Host(env, HostConfig(
        model="googlenet", backend="dlbooster", batch_size=4, cpu_cores=8,
        supervision=SUPERVISION, fault_plan=plan, retry=retry),
        seeds=bank.spawn(namespace), namespace=namespace)
    if start:                      # the Autoscaler starts factory hosts
        host.start()
    return host


def drive(env, bank, balancer, rate, until):
    source = OpenLoopSource(
        env, balancer, rate=rate, image_hw=DEFAULT_TESTBED.client_image_hw,
        rng=bank.stream("arrivals"), num_clients=8, deadline_s=0.025)
    source.start()
    env.run(until=until)
    return source


def test_health_view_classifies_breaker_open_as_degraded():
    env = Environment()
    bank = SeedBank(5)
    hosts = [make_host(env, bank, 0), make_host(env, bank, 1, degraded=True)]
    balancer = LoadBalancer(env, hosts, make_policy("round-robin"))
    health = HealthView(env, balancer)
    balancer.attach_health(health)
    health.start()
    drive(env, bank, balancer, rate=4000.0, until=0.4)
    health.update()
    assert health.status["host00"].state == HEALTHY
    assert health.status["host01"].state == DEGRADED
    assert hosts[1].breaker_open()
    # Degraded hosts stay routable; draining ones do not.
    assert hosts[1] in health.candidates()
    hosts[1].drain()
    health.update()
    assert health.status["host01"].state == DRAINING
    assert hosts[1] not in health.candidates()
    # Transitions were journaled with timestamps and reasons.
    assert any(t[1] == "host01" and t[3] == DEGRADED
               for t in health.transitions)


def test_autoscaler_adds_under_surge_and_drains_after():
    env = Environment()
    bank = SeedBank(9)
    hosts = [make_host(env, bank, 0)]
    balancer = LoadBalancer(env, hosts, make_policy("least-loaded"))
    health = HealthView(env, balancer)
    balancer.attach_health(health)
    health.start()
    scaler = Autoscaler(
        env, balancer,
        host_factory=lambda i: make_host(env, bank, i, start=False),
        config=AutoscalerConfig(min_hosts=1, max_hosts=4,
                                cooldown_down_s=0.1, sustain_down=3),
        deadline_s=0.025)
    scaler.start()
    source = drive(env, bank, balancer, rate=7000.0, until=0.5)
    assert len(scaler.additions()) >= 1, scaler.events
    assert len(balancer.hosts) > 1
    grown = len(balancer.active_hosts())
    # Surge over: drop to a trickle and the fleet shrinks again.
    source.set_rate(400.0)
    env.run(until=1.6)
    assert len(scaler.drains()) >= 1, scaler.events
    assert len(balancer.active_hosts()) < grown
    drained = [h for h in balancer.hosts if h.draining]
    assert drained and all(not h.accepting for h in drained)
    # Scale events carry (t, kind, host, reason) for the rollup.
    for event in scaler.events:
        assert len(event) == 4 and event[1] in ("add", "drain")


def test_autoscaler_respects_min_and_max_hosts():
    env = Environment()
    bank = SeedBank(13)
    hosts = [make_host(env, bank, 0)]
    balancer = LoadBalancer(env, hosts, make_policy("least-loaded"))
    scaler = Autoscaler(
        env, balancer,
        host_factory=lambda i: make_host(env, bank, i, start=False),
        config=AutoscalerConfig(min_hosts=1, max_hosts=2),
        deadline_s=0.025)
    scaler.start()
    drive(env, bank, balancer, rate=12000.0, until=0.6)
    assert len(balancer.hosts) <= 2          # capped at max_hosts
    with pytest.raises(ValueError):
        AutoscalerConfig(min_hosts=3, max_hosts=2)
