"""Routing-policy unit tests over stub hosts (no simulation needed)."""

import numpy as np
import pytest

from repro.fleet import (ROUTING_POLICIES, ConsistentHash, LeastLoaded,
                         PowerOfTwoChoices, RoundRobin, make_policy)


class StubHost:
    def __init__(self, name, load=0.0):
        self.name = name
        self._load = load

    def load(self):
        return self._load


class StubRequest:
    def __init__(self, client_id=0):
        self.client_id = client_id


def hosts(*loads):
    return [StubHost(f"host{i:02d}", load) for i, load in enumerate(loads)]


def test_round_robin_cycles_in_order():
    policy = RoundRobin()
    fleet = hosts(0, 0, 0)
    picks = [policy.choose(fleet, StubRequest()).name for _ in range(6)]
    assert picks == ["host00", "host01", "host02"] * 2


def test_round_robin_wraps_with_shrinking_candidates():
    policy = RoundRobin()
    fleet = hosts(0, 0, 0)
    policy.choose(fleet, StubRequest())
    # Candidate set shrank (a host drained): the cursor must still land
    # inside the list.
    assert policy.choose(fleet[:1], StubRequest()).name == "host00"


def test_least_loaded_picks_minimum_breaking_ties_by_order():
    policy = LeastLoaded()
    assert policy.choose(hosts(0.9, 0.2, 0.5), StubRequest()).name == "host01"
    assert policy.choose(hosts(0.4, 0.4, 0.9), StubRequest()).name == "host00"


def test_consistent_hash_is_stable_per_client():
    policy = ConsistentHash()
    fleet = hosts(0, 0, 0, 0)
    for client in range(32):
        req = StubRequest(client_id=client)
        first = policy.choose(fleet, req)
        assert all(policy.choose(fleet, req) is first for _ in range(3))


def test_consistent_hash_remaps_minimally_on_host_loss():
    policy = ConsistentHash()
    fleet = hosts(0, 0, 0, 0)
    before = {c: policy.choose(fleet, StubRequest(client_id=c)).name
              for c in range(64)}
    lost = "host02"
    survivors = [h for h in fleet if h.name != lost]
    after = {c: policy.choose(survivors, StubRequest(client_id=c)).name
             for c in range(64)}
    for client, owner in before.items():
        if owner != lost:
            assert after[client] == owner   # unaffected clients stay put
        else:
            assert after[client] != lost


def test_power_of_two_choices_prefers_lower_load_deterministically():
    fleet = hosts(0.9, 0.1, 0.5, 0.7)
    policy_a = PowerOfTwoChoices(np.random.default_rng(7))
    policy_b = PowerOfTwoChoices(np.random.default_rng(7))
    picks_a = [policy_a.choose(fleet, StubRequest()).name for _ in range(8)]
    picks_b = [policy_b.choose(fleet, StubRequest()).name for _ in range(8)]
    # Fresh same-seeded generators reproduce the exact pick sequence...
    assert picks_a == picks_b
    # ...and the most-loaded host never wins either of its pairings
    # (the two draws are always distinct hosts).
    assert "host00" not in picks_b


def test_make_policy_registry():
    for name in ROUTING_POLICIES:
        policy = make_policy(name, rng=np.random.default_rng(0))
        assert policy.choose(hosts(0, 0), StubRequest()) is not None
    with pytest.raises(ValueError):
        make_policy("no-such-policy")
    with pytest.raises(ValueError):
        make_policy("p2c")          # needs an rng
