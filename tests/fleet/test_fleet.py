"""Fleet integration: conservation ledgers and same-seed determinism
across every routing policy."""

import json

import pytest

from repro.calib import DEFAULT_TESTBED
from repro.fleet import (ROUTING_POLICIES, Host, HostConfig, LoadBalancer,
                         OpenLoopSource, fleet_rollup, make_policy)
from repro.sim import Environment, SeedBank
from repro.supervision import SupervisionConfig


def run_fleet(policy_name, seed=17, k=3, sim_s=0.3, rate=5000.0):
    env = Environment()
    bank = SeedBank(seed)
    hosts = []
    for i in range(k):
        namespace = f"host{i:02d}"
        host = Host(env, HostConfig(
            model="googlenet", backend="dlbooster", batch_size=4,
            cpu_cores=8,
            supervision=SupervisionConfig(deadline_s=0.025,
                                          admission_margin_s=0.015)),
            seeds=bank.spawn(namespace), namespace=namespace)
        host.start()
        hosts.append(host)
    balancer = LoadBalancer(
        env, hosts, make_policy(policy_name, rng=bank.stream("policy")))
    source = OpenLoopSource(
        env, balancer, rate=rate,
        image_hw=DEFAULT_TESTBED.client_image_hw,
        rng=bank.stream("arrivals"), num_clients=8, skew=0.8,
        deadline_s=0.025)
    source.start()
    env.run(until=sim_s)
    return fleet_rollup(hosts, balancer=balancer, source=source,
                        deadline_s=0.025), balancer, hosts, source


@pytest.mark.parametrize("policy", ROUTING_POLICIES)
def test_conservation_under_every_policy(policy):
    payload, balancer, hosts, source = run_fleet(policy)
    assert payload["fleet"]["handled"] > 0
    # Per-host ledgers close...
    for row in payload["per_host"]:
        assert row["conserved"], row["host"]
    # ...the LB's dispatch counts match what the hosts admitted...
    assert balancer.conservation_ok()
    assert payload["balancer"]["dispatched"] == sum(
        payload["balancer"]["per_host"].values())
    assert payload["balancer"]["dispatched"] == sum(
        row["handled"] for row in payload["per_host"])
    # ...and every request the source issued has exactly one outcome.
    assert source.conservation_ok()


@pytest.mark.parametrize("policy", ROUTING_POLICIES)
def test_same_seed_rerun_is_bit_identical(policy):
    payload_a, *_ = run_fleet(policy)
    payload_b, *_ = run_fleet(policy)
    assert (json.dumps(payload_a, sort_keys=True, default=str)
            == json.dumps(payload_b, sort_keys=True, default=str))


def test_different_policies_are_actually_different():
    shares = {}
    for policy in ("round-robin", "consistent-hash"):
        payload, *_ = run_fleet(policy)
        shares[policy] = payload["balancer"]["shares"]
    # Round-robin splits evenly; consistent-hash follows the skewed
    # client mix — the dispatch histograms must differ.
    assert shares["round-robin"] != shares["consistent-hash"]


def test_fleet_percentiles_come_from_merged_samples():
    payload, _, hosts, _ = run_fleet("round-robin")
    assert payload["fleet"]["latency_count"] == sum(
        row["latency_count"] for row in payload["per_host"])
    host_p99s = [row["p99_ms"] for row in payload["per_host"]
                 if row["p99_ms"] is not None]
    fleet_p99 = payload["fleet"]["p99_ms"]
    assert min(host_p99s) <= fleet_p99 <= max(host_p99s) + 1e-9


def test_client_perceived_percentiles_count_failures():
    # Saturate one tiny fleet so shedding is guaranteed, then check the
    # client-perceived p99 lands at the deadline while the served-only
    # p99 stays below it.
    payload, *_ = run_fleet("round-robin", k=1, rate=9000.0, sim_s=0.4)
    fleet = payload["fleet"]
    assert fleet["client_failures"] > 0.01 * fleet["handled"]
    assert fleet["client_p99_ms"] == pytest.approx(25.0)
    assert fleet["p99_ms"] < fleet["client_p99_ms"]
