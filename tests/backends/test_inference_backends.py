"""Tests for the inference backends (CPU, nvJPEG, DLBooster)."""

import pytest

from repro.backends import (CpuInferenceBackend, DLBoosterInferenceBackend,
                            NvJpegInferenceBackend)
from repro.calib import DEFAULT_TESTBED, INFER_MODELS
from repro.data import jpeg_size_sampler
from repro.engines import CpuCorePool, GpuDevice, InferenceEngine
from repro.host import BatchSpec
from repro.net import ClientFleet, Link, Nic
from repro.sim import Environment, SeedBank


def build_rig(batch_size=8, gpus=1):
    env = Environment()
    tb = DEFAULT_TESTBED
    cpu = CpuCorePool(env, tb.cpu_cores)
    spec = INFER_MODELS["googlenet"]
    bspec = BatchSpec(batch_size=batch_size, out_h=224, out_w=224,
                      channels=3)
    link = Link(env, tb.nic_rate, mtu=tb.nic_mtu)
    nic = Nic(env, link, cpu.tracker, per_packet_s=tb.nic_per_packet_s)
    fleet = ClientFleet(env, nic, num_clients=5, image_hw=(375, 500),
                        rng=SeedBank(0).stream("clients"),
                        window=max(2, batch_size),
                        size_sampler=jpeg_size_sampler())
    fleet.start()
    engines = []
    for g in range(gpus):
        engine = InferenceEngine(env, GpuDevice(env, tb, g), spec, cpu, tb,
                                 batch_size=batch_size)
        engine.start()
        engines.append(engine)
    return env, tb, cpu, bspec, nic, fleet, engines


def test_cpu_inference_serves_predictions():
    env, tb, cpu, bspec, nic, fleet, engines = build_rig()
    CpuInferenceBackend(env, tb, cpu, nic, bspec).start(engines)
    env.run(until=2.0)
    assert engines[0].predictions.total > 100
    assert fleet.completed.total > 100
    assert cpu.breakdown()["preprocess"] > 1.0


def test_cpu_inference_worker_cap():
    env, tb, cpu, bspec, nic, fleet, engines = build_rig(batch_size=32)
    CpuInferenceBackend(env, tb, cpu, nic, bspec,
                        max_workers=14).start(engines)
    env.run(until=3.0)
    rate = engines[0].predictions.total / 3.0
    # 14 workers x ~300 img/s cap.
    assert rate < 14 * 330
    with pytest.raises(ValueError):
        CpuInferenceBackend(env, tb, cpu, nic, bspec, max_workers=0)


def test_nvjpeg_steals_gpu_from_inference():
    env, tb, cpu, bspec, nic, fleet, engines = build_rig(batch_size=32)
    NvJpegInferenceBackend(env, tb, cpu, nic, bspec).start(engines)
    env.run(until=3.0)
    gpu = engines[0].gpu
    # Decode kernels ran and inference kernels were stretched.
    assert gpu.busy.busy_seconds("nvjpeg") > 0.5
    rate = engines[0].predictions.total / 3.0
    assert rate <= tb.nvjpeg_peak_rate * 1.05  # decode-bound


def test_nvjpeg_charges_launch_cpu():
    env, tb, cpu, bspec, nic, fleet, engines = build_rig(batch_size=32)
    NvJpegInferenceBackend(env, tb, cpu, nic, bspec).start(engines)
    env.run(until=3.0)
    # ~1.5 cores at saturation (S5.3).
    assert 0.8 <= cpu.breakdown()["preprocess"] <= 2.5


def test_dlbooster_inference_uses_fpga_not_cpu():
    env, tb, cpu, bspec, nic, fleet, engines = build_rig(batch_size=32)
    backend = DLBoosterInferenceBackend(env, tb, cpu, nic, bspec)
    backend.start(engines)
    env.run(until=3.0)
    assert backend.devices[0].mirror.decoded.total > 1000
    bd = cpu.breakdown()
    assert bd.get("preprocess", 0.0) < 1.0
    assert backend.pool.conservation_ok()


def test_dlbooster_inference_outperforms_cpu_backend():
    results = {}
    for backend_cls in (CpuInferenceBackend, DLBoosterInferenceBackend):
        env, tb, cpu, bspec, nic, fleet, engines = build_rig(batch_size=32)
        backend_cls(env, tb, cpu, nic, bspec).start(engines)
        env.run(until=3.0)
        results[backend_cls.__name__] = engines[0].predictions.total
    assert results["DLBoosterInferenceBackend"] > \
        1.15 * results["CpuInferenceBackend"]


def test_inference_backend_double_start():
    env, tb, cpu, bspec, nic, fleet, engines = build_rig()
    backend = NvJpegInferenceBackend(env, tb, cpu, nic, bspec)
    backend.start(engines)
    with pytest.raises(RuntimeError):
        backend.start(engines)
    with pytest.raises(ValueError):
        NvJpegInferenceBackend(env, tb, cpu, nic, bspec).start([])


def test_dlbooster_inference_validation():
    env, tb, cpu, bspec, nic, fleet, engines = build_rig()
    with pytest.raises(ValueError):
        DLBoosterInferenceBackend(env, tb, cpu, nic, bspec, num_fpgas=0)


def test_requests_complete_with_latency_recorded():
    env, tb, cpu, bspec, nic, fleet, engines = build_rig(batch_size=4)
    DLBoosterInferenceBackend(env, tb, cpu, nic, bspec).start(engines)
    env.run(until=2.0)
    engine = engines[0]
    assert engine.latency.count > 50
    assert engine.latency.mean() > 0
    # Client RTT >= server-side latency (adds wire time).
    assert fleet.rtt.mean() >= engine.latency.mean()


def test_gpu_direct_skips_host_pool_and_dispatcher():
    env, tb, cpu, bspec, nic, fleet, engines = build_rig(batch_size=16)
    backend = DLBoosterInferenceBackend(env, tb, cpu, nic, bspec,
                                        gpu_direct=True)
    backend.start(engines)
    env.run(until=2.0)
    assert backend.dispatcher is None
    assert backend.reader is None
    assert engines[0].predictions.total > 500
    # The host pool never cycles: everything lands in device memory.
    assert backend.pool.in_use == 0


def test_gpu_direct_throughput_matches_staged():
    results = {}
    for direct in (False, True):
        env, tb, cpu, bspec, nic, fleet, engines = build_rig(batch_size=16)
        DLBoosterInferenceBackend(env, tb, cpu, nic, bspec,
                                  gpu_direct=direct).start(engines)
        env.run(until=2.5)
        results[direct] = engines[0].predictions.total
    assert results[True] >= 0.95 * results[False]


def test_rx_overflow_recovery_under_tiny_ring():
    """Failure injection: a tiny RX ring drops requests under burst;
    clients reissue and the serving stack keeps making progress."""
    env = Environment()
    tb = DEFAULT_TESTBED
    cpu = CpuCorePool(env, tb.cpu_cores)
    spec = INFER_MODELS["googlenet"]
    bspec = BatchSpec(batch_size=4, out_h=224, out_w=224, channels=3)
    link = Link(env, tb.nic_rate, mtu=tb.nic_mtu)
    nic = Nic(env, link, cpu.tracker, per_packet_s=tb.nic_per_packet_s,
              rx_capacity=2)  # absurdly small ring
    fleet = ClientFleet(env, nic, num_clients=5, image_hw=(375, 500),
                        rng=SeedBank(0).stream("clients"), window=8,
                        size_sampler=jpeg_size_sampler())
    fleet.start()
    engine = InferenceEngine(env, GpuDevice(env, tb, 0), spec, cpu, tb,
                             batch_size=4)
    engine.start()
    DLBoosterInferenceBackend(env, tb, cpu, nic, bspec).start([engine])
    env.run(until=2.0)
    assert nic.drops.total > 0          # the fault fired
    assert engine.predictions.total > 500  # and service continued
    assert fleet.completed.total > 500
