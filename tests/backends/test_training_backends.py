"""Tests for the training backends (synthetic, CPU, LMDB, DLBooster)."""

import dataclasses

import pytest

from repro.backends import (CpuOnlineBackend, DatasetCache, DLBoosterBackend,
                            LmdbBackend, SyntheticBackend, epoch_stream,
                            ingest_manifest)
from repro.calib import DEFAULT_TESTBED, TRAIN_MODELS
from repro.data import imagenet_like_manifest, mnist_like_manifest
from repro.engines import CpuCorePool, GpuDevice, SyncGroup, TrainingSolver
from repro.host import BatchSpec
from repro.sim import Environment, SeedBank
from repro.storage import FileManifest


def build_rig(model="alexnet", gpus=1, dataset=2000):
    env = Environment()
    cpu = CpuCorePool(env, DEFAULT_TESTBED.cpu_cores)
    spec = TRAIN_MODELS[model]
    bspec = BatchSpec(batch_size=spec.batch_size, out_h=spec.input_hw[0],
                      out_w=spec.input_hw[1], channels=spec.channels)
    manifest = (mnist_like_manifest(dataset, SeedBank(0))
                if model == "lenet5"
                else imagenet_like_manifest(dataset, SeedBank(0)))
    sync = SyncGroup(env, gpus, spec, DEFAULT_TESTBED)
    solvers = []
    for g in range(gpus):
        s = TrainingSolver(env, GpuDevice(env, DEFAULT_TESTBED, g), spec,
                           sync, cpu, DEFAULT_TESTBED)
        s.start()
        solvers.append(s)
    return env, cpu, bspec, manifest, solvers


# ------------------------------------------------------------- base bits
def test_epoch_stream_yields_all_items():
    manifest = imagenet_like_manifest(10, SeedBank(0))
    items = list(epoch_stream(manifest, None, 0))
    assert len(items) == 10
    assert all(i.source == "disk" for i in items)


def test_dataset_cache_policy():
    tb = DEFAULT_TESTBED
    spec = BatchSpec(batch_size=512, out_h=28, out_w=28, channels=1)
    small = DatasetCache(tb, mnist_like_manifest(1000, SeedBank(0)), spec)
    assert small.fits and not small.active
    small.on_epoch_done()
    assert small.active

    big_spec = BatchSpec(batch_size=256, out_h=227, out_w=227, channels=3)
    big = DatasetCache(tb, imagenet_like_manifest(400_000, SeedBank(0)),
                       big_spec)
    assert not big.fits
    big.on_epoch_done()
    assert not big.active


def test_backend_double_start_rejected():
    env, cpu, bspec, manifest, solvers = build_rig()
    backend = SyntheticBackend(env, DEFAULT_TESTBED, cpu, manifest, bspec,
                               SeedBank(0))
    backend.start(solvers)
    with pytest.raises(RuntimeError):
        backend.start(solvers)
    with pytest.raises(ValueError):
        SyntheticBackend(env, DEFAULT_TESTBED, cpu, manifest, bspec,
                         SeedBank(0)).start([])


# ------------------------------------------------------------- synthetic
def test_synthetic_reaches_gpu_bound():
    env, cpu, bspec, manifest, solvers = build_rig()
    SyntheticBackend(env, DEFAULT_TESTBED, cpu, manifest, bspec,
                     SeedBank(0)).start(solvers)
    env.run(until=5.0)
    rate = solvers[0].images_trained.total / 5.0
    assert rate == pytest.approx(TRAIN_MODELS["alexnet"].train_rate,
                                 rel=0.05)


# ------------------------------------------------------------ cpu-online
def test_cpu_backend_burns_decode_cores():
    env, cpu, bspec, manifest, solvers = build_rig(dataset=100_000)
    CpuOnlineBackend(env, DEFAULT_TESTBED, cpu, manifest, bspec,
                     SeedBank(0)).start(solvers)
    env.run(until=5.0)
    bd = cpu.breakdown()
    # ~2,400 img/s at ~300 img/s/core -> ~8 cores of decode.
    assert bd["preprocess"] > 5.0


def test_cpu_backend_worker_cap_limits_throughput():
    env, cpu, bspec, manifest, solvers = build_rig(dataset=100_000)
    CpuOnlineBackend(env, DEFAULT_TESTBED, cpu, manifest, bspec,
                     SeedBank(0), max_workers=2).start(solvers)
    env.run(until=5.0)
    rate = solvers[0].images_trained.total / 5.0
    # 2 workers x ~300 img/s — the Fig. 2 "default configuration" story.
    assert rate < 0.45 * TRAIN_MODELS["alexnet"].train_rate


def test_cpu_backend_validation():
    env, cpu, bspec, manifest, solvers = build_rig()
    with pytest.raises(ValueError):
        CpuOnlineBackend(env, DEFAULT_TESTBED, cpu, manifest, bspec,
                         SeedBank(0), max_workers=0)


# ------------------------------------------------------------------ lmdb
def test_lmdb_ingest_time_scales():
    manifest = imagenet_like_manifest(16_000, SeedBank(0))
    spec = BatchSpec(batch_size=256, out_h=227, out_w=227, channels=3)
    assert ingest_manifest(manifest, spec, DEFAULT_TESTBED) == \
        pytest.approx(10.0)


def test_lmdb_record_geometry():
    env, cpu, bspec, manifest, solvers = build_rig()
    backend = LmdbBackend(env, DEFAULT_TESTBED, cpu, manifest, bspec,
                          SeedBank(0))
    # ImageNet recipe: stored datum is 256x256x3 raw + header.
    assert backend.record_bytes == 256 * 256 * 3 + 64


def test_lmdb_mnist_record_geometry():
    env, cpu, bspec, manifest, solvers = build_rig(model="lenet5")
    backend = LmdbBackend(env, DEFAULT_TESTBED, cpu, manifest, bspec,
                          SeedBank(0))
    assert backend.record_bytes == 28 * 28 + 64


def test_lmdb_shared_env_serializes_readers():
    env, cpu, bspec, manifest, solvers = build_rig(gpus=2, dataset=100_000)
    backend = LmdbBackend(env, DEFAULT_TESTBED, cpu, manifest, bspec,
                          SeedBank(0))
    backend.start(solvers)
    env.run(until=6.0)
    total = sum(s.images_trained.total for s in solvers) / 6.0
    # Aggregate capped by the environment (~3,200 img/s for these records).
    per_record = DEFAULT_TESTBED.lmdb_record_seconds(backend.record_bytes)
    assert total < 1.05 / per_record


# -------------------------------------------------------------- dlbooster
def test_dlbooster_reaches_bound_with_low_cpu():
    env, cpu, bspec, manifest, solvers = build_rig(dataset=100_000)
    backend = DLBoosterBackend(env, DEFAULT_TESTBED, cpu, manifest, bspec,
                               SeedBank(0))
    backend.start(solvers)
    env.run(until=6.0)
    rate = solvers[0].images_trained.total / 6.0
    assert rate > 0.9 * TRAIN_MODELS["alexnet"].train_rate
    bd = cpu.breakdown()
    assert bd.get("preprocess", 0) < 1.0
    assert backend.pool.conservation_ok()


def test_dlbooster_cache_kicks_in_second_epoch():
    env, cpu, bspec, manifest, solvers = build_rig(model="lenet5",
                                                   dataset=5_000)
    backend = DLBoosterBackend(env, DEFAULT_TESTBED, cpu, manifest, bspec,
                               SeedBank(0))
    backend.start(solvers)
    env.run(until=3.0)
    assert backend.epochs_done >= 2
    assert backend.cache.active


def test_dlbooster_validation():
    env, cpu, bspec, manifest, solvers = build_rig()
    with pytest.raises(ValueError):
        DLBoosterBackend(env, DEFAULT_TESTBED, cpu, manifest, bspec,
                         SeedBank(0), num_fpgas=0)


def test_dlbooster_multiple_fpgas_split_load():
    env, cpu, bspec, manifest, solvers = build_rig(dataset=50_000)
    backend = DLBoosterBackend(env, DEFAULT_TESTBED, cpu, manifest, bspec,
                               SeedBank(0), num_fpgas=2)
    backend.start(solvers)
    env.run(until=3.0)
    decoded = [d.mirror.decoded.total for d in backend.devices]
    assert all(d > 0 for d in decoded)
    assert abs(decoded[0] - decoded[1]) <= 1


def test_cpu_backend_handles_short_tail_batch():
    env, cpu, bspec, manifest, solvers = build_rig(model="lenet5",
                                                   dataset=700)
    # 700 images with batch 512 -> one full batch + one 188-image tail.
    CpuOnlineBackend(env, DEFAULT_TESTBED, cpu, manifest, bspec,
                     SeedBank(0)).start(solvers)
    env.run(until=1.0)
    assert solvers[0].images_trained.total >= 700


def test_lmdb_backend_handles_short_tail_batch():
    env, cpu, bspec, manifest, solvers = build_rig(model="lenet5",
                                                   dataset=700)
    LmdbBackend(env, DEFAULT_TESTBED, cpu, manifest, bspec,
                SeedBank(0)).start(solvers)
    env.run(until=1.0)
    assert solvers[0].images_trained.total >= 700


def test_dlbooster_epoch_shuffle_changes_order_not_count():
    env, cpu, bspec, manifest, solvers = build_rig(model="lenet5",
                                                   dataset=2_000)
    backend = DLBoosterBackend(env, DEFAULT_TESTBED, cpu, manifest, bspec,
                               SeedBank(0))
    backend.start(solvers)
    env.run(until=2.0)
    # Several epochs in: total submitted is a multiple of the dataset.
    assert backend.epochs_done >= 1
    total = solvers[0].images_trained.total
    assert total >= 2_000
