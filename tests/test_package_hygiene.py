"""Package-level hygiene: docstrings, __all__ exports, version."""

import importlib
import pkgutil

import repro

PACKAGES = ["repro", "repro.sim", "repro.jpeg", "repro.calib",
            "repro.storage", "repro.net", "repro.memory", "repro.fpga",
            "repro.host", "repro.engines", "repro.backends",
            "repro.workflows", "repro.experiments", "repro.data",
            "repro.cluster", "repro.faults", "repro.supervision",
            "repro.telemetry", "repro.tracing", "repro.fleet",
            "repro.sweep", "repro.slo", "repro.capacity"]


def iter_all_modules():
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        yield pkg_name, pkg
        for info in pkgutil.iter_modules(pkg.__path__,
                                         prefix=pkg_name + "."):
            if info.name.endswith("__main__"):
                continue
            yield info.name, importlib.import_module(info.name)


def test_version_string():
    assert repro.__version__ == "1.0.0"


def test_every_module_has_a_docstring():
    missing = [name for name, mod in iter_all_modules()
               if not (mod.__doc__ or "").strip()]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_package_defines_all():
    missing = [name for name in PACKAGES
               if not getattr(importlib.import_module(name), "__all__", None)]
    assert not missing, f"packages without __all__: {missing}"


def test_all_exports_resolve():
    broken = []
    for name in PACKAGES:
        mod = importlib.import_module(name)
        for symbol in getattr(mod, "__all__", []):
            if not hasattr(mod, symbol):
                broken.append(f"{name}.{symbol}")
    assert not broken, f"__all__ names that do not resolve: {broken}"


def test_public_classes_and_functions_documented():
    undocumented = []
    for name, mod in iter_all_modules():
        for symbol in getattr(mod, "__all__", []):
            obj = getattr(mod, symbol, None)
            if callable(obj) and not (getattr(obj, "__doc__", "") or
                                      "").strip():
                undocumented.append(f"{name}.{symbol}")
    assert not undocumented, undocumented
