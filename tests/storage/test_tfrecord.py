"""Tests for the TFRecord format and the from-scratch CRC32C."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import (TFRecordError, TFRecordReader, TFRecordWriter,
                           crc32c, masked_crc)


# ----------------------------------------------------------------- crc32c
def test_crc32c_standard_check_value():
    # The canonical CRC-32C test vector.
    assert crc32c(b"123456789") == 0xE3069283


def test_crc32c_empty():
    assert crc32c(b"") == 0


def test_crc32c_known_vectors():
    # RFC 3720 appendix B.4 test patterns.
    assert crc32c(bytes(32)) == 0x8A9136AA
    assert crc32c(bytes([0xFF] * 32)) == 0x62A8AB43


def test_crc32c_chaining_differs_from_concat():
    # Chained CRC continues the polynomial state.
    whole = crc32c(b"hello world")
    assert crc32c(b" world", crc32c(b"hello")) == whole


def test_masked_crc_invertible_constant():
    crc = crc32c(b"payload")
    masked = masked_crc(b"payload")
    unmasked = ((masked - 0xA282EAD8) & 0xFFFFFFFF)
    assert ((unmasked >> 17) | (unmasked << 15)) & 0xFFFFFFFF == crc


# ---------------------------------------------------------------- tfrecord
def test_tfrecord_roundtrip(tmp_path):
    path = str(tmp_path / "data.tfrecord")
    payloads = [b"first", b"", b"x" * 5000, bytes(range(256))]
    with TFRecordWriter(path) as w:
        for p in payloads:
            w.write(p)
    assert w.record_count == 4
    with TFRecordReader(path) as r:
        assert list(r) == payloads


def test_tfrecord_wire_format(tmp_path):
    path = str(tmp_path / "one.tfrecord")
    with TFRecordWriter(path) as w:
        w.write(b"abc")
    raw = open(path, "rb").read()
    length = struct.unpack("<Q", raw[:8])[0]
    assert length == 3
    assert struct.unpack("<I", raw[8:12])[0] == masked_crc(raw[:8])
    assert raw[12:15] == b"abc"
    assert struct.unpack("<I", raw[15:19])[0] == masked_crc(b"abc")


def test_tfrecord_type_validation(tmp_path):
    with TFRecordWriter(str(tmp_path / "d.tfrecord")) as w:
        with pytest.raises(TypeError):
            w.write("not bytes")


def test_tfrecord_corrupt_payload_detected(tmp_path):
    path = str(tmp_path / "bad.tfrecord")
    with TFRecordWriter(path) as w:
        w.write(b"payload-data")
    raw = bytearray(open(path, "rb").read())
    raw[14] ^= 0xFF
    open(path, "wb").write(bytes(raw))
    with TFRecordReader(path) as r:
        with pytest.raises(TFRecordError, match="payload crc"):
            list(r)


def test_tfrecord_corrupt_length_detected(tmp_path):
    path = str(tmp_path / "bad.tfrecord")
    with TFRecordWriter(path) as w:
        w.write(b"payload")
    raw = bytearray(open(path, "rb").read())
    raw[0] ^= 0x01
    open(path, "wb").write(bytes(raw))
    with TFRecordReader(path) as r:
        with pytest.raises(TFRecordError, match="length crc"):
            list(r)


def test_tfrecord_truncation_detected(tmp_path):
    path = str(tmp_path / "trunc.tfrecord")
    with TFRecordWriter(path) as w:
        w.write(b"complete-record")
    raw = open(path, "rb").read()
    open(path, "wb").write(raw[:-2])
    with TFRecordReader(path) as r:
        with pytest.raises(TFRecordError):
            list(r)


@given(st.lists(st.binary(max_size=200), max_size=20))
@settings(max_examples=30, deadline=None)
def test_tfrecord_roundtrip_property(tmp_path_factory, payloads):
    path = str(tmp_path_factory.mktemp("tf") / "d.tfrecord")
    with TFRecordWriter(path) as w:
        for p in payloads:
            w.write(p)
    with TFRecordReader(path) as r:
        assert list(r) == payloads
