"""Stateful property tests on the KV store: arbitrary interleavings of
commits, aborts and reopens preserve the committed view."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import KVStore


ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.binary(min_size=1, max_size=8),
                  st.binary(max_size=16)),
        st.tuples(st.just("abort_put"), st.binary(min_size=1, max_size=8),
                  st.binary(max_size=16)),
        st.tuples(st.just("reopen"), st.just(b""), st.just(b"")),
    ),
    max_size=30)


@given(ops_strategy)
@settings(max_examples=25, deadline=None)
def test_committed_view_survives_any_interleaving(tmp_path_factory, ops):
    path = str(tmp_path_factory.mktemp("kvp") / "db")
    expected: dict[bytes, bytes] = {}
    store = KVStore(path)
    try:
        for op, key, value in ops:
            if op == "put":
                with store.begin(write=True) as txn:
                    txn.put(key, value)
                expected[key] = value
            elif op == "abort_put":
                txn = store.begin(write=True)
                txn.put(key, value)
                txn.abort()
            elif op == "reopen":
                store.close()
                store = KVStore(path)
        with store.begin() as txn:
            assert txn.keys() == sorted(expected)
            for key, value in expected.items():
                assert txn.get(key) == value
    finally:
        store.close()


@given(st.lists(st.binary(min_size=1, max_size=6), min_size=1,
                max_size=20, unique=True))
@settings(max_examples=25, deadline=None)
def test_snapshot_never_sees_later_commits(tmp_path_factory, keys):
    path = str(tmp_path_factory.mktemp("kvs") / "db")
    with KVStore(path) as store:
        half = len(keys) // 2
        with store.begin(write=True) as txn:
            for key in keys[:half]:
                txn.put(key, b"early")
        reader = store.begin()
        with store.begin(write=True) as txn:
            for key in keys[half:]:
                txn.put(key, b"late")
        assert reader.keys() == sorted(keys[:half])
        for key in keys[half:]:
            assert reader.get(key) is None
        reader.commit()
