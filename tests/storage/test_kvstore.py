"""Tests for the LMDB-like KV store substrate."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import KVError, KVStore


@pytest.fixture
def store(tmp_path):
    with KVStore(str(tmp_path / "db")) as kv:
        yield kv


def test_put_get_roundtrip(store):
    with store.begin(write=True) as txn:
        txn.put(b"key", b"value")
    with store.begin() as txn:
        assert txn.get(b"key") == b"value"


def test_get_missing_returns_none(store):
    with store.begin() as txn:
        assert txn.get(b"nope") is None


def test_overwrite_key(store):
    with store.begin(write=True) as txn:
        txn.put(b"k", b"v1")
    with store.begin(write=True) as txn:
        txn.put(b"k", b"v2")
    with store.begin() as txn:
        assert txn.get(b"k") == b"v2"
    assert len(store) == 1


def test_read_your_writes(store):
    with store.begin(write=True) as txn:
        txn.put(b"k", b"v")
        assert txn.get(b"k") == b"v"


def test_cursor_sorted_order(store):
    keys = [b"delta", b"alpha", b"charlie", b"bravo"]
    with store.begin(write=True) as txn:
        for k in keys:
            txn.put(k, k.upper())
    with store.begin() as txn:
        seen = [k for k, _ in txn.cursor()]
    assert seen == sorted(keys)


def test_cursor_start_key(store):
    with store.begin(write=True) as txn:
        for k in [b"a", b"b", b"c", b"d"]:
            txn.put(k, b"x")
    with store.begin() as txn:
        assert [k for k, _ in txn.cursor(start=b"c")] == [b"c", b"d"]


def test_single_writer_enforced(store):
    t1 = store.begin(write=True)
    with pytest.raises(KVError, match="single-writer"):
        store.begin(write=True)
    t1.abort()
    store.begin(write=True).abort()  # allowed again


def test_many_concurrent_readers(store):
    with store.begin(write=True) as txn:
        txn.put(b"k", b"v")
    readers = [store.begin() for _ in range(10)]
    assert store.active_readers == 10
    for r in readers:
        assert r.get(b"k") == b"v"
        r.commit()
    assert store.active_readers == 0


def test_snapshot_isolation(store):
    with store.begin(write=True) as txn:
        txn.put(b"old", b"1")
    reader = store.begin()
    with store.begin(write=True) as txn:
        txn.put(b"new", b"2")
    assert reader.get(b"new") is None       # committed after snapshot
    assert reader.get(b"old") == b"1"
    reader.commit()
    with store.begin() as txn:
        assert txn.get(b"new") == b"2"


def test_abort_discards_writes(store):
    txn = store.begin(write=True)
    txn.put(b"ghost", b"x")
    txn.abort()
    with store.begin() as txn:
        assert txn.get(b"ghost") is None


def test_exception_in_with_block_aborts(store):
    with pytest.raises(RuntimeError):
        with store.begin(write=True) as txn:
            txn.put(b"ghost", b"x")
            raise RuntimeError("boom")
    with store.begin() as txn:
        assert txn.get(b"ghost") is None


def test_closed_transaction_rejected(store):
    txn = store.begin(write=True)
    txn.commit()
    with pytest.raises(KVError):
        txn.put(b"k", b"v")


def test_type_and_key_validation(store):
    with store.begin(write=True) as txn:
        with pytest.raises(TypeError):
            txn.put("str", b"v")
        with pytest.raises(TypeError):
            txn.put(b"k", "str")
        with pytest.raises(KVError):
            txn.put(b"", b"v")
        txn.abort()


def test_persistence_across_reopen(tmp_path):
    path = str(tmp_path / "db")
    with KVStore(path) as kv:
        with kv.begin(write=True) as txn:
            for i in range(20):
                txn.put(f"k{i:03d}".encode(), f"v{i}".encode() * 10)
    with KVStore(path, readonly=True) as kv:
        assert len(kv) == 20
        with kv.begin() as txn:
            assert txn.get(b"k007") == b"v7" * 10


def test_readonly_open_missing_store(tmp_path):
    with pytest.raises(KVError):
        KVStore(str(tmp_path / "missing"), readonly=True)


def test_readonly_rejects_writes(tmp_path):
    path = str(tmp_path / "db")
    KVStore(path).close()
    with KVStore(path, readonly=True) as kv:
        with pytest.raises(KVError):
            kv.begin(write=True)


def test_torn_tail_recovered(tmp_path):
    path = str(tmp_path / "db")
    with KVStore(path) as kv:
        with kv.begin(write=True) as txn:
            txn.put(b"good", b"data")
    # Simulate a crash mid-append: garbage half-record at the tail.
    with open(os.path.join(path, "data.rkv"), "ab") as fh:
        fh.write(b"\x10\x00\x00\x00\x20\x00\x00")
    with KVStore(path) as kv:
        assert len(kv) == 1
        with kv.begin() as txn:
            assert txn.get(b"good") == b"data"
        # Store still writable after recovery.
        with kv.begin(write=True) as txn:
            txn.put(b"more", b"x")
    with KVStore(path, readonly=True) as kv:
        assert len(kv) == 2


def test_corrupt_crc_truncates(tmp_path):
    path = str(tmp_path / "db")
    with KVStore(path) as kv:
        with kv.begin(write=True) as txn:
            txn.put(b"aaaa", b"bbbb")
    data_file = os.path.join(path, "data.rkv")
    raw = bytearray(open(data_file, "rb").read())
    raw[-1] ^= 0xFF  # flip a payload byte
    open(data_file, "wb").write(bytes(raw))
    with KVStore(path) as kv:
        assert len(kv) == 0


def test_data_bytes_grows(store):
    before = store.data_bytes
    with store.begin(write=True) as txn:
        txn.put(b"k", b"v" * 1000)
    assert store.data_bytes > before + 1000


def test_large_values(store):
    blob = bytes(range(256)) * 4096  # 1 MiB
    with store.begin(write=True) as txn:
        txn.put(b"blob", blob)
    with store.begin() as txn:
        assert txn.get(b"blob") == blob


@given(st.dictionaries(st.binary(min_size=1, max_size=16),
                       st.binary(max_size=64), max_size=25))
@settings(max_examples=25, deadline=None)
def test_roundtrip_property(tmp_path_factory, mapping):
    path = str(tmp_path_factory.mktemp("kv") / "db")
    with KVStore(path) as kv:
        with kv.begin(write=True) as txn:
            for k, v in mapping.items():
                txn.put(k, v)
        with kv.begin() as txn:
            assert txn.keys() == sorted(mapping)
            for k, v in mapping.items():
                assert txn.get(k) == v
