"""Tests for RecordIO, file manifests and the NVMe timing model."""

import numpy as np
import pytest

from repro.calib import DEFAULT_TESTBED
from repro.sim import Environment
from repro.storage import (BLOCK_SIZE, FileManifest, IndexedRecordFile,
                           NvmeDisk, RecordFormatError, RecordReader,
                           RecordWriter)


# ---------------------------------------------------------------- recordio
def test_recordio_roundtrip(tmp_path):
    path = str(tmp_path / "data.rec")
    payloads = [b"alpha", b"", b"x" * 1000, bytes(range(256))]
    with RecordWriter(path) as w:
        for p in payloads:
            w.write(p)
    with RecordReader(path) as r:
        assert [p for _, p in r] == payloads


def test_recordio_flags(tmp_path):
    path = str(tmp_path / "data.rec")
    with RecordWriter(path) as w:
        w.write(b"a", flags=3)
    with RecordReader(path) as r:
        assert next(iter(r)) == (3, b"a")


def test_recordio_flag_validation(tmp_path):
    with RecordWriter(str(tmp_path / "d.rec")) as w:
        with pytest.raises(ValueError):
            w.write(b"a", flags=8)
        with pytest.raises(TypeError):
            w.write("str")


def test_recordio_resync_past_corruption(tmp_path):
    path = str(tmp_path / "data.rec")
    with RecordWriter(path) as w:
        offs = [w.write(f"rec{i}".encode() * 10) for i in range(3)]
    raw = bytearray(open(path, "rb").read())
    raw[offs[1] + 14] ^= 0xFF  # corrupt the middle record's payload
    open(path, "wb").write(bytes(raw))
    with RecordReader(path) as r:
        got = [p for _, p in r]
    assert got[0] == b"rec0" * 10
    assert got[-1] == b"rec2" * 10
    assert b"rec1" * 10 not in got


def test_recordio_bad_header(tmp_path):
    path = str(tmp_path / "bad.rec")
    open(path, "wb").write(b"NOPE")
    with pytest.raises(RecordFormatError):
        RecordReader(path)


def test_recordio_torn_tail(tmp_path):
    path = str(tmp_path / "data.rec")
    with RecordWriter(path) as w:
        w.write(b"complete")
    with open(path, "ab") as fh:
        fh.write(b"\x72\x2e\x78\x6d\xff\xff")  # half a header
    with RecordReader(path) as r:
        assert [p for _, p in r] == [b"complete"]


def test_indexed_recordfile_random_access(tmp_path):
    path = str(tmp_path / "idx.rec")
    payloads = [f"payload-{i}".encode() for i in range(10)]
    f = IndexedRecordFile.build(path, payloads)
    assert len(f) == 10
    assert f.read(7) == b"payload-7"
    assert f.read(0) == b"payload-0"
    with pytest.raises(IndexError):
        f.read(10)


# ---------------------------------------------------------------- manifest
def test_manifest_allocates_contiguous_blocks():
    m = FileManifest()
    e1 = m.add("a.jpg", size_bytes=5000, height=375, width=500, channels=3)
    e2 = m.add("b.jpg", size_bytes=100, height=375, width=500, channels=3)
    assert e1.extents[0].lba == 0
    assert e1.extents[0].block_count == 2  # ceil(5000/4096)
    assert e2.extents[0].lba == 2
    assert m.total_blocks == 3


def test_manifest_entry_metadata():
    m = FileManifest()
    e = m.add("x.jpg", size_bytes=1000, height=100, width=200, channels=3,
              label=7)
    assert e.pixels == 20_000
    assert e.decode_work_pixels == 30_000  # 4:2:0 chroma adds 50%
    info = e.get_metainfo()
    assert info["shape"] == (100, 200, 3)
    assert info["size_bytes"] == 1000


def test_manifest_gray_decode_work():
    m = FileManifest()
    e = m.add("g.png", size_bytes=700, height=28, width=28, channels=1)
    assert e.decode_work_pixels == 784


def test_manifest_validation():
    with pytest.raises(ValueError):
        FileManifest().add("bad", size_bytes=0, height=1, width=1, channels=1)


def test_manifest_iteration_and_totals():
    m = FileManifest()
    for i in range(5):
        m.add(f"{i}.jpg", size_bytes=1000 * (i + 1), height=10, width=10,
              channels=3)
    assert len(m) == 5
    assert m.total_bytes == 15_000
    assert [e.file_id for e in m] == list(range(5))


def test_manifest_epoch_order_shuffles_deterministically():
    m = FileManifest()
    for i in range(100):
        m.add(f"{i}", size_bytes=10, height=1, width=1, channels=1)
    plain = list(m.epoch_order())
    assert plain == list(range(100))
    s1 = list(m.epoch_order(np.random.default_rng(1)))
    s2 = list(m.epoch_order(np.random.default_rng(1)))
    assert s1 == s2 and s1 != plain


# ------------------------------------------------------------------- nvme
def test_nvme_single_read_timing():
    env = Environment()
    disk = NvmeDisk(env, DEFAULT_TESTBED)
    done = []

    def p(env):
        yield from disk.read(DEFAULT_TESTBED.nvme_read_rate)  # 1 s of data
        done.append(env.now)

    env.process(p(env))
    env.run()
    assert done[0] == pytest.approx(1.0 + DEFAULT_TESTBED.nvme_access_latency_s)
    assert disk.bytes_read.total == DEFAULT_TESTBED.nvme_read_rate


def test_nvme_transfers_serialize_on_bandwidth():
    env = Environment()
    disk = NvmeDisk(env, DEFAULT_TESTBED)
    done = []
    chunk = int(DEFAULT_TESTBED.nvme_read_rate * 0.5)  # 0.5 s each

    def p(env, name):
        yield from disk.read(chunk)
        done.append((name, env.now))

    env.process(p(env, "a"))
    env.process(p(env, "b"))
    env.run()
    # Latencies overlap but the two transfers serialize: ~0.5 s and ~1.0 s.
    assert done[0][1] == pytest.approx(0.5, abs=1e-3)
    assert done[1][1] == pytest.approx(1.0, abs=1e-3)


def test_nvme_utilization():
    env = Environment()
    disk = NvmeDisk(env, DEFAULT_TESTBED)

    def p(env):
        yield from disk.read(int(DEFAULT_TESTBED.nvme_read_rate * 0.3))
        yield env.timeout(0.7)  # idle

    env.process(p(env))
    env.run()
    assert disk.utilization() == pytest.approx(0.3, abs=0.01)


def test_nvme_rejects_bad_size():
    env = Environment()
    disk = NvmeDisk(env, DEFAULT_TESTBED)

    def p(env):
        yield from disk.read(0)

    env.process(p(env))
    with pytest.raises(ValueError):
        env.run()


def test_block_size_constant():
    assert BLOCK_SIZE == 4096
