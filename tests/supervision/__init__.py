"""Tests for the pipeline supervision layer."""
