"""IntegrityChecker: stamp-at-ingest, verify-after-decode."""

import math

from repro.host import WorkItem
from repro.sim import Environment
from repro.supervision import IntegrityChecker


def item(payload=None, size_bytes=50_000):
    return WorkItem(source="dram", size_bytes=size_bytes,
                    work_pixels=int(375 * 500 * 1.5), channels=3,
                    payload=payload)


def test_stamp_verify_roundtrip_payload_bytes():
    env = Environment()
    ic = IntegrityChecker(env)
    it = item(payload=b"\xff\xd8jpeg-scan-data\xff\xd9")
    ic.stamp(it)
    assert it.checksum is not None
    assert ic.verify(it, it.payload) is True
    assert ic.metrics() == {"integrity_stamped": 1, "integrity_verified": 1,
                            "integrity_mismatches": 0}


def test_single_bitflip_in_payload_is_detected():
    env = Environment()
    ic = IntegrityChecker(env)
    payload = bytearray(b"\xff\xd8" + bytes(range(64)) + b"\xff\xd9")
    it = item(payload=bytes(payload))
    ic.stamp(it)
    payload[40] ^= 0x01                          # one silent bit flip
    assert ic.verify(it, bytes(payload)) is False
    assert ic.mismatches.total == 1


def test_modeled_mode_fingerprints_cmd_metadata():
    env = Environment()
    ic = IntegrityChecker(env)
    it = item(payload=None, size_bytes=40_000)
    ic.stamp(it)
    # The cmd travelled unchanged: fingerprint matches.
    assert ic.verify(it, None) is True
    # The cmd's size field was corrupted in flight: the reader passes
    # the travelled value and the fingerprint catches it.
    assert ic.verify(it, None, size_bytes=40_001) is False


def test_unstamped_item_passes_vacuously():
    env = Environment()
    ic = IntegrityChecker(env)
    it = item(payload=b"bytes")
    assert it.checksum is None
    assert ic.verify(it, b"anything else") is True
    assert ic.verified.total == 0                # vacuous, not verified


def test_distinct_payloads_distinct_digests():
    assert IntegrityChecker.digest(b"aaaa", 4, 0) != \
        IntegrityChecker.digest(b"aaab", 4, 0)
    assert IntegrityChecker.digest(None, 100, 7) != \
        IntegrityChecker.digest(None, 101, 7)
