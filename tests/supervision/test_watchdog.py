"""Watchdog + Heartbeat: stall detection on real pipeline stages."""

import pytest

from repro.calib import DEFAULT_TESTBED
from repro.engines import DeviceBatch, GpuDevice
from repro.host import Dispatcher
from repro.memory import MemManager
from repro.sim import Environment, QueuePair
from repro.supervision import (Heartbeat, PipelineStallError,
                               SupervisionConfig, Supervisor, Watchdog)


class FakeSolver:
    def __init__(self, env, gpu, depth=2):
        self.gpu = gpu
        self.trans = QueuePair(env, capacity=depth, name="fake.trans")
        self.trans.seed([DeviceBatch(device_addr=i, capacity_bytes=64_000,
                                     gpu_index=gpu.index)
                         for i in range(depth)])

    @property
    def trans_queues(self):
        return self.trans


# ---------------------------------------------------------------- heartbeat
def test_heartbeat_stalled_for_semantics():
    env = Environment()
    hb = Heartbeat(env, "stage")
    assert hb.state == Heartbeat.IDLE
    assert hb.stalled_for(10.0) == 0.0          # idle never stalls

    hb.waiting("some.queue")
    assert hb.stalled_for(env.now + 0.5) == pytest.approx(0.5)

    hb.progress()
    assert hb.state == Heartbeat.RUNNING
    assert hb.waiting_on is None
    assert hb.stalled_for(env.now + 0.25) == pytest.approx(0.25)

    hb.idle()
    assert hb.stalled_for(env.now + 99.0) == 0.0


def test_heartbeat_progress_rearms_stall_reporting():
    env = Environment()
    hb = Heartbeat(env, "stage")
    hb.waiting("q")
    hb.stall_reported = True                    # one episode reported
    hb.progress()
    assert hb.stall_reported is False           # next stall reports again


# ----------------------------------------------------------------- watchdog
def test_watchdog_detects_starved_dispatcher_naming_the_channel():
    """The acceptance scenario: a dispatcher starved of full batches
    (its producer never feeds the Full_Batch_Queue) is flagged within
    the stall threshold + one scan period, and the report names the
    blocking channel."""
    env = Environment()
    pool = MemManager(env, unit_size=1024, unit_count=4,
                      allocate_arena=False)
    solver = FakeSolver(env, GpuDevice(env, DEFAULT_TESTBED, 0))

    sup = Supervisor(env, SupervisionConfig(stall_threshold_s=0.05))
    hb = sup.register("dispatcher")
    sup.watch_channel(pool.full_batch_queue)
    sup.watch_channel(solver.trans_queues.free)

    disp = Dispatcher(env, DEFAULT_TESTBED, pool, [solver], heartbeat=hb)
    disp.start()
    sup.start()
    # Nobody ever produces a full batch: the pump parks forever.
    env.run(until=0.5)

    assert len(sup.stall_reports) == 1
    report = sup.stall_reports[0]
    assert report.stage == "dispatcher"
    assert report.state == "waiting"
    assert report.waiting_on == pool.full_batch_queue.name
    # Detection latency bound: threshold + one scan period (+ float eps).
    scan = sup.watchdog.scan_period_s
    assert report.when <= 0.05 + scan + 1e-9
    assert report.stalled_for_s >= 0.05
    # The starved queue's depth (0) is in the diagnosis.
    assert report.queue_depths[pool.full_batch_queue.name] == 0
    assert pool.full_batch_queue.name in report.render()
    # One episode -> one report, not one per scan.
    env.run(until=1.0)
    assert len(sup.stall_reports) == 1


def test_watchdog_quiet_while_stage_progresses():
    env = Environment()
    wd = Watchdog(env, stall_threshold_s=0.05)
    hb = wd.register("busy-stage")

    def worker(env):
        while True:
            hb.waiting("feed")
            yield env.timeout(0.01)             # well under the threshold
            hb.progress()

    env.process(worker(env))
    wd.start()
    env.run(until=1.0)
    assert wd.stalls_detected.total == 0
    assert wd.scans.total > 0


def test_watchdog_fail_fast_raises():
    env = Environment()
    wd = Watchdog(env, stall_threshold_s=0.05, fail_fast=True)
    hb = wd.register("stuck")
    hb.waiting("never.fed")
    wd.start()
    with pytest.raises(PipelineStallError, match="never.fed"):
        env.run(until=1.0)


def test_watchdog_flags_running_without_progress():
    env = Environment()
    wd = Watchdog(env, stall_threshold_s=0.05)
    hb = wd.register("spinner")
    hb.running()                                # busy-stuck, not waiting
    wd.start()
    env.run(until=0.2)
    assert wd.stalls_detected.total == 1
    report = wd.reports[0]
    assert report.waiting_on is None
    assert "running without progress" in report.render()


def test_watchdog_stop_quiesces_scanning():
    env = Environment()
    wd = Watchdog(env, stall_threshold_s=0.05)
    hb = wd.register("stuck")
    hb.waiting("q")
    wd.start()
    wd.stop()
    env.run(until=1.0)
    assert wd.stalls_detected.total == 0        # no scan ever fired

    with pytest.raises(ValueError):
        Watchdog(env, stall_threshold_s=0.0)
