"""Deadline propagation, shed policies and boundary shedding."""

import math

import pytest

from repro.calib import DEFAULT_TESTBED
from repro.engines import DeviceBatch, GpuDevice
from repro.host import Dispatcher, WorkItem
from repro.memory import MemManager
from repro.sim import Channel, Environment, QueuePair, ShedPolicy
from repro.supervision import (DeadlineExceeded, SupervisionConfig,
                               Supervisor, expire_request)


def work_item(deadline_at=math.inf, label=0):
    return WorkItem(source="dram", size_bytes=50_000,
                    work_pixels=int(375 * 500 * 1.5), channels=3,
                    label=label, deadline_at=deadline_at)


# ------------------------------------------------------------- shed policy
def test_channel_rejects_expired_at_admit():
    env = Environment()
    shed_log = []
    ch = Channel(env, capacity=8, name="rx", shed=ShedPolicy(
        reject_on_admit=True,
        on_shed=lambda item, where: shed_log.append((item.label, where))))

    def p(env):
        yield env.timeout(1.0)
        yield from ch.put(work_item(deadline_at=0.5, label=1))   # expired
        yield from ch.put(work_item(deadline_at=2.0, label=2))   # live

    env.process(p(env))
    env.run()
    assert len(ch) == 1
    assert ch.shed_total == 1
    assert shed_log == [(1, "admit")]


def test_channel_drops_expired_at_dequeue():
    env = Environment()
    ch = Channel(env, capacity=8, name="rx",
                 shed=ShedPolicy(drop_expired_at_dequeue=True))
    got = []

    def p(env):
        yield from ch.put(work_item(deadline_at=0.5, label=1))
        yield from ch.put(work_item(deadline_at=9.0, label=2))
        yield env.timeout(1.0)                  # item 1 expires in queue
        item = yield from ch.get()
        got.append(item.label)

    env.process(p(env))
    env.run()
    assert got == [2]
    assert ch.shed_total == 1
    assert ch.get_count == 1                    # sheds are not gets


def test_channel_try_put_counts_admit_shed_as_handled():
    env = Environment()
    ch = Channel(env, capacity=1, name="rx",
                 shed=ShedPolicy(reject_on_admit=True))

    def p(env):
        yield env.timeout(1.0)

    env.process(p(env))
    env.run()
    assert ch.try_put(work_item(deadline_at=0.5)) is True   # shed-absorbed
    assert len(ch) == 0 and ch.shed_total == 1
    assert ch.try_put(work_item(deadline_at=2.0)) is True   # enqueued
    assert len(ch) == 1


def test_unarmed_channel_never_sheds():
    env = Environment()
    ch = Channel(env, capacity=8, name="plain")

    def p(env):
        yield env.timeout(1.0)
        yield from ch.put(work_item(deadline_at=0.5))        # long expired
        item = yield from ch.get()
        return item

    proc = env.process(p(env))
    env.run()
    assert ch.shed_total == 0
    assert ch.get_count == 1


# ---------------------------------------------------------- expire_request
def test_expire_request_fails_done_event_with_deadline_exceeded():
    env = Environment()
    done = env.event()

    class Req:
        done_event = done

    item = work_item()
    item.request = Req()
    expire_request(item, where="rx")
    assert done.triggered
    assert not done.ok
    assert isinstance(done.value, DeadlineExceeded)
    assert "rx" in str(done.value)
    # DeadlineExceeded is a ConnectionError so closed-loop clients
    # reclaim the window slot like any drop.
    assert issubclass(DeadlineExceeded, ConnectionError)


def test_expire_request_tolerates_missing_event():
    expire_request(work_item(), where="rx")     # no request: no-op


# ------------------------------------------------------- supervisor arming
def test_arm_admission_applies_slack_margin():
    env = Environment()
    sup = Supervisor(env, SupervisionConfig(deadline_s=1.0,
                                            admission_margin_s=0.25))
    ch = Channel(env, capacity=8, name="rx")
    sup.arm_admission(ch)
    got = []

    def p(env):
        # 0.2s of slack left: below the 0.25s margin, shed at dequeue.
        yield from ch.put(work_item(deadline_at=env.now + 0.2, label=1))
        # 0.5s of slack: above the margin, delivered.
        yield from ch.put(work_item(deadline_at=env.now + 0.5, label=2))
        item = yield from ch.get()
        got.append(item.label)

    env.process(p(env))
    env.run()
    assert got == [2]
    assert ch.shed_total == 1


def test_arm_admission_noop_without_deadline():
    env = Environment()
    sup = Supervisor(env, SupervisionConfig(deadline_s=None))
    ch = Channel(env, capacity=8, name="rx")
    sup.arm_admission(ch)
    assert ch.shed is None
    assert not sup.sheds_deadlines


# ------------------------------------------------- dispatcher-boundary shed
def _dispatcher_rig():
    env = Environment()
    pool = MemManager(env, unit_size=1024, unit_count=4,
                      allocate_arena=False)
    solver_gpu = GpuDevice(env, DEFAULT_TESTBED, 0)

    class FakeSolver:
        gpu = solver_gpu

        def __init__(self):
            self.trans = QueuePair(env, capacity=2, name="fake.trans")
            self.trans.seed([DeviceBatch(device_addr=i,
                                         capacity_bytes=64_000, gpu_index=0)
                             for i in range(2)])

        @property
        def trans_queues(self):
            return self.trans

    return env, pool, FakeSolver()


def test_dispatcher_sheds_expired_items_pre_copy():
    env, pool, solver = _dispatcher_rig()
    disp = Dispatcher(env, DEFAULT_TESTBED, pool, [solver],
                      shed_deadlines=True)
    disp.start()
    got = []

    def produce(env):
        unit = yield from pool.get_item()
        unit.payload = [work_item(deadline_at=0.5, label=1),   # will expire
                        work_item(deadline_at=9.0, label=2)]
        unit.item_count = 2
        unit.used_bytes = 512
        yield env.timeout(1.0)                  # item 1 expires while queued
        yield from pool.full_batch_queue.put(unit)

    def consume(env):
        batch = yield from solver.trans_queues.full.get()
        got.append([it.label for it in batch.payload])

    env.process(produce(env))
    env.process(consume(env))
    env.run(until=2.0)
    assert got == [[2]]
    assert disp.items_shed.total == 1
    assert disp.batches_shed.total == 0


def test_dispatcher_recycles_fully_expired_batches():
    env, pool, solver = _dispatcher_rig()
    disp = Dispatcher(env, DEFAULT_TESTBED, pool, [solver],
                      shed_deadlines=True)
    disp.start()

    def produce(env):
        unit = yield from pool.get_item()
        unit.payload = [work_item(deadline_at=0.5, label=1)]
        unit.item_count = 1
        yield env.timeout(1.0)
        yield from pool.full_batch_queue.put(unit)

    env.process(produce(env))
    env.run(until=2.0)
    assert disp.batches_shed.total == 1
    assert disp.items_shed.total == 1
    assert disp.batches_dispatched.total == 0
    assert pool.conservation_ok()               # the unit went back free
    assert len(pool.free_batch_queue) == 4
