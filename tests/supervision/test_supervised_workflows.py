"""Supervision wired through the full workflows.

Covers the hard contract — a disabled supervisor is bit-identical to no
supervisor — plus end-to-end integrity under silent corruption, deadline
shedding under closed-loop serving, and conservation with quarantine +
shed + integrity paths all active at once.
"""

import pytest

from repro.faults import FaultPlan, RetryPolicy
from repro.supervision import SupervisionConfig
from repro.workflows import (InferenceConfig, TrainingConfig, run_inference,
                             run_training)

QUICK_TRAIN = dict(model="alexnet", backend="dlbooster", num_gpus=1,
                   warmup_s=0.5, measure_s=1.5)
QUICK_INFER = dict(model="googlenet", backend="dlbooster", batch_size=4,
                   warmup_s=0.5, measure_s=1.5)


# ----------------------------------------------------- the identity contract
@pytest.mark.timeout(120)
def test_disabled_supervisor_is_bit_identical_to_none():
    baseline = run_training(TrainingConfig(**QUICK_TRAIN))
    disabled = run_training(TrainingConfig(
        supervision=SupervisionConfig(enabled=False), **QUICK_TRAIN))
    assert disabled.throughput == baseline.throughput
    assert disabled.cpu_cores == baseline.cpu_cores
    assert disabled.cpu_breakdown == baseline.cpu_breakdown
    assert disabled.extras["fault_totals"] == baseline.extras["fault_totals"]
    assert "health" not in disabled.extras


@pytest.mark.timeout(120)
def test_observing_supervisor_does_not_perturb_the_pipeline():
    """Watchdog + heartbeats only observe: with no deadline and no
    integrity armed, a supervised run produces the same numbers."""
    baseline = run_training(TrainingConfig(**QUICK_TRAIN))
    observed = run_training(TrainingConfig(
        supervision=SupervisionConfig(), **QUICK_TRAIN))
    assert observed.throughput == baseline.throughput
    assert observed.cpu_cores == baseline.cpu_cores
    health = observed.extras["health"]
    assert health["watchdog_scans"] > 0
    assert health["stalls_detected"] == 0
    assert observed.extras["stall_reports"] == []


@pytest.mark.timeout(120)
def test_supervision_rejected_on_non_dlbooster_backends():
    with pytest.raises(ValueError, match="supervision"):
        run_training(TrainingConfig(
            model="alexnet", backend="lmdb",
            supervision=SupervisionConfig()))
    with pytest.raises(ValueError, match="supervision"):
        run_inference(InferenceConfig(
            model="googlenet", backend="nvjpeg",
            supervision=SupervisionConfig()))


# -------------------------------------------------------- integrity, e2e
@pytest.mark.timeout(180)
def test_silent_corruption_quarantined_only_when_supervised():
    plan = FaultPlan.of(FaultPlan.payload_bitflip(0.05), name="bitflip")
    unsupervised = run_training(TrainingConfig(
        fault_plan=plan, retry=RetryPolicy(max_attempts=2), **QUICK_TRAIN))
    supervised = run_training(TrainingConfig(
        fault_plan=plan, retry=RetryPolicy(max_attempts=2),
        supervision=SupervisionConfig(integrity=True), **QUICK_TRAIN))

    # Without integrity the decoder reports ok-FINISH over garbage:
    # nothing is caught.
    assert unsupervised.extras["fault_totals"]["integrity_rejected"] == 0
    assert unsupervised.extras["item_conservation"] is True

    # With integrity every flipped payload is caught and quarantined.
    totals = supervised.extras["fault_totals"]
    assert totals["integrity_rejected"] > 0
    assert supervised.extras["quarantine_reasons"].get(
        "integrity-mismatch", 0) == totals["integrity_rejected"]
    health = supervised.extras["health"]
    assert health["integrity_stamped"] > 0
    # health is a measurement-window delta; compare against the same
    # window of the resilience metrics, not lifetime totals.
    assert health["integrity_mismatches"] == \
        supervised.extras["resilience"]["integrity_rejected"]
    assert supervised.extras["item_conservation"] is True
    assert supervised.extras["pool_conservation"] is True


# -------------------------------------- conservation with every path active
@pytest.mark.timeout(180)
def test_conservation_with_quarantine_shed_and_integrity_paths():
    """Satellite: MemManager + item conservation after a chaos run that
    exercises quarantine (decoder-visible corruption), integrity
    rejection (silent corruption) and retries at once."""
    plan = FaultPlan.of(FaultPlan.payload_corrupt(0.02),
                        FaultPlan.payload_bitflip(0.02),
                        FaultPlan.cmd_drop(0.01),
                        name="combined-chaos")
    res = run_training(TrainingConfig(
        fault_plan=plan, retry=RetryPolicy(max_attempts=3),
        supervision=SupervisionConfig(integrity=True), **QUICK_TRAIN))
    totals = res.extras["fault_totals"]
    assert totals["quarantined"] > 0
    assert totals["integrity_rejected"] > 0
    assert totals["retries"] > 0
    assert res.extras["item_conservation"] is True
    assert res.extras["pool_conservation"] is True


# ------------------------------------------------------------ serving path
@pytest.mark.timeout(180)
def test_inference_deadline_shedding_closed_loop():
    """A deadline tighter than the saturated closed-loop latency sheds
    work; clients see DeadlineExceeded and reissue; the backend stays
    conserved."""
    baseline = run_inference(InferenceConfig(**QUICK_INFER))
    tight = run_inference(InferenceConfig(
        supervision=SupervisionConfig(
            deadline_s=baseline.latency_p50_ms / 1e3 * 0.8),
        **QUICK_INFER))
    health = tight.extras["health"]
    shed_total = (health["rx_shed"] + health["reader_shed_expired"]
                  + health["dispatcher_items_shed"])
    assert shed_total > 0
    assert health["client_expired"] > 0
    assert tight.throughput > 0                 # not livelocked

    relaxed = run_inference(InferenceConfig(
        supervision=SupervisionConfig(deadline_s=1.0), **QUICK_INFER))
    health = relaxed.extras["health"]
    assert health["rx_shed"] == 0
    assert health["reader_shed_expired"] == 0
    assert health["dispatcher_items_shed"] == 0
    assert relaxed.throughput == pytest.approx(baseline.throughput,
                                               rel=0.02)
