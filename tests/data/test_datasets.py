"""Tests for the synthetic corpora generators."""

import numpy as np
import pytest

from repro.data import (functional_jpeg_manifest, imagenet_like_manifest,
                        jpeg_size_sampler, mnist_like_manifest,
                        synthetic_photo)
from repro.jpeg import decode
from repro.sim import SeedBank


def test_imagenet_manifest_shape():
    m = imagenet_like_manifest(500, SeedBank(0))
    assert len(m) == 500
    entry = m[0]
    assert (entry.height, entry.width, entry.channels) == (375, 500, 3)
    assert 0 <= entry.label < 1000


def test_imagenet_sizes_lognormal_around_mean():
    m = imagenet_like_manifest(3000, SeedBank(1))
    sizes = np.array([e.size_bytes for e in m])
    assert 90_000 < sizes.mean() < 140_000
    assert sizes.min() >= 2048
    assert sizes.std() > 20_000  # real variance, not constant


def test_imagenet_manifest_deterministic():
    a = [e.size_bytes for e in imagenet_like_manifest(100, SeedBank(7))]
    b = [e.size_bytes for e in imagenet_like_manifest(100, SeedBank(7))]
    assert a == b


def test_mnist_manifest_shape():
    m = mnist_like_manifest(1000, SeedBank(0))
    assert len(m) == 1000
    e = m[0]
    assert (e.height, e.width, e.channels) == (28, 28, 1)
    assert 0 <= e.label < 10


def test_manifest_validation():
    with pytest.raises(ValueError):
        imagenet_like_manifest(0)
    with pytest.raises(ValueError):
        mnist_like_manifest(0)
    with pytest.raises(ValueError):
        functional_jpeg_manifest(0, 8, 8)


def test_size_sampler_positive_and_spread():
    rng = SeedBank(3).stream("x")
    sampler = jpeg_size_sampler(mean_bytes=50_000)
    samples = [sampler(rng) for _ in range(500)]
    assert all(s >= 2048 for s in samples)
    assert 30_000 < np.mean(samples) < 80_000


def test_synthetic_photo_properties():
    rng = np.random.default_rng(0)
    img = synthetic_photo(rng, 32, 48)
    assert img.shape == (32, 48, 3)
    assert img.dtype == np.uint8
    gray = synthetic_photo(rng, 16, 16, gray=True)
    assert gray.shape == (16, 16)


def test_synthetic_photo_compresses_like_a_photo():
    from repro.jpeg import encode
    rng = np.random.default_rng(1)
    img = synthetic_photo(rng, 64, 64)
    noise = rng.integers(0, 256, (64, 64, 3), dtype=np.uint8)
    assert len(encode(img, 75)) < 0.7 * len(encode(noise, 75))


def test_functional_manifest_carries_decodable_jpegs():
    m = functional_jpeg_manifest(5, 40, 56, SeedBank(0))
    for entry in m:
        assert entry.payload is not None
        assert entry.size_bytes == len(entry.payload)
        img = decode(entry.payload)
        assert img.shape == (40, 56, 3)


def test_functional_manifest_gray():
    m = functional_jpeg_manifest(2, 28, 28, SeedBank(0), gray=True)
    img = decode(m[0].payload)
    assert img.shape == (28, 28)
    assert m[0].channels == 1
