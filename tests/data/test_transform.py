"""Tests for the Caffe-style augmentation transforms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (IMAGENET_MEAN, TransformSpec, apply_transform,
                        mean_subtract, random_crop, random_mirror, to_chw)


def img(h=16, w=20, c=3, seed=0):
    rng = np.random.default_rng(seed)
    shape = (h, w, c) if c else (h, w)
    return rng.integers(0, 256, shape, dtype=np.uint8)


def test_random_crop_shape_and_content():
    rng = np.random.default_rng(0)
    x = img(32, 32)
    out = random_crop(x, 8, 8, rng)
    assert out.shape == (8, 8, 3)
    # The crop is a contiguous window of the source.
    found = any(
        np.array_equal(x[y:y + 8, xx:xx + 8], out)
        for y in range(25) for xx in range(25))
    assert found


def test_random_crop_full_size_identity():
    rng = np.random.default_rng(0)
    x = img(8, 8)
    np.testing.assert_array_equal(random_crop(x, 8, 8, rng), x)


def test_random_crop_validation():
    with pytest.raises(ValueError):
        random_crop(img(8, 8), 9, 8, np.random.default_rng(0))


def test_random_crop_deterministic_given_rng():
    a = random_crop(img(32, 32), 8, 8, np.random.default_rng(7))
    b = random_crop(img(32, 32), 8, 8, np.random.default_rng(7))
    np.testing.assert_array_equal(a, b)


def test_random_mirror_either_identity_or_flip():
    x = img()
    rng = np.random.default_rng(1)
    outs = {random_mirror(x, rng).tobytes() for _ in range(20)}
    assert outs == {x.tobytes(), x[:, ::-1].tobytes()}


def test_mean_subtract_color_default():
    x = np.full((2, 2, 3), 200, dtype=np.uint8)
    out = mean_subtract(x)
    np.testing.assert_allclose(out[0, 0], 200 - IMAGENET_MEAN)


def test_mean_subtract_custom_and_validation():
    x = img(4, 4)
    out = mean_subtract(x, np.array([1.0, 2.0, 3.0]))
    np.testing.assert_allclose(out[..., 2], x[..., 2] - 3.0)
    with pytest.raises(ValueError):
        mean_subtract(x, np.array([1.0, 2.0]))


def test_to_chw_layouts():
    x = img(4, 6)
    out = to_chw(x)
    assert out.shape == (3, 4, 6)
    np.testing.assert_array_equal(out[1], x[..., 1])
    gray = img(4, 6, c=0)
    assert to_chw(gray).shape == (1, 4, 6)
    with pytest.raises(ValueError):
        to_chw(np.zeros((2, 2, 2, 2)))


def test_apply_transform_train_pipeline():
    spec = TransformSpec(crop_h=8, crop_w=8, mirror=True, scale=1 / 255.0)
    out = apply_transform(img(16, 16), spec, np.random.default_rng(0))
    assert out.shape == (3, 8, 8)
    assert out.dtype == np.float64
    assert np.abs(out).max() <= (255 + IMAGENET_MEAN.max()) / 255.0


def test_apply_transform_eval_is_deterministic():
    spec = TransformSpec(crop_h=8, crop_w=8, train=False)
    a = apply_transform(img(16, 16), spec)
    b = apply_transform(img(16, 16), spec)
    np.testing.assert_array_equal(a, b)


def test_apply_transform_train_needs_rng():
    spec = TransformSpec(crop_h=8, crop_w=8)
    with pytest.raises(ValueError):
        apply_transform(img(16, 16), spec)


@given(st.integers(1, 12), st.integers(1, 12), st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_apply_transform_shape_property(ch, cw, seed):
    x = img(12, 12, seed=seed)
    spec = TransformSpec(crop_h=ch, crop_w=cw)
    out = apply_transform(x, spec, np.random.default_rng(seed))
    assert out.shape == (3, ch, cw)
