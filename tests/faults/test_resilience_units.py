"""Unit tests for RetryPolicy, QuarantineLog and CircuitBreaker."""

import pytest

from repro.faults import CircuitBreaker, QuarantineLog, RetryPolicy
from repro.sim import Environment


def advance(env, t):
    def _p(env):
        yield env.timeout(t)
    proc = env.process(_p(env))
    env.run(until=proc)


# ------------------------------------------------------------ RetryPolicy
@pytest.mark.parametrize("kwargs", [
    {"deadline_s": 0.0}, {"deadline_s": -1.0}, {"deadline_safety": 0.0},
    {"backoff_base": 0.5}, {"max_attempts": 0},
])
def test_retry_policy_validation(kwargs):
    with pytest.raises(ValueError):
        RetryPolicy(**kwargs)


def test_retry_policy_derived_deadline_scales_with_estimate():
    pol = RetryPolicy(deadline_safety=8.0, backoff_base=2.0)
    assert pol.deadline_for(0.01, 0) == pytest.approx(0.08)
    assert pol.deadline_for(0.01, 2) == pytest.approx(0.32)  # 8x * 2^2
    # A bigger cmd gets proportionately more patience.
    assert pol.deadline_for(0.02, 0) == 2 * pol.deadline_for(0.01, 0)


def test_retry_policy_explicit_deadline_ignores_estimate():
    pol = RetryPolicy(deadline_s=0.05, backoff_base=3.0)
    assert pol.deadline_for(123.0, 0) == pytest.approx(0.05)
    assert pol.deadline_for(123.0, 1) == pytest.approx(0.15)


# ---------------------------------------------------------- QuarantineLog
def test_quarantine_counts_and_reasons():
    env = Environment()
    log = QuarantineLog(env, keep=2)
    log.add("a", "poison")
    log.add("b", "poison")
    log.add("c", "deadline-exhausted")   # beyond keep: counted, not kept
    assert log.total == 3
    assert len(log.entries) == 2
    assert log.reasons() == {"poison": 2}


# --------------------------------------------------------- CircuitBreaker
@pytest.mark.parametrize("kwargs", [
    {"failure_threshold": 0}, {"probe_interval_s": 0.0},
    {"probe_successes": 0},
])
def test_breaker_validation(kwargs):
    with pytest.raises(ValueError):
        CircuitBreaker(Environment(), **kwargs)


def test_breaker_opens_after_consecutive_failures_only():
    env = Environment()
    brk = CircuitBreaker(env, failure_threshold=3)
    brk.record_failure()
    brk.record_failure()
    brk.record_success()          # resets the consecutive count
    brk.record_failure()
    brk.record_failure()
    assert not brk.is_open
    brk.record_failure()
    assert brk.is_open
    assert int(brk.failovers.total) == 1
    # Further failures while open don't count extra failovers.
    brk.record_failure()
    assert int(brk.failovers.total) == 1


def test_breaker_probe_rate_limiting():
    env = Environment()
    brk = CircuitBreaker(env, failure_threshold=1, probe_interval_s=0.5)
    assert brk.take_probe()       # closed: everything passes
    brk.record_failure()
    assert brk.is_open
    assert brk.take_probe()       # first probe of the window
    assert not brk.take_probe()   # same instant: rejected
    advance(env, 0.5)
    assert brk.take_probe()


def test_breaker_closes_after_probe_successes():
    env = Environment()
    brk = CircuitBreaker(env, failure_threshold=1, probe_successes=2)
    brk.record_failure()
    brk.record_success()
    assert brk.is_open            # one good probe isn't enough
    brk.record_success()
    assert not brk.is_open
    assert int(brk.recoveries.total) == 1
    assert [s for _, s in brk.transitions] == ["open", "closed"]


def test_breaker_failed_probe_resets_progress():
    env = Environment()
    brk = CircuitBreaker(env, failure_threshold=1, probe_successes=2)
    brk.record_failure()
    brk.record_success()
    brk.record_failure()          # probe failed: start over
    brk.record_success()
    assert brk.is_open
    brk.record_success()
    assert not brk.is_open
