"""Determinism regression: (seed, plan) replays bit-identically.

The whole point of routing every stochastic fault decision through
named SeedBank streams is that a chaos run can be replayed exactly —
same metrics, same fault sites, same Chrome trace.  These tests pin
that property end-to-end through the training workflow.
"""

import pytest

from repro.faults import FaultPlan, RetryPolicy
from repro.sim import Tracer
from repro.workflows import TrainingConfig, run_training

PLAN = FaultPlan.of(FaultPlan.cmd_drop(0.02),
                    FaultPlan.payload_corrupt(0.01), name="determinism")


def chaos_run(seed=0, trace=False):
    cfg = TrainingConfig(model="alexnet", backend="dlbooster",
                         dataset_size=1200, warmup_s=0.1, measure_s=0.3,
                         seed=seed, fault_plan=PLAN,
                         retry=RetryPolicy(max_attempts=3))
    return run_training(cfg, tracer_factory=Tracer if trace else None)


def strip(extras):
    return {k: v for k, v in extras.items() if k != "tracer"}


def test_same_seed_and_plan_replays_identically():
    a, b = chaos_run(seed=0), chaos_run(seed=0)
    assert a.throughput == b.throughput
    assert a.extras["fault_totals"] == b.extras["fault_totals"]
    assert a.extras["resilience"] == b.extras["resilience"]
    assert a.extras["quarantine_reasons"] == b.extras["quarantine_reasons"]
    assert strip(a.extras) == strip(b.extras)


def test_same_seed_produces_identical_chrome_trace():
    a, b = chaos_run(seed=0, trace=True), chaos_run(seed=0, trace=True)
    assert a.extras["tracer"].to_chrome_trace() \
        == b.extras["tracer"].to_chrome_trace()


def test_different_seed_shifts_fault_decisions():
    a, b = chaos_run(seed=0, trace=True), chaos_run(seed=1, trace=True)
    # Different workload + fault streams: the runs must not be clones.
    assert a.extras["tracer"].to_chrome_trace() \
        != b.extras["tracer"].to_chrome_trace()


def test_no_plan_run_is_deterministic_and_fault_free():
    cfg = TrainingConfig(model="alexnet", backend="dlbooster",
                         dataset_size=1200, warmup_s=0.1, measure_s=0.3)
    a, b = run_training(cfg), run_training(cfg)
    assert a.throughput == b.throughput
    assert all(v == 0 for v in a.extras["fault_totals"].values())
    assert a.extras["item_conservation"]
