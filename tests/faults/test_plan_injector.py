"""Tests for FaultSpec/FaultPlan validation and FaultInjector draws."""

import pytest

from repro.faults import FAULT_KINDS, FaultInjector, FaultPlan, FaultSpec
from repro.sim import Environment, SeedBank


def advance(env, t):
    def _p(env):
        yield env.timeout(t)
    proc = env.process(_p(env))
    env.run(until=proc)


# ------------------------------------------------------------------ plan
def test_spec_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec("gamma_ray")


@pytest.mark.parametrize("kwargs", [
    {"rate": -0.1}, {"rate": 1.5},
    {"start": -1.0}, {"start": 2.0, "stop": 1.0},
    {"magnitude": -1.0}, {"limit": 0},
])
def test_spec_rejects_bad_fields(kwargs):
    with pytest.raises(ValueError):
        FaultSpec("cmd_drop", **kwargs)


def test_spec_site_matching_and_window():
    spec = FaultSpec("cmd_drop", site="fpga0", rate=0.5, start=1.0, stop=2.0)
    assert spec.matches("fpga0") and not spec.matches("fpga1")
    assert FaultSpec("cmd_drop", rate=0.5).matches("anything")
    assert not spec.active(0.5)
    assert spec.active(1.0) and spec.active(1.999)
    assert not spec.active(2.0)


def test_plan_container_protocol():
    plan = FaultPlan.of(FaultPlan.cmd_drop(0.01),
                        FaultPlan.nvme_error(0.02), name="p")
    assert len(plan) == 2 and bool(plan)
    assert not FaultPlan()
    assert [s.kind for s in plan] == ["cmd_drop", "nvme_error"]
    assert plan.by_kind("cmd_drop")[0].rate == 0.01
    wider = plan.with_spec(FaultPlan.nic_loss(0.1, burst_packets=8))
    assert len(wider) == 3
    assert wider.by_kind("nic_loss")[0].magnitude == 8.0


def test_constructors_cover_every_kind():
    specs = (FaultPlan.cmd_drop(0.1), FaultPlan.finish_stall(0.1, 1e-3),
             FaultPlan.payload_corrupt(0.1), FaultPlan.payload_truncate(0.1),
             FaultPlan.payload_bitflip(0.1),
             FaultPlan.decoder_crash(0.0, 1.0), FaultPlan.nvme_error(0.1),
             FaultPlan.nvme_latency(0.1, 1e-3), FaultPlan.nic_loss(0.1),
             FaultPlan.host_crash(0.1, "host00"),
             FaultPlan.host_hang(0.0, 1.0, "host00"),
             FaultPlan.host_slow(0.0, 1.0, extra_s=0.01, site="host00"),
             FaultPlan.link_partition(0.0, 1.0, "host00"),
             FaultPlan.link_flap(0.0, 1.0, "host00"),
             FaultPlan.zone_outage(0.1, "az0"))
    assert {s.kind for s in specs} == set(FAULT_KINDS)


# -------------------------------------------------------------- injector
def test_injector_replays_bit_identically():
    decisions = []
    for _ in range(2):
        env = Environment()
        inj = FaultInjector(env, FaultPlan.of(FaultPlan.cmd_drop(0.3)),
                            seeds=SeedBank(42))
        decisions.append([inj.drop_cmd("fpga0") for _ in range(200)])
    assert decisions[0] == decisions[1]
    assert 20 < sum(decisions[0]) < 100  # ~60 expected


def test_arming_second_kind_never_shifts_first_kinds_stream():
    def drops(plan):
        env = Environment()
        inj = FaultInjector(env, plan, seeds=SeedBank(7))
        out = []
        for _ in range(100):
            out.append(inj.drop_cmd("fpga0"))
            inj.nvme_read_error("nvme")   # interleaved opportunities
        return out

    only_drop = FaultPlan.of(FaultPlan.cmd_drop(0.25))
    both = FaultPlan.of(FaultPlan.cmd_drop(0.25), FaultPlan.nvme_error(0.5))
    assert drops(only_drop) == drops(both)


def test_limit_caps_total_injections():
    env = Environment()
    inj = FaultInjector(env, FaultPlan.of(
        FaultPlan.cmd_drop(1.0, limit=3)), seeds=SeedBank(0))
    fired = sum(inj.drop_cmd("fpga0") for _ in range(10))
    assert fired == 3
    assert inj.count("cmd_drop") == 3
    assert int(inj.injected.total) == 3


def test_window_gates_decoder_crash():
    env = Environment()
    inj = FaultInjector(env, FaultPlan.of(
        FaultPlan.decoder_crash(1.0, 2.0)), seeds=SeedBank(0))
    assert not inj.decoder_down("fpga0")      # t=0: before the window
    advance(env, 1.5)
    assert inj.decoder_down("fpga0")          # inside
    advance(env, 1.0)                         # t=2.5: after
    assert not inj.decoder_down("fpga0")


def test_site_scoped_spec_ignores_other_sites():
    env = Environment()
    inj = FaultInjector(env, FaultPlan.of(
        FaultPlan.cmd_drop(1.0, site="fpga1")), seeds=SeedBank(0))
    assert not inj.drop_cmd("fpga0")
    assert inj.drop_cmd("fpga1")


class _Cmd:
    def __init__(self, payload):
        self.payload = payload
        self.poisoned = False


def test_poison_truncates_payload():
    env = Environment()
    inj = FaultInjector(env, FaultPlan.of(
        FaultPlan.payload_truncate(1.0)), seeds=SeedBank(0))
    cmd = _Cmd(bytes(range(200)) * 10)
    assert inj.maybe_poison_cmd(cmd)
    assert cmd.poisoned
    assert len(cmd.payload) < 2000


def test_poison_corrupts_scan_bytes_in_place():
    env = Environment()
    inj = FaultInjector(env, FaultPlan.of(
        FaultPlan.payload_corrupt(1.0)), seeds=SeedBank(0))
    original = bytes(range(256)) * 4
    cmd = _Cmd(original)
    assert inj.maybe_poison_cmd(cmd)
    assert cmd.poisoned
    assert len(cmd.payload) == len(original)
    assert cmd.payload != original
    # Header half untouched: corruption lands in the entropy-coded scan.
    assert cmd.payload[:len(original) // 2] == original[:len(original) // 2]


def test_empty_plan_injector_is_inert():
    env = Environment()
    inj = FaultInjector(env, FaultPlan(), seeds=SeedBank(0))
    assert not inj.drop_cmd("fpga0")
    assert inj.finish_stall_s("fpga0") == 0.0
    assert inj.nic_loss_burst("link") == 0
    assert not inj.maybe_poison_cmd(_Cmd(b"x" * 100))
    assert int(inj.injected.total) == 0
