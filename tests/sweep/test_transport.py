"""The packed result transport must be invisible.

Workers ship reservoirs and metrics snapshots as packed buffers
(repro.sweep.transport); the contract is that nothing observable
changes: pack/unpack round-trips a LatencyRecorder bit-exactly, the
vectorized crc32 matches zlib's, and merge_packed over any set of
packed reservoirs equals folding the live recorders pairwise through
LatencyRecorder.merge() — including at the cap, where the bottom-k
selection must pick the exact same survivors.
"""

import copy
import math
import struct
import zlib
from random import Random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.monitor import LatencyRecorder
from repro.sweep.transport import (PackedRecorder, crc32_rows,
                                   decode_result, encode_result,
                                   merge_packed, pack_metrics,
                                   pack_recorder, unpack_metrics,
                                   unpack_recorder)


def build(name, values, cap, tid_style="mixed"):
    """A recorder with every trace_id shape the wire must preserve:
    None, ordinary ids, and -1 (which collides with the packed None
    sentinel and is disambiguated by the presence flags)."""
    rec = LatencyRecorder(name=name, max_samples=cap)
    for i, v in enumerate(values):
        if tid_style == "none":
            tid = None
        elif tid_style == "all":
            tid = i
        else:
            tid = (None, i, -1)[i % 3]
        rec.record(v, trace_id=tid)
    return rec


def full_state(rec):
    rec._flush()
    return (rec.name, rec._max_samples, rec._count, rec._sum,
            tuple(rec._merged_sums), rec._min, rec._max,
            tuple(rec._sorted))


latencies = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    min_size=0, max_size=60)


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(values=latencies, cap=st.integers(min_value=1, max_value=40),
           tid_style=st.sampled_from(["none", "all", "mixed"]))
    def test_pack_unpack_is_bit_exact(self, values, cap, tid_style):
        rec = build("w0", values, cap, tid_style)
        back = unpack_recorder(pack_recorder(rec))
        assert full_state(back) == full_state(rec)
        # Same stats, same exemplar tuples, same content digest.
        assert back.samples == rec.samples
        assert back.exemplars() == rec.exemplars()
        if rec.count:
            assert back.mean() == rec.mean()
            assert back.min() == rec.min() and back.max() == rec.max()
        # RNG stream position matches a fresh recorder of the same name
        # (pack/unpack consume no draws), so post-transport record()
        # behaves exactly like it would have in the worker.
        assert back._rng.getstate() == \
            Random(zlib.crc32(rec.name.encode()) or 1).getstate()

    def test_round_trip_preserves_merge_bookkeeping(self):
        rec = LatencyRecorder(name="m", max_samples=8)
        rec.merge(build("a", [1.0, 2.0], cap=8))
        rec.merge(build("b", [3.0] * 20, cap=8))
        back = unpack_recorder(pack_recorder(rec))
        assert back._merged_sums == rec._merged_sums
        assert back.total() == rec.total()      # fsum over same terms

    def test_minus_one_trace_id_survives(self):
        rec = LatencyRecorder(name="m", max_samples=4)
        rec.record(1.0, trace_id=-1)
        rec.record(2.0, trace_id=None)
        back = unpack_recorder(pack_recorder(rec))
        assert back._sorted == [(1.0, 1, -1), (2.0, 2, None)]

    def test_packed_is_buffers_not_objects(self):
        packed = pack_recorder(build("w0", [1.0, 2.0, 3.0], cap=8))
        assert isinstance(packed, PackedRecorder)
        assert isinstance(packed.entries, bytes)
        assert len(packed.entries) == 3 * 24
        assert packed.sample_count == 3
        assert len(packed.tid_present) == 3


class TestVectorizedCrc32:
    @settings(max_examples=40, deadline=None)
    @given(rows=st.lists(st.binary(min_size=24, max_size=24),
                         min_size=1, max_size=50))
    def test_matches_zlib_rowwise(self, rows):
        got = crc32_rows(b"".join(rows))
        assert [int(c) for c in got] == [zlib.crc32(r) for r in rows]

    def test_rejects_ragged_buffer(self):
        with pytest.raises(ValueError):
            crc32_rows(b"\x00" * 25)

    def test_matches_merge_priority_digest(self):
        """The digest crc32_rows computes is the same one
        LatencyRecorder._merge_priority hashes per entry."""
        entry = (0.125, 7, None)
        row = struct.pack("!dqq", entry[0], entry[1], -1)
        assert int(crc32_rows(row)[0]) == \
            LatencyRecorder._merge_priority(entry)[0]


class TestMergeEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(streams=st.lists(latencies, min_size=1, max_size=4),
           cap=st.integers(min_value=1, max_value=40))
    def test_merge_packed_equals_pairwise_merge(self, streams, cap):
        """Vectorized bottom-k over the union == pairwise merge() folds,
        bit for bit — under-cap unions and over-cap selections alike."""
        sources = [build(f"w{i}", vals, cap)
                   for i, vals in enumerate(streams)]
        pairwise = LatencyRecorder(name="rollup", max_samples=cap)
        for src in sources:
            pairwise.merge(copy.deepcopy(src))
        vectorized = merge_packed(
            "rollup", [pack_recorder(s) for s in sources],
            max_samples=cap)
        assert full_state(vectorized) == full_state(pairwise)

    def test_empty_pack_list(self):
        rec = merge_packed("rollup", [], max_samples=16)
        assert rec.count == 0 and rec.sample_count == 0
        assert math.isnan(rec.mean())

    def test_cap_defaults_to_first_pack(self):
        packs = [pack_recorder(build("w0", [1.0, 2.0], cap=7))]
        assert merge_packed("rollup", packs)._max_samples == 7


class TestMetricsAndResultCodec:
    def test_metrics_round_trip(self):
        snap = {"schema": "repro-metrics/1",
                "counters": {"a": 1}, "nested": [{"x": None}]}
        assert unpack_metrics(pack_metrics(snap)) == snap
        assert pack_metrics(None) is None and unpack_metrics(None) is None

    def test_encode_decode_result(self):
        rec = build("lat", [1.0, 2.0], cap=8)
        result = {"values": {"tp": 3.5},
                  "metrics": {"schema": "repro-metrics/1"},
                  "recorders": {"lat": rec}}
        wire = encode_result(result)
        assert "recorders" not in wire and "metrics" not in wire
        assert isinstance(wire["metrics_z"], bytes)
        assert isinstance(wire["recorders_packed"]["lat"],
                          PackedRecorder)
        back = decode_result(wire)
        assert back["values"] == {"tp": 3.5}
        assert back["metrics"] == {"schema": "repro-metrics/1"}
        # Reservoirs deliberately stay packed for the vectorized rollup.
        packed = back["recorders"]["lat"]
        assert isinstance(packed, PackedRecorder)
        assert full_state(unpack_recorder(packed)) == full_state(rec)

    def test_encode_result_without_recorders_or_metrics(self):
        wire = encode_result({"values": {"v": 1}})
        assert decode_result(wire) == {"values": {"v": 1}}
