"""Warm worker pools must never change what a sweep computes.

The identity contract from tests/sweep/test_runner.py is re-asserted
here against every pool shape: fresh pool, reused shared pool (twice,
to catch state leaking between calls), an explicitly provided pool,
and both start methods.  Plus the pool mechanics themselves: warmup
idempotence, calibration-verdict pinning, chunking, lifecycle.
"""

import pytest

from repro.sweep import (WorkerPool, fig7_points, run_sweep, shared_pool,
                         shutdown_shared_pools, warm_process)
from repro.sweep.pool import effective_cores, resolve_start_method

QUICK = {"warmup_s": 0.2, "measure_s": 0.4}


def _points():
    return fig7_points(models=("googlenet",), backends=("cpu-online",),
                       batches=(1,), seeds=(0, 1), **QUICK)


@pytest.fixture(scope="module")
def serial_rollup():
    return run_sweep(_points(), parallel=1).rollup_json()


class TestPoolIdentity:
    def test_fresh_pool_matches_serial(self, serial_rollup):
        par = run_sweep(_points(), parallel=2)
        assert par.rollup_json() == serial_rollup

    def test_reused_shared_pool_matches_serial_twice(self, serial_rollup):
        """The shared pool survives across calls, returns the same
        object, and neither call's rollup drifts from serial."""
        try:
            first = shared_pool(2)
            r1 = run_sweep(_points(), parallel=2, reuse_pool=True)
            assert shared_pool(2) is first
            r2 = run_sweep(_points(), parallel=2, reuse_pool=True)
            assert r1.rollup_json() == serial_rollup
            assert r2.rollup_json() == serial_rollup
            assert not first.closed
        finally:
            shutdown_shared_pools()

    def test_caller_provided_pool_matches_serial(self, serial_rollup):
        with WorkerPool(2) as pool:
            out = run_sweep(_points(), parallel=2, pool=pool)
            assert out.rollup_json() == serial_rollup
            assert not pool.closed      # caller's pool is not closed
        assert pool.closed

    def test_spawn_pool_matches_serial(self, serial_rollup):
        """Spawn workers inherit nothing from the parent — the warmup
        runs in the initializer instead — yet the rollup is still byte
        identical."""
        out = run_sweep(_points(), parallel=2, start_method="spawn")
        assert out.rollup_json() == serial_rollup


def _whoami(_task):
    """Pool task: report this worker's pinned calibration verdict."""
    import os

    from repro.sim.core import scheduler_calibration
    return os.getpid(), scheduler_calibration()


class TestPoolMechanics:
    def test_processes_must_be_positive(self):
        with pytest.raises(ValueError):
            WorkerPool(0)

    def test_run_after_close_raises(self):
        pool = WorkerPool(1)
        pool.close()
        pool.close()        # idempotent
        with pytest.raises(RuntimeError):
            pool.run(_whoami, [1])

    def test_workers_pin_parent_calibration_verdict(self):
        from repro.sim.core import scheduler_calibration
        parent = scheduler_calibration()
        with WorkerPool(2) as pool:
            replies = list(pool.run(_whoami, list(range(8))))
        assert all(verdict == parent for _, verdict in replies)

    def test_chunksize_targets_four_chunks_per_worker(self):
        pool = WorkerPool.__new__(WorkerPool)   # no real processes
        pool.processes = 2
        assert max(1, 3 // (2 * 4)) == 1        # short sweeps: chunk 1
        assert max(1, 100 // (2 * 4)) == 12     # long sweeps batch IPC

    def test_resolve_start_method(self):
        assert resolve_start_method("spawn") == "spawn"
        assert resolve_start_method() in ("fork", "spawn")

    def test_effective_cores_positive(self):
        assert effective_cores() >= 1

    def test_warm_process_idempotent_and_corpus_memoized(self):
        from repro.data.datasets import default_functional_corpus
        warm_process()
        corpus = default_functional_corpus()
        warm_process()
        assert default_functional_corpus() is corpus
        assert len(corpus) == 8

    def test_shared_pool_reopened_after_shutdown(self):
        try:
            first = shared_pool(1)
            shutdown_shared_pools()
            assert first.closed
            second = shared_pool(1)
            assert second is not first and not second.closed
        finally:
            shutdown_shared_pools()
