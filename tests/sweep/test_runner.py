"""The sweep runner's identity contract and plumbing.

The headline guarantee: ``run_sweep(points, parallel=N).rollup_json()``
is byte-identical to the serial run for any N — results are collected
by point index and reservoirs merge commutatively, so OS scheduling
can't leak into the document.  Wall-clock lives only in the separate
perf payload.
"""

import json

import pytest

from repro.sim.monitor import LatencyRecorder
from repro.sweep import (SCHEMA, SweepPoint, canonical_json, fig7_points,
                         run_sweep)
from repro.sweep.runner import SweepOutcome

QUICK = {"warmup_s": 0.2, "measure_s": 0.5}


def _points(n_seeds=2, telemetry=True):
    return fig7_points(models=("googlenet",), backends=("dlbooster",),
                       batches=(1, 4), seeds=tuple(range(n_seeds)),
                       telemetry=telemetry, **QUICK)


class TestValidation:
    def test_parallel_must_be_positive(self):
        with pytest.raises(ValueError):
            run_sweep([SweepPoint(runner="fig7_infer")], parallel=0)

    def test_unknown_runner_named_in_error(self):
        with pytest.raises(ValueError, match="no_such_runner"):
            run_sweep([SweepPoint(runner="no_such_runner")])


class TestSerialParallelIdentity:
    def test_rollup_byte_identical(self):
        pts = _points()
        serial = run_sweep(pts, parallel=1)
        par = run_sweep(pts, parallel=2)
        assert serial.rollup_json() == par.rollup_json()

    def test_results_collected_in_point_order(self):
        pts = _points()
        outcome = run_sweep(pts, parallel=2)
        assert len(outcome.results) == len(pts)
        for point, res in zip(pts, outcome.results):
            (model, backend, bs, _tp) = res["rows"][0]
            assert point.label.startswith(f"{model}/{backend}/bs{bs}")

    def test_worker_events_folded_into_parent_tally(self):
        from repro.sim.core import total_events_processed
        pts = _points(n_seeds=1)
        before = total_events_processed()
        outcome = run_sweep(pts, parallel=2)
        folded = total_events_processed() - before
        assert folded >= sum(outcome.events) > 0


class TestRollup:
    def test_schema_and_structure(self):
        outcome = run_sweep(_points(n_seeds=1))
        doc = outcome.rollup()
        assert doc["schema"] == SCHEMA
        assert doc["num_points"] == 2
        for pt_doc in doc["points"]:
            assert set(pt_doc) == {"runner", "label", "seed", "config",
                                   "values", "rows", "metrics"}
        assert doc["merged_latency"]      # telemetry reservoirs merged
        for stats in doc["merged_latency"].values():
            assert stats["count"] >= 0
            assert "samples_crc32" in stats

    def test_rollup_contains_no_wall_clock(self):
        outcome = run_sweep(_points(n_seeds=1))
        text = outcome.rollup_json()
        for banned in ("wall", "best_s", "mean_s"):
            assert banned not in text

    def test_canonical_json_is_key_order_independent(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == \
            canonical_json({"a": [1, 2], "b": 1})
        assert json.loads(canonical_json({"a": 1})) == {"a": 1}

    def test_merged_recorders_fold_across_points(self):
        a, b = LatencyRecorder(name="m"), LatencyRecorder(name="m")
        for i in range(5):
            a.record(0.001 * (i + 1))
            b.record(0.002 * (i + 1))
        outcome = SweepOutcome(
            points=[SweepPoint(runner="x"), SweepPoint(runner="x")],
            results=[{"recorders": {"m": a}}, {"recorders": {"m": b}}],
            walls=[0.1, 0.1], events=[10, 10], parallel=1, wall_s=0.2)
        merged = outcome.merged_recorders()
        assert merged["m"].count == 10
        assert merged["m"].name == "sweep.m"


class TestPerfPayload:
    def test_shape_and_derived(self):
        outcome = run_sweep(_points(n_seeds=1, telemetry=False))
        payload = outcome.perf_payload()
        assert payload["schema"] == "repro-perf/1"
        assert "sweep.total[parallel=1]" in payload["results"]
        assert "sweep.events_per_s" in payload["derived"]
        # Occupancy is only meaningful with workers.
        assert "sweep.worker_occupancy" not in payload["derived"]

    def test_parallel_payload_reports_occupancy(self):
        outcome = run_sweep(_points(n_seeds=1, telemetry=False),
                            parallel=2)
        derived = outcome.perf_payload()["derived"]
        assert derived["sweep.worker_occupancy"] > 0


class TestFig7Points:
    def test_grid_matches_serial_nesting_order(self):
        pts = fig7_points(models=("a", "b"), backends=("x",),
                          batches=(1, 2), seeds=(0, 1))
        labels = [p.label for p in pts]
        assert labels == ["a/x/bs1/s0", "a/x/bs1/s1",
                          "a/x/bs2/s0", "a/x/bs2/s1",
                          "b/x/bs1/s0", "b/x/bs1/s1",
                          "b/x/bs2/s0", "b/x/bs2/s1"]
        assert all(p.runner == "fig7_infer" for p in pts)
