"""Causal tracing wired through the full workflows.

Pins the tier-1 contracts of :mod:`repro.tracing`:

* **observer effect** — tracing off (``None`` or ``enabled=False``) and
  even tracing *on* leave the headline metrics bit-identical, because
  the tracker creates no events and consumes no randomness;
* **decomposition invariant** — per-request wait+service sums to the
  measured e2e latency within 1e-9 s, under chaos (cmd drops, poison
  payloads, retries) and deadline shedding;
* **post-mortems** — quarantine, shed, circuit-break and stall events
  each carry flight-recorder traces naming the blocking stage;
* **exemplars** — the p99 latency dereferences to a full trace.
"""

import json

import pytest

from repro.faults import FaultPlan, RetryPolicy
from repro.sim import Environment
from repro.supervision import SupervisionConfig, Supervisor
from repro.tracing import RequestTracker, TracingConfig
from repro.tracing.critical_path import TOLERANCE_S, validate
from repro.workflows import (InferenceConfig, TrainingConfig, run_inference,
                             run_training)

QUICK_INFER = dict(model="googlenet", backend="dlbooster", batch_size=4,
                   warmup_s=0.3, measure_s=0.8)
QUICK_TRAIN = dict(model="alexnet", backend="dlbooster", num_gpus=1,
                   warmup_s=0.5, measure_s=1.0)


def infer_key(r):
    return (r.throughput, r.latency_mean_ms, r.latency_p50_ms,
            r.latency_p99_ms, r.cpu_cores, r.cpu_breakdown,
            r.gpu_compute_util, r.gpu_decode_util)


def train_key(r):
    return (r.throughput, r.cpu_cores, r.cpu_breakdown, r.epochs_done)


# ------------------------------------------------- the observer-effect tier
@pytest.mark.timeout(180)
def test_tracing_off_and_on_are_bit_identical_serving():
    baseline = run_inference(InferenceConfig(**QUICK_INFER))
    disabled = run_inference(InferenceConfig(
        tracing=TracingConfig(enabled=False), **QUICK_INFER))
    traced = run_inference(InferenceConfig(
        tracing=TracingConfig(), **QUICK_INFER))
    assert infer_key(disabled) == infer_key(baseline)
    assert "tracing" not in disabled.extras
    # The tracker observes only — even armed, the numbers are identical.
    assert infer_key(traced) == infer_key(baseline)
    assert traced.extras["tracing"]["stats"]["finished"] > 0


@pytest.mark.timeout(180)
def test_tracing_off_and_on_are_bit_identical_training():
    baseline = run_training(TrainingConfig(**QUICK_TRAIN))
    disabled = run_training(TrainingConfig(
        tracing=TracingConfig(enabled=False), **QUICK_TRAIN))
    traced = run_training(TrainingConfig(
        tracing=TracingConfig(), **QUICK_TRAIN))
    assert train_key(disabled) == train_key(baseline)
    assert "tracing" not in disabled.extras
    assert train_key(traced) == train_key(baseline)
    assert traced.extras["tracing"]["stats"]["finished"] > 0


# --------------------------------------------- the decomposition invariant
@pytest.mark.timeout(180)
def test_decomposition_holds_under_chaos():
    """cmd drops, poison payloads and retries reshuffle every request's
    journey; each finished trace must still tile its lifetime exactly."""
    plan = FaultPlan.of(FaultPlan.cmd_drop(0.05),
                        FaultPlan.payload_corrupt(0.02), name="trace-chaos")
    res = run_training(TrainingConfig(
        fault_plan=plan, retry=RetryPolicy(max_attempts=2),
        tracing=TracingConfig(flight_recorder_size=4096), **QUICK_TRAIN))
    tracker = res.extras["tracing"]["tracker"]
    stats = res.extras["tracing"]["stats"]
    assert stats["finished"] > 0
    assert stats["decomposition_violations"] == 0
    assert abs(tracker.attribution.worst_residual) <= TOLERANCE_S
    # Re-validate every retained trace individually, not just the
    # accumulator's tally.
    for trace in tracker.recorder.traces:
        assert abs(validate(trace)) <= TOLERANCE_S
    # Poison payloads exhausted their retries: quarantined traces landed
    # in the flight recorder and dumped a post-mortem naming the stage.
    assert stats["aborted"] > 0
    quarantine_pms = [pm for pm in tracker.postmortems
                      if pm.kind.startswith("quarantine:")]
    assert quarantine_pms
    for pm in quarantine_pms:
        assert len(pm.traces) >= 1
        assert all(tr["stage"] for tr in pm.traces)


@pytest.mark.timeout(180)
def test_decomposition_holds_under_deadline_shedding():
    baseline = run_inference(InferenceConfig(**QUICK_INFER))
    res = run_inference(InferenceConfig(
        supervision=SupervisionConfig(
            deadline_s=baseline.latency_p50_ms / 1e3 * 0.8),
        tracing=TracingConfig(flight_recorder_size=4096), **QUICK_INFER))
    tracker = res.extras["tracing"]["tracker"]
    stats = res.extras["tracing"]["stats"]
    assert stats["finished"] > 0
    assert stats["aborted"] > 0                  # work was shed
    assert stats["decomposition_violations"] == 0
    for trace in tracker.recorder.traces:
        assert abs(validate(trace)) <= TOLERANCE_S
    shed_pms = [pm for pm in tracker.postmortems
                if pm.kind.startswith("shed:")]
    assert shed_pms
    for pm in shed_pms:
        assert len(pm.traces) >= 1
        assert all(tr["stage"] for tr in pm.traces)
    shed_traces = [t for t in tracker.recorder.traces
                   if (t.status or "").startswith("shed:")]
    assert shed_traces


# ------------------------------------------------------------- post-mortems
@pytest.mark.timeout(180)
def test_circuit_break_dumps_the_flight_recorder():
    plan = FaultPlan.of(FaultPlan.decoder_crash(0.05, 0.25), name="crash")
    res = run_training(TrainingConfig(
        fault_plan=plan, retry=RetryPolicy(max_attempts=2),
        tracing=TracingConfig(), **QUICK_TRAIN))
    tracker = res.extras["tracing"]["tracker"]
    assert res.extras["fault_totals"]["failovers"] >= 1
    break_pms = [pm for pm in tracker.postmortems
                 if pm.kind == "circuit-break"]
    assert break_pms
    for pm in break_pms:
        assert len(pm.traces) >= 1
        assert all(tr["stage"] for tr in pm.traces)


@pytest.mark.timeout(60)
def test_stall_postmortem_names_the_blocking_stage():
    """A supervised stall dumps the flight recorder before any fail-fast
    raise: the post-mortem names the channel the stage blocks on and the
    requests stuck in flight."""
    env = Environment()
    rtracker = RequestTracker(env)
    supervisor = Supervisor(env, SupervisionConfig(stall_threshold_s=0.05))
    supervisor.attach_tracker(rtracker)
    hb = supervisor.register("fpga-reader")
    stuck = rtracker.start("fpga.fifo")
    hb.waiting("cmd-fifo")
    supervisor.start()
    env.run(until=0.5)
    assert int(supervisor.watchdog.stalls_detected.total) >= 1
    stall_pms = [pm for pm in supervisor.postmortems if pm.kind == "stall"]
    assert stall_pms
    pm = stall_pms[0]
    assert pm.stage == "cmd-fifo"               # the blocking channel
    assert len(pm.traces) >= 1
    assert pm.traces[0]["trace_id"] == stuck.trace_id
    assert pm.traces[0]["stage"] == "fpga.fifo"


# ------------------------------------------------- exemplars + export path
@pytest.mark.timeout(180)
def test_p99_exemplar_dereferences_to_a_full_trace(tmp_path):
    path = str(tmp_path / "serving.json")
    res = run_inference(InferenceConfig(
        tracing=TracingConfig(flight_recorder_size=100_000,
                              export_path=path), **QUICK_INFER))
    tracing = res.extras["tracing"]
    exemplar = tracing["p99_exemplar"]
    assert exemplar is not None
    trace = tracing["tracker"].recorder.find(exemplar)
    assert trace is not None
    assert trace.status == "ok"
    assert trace.segments
    assert abs(validate(trace)) <= TOLERANCE_S
    # Its journey covers the pipeline: FPGA decode through GPU compute.
    # (Zero-duration segments — e.g. nic.rx when the collector drains
    # the queue at the delivery timestamp — are elided by design.)
    stages = {s.stage for s in trace.segments}
    assert any(s.startswith("fpga.") for s in stages)
    assert "gpu.compute" in stages

    # The workflow-level export is valid Chrome-trace JSON.
    events = json.load(open(path))
    phases = {e["ph"] for e in events}
    assert {"M", "X", "s", "f"} <= phases
    req_tracks = [e for e in events
                  if e["ph"] == "M" and e["args"]["name"].startswith("req.")]
    assert req_tracks
    flows = {}
    for e in events:
        if e["ph"] in ("s", "f"):
            flows.setdefault(e["id"], []).append(e["ph"])
    assert all(sorted(v) == ["f", "s"] for v in flows.values())
