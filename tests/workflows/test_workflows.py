"""Tests for the workflow drivers and windowed metrics."""

import pytest

from repro.engines import CpuCorePool
from repro.sim import Counter, Environment
from repro.workflows import (CounterWindow, CpuWindow, InferenceConfig,
                             TrainingConfig, ideal_training_throughput,
                             run_inference, run_training)


# ---------------------------------------------------------------- metrics
def test_counter_window_rates_delta_only():
    env = Environment()
    c = Counter(env)

    def p(env):
        for _ in range(20):
            yield env.timeout(1.0)
            c.add(5)

    env.process(p(env))
    env.run(until=10.0)
    win = CounterWindow(env, [c])
    win.mark()
    env.run(until=20.0)
    assert win.rate() == pytest.approx(5.0)
    assert win.delta() == pytest.approx(50.0)


def test_cpu_window_excludes_warmup():
    env = Environment()
    cpu = CpuCorePool(env, 4)

    def p(env):
        yield from cpu.run(5.0, "warm")   # before the mark
        yield from cpu.run(5.0, "cold")   # after

    env.process(p(env))
    env.run(until=5.0)
    win = CpuWindow(env, cpu)
    win.mark()
    env.run()
    bd = win.breakdown()
    assert bd.get("warm", 0.0) == pytest.approx(0.0)
    assert bd["cold"] == pytest.approx(1.0)
    assert win.total_cores() == pytest.approx(1.0)


# ---------------------------------------------------------------- training
def test_ideal_throughput_matches_paper_annotations():
    # Fig. 2 annotates the ideal backend at 2,496 / 4,652 img/s.
    assert ideal_training_throughput("alexnet", 1) == pytest.approx(2496)
    assert ideal_training_throughput("alexnet", 2) == pytest.approx(
        4652, rel=0.02)


def test_run_training_validation():
    with pytest.raises(ValueError):
        run_training(TrainingConfig(model="bert", backend="dlbooster"))
    with pytest.raises(ValueError):
        run_training(TrainingConfig(model="alexnet", backend="dlbooster",
                                    num_gpus=3))
    with pytest.raises(ValueError):
        run_training(TrainingConfig(model="alexnet", backend="magic"))


def test_run_training_smoke_result_fields():
    res = run_training(TrainingConfig(
        model="alexnet", backend="dlbooster", num_gpus=1,
        warmup_s=0.5, measure_s=1.5))
    assert res.throughput > 0
    assert res.per_gpu_throughput == res.throughput
    assert 0.8 <= res.efficiency <= 1.05
    assert res.cpu_cores > 0
    assert set(res.cpu_breakdown) >= {"kernels", "update"}
    assert res.extras["pool_conservation"] is True


def test_run_training_deterministic():
    cfg = TrainingConfig(model="alexnet", backend="lmdb", num_gpus=2,
                         warmup_s=0.5, measure_s=1.5)
    a = run_training(cfg)
    b = run_training(cfg)
    assert a.throughput == b.throughput
    assert a.cpu_cores == b.cpu_cores


# --------------------------------------------------------------- inference
def test_run_inference_validation():
    with pytest.raises(ValueError):
        run_inference(InferenceConfig(model="alexnet", backend="dlbooster"))
    with pytest.raises(ValueError):
        run_inference(InferenceConfig(model="vgg16", backend="dlbooster",
                                      batch_size=0))
    with pytest.raises(ValueError):
        run_inference(InferenceConfig(model="vgg16", backend="lmdb"))


def test_run_inference_smoke_result_fields():
    res = run_inference(InferenceConfig(
        model="vgg16", backend="dlbooster", batch_size=8,
        warmup_s=0.5, measure_s=1.5))
    assert res.throughput > 0
    assert 0 < res.latency_mean_ms < 100
    assert res.latency_p50_ms <= res.latency_p99_ms
    assert res.cpu_cores > 0
    assert res.extras["rx_drops"] == 0


def test_run_inference_deterministic():
    cfg = InferenceConfig(model="googlenet", backend="nvjpeg",
                          batch_size=8, warmup_s=0.5, measure_s=1.5)
    a = run_inference(cfg)
    b = run_inference(cfg)
    assert a.throughput == b.throughput
    assert a.latency_mean_ms == b.latency_mean_ms


def test_run_inference_two_gpus_scale():
    one = run_inference(InferenceConfig(
        model="vgg16", backend="dlbooster", batch_size=16,
        num_gpus=1, warmup_s=0.5, measure_s=2.0))
    two = run_inference(InferenceConfig(
        model="vgg16", backend="dlbooster", batch_size=16,
        num_gpus=2, warmup_s=0.5, measure_s=2.0))
    assert two.throughput > 1.5 * one.throughput


def test_run_inference_unloaded_latency_below_loaded():
    loaded = run_inference(InferenceConfig(
        model="googlenet", backend="dlbooster", batch_size=1,
        warmup_s=0.5, measure_s=1.5))
    unloaded = run_inference(InferenceConfig(
        model="googlenet", backend="dlbooster", batch_size=1,
        warmup_s=0.5, measure_s=1.5, unloaded=True))
    assert unloaded.latency_mean_ms < loaded.latency_mean_ms
    # One batch in flight: throughput = 1 / pipeline time.
    assert unloaded.throughput < loaded.throughput


def test_run_inference_gpu_direct_config():
    res = run_inference(InferenceConfig(
        model="googlenet", backend="dlbooster", batch_size=16,
        warmup_s=0.5, measure_s=1.5, gpu_direct=True))
    assert res.throughput > 1000
    staged = run_inference(InferenceConfig(
        model="googlenet", backend="dlbooster", batch_size=16,
        warmup_s=0.5, measure_s=1.5))
    assert res.cpu_cores < staged.cpu_cores


def test_training_disk_utilization_reported():
    res = run_training(TrainingConfig(
        model="alexnet", backend="dlbooster", num_gpus=1,
        warmup_s=0.5, measure_s=1.5))
    assert 0.0 < res.extras["disk_utilization"] < 1.0


def test_training_num_fpgas_knob():
    res = run_training(TrainingConfig(
        model="alexnet", backend="dlbooster", num_gpus=2, num_fpgas=2,
        warmup_s=0.5, measure_s=1.5))
    assert len(res.extras["decoder_utilizations"]) == 2
