"""End-to-end telemetry: registry + queue-depth sampling through the
real workflow drivers, with JSON export and Chrome-trace counter merge."""

import json

import pytest

from repro.sim import Tracer
from repro.telemetry import TelemetryConfig
from repro.workflows import (InferenceConfig, TrainingConfig, run_inference,
                             run_training)


def test_inference_telemetry_end_to_end(tmp_path):
    export = tmp_path / "metrics.json"
    cfg = InferenceConfig(
        model="googlenet", backend="dlbooster", batch_size=4,
        warmup_s=0.3, measure_s=0.7,
        telemetry=TelemetryConfig(sample_interval_s=0.005,
                                  export_path=str(export)))
    res = run_inference(cfg)
    assert res.throughput > 0

    tel = res.extras["telemetry"]
    metrics = tel["metrics"]
    # Instruments from net/, host/ and backends/ all landed in the one
    # registry under their hierarchical dotted names.
    assert "nic.rx.occupancy" in metrics
    assert any(k.endswith("fpga-reader.latency") for k in metrics)
    latency_keys = [k for k, v in metrics.items()
                    if v["type"] == "latency" and v["count"] > 0]
    assert latency_keys, f"no populated latency metrics in {sorted(metrics)}"

    depths = tel["queue_depths"]
    assert "nic.rx.depth" in depths
    # ~1 s of sim at 5 ms sampling: a real time series, not a few points.
    assert len(depths["nic.rx.depth"]) > 50
    # Trans Queue depth series exist for the GPU.
    assert any(".free.depth" in k for k in depths)

    doc = json.loads(export.read_text())
    assert doc["schema"] == "repro-metrics/1"
    assert doc["registry"] == "inference.dlbooster"
    assert doc["metrics"]["nic.rx.occupancy"]["type"] == "gauge"
    assert "nic.rx.depth" in doc["queue_depths"]


def test_inference_without_telemetry_has_no_extras_key():
    cfg = InferenceConfig(model="googlenet", backend="dlbooster",
                          batch_size=4, warmup_s=0.2, measure_s=0.4)
    res = run_inference(cfg)
    assert "telemetry" not in res.extras


def test_telemetry_result_unchanged_by_instrumentation():
    """Observability must not perturb the simulation: headline metrics
    are identical with and without the registry/sampler attached."""
    base = InferenceConfig(model="googlenet", backend="dlbooster",
                           batch_size=4, warmup_s=0.2, measure_s=0.5)
    plain = run_inference(base)
    observed = run_inference(InferenceConfig(
        model="googlenet", backend="dlbooster", batch_size=4,
        warmup_s=0.2, measure_s=0.5,
        telemetry=TelemetryConfig(sample_interval_s=0.01)))
    assert observed.throughput == pytest.approx(plain.throughput)
    assert observed.latency_p99_ms == pytest.approx(plain.latency_p99_ms)


def test_training_telemetry_merges_counter_tracks_into_trace(tmp_path):
    cfg = TrainingConfig(
        model="alexnet", backend="dlbooster", num_gpus=1,
        warmup_s=0.3, measure_s=0.7,
        telemetry=TelemetryConfig(sample_interval_s=0.005))
    res = run_training(cfg, tracer_factory=lambda env: Tracer(env))
    assert res.throughput > 0

    tel = res.extras["telemetry"]
    assert any(".in_use" in k for k in tel["queue_depths"])

    tracer = res.extras["tracer"]
    events = json.loads(tracer.to_chrome_trace())
    counters = [e for e in events if e["ph"] == "C"]
    assert counters, "no counter tracks merged into the trace"
    depth_tracks = {e["name"] for e in counters if "depth" in e["args"]}
    metric_tracks = {e["name"] for e in counters
                     if e["name"].startswith("metric:")}
    assert depth_tracks and metric_tracks
    # Counter timestamps are backdated to sample times (microseconds,
    # spread over the run) rather than clustered at export time.
    depth_ts = sorted(e["ts"] for e in counters if "depth" in e["args"])
    assert depth_ts[0] < depth_ts[-1]
