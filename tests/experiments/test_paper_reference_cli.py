"""Tests for the paper-claims ledger, the CSV export and the CLI."""

import pytest

from repro.experiments import (ALL_EXPERIMENTS, PAPER_CLAIMS, Report,
                               claims_for)
from repro.experiments.__main__ import main as experiments_main


def test_every_experiment_has_paper_claims():
    for key in ALL_EXPERIMENTS:
        assert claims_for(key), f"no paper claims recorded for {key}"


def test_claims_ledger_wellformed():
    kinds = {"ratio", "ordering", "absolute", "bound"}
    for claim in PAPER_CLAIMS:
        assert claim.experiment_id in ALL_EXPERIMENTS
        assert claim.kind in kinds
        assert claim.paper_value
        assert claim.source.startswith(("S", "Fig"))


def test_claims_for_unknown_is_empty():
    assert claims_for("fig99") == ()


def test_headline_claims_present():
    texts = " | ".join(c.paper_value for c in PAPER_CLAIMS)
    assert "1.2x~2.4x" in texts            # throughput headline
    assert "1.2 / 1.8 / 3.4 ms" in texts   # latency headline
    assert "~0.5 core/GPU" in texts        # CPU-cost headline


def test_report_csv_export():
    rep = Report("figX", "Test", columns=["a", "b"])
    rep.add_row(1, "x,y")
    rep.add_row(2.5, "z")
    csv_text = rep.to_csv()
    lines = csv_text.strip().splitlines()
    assert lines[0] == "a,b"
    assert lines[1] == '1,"x,y"'  # quoting handled
    assert lines[2] == "2.5,z"


def test_cli_runs_analytic_subset(capsys):
    code = experiments_main(["sec2.2", "sec5.4"])
    out = capsys.readouterr().out
    assert code == 0
    assert "all shape checks passed" in out
    assert "sec2.2" in out and "sec5.4" in out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        experiments_main(["fig99"])


def test_cli_csv_export(tmp_path, capsys):
    code = experiments_main(["sec2.2", "--csv-dir", str(tmp_path)])
    capsys.readouterr()
    assert code == 0
    csv_file = tmp_path / "sec2_2.csv"
    assert csv_file.exists()
    lines = csv_file.read_text().strip().splitlines()
    assert lines[0].startswith("platform,")
    assert len(lines) == 3  # header + 2 rows
