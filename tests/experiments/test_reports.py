"""Tests for the report infrastructure and the cheap experiments.

The heavyweight figure experiments run in ``benchmarks/``; here we test
the report machinery itself plus the two analytic experiments, and one
miniature figure run to validate the experiment plumbing end to end.
"""

import pytest

from repro.experiments import (ALL_EXPERIMENTS, Report, ShapeCheck,
                               econ_analysis, fig5_train_throughput,
                               fmt_table, scalability)


# ----------------------------------------------------------------- report
def test_report_add_row_and_render():
    rep = Report("figX", "Test", columns=["a", "b"])
    rep.add_row(1, 2.5)
    rep.add_row("x", 12345.0)
    text = rep.render()
    assert "figX" in text and "12,345" in text


def test_report_row_width_validation():
    rep = Report("figX", "Test", columns=["a", "b"])
    with pytest.raises(ValueError):
        rep.add_row(1)


def test_report_checks_and_failures():
    rep = Report("figX", "Test", columns=["a"])
    rep.check("always true", 1 < 2)
    rep.check("always false", 1 > 2, "why")
    assert not rep.all_passed
    assert len(rep.failed_checks()) == 1
    rendered = rep.render()
    assert "[PASS] always true" in rendered
    assert "[FAIL] always false — why" in rendered


def test_shape_check_str():
    assert str(ShapeCheck("claim", True)) == "[PASS] claim"
    assert "detail" in str(ShapeCheck("claim", False, "detail"))


def test_fmt_table_alignment():
    text = fmt_table(["name", "value"], [("a", 1), ("long-name", 123456.0)])
    lines = text.splitlines()
    assert len(lines) == 4
    assert len(set(len(line) for line in lines)) == 1  # aligned


def test_fmt_table_empty_rows():
    text = fmt_table(["col"], [])
    assert "col" in text


def test_registry_covers_every_table_and_figure():
    assert set(ALL_EXPERIMENTS) == {
        "fig2", "fig5", "fig6", "fig7", "fig8", "fig9", "sec5.4", "sec2.2",
        "chaos", "overload", "fleet", "chaos_fleet"}


# ------------------------------------------------------------- analytic
def test_scalability_experiment_passes():
    rep = scalability.run(quick=True)
    assert rep.all_passed, rep.render()
    assert len(rep.rows) == 2


def test_econ_experiment_passes():
    rep = econ_analysis.run(quick=True)
    assert rep.all_passed, rep.render()
    quantities = {row[0] for row in rep.rows}
    assert "freed-core resale" in quantities
    assert "LMDB ingest of ILSVRC12" in quantities


def test_econ_helpers():
    assert econ_analysis.core_revenue_per_year() == pytest.approx(
        0.105 * 8760)
    assert econ_analysis.freed_core_value_per_hour() == pytest.approx(3.15)
    assert econ_analysis.fpga_breakeven_hours() > 0
    assert econ_analysis.power_cost_per_year(1000) == pytest.approx(
        8760 * 0.12)


# --------------------------------------------------------- one mini figure
def test_fig5_single_model_mini_run():
    rep = fig5_train_throughput.run(quick=True, models=("resnet18",))
    assert rep.experiment_id == "fig5"
    assert rep.all_passed, rep.render()
    backends = {row[1] for row in rep.rows}
    assert backends == {"upper-bound", "cpu-online", "lmdb", "dlbooster"}
