"""Critical-path decomposition: the wait+service == e2e invariant."""

import pytest

from repro.tracing import (CriticalPathAccumulator, RequestTrace,
                           TraceDecompositionError, aggregate, decompose,
                           dominant_segment, validate)
from repro.tracing.context import Segment
from repro.tracing.critical_path import TOLERANCE_S


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_trace(clk=None):
    clk = clk or Clock()
    t = RequestTrace(clk, "rx", kind="wait")
    clk.now = 0.25
    t.mark("decode", "service")
    clk.now = 1.0
    t.mark("rx", "wait")        # second visit to the same stage
    clk.now = 1.5
    t.finish()
    return t


def test_decompose_sums_per_stage_kind():
    d = decompose(make_trace())
    assert d == {("rx", "wait"): pytest.approx(0.75),
                 ("decode", "service"): pytest.approx(0.75)}
    assert sum(d.values()) == pytest.approx(1.5)


def test_decompose_rejects_active_traces():
    t = RequestTrace(Clock(), "rx")
    with pytest.raises(ValueError, match="active"):
        decompose(t)


def test_validate_accepts_a_tiled_trace():
    assert abs(validate(make_trace())) <= TOLERANCE_S


def test_validate_raises_on_an_accounting_hole():
    t = make_trace()
    # Surgically puncture the tiling: shrink one segment.
    s = t.segments[0]
    t.segments[0] = Segment(s.stage, s.kind, s.start, s.end - 0.1)
    with pytest.raises(TraceDecompositionError, match="residual"):
        validate(t)


def test_dominant_segment():
    t = make_trace()
    dom = dominant_segment(t)
    assert dom.duration == pytest.approx(0.75)
    empty = RequestTrace(Clock(), "a")
    empty.finish()
    assert dominant_segment(empty) is None


def test_accumulator_aggregates_and_counts_violations():
    traces = [make_trace() for _ in range(3)]
    s = traces[0].segments[0]
    traces[0].segments[0] = Segment(s.stage, s.kind, s.start, s.end - 0.1)
    acc = aggregate(traces)
    assert acc.traces == 3
    assert acc.violations == 1
    assert acc.worst_residual == pytest.approx(-0.1)
    report = acc.report()
    assert set(report) == {"rx", "decode"}
    assert report["decode"]["service"] == pytest.approx(3 * 0.75)
    assert report["decode"]["wait"] == 0.0
    assert "1 decomposition violation" in acc.render()


def test_accumulator_clean_over_many_marks():
    clk = Clock()
    acc = CriticalPathAccumulator()
    for i in range(50):
        t = RequestTrace(clk, "rx")
        for j in range(20):
            clk.now += 0.001 * ((i + j) % 7)
            t.mark(f"stage{j % 5}", "wait" if j % 2 else "service")
        clk.now += 0.002
        t.finish()
        acc.add(t)
    assert acc.violations == 0
    assert abs(acc.worst_residual) <= TOLERANCE_S
