"""RequestTrace cursor semantics: segment tiling, attempt epochs,
trace_of lookup."""

import pytest

from repro.tracing import RequestTrace, mark_cmd, trace_of


class Clock:
    """A hand-cranked sim clock standing in for Environment.now."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_segments_tile_the_lifetime():
    clk = Clock()
    t = RequestTrace(clk, "nic.rx", kind="wait")
    clk.now = 1.0
    t.mark("decode", "service")
    clk.now = 2.5
    t.mark("queue", "wait")
    clk.now = 4.0
    t.finish()
    assert [(s.stage, s.kind, s.start, s.end) for s in t.segments] == [
        ("nic.rx", "wait", 0.0, 1.0),
        ("decode", "service", 1.0, 2.5),
        ("queue", "wait", 2.5, 4.0),
    ]
    assert t.e2e_latency == 4.0
    assert sum(s.duration for s in t.segments) == t.e2e_latency
    assert t.status == "ok"


def test_zero_length_segments_are_skipped():
    clk = Clock()
    t = RequestTrace(clk, "a")
    t.mark("b", "service")     # no time passed: "a" contributes nothing
    clk.now = 1.0
    t.finish()
    assert [s.stage for s in t.segments] == ["b"]
    assert sum(s.duration for s in t.segments) == t.e2e_latency


def test_finish_is_idempotent_and_seals_the_trace():
    clk = Clock()
    t = RequestTrace(clk, "a")
    clk.now = 1.0
    t.finish()
    clk.now = 2.0
    t.finish("late")           # no-op
    t.mark("ghost", "service")  # no-op
    assert t.status == "ok"
    assert t.finished_at == 1.0
    assert [s.stage for s in t.segments] == ["a"]


def test_abort_stamps_the_failure_status():
    clk = Clock()
    t = RequestTrace(clk, "a")
    clk.now = 0.5
    t.abort("shed:rx")
    assert t.is_finished
    assert t.status == "shed:rx"


def test_on_finish_callback_receives_the_trace():
    seen = []
    t = RequestTrace(Clock(), "a", on_finish=seen.append)
    t.finish()
    assert seen == [t]


def test_trace_ids_are_unique():
    clk = Clock()
    ids = {RequestTrace(clk, "a").trace_id for _ in range(100)}
    assert len(ids) == 100


def test_summary_snapshot():
    clk = Clock()
    t = RequestTrace(clk, "a", baggage={"rid": 7})
    s = t.summary()
    assert s["status"] == "active" and s["e2e_s"] is None
    clk.now = 1.0
    t.finish()
    s = t.summary()
    assert s["status"] == "ok" and s["e2e_s"] == 1.0
    assert s["baggage"] == {"rid": 7}
    assert s["segments"] == [("a", "wait", 0.0, 1.0)]


class FakeCmd:
    def __init__(self, trace, attempt=0):
        self.trace = trace
        self.trace_attempt = attempt


def test_mark_cmd_stale_epoch_is_a_noop():
    """A ghost cmd (declared lost, still crawling through the mirror)
    must never scribble stages onto the trace of its retry."""
    clk = Clock()
    t = RequestTrace(clk, "submit")
    ghost = FakeCmd(t, attempt=0)
    t.attempt = 1                       # the reader reissued the item
    fresh = FakeCmd(t, attempt=1)
    clk.now = 1.0
    mark_cmd(ghost, "fpga.huffman", "service")
    assert t.current_stage == "submit"  # ghost ignored
    mark_cmd(fresh, "fpga.huffman", "service")
    assert t.current_stage == "fpga.huffman"


def test_mark_cmd_untraced_and_finished_are_noops():
    mark_cmd(FakeCmd(None), "x", "wait")   # no trace: nothing to do
    clk = Clock()
    t = RequestTrace(clk, "a")
    t.finish()
    mark_cmd(FakeCmd(t), "x", "wait")
    assert t.current_stage == "a"


def test_trace_of_looks_through_the_request():
    clk = Clock()
    t = RequestTrace(clk, "a")

    class Req:
        trace = t

    class Item:
        trace = None
        request = Req()

    assert trace_of(Item()) is t
    Item.trace = RequestTrace(clk, "b")
    assert trace_of(Item()) is Item.trace
    assert trace_of(object()) is None
