"""RequestTracker: flight recorder, post-mortems, span emission and the
batch fan-in record."""

import pytest

from repro.sim import Environment, Tracer
from repro.tracing import FlightRecorder, RequestTrace, RequestTracker


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class FakeEnv:
    """The tracker only reads ``env.now``."""

    def __init__(self):
        self.now = 0.0


def test_flight_recorder_is_a_bounded_ring():
    rec = FlightRecorder(capacity=3)
    clk = Clock()
    traces = []
    for i in range(5):
        t = RequestTrace(clk, "a")
        t.finish()
        rec.record(t)
        traces.append(t)
    assert len(rec) == 3
    assert rec.traces == tuple(traces[2:])          # oldest evicted
    assert rec.last(2) == traces[3:]
    assert rec.find(traces[4].trace_id) is traces[4]
    assert rec.find(traces[0].trace_id) is None     # evicted
    assert [s["trace_id"] for s in rec.snapshot()] == \
        [t.trace_id for t in traces[2:]]
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


def test_finished_traces_land_in_recorder_and_attribution():
    env = FakeEnv()
    rt = RequestTracker(env)
    t = rt.start("nic.rx", baggage={"rid": 1})
    assert rt.active == {t.trace_id: t}
    env.now = 0.5
    t.mark("decode", "service")
    env.now = 1.0
    t.finish()
    assert rt.active == {}
    assert rt.recorder.find(t.trace_id) is t
    assert rt.attribution.traces == 1
    assert rt.attribution.violations == 0
    assert rt.stats() == {"started": 1, "finished": 1, "aborted": 0,
                          "active": 0, "batches": 0, "postmortems": 0,
                          "decomposition_violations": 0}


def test_first_abort_of_each_kind_dumps_a_postmortem():
    env = FakeEnv()
    rt = RequestTracker(env)
    for i in range(3):
        t = rt.start("nic.rx")
        env.now += 0.1
        t.abort("shed:rx")
    t = rt.start("nic.rx")
    t.abort("quarantine:bad-jpeg")
    assert rt.aborted == 4
    kinds = [pm.kind for pm in rt.postmortems]
    assert kinds == ["shed:rx", "quarantine:bad-jpeg"]   # one per kind
    for pm in rt.postmortems:
        assert len(pm.traces) >= 1
        assert all(tr["stage"] for tr in pm.traces)      # names the stage
        assert "post-mortem" in pm.render()


def test_postmortem_picks_the_oldest_active_traces():
    env = FakeEnv()
    rt = RequestTracker(env)
    old = rt.start("fpga.fifo")
    env.now = 1.0
    young = rt.start("nic.rx")
    env.now = 2.0
    pm = rt.postmortem("stall", stage="fpga.fifo", limit=1)
    assert [tr["trace_id"] for tr in pm.traces] == [old.trace_id]
    assert pm.traces[0]["stage"] == "fpga.fifo"
    assert pm.stage == "fpga.fifo"
    # Falls back to completed traces when nothing is in flight.
    old.finish()
    young.finish()
    pm2 = rt.postmortem("circuit-break")
    assert len(pm2.traces) == 2


def test_postmortem_cap():
    env = FakeEnv()
    rt = RequestTracker(env, max_postmortems=2)
    assert rt.postmortem("a") is not None
    assert rt.postmortem("b") is not None
    assert rt.postmortem("c") is None
    assert len(rt.postmortems) == 2


def test_spans_and_flow_pair_emitted_per_finished_trace():
    env = Environment()
    tracer = Tracer(env)
    rt = RequestTracker(env, tracer=tracer)

    def p(env):
        t = rt.start("nic.rx")
        yield env.timeout(0.5)
        t.mark("decode", "service")
        yield env.timeout(0.5)
        t.finish()

    env.process(p(env))
    env.run()
    assert [(s.name, s.track) for s in tracer.spans] == [
        ("wait", "req.nic.rx"), ("service", "req.decode")]
    assert all(s.args["trace"] for s in tracer.spans)
    (start, fin) = tracer.flows
    assert start[2] == "s" and fin[2] == "f"
    assert start[3] == fin[3]                       # shared flow id
    assert start[1] == "req.nic.rx" and fin[1] == "req.decode"


def test_emit_spans_off_keeps_the_tracer_clean():
    env = Environment()
    tracer = Tracer(env)
    rt = RequestTracker(env, tracer=tracer, emit_spans=False)
    t = rt.start("nic.rx")
    t.finish()
    assert tracer.spans == [] and tracer.flows == []
    assert rt.finished == 1                         # still tracked


def test_batch_fanin_links_every_member():
    env = Environment()
    tracer = Tracer(env)
    rt = RequestTracker(env, tracer=tracer)
    members = [rt.start("batch.fanin") for _ in range(4)]
    rt.batch_fanin("7", members, start=0.0, end=0.25)
    assert rt.batches == 1
    (span,) = tracer.spans
    assert span.name == "batch#7" and span.track == "batch.assembly"
    assert span.args["members"] == [t.trace_id for t in members]
    assert span.args["count"] == 4
    # One s/f flow pair per member, arrows into the batch track.
    assert len(tracer.flows) == 8
    fids = {f[3] for f in tracer.flows}
    assert len(fids) == 4
    assert {f[1] for f in tracer.flows if f[2] == "f"} == {"batch.assembly"}


def test_export_chrome_flushes_open_spans(tmp_path):
    env = Environment()
    tracer = Tracer(env)
    rt = RequestTracker(env, tracer=tracer)
    t = rt.start("nic.rx")
    t.finish()
    tracer.begin("leaked", "t")                    # component-level leak
    path = str(tmp_path / "trace.json")
    assert rt.export_chrome(path) is not None
    assert tracer.open_spans == 0                  # flushed, not dropped
    assert tracer.total_dropped == 0
    assert (tmp_path / "trace.json").exists()
    assert RequestTracker(env).export_chrome() is None   # no tracer
