"""Capacity planner: knee reproduction, determinism, CLI contract.

The binary search must land on the PR 6 fleet experiment's knee: at an
offered rate of 1.8x the single-host knee, two healthy hosts serve at
90% utilization (the A/B premise of the fleet experiment), so the
recommended K is 2 and K=1 is infeasible.
"""

import json

import pytest

from repro.capacity.__main__ import main as capacity_main
from repro.experiments.fleet import single_host_knee
from repro.slo import PlanSpec, plan_capacity, render_dashboard

SIM_S = 0.3


def tiny_spec(**overrides):
    base = dict(rate=1.8 * single_host_knee(), p99_ms=25.0,
                k_min=1, k_max=2, seeds=(23,), sim_s=SIM_S)
    base.update(overrides)
    return PlanSpec(**base)


@pytest.fixture(scope="module")
def knee_plan():
    return plan_capacity(tiny_spec())


def test_spec_validation():
    with pytest.raises(ValueError):
        tiny_spec(rate=0.0)
    with pytest.raises(ValueError):
        tiny_spec(p99_ms=-1.0)
    with pytest.raises(ValueError):
        tiny_spec(k_min=3, k_max=2)
    with pytest.raises(ValueError):
        tiny_spec(seeds=())
    with pytest.raises(ValueError):
        tiny_spec(availability=1.0)


def test_planner_reproduces_fleet_knee(knee_plan):
    """1.8x the knee needs exactly 2 hosts (90% utilization each)."""
    assert knee_plan.feasible
    assert knee_plan.recommended_k == 2
    assert knee_plan.evaluated[1]["feasible"] is False
    assert knee_plan.evaluated[2]["feasible"] is True
    assert knee_plan.headroom == pytest.approx(2.0 / 1.8)


def test_per_k_rows_carry_kpis_and_slo(knee_plan):
    ev = knee_plan.evaluated[2]
    (row,) = ev["seeds"]
    assert row["seed"] == 23 and row["feasible"]
    assert row["goodput_per_s"] > 0 and row["conserved"]
    assert row["cost_per_million_images"] > 0
    names = [obj["name"] for obj in row["slo"]]
    assert "availability" in names
    assert all(obj["met"] for obj in row["slo"])
    # The infeasible K=1 run blows the budget and logs alerts.
    (row1,) = knee_plan.evaluated[1]["seeds"]
    assert not row1["feasible"]
    assert any(not obj["met"] for obj in row1["slo"])
    assert row1["alert_log"]


def test_plan_document_and_dashboard_deterministic(knee_plan):
    again = plan_capacity(tiny_spec())
    assert again.to_json() == knee_plan.to_json()
    assert render_dashboard(again) == render_dashboard(knee_plan)
    doc = json.loads(knee_plan.to_json())
    assert doc["schema"] == "repro-capacity/1"
    assert doc["recommended_k"] == 2
    assert [ev["k"] for ev in doc["evaluated"]] == [1, 2]


def test_dashboard_renders_tables(knee_plan):
    text = render_dashboard(knee_plan)
    assert "# Capacity plan" in text
    assert "| K | goodput/s |" in text
    assert "**K = 2**" in text
    assert "PASS" in text and "fail" in text


def test_infeasible_range_has_no_recommendation():
    plan = plan_capacity(tiny_spec(k_max=1))
    assert not plan.feasible and plan.recommended_k is None
    assert plan.headroom is None
    text = render_dashboard(plan)
    assert "Infeasible" in text
    doc = json.loads(plan.to_json())
    assert doc["recommended_k"] is None and doc["feasible"] is False


def test_probe_memoization():
    """k_max is probed once even though binary search revisits it."""
    calls = []
    import repro.slo.planner as planner_mod
    real = planner_mod.evaluate_k

    def counting(k, spec, knee, parallel=1):
        calls.append(k)
        return real(k, spec, knee, parallel=parallel)

    try:
        planner_mod.evaluate_k = counting
        plan = planner_mod.plan_capacity(tiny_spec())
    finally:
        planner_mod.evaluate_k = real
    assert plan.recommended_k == 2
    assert sorted(calls) == [1, 2]           # each K evaluated once


# ------------------------------------------------------------------ CLI

def run_cli(tmp_path, *extra):
    out = tmp_path / "dash"
    code = capacity_main([
        "--rate-x", "1.8", "--k-min", "1", "--k-max", "2",
        "--sim-s", str(SIM_S), "--out-dir", str(out), *extra])
    return code, out


def test_cli_feasible_writes_dashboard(tmp_path, capsys):
    code, out = run_cli(tmp_path)
    assert code == 0
    md = (out / "dashboard.md").read_text()
    assert "**K = 2**" in md
    doc = json.loads((out / "dashboard.json").read_text())
    assert doc["schema"] == "repro-capacity/1"
    assert doc["recommended_k"] == 2
    assert "K=2: feasible" in capsys.readouterr().out


def test_cli_dashboard_byte_identical_across_reruns(tmp_path):
    _, first = run_cli(tmp_path / "a")
    _, second = run_cli(tmp_path / "b", "--parallel", "2")
    assert (first / "dashboard.md").read_bytes() == \
        (second / "dashboard.md").read_bytes()
    assert (first / "dashboard.json").read_bytes() == \
        (second / "dashboard.json").read_bytes()


def test_cli_infeasible_exits_one(tmp_path):
    code = capacity_main(["--rate-x", "1.8", "--k-min", "1",
                          "--k-max", "1", "--sim-s", str(SIM_S)])
    assert code == 1


def test_cli_unwritable_out_dir_exits_two(tmp_path, capsys):
    blocker = tmp_path / "file"
    blocker.write_text("not a directory")
    code = capacity_main(["--rate-x", "1.8", "--k-max", "2",
                          "--sim-s", str(SIM_S),
                          "--out-dir", str(blocker)])
    assert code == 2
    assert "cannot create" in capsys.readouterr().err


def test_cli_rejects_bad_counts():
    with pytest.raises(SystemExit):
        capacity_main(["--seeds", "0"])
    with pytest.raises(SystemExit):
        capacity_main(["--parallel", "0"])
    with pytest.raises(SystemExit):
        capacity_main(["--rate", "100", "--rate-x", "2.0"])
