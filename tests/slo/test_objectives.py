"""SLODefinition semantics: validation, classification, verdicts."""

import pytest

from repro.slo import (AVAILABILITY, INTEGRITY, LATENCY, SLODefinition,
                       default_serving_slos, verdict)


def test_kinds_validated():
    with pytest.raises(ValueError):
        SLODefinition(name="x", kind="throughput", target=0.9)


@pytest.mark.parametrize("target", [0.0, 1.0, -0.1, 1.5])
def test_target_must_be_open_interval(target):
    with pytest.raises(ValueError):
        SLODefinition(name="x", kind=AVAILABILITY, target=target)


def test_latency_kind_requires_threshold():
    with pytest.raises(ValueError):
        SLODefinition(name="x", kind=LATENCY, target=0.99)
    with pytest.raises(ValueError):
        SLODefinition(name="x", kind=LATENCY, target=0.99, threshold_s=0.0)
    # and only the latency kind takes one
    with pytest.raises(ValueError):
        SLODefinition(name="x", kind=AVAILABILITY, target=0.99,
                      threshold_s=0.1)


def test_error_budget_is_complement_of_target():
    slo = SLODefinition(name="x", kind=AVAILABILITY, target=0.99)
    assert slo.error_budget == pytest.approx(0.01)


def test_availability_classifies_on_success_alone():
    slo = SLODefinition(name="x", kind=AVAILABILITY, target=0.99)
    assert slo.classify(True) and slo.classify(True, latency_s=99.0)
    assert not slo.classify(False)


def test_latency_classifies_success_within_threshold():
    slo = SLODefinition(name="x", kind=LATENCY, target=0.99,
                        threshold_s=0.025)
    assert slo.classify(True, latency_s=0.024)
    assert slo.classify(True, latency_s=0.025)
    assert not slo.classify(True, latency_s=0.026)
    assert not slo.classify(False, latency_s=0.001)
    assert not slo.classify(True, latency_s=None)


def test_integrity_kind_accepts_definitions():
    slo = SLODefinition(name="sum", kind=INTEGRITY, target=0.999)
    assert slo.classify(True) and not slo.classify(False)
    assert slo.to_doc()["kind"] == INTEGRITY


def test_verdict_budget_consumed():
    slo = SLODefinition(name="x", kind=AVAILABILITY, target=0.99)
    doc = verdict(slo, good=980, bad=20)
    assert doc["total"] == 1000
    assert doc["bad_frac"] == pytest.approx(0.02)
    assert doc["budget_consumed"] == pytest.approx(2.0)
    assert doc["met"] is False
    assert verdict(slo, good=995, bad=5)["met"] is True


def test_verdict_empty_window_is_vacuously_met():
    slo = SLODefinition(name="x", kind=AVAILABILITY, target=0.99)
    doc = verdict(slo, good=0, bad=0)
    assert doc["met"] is True and doc["budget_consumed"] == 0.0


def test_default_serving_slos_pair():
    slos = default_serving_slos(0.025, availability=0.95,
                                latency_target=0.9)
    assert [s.kind for s in slos] == [AVAILABILITY, LATENCY]
    assert slos[0].target == 0.95
    assert slos[1].name == "latency-25ms"
    assert slos[1].threshold_s == 0.025 and slos[1].target == 0.9
