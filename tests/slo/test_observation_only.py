"""The SLO evaluator is observation-only: bit-identical when enabled.

Same contract PR 4's tracing established — arming the evaluator must
leave every simulated metric bit-identical, because its state is plain
Python (no sim instruments that would register in the ambient metrics
registry, no RNG draws) and its periodic process only yields timeouts.
These A/B tests pin that for all three wired stacks: the fleet
experiment, the chaos fleet, and the overload experiment's probe mode.
"""

import json

from repro.experiments.chaos_fleet import serve_chaos
from repro.experiments.fleet import serve_fleet
from repro.experiments.overload import serve_open_loop

FLEET = dict(policy="least-loaded", k=2, overload_x=1.2, sim_s=0.3,
             degraded_host=-1, with_registry=True)


def canon(payload):
    return json.dumps(payload, sort_keys=True, default=str)


def test_fleet_evaluator_on_is_bit_identical_to_off():
    off = serve_fleet(**FLEET)
    on = serve_fleet(**FLEET, slo=True)
    slo = on.pop("slo")
    assert canon(on) == canon(off)
    assert slo["schema"] == "repro-slo/1" and slo["ticks"] > 0
    names = [obj["name"] for obj in slo["objectives"]]
    assert names == ["availability", "latency-25ms"]


def test_fleet_slo_payload_is_deterministic():
    a = serve_fleet(**FLEET, slo=True)
    b = serve_fleet(**FLEET, slo=True)
    assert canon(a) == canon(b)


def test_fleet_slo_dict_config_overrides_targets():
    payload = serve_fleet(**FLEET,
                          slo={"availability": 0.95, "period_s": 0.05})
    slo = payload["slo"]
    avail = next(obj for obj in slo["objectives"]
                 if obj["name"] == "availability")
    assert avail["target"] == 0.95
    assert slo["period_s"] == 0.05


def test_chaos_fleet_evaluator_on_is_bit_identical_to_off():
    config = dict(k=2, overload_x=1.2, sim_s=0.3)
    off = serve_chaos(**config)
    on = serve_chaos(**config, slo=True)
    slo = on.pop("slo")
    assert canon(on) == canon(off)
    assert slo["ticks"] > 0


def test_overload_probe_mode_is_observation_only():
    config = dict(deadline_s=0.025, admission_margin_s=0.015, sim_s=0.6)
    base = serve_open_loop(**config)
    armed = serve_open_loop(**config, slo=True)
    assert armed.slo is not None and armed.slo["ticks"] > 0
    # Every simulated outcome matches the unarmed run exactly.
    assert (base.served, base.backlog, base.shed_rx, base.shed_reader,
            base.shed_dispatcher, base.conserved) == \
        (armed.served, armed.backlog, armed.shed_rx, armed.shed_reader,
         armed.shed_dispatcher, armed.conserved)
    assert base.goodput == armed.goodput
    assert base.p99_first_ms == armed.p99_first_ms
    assert base.p99_second_ms == armed.p99_second_ms
    assert canon(base.kpi) == canon(armed.kpi)


def test_fleet_kpi_section_attached_and_consistent():
    payload = serve_fleet(**FLEET)
    kpi = payload["kpi"]
    assert kpi["schema"] == "repro-kpi/1"
    assert kpi["traffic"]["offered"] == payload["source"]["sent"]
    assert kpi["traffic"]["completed"] == payload["source"]["completed"]
    assert kpi["latency"]["client_p99_ms"] == \
        payload["fleet"]["client_p99_ms"]
    # with_registry=True populates the per-stage table.
    assert kpi["stages"]
    assert kpi["cost"]["hosts"] == 2
    assert kpi["cost"]["cost_per_million_images"] > 0


def test_rollup_derived_fields():
    payload = serve_fleet(**FLEET)
    fleet = payload["fleet"]
    assert fleet["goodput_per_s"] == fleet["completed"] / 0.3
    assert fleet["shed_pct"] == (
        100.0 * fleet["shed"] / fleet["handled"] if fleet["handled"]
        else 0.0)
    assert fleet["failure_pct"] == (
        100.0 * fleet["failed"] / fleet["handled"] if fleet["handled"]
        else 0.0)
    assert fleet["p999_ms"] is None or fleet["p999_ms"] >= fleet["p99_ms"]
