"""repro-kpi/1: derivation from rollups, metrics and sweep documents."""

import json
import math

import pytest

from repro.calib import DEFAULT_TESTBED
from repro.slo import (HostShape, compute_kpis, cost_section,
                       host_cost_per_hour, kpi_json, kpis_from_metrics,
                       kpis_from_rollup, kpis_from_sweep)


def synthetic_rollup():
    return {
        "per_host": [],
        "fleet": {
            "hosts": 2, "active_hosts": 2, "handled": 100,
            "completed": 90, "failed": 2, "predictions": 90, "shed": 8,
            "goodput_per_s": 450.0, "shed_pct": 8.0, "failure_pct": 2.0,
            "latency_count": 90, "p50_ms": 2.0, "p99_ms": 10.0,
            "p999_ms": 12.0, "mean_ms": 3.0, "conserved": True,
            "client_p50_ms": 2.1, "client_p99_ms": 20.0,
            "client_failures": 10,
        },
        "balancer": {"rejected": 3},
        "source": {"sent": 100, "completed": 90, "expired": 6,
                   "failed": 4, "conserved": True},
        "metrics": {
            "stage.decode": {"type": "latency", "count": 90,
                             "mean": 0.002, "p50": 0.001, "p90": 0.003,
                             "p99": 0.004, "p99.9": 0.005},
            "stage.empty": {"type": "latency", "count": 0, "mean": None,
                            "p50": None, "p90": None, "p99": None,
                            "p99.9": None},
            "requests": {"type": "counter", "total": 100},
        },
    }


def test_host_cost_per_hour_formula():
    testbed = DEFAULT_TESTBED
    shape = HostShape(cpu_cores=8, num_fpgas=1, num_gpus=1)
    watts = (8 / testbed.cpu_cores * testbed.cpu_power_w
             + testbed.fpga_power_w + testbed.gpu_power_w)
    expected = (8 * testbed.core_price_per_hour
                + testbed.fpga_card_price / testbed.hours_per_year
                + watts / 1000.0 * testbed.electricity_per_kwh)
    assert host_cost_per_hour(shape) == pytest.approx(expected)


def test_cost_section_prices_goodput():
    shape = HostShape(cpu_cores=8)
    doc = cost_section(3, shape, goodput_per_s=1000.0)
    per_host = host_cost_per_hour(shape)
    assert doc["fleet_cost_per_hour"] == pytest.approx(3 * per_host)
    assert doc["cost_per_million_images"] == pytest.approx(
        3 * per_host / (1000.0 * 3600.0) * 1e6)
    assert cost_section(3, shape, goodput_per_s=None)[
        "cost_per_million_images"] is None
    assert cost_section(3, None, goodput_per_s=1000.0) is None


def test_shape_validation():
    with pytest.raises(ValueError):
        HostShape(cpu_cores=0)
    with pytest.raises(ValueError):
        HostShape(cpu_cores=4, num_fpgas=-1)


def test_kpis_from_rollup_prefers_source_ledger():
    kpi = kpis_from_rollup(synthetic_rollup(), window_s=2.0,
                           shape=HostShape(cpu_cores=8))
    assert kpi["schema"] == "repro-kpi/1"
    traffic = kpi["traffic"]
    assert traffic["offered"] == 100           # source.sent, not handled
    assert traffic["completed"] == 90
    assert traffic["expired"] == 6 and traffic["failed"] == 4
    assert traffic["rejected"] == 3
    assert traffic["failure_pct"] == pytest.approx(10.0)
    assert traffic["goodput_per_s"] == pytest.approx(450.0)
    assert traffic["offered_per_s"] == pytest.approx(50.0)
    latency = kpi["latency"]
    assert latency["p99_ms"] == 10.0 and latency["p99_9_ms"] == 12.0
    assert latency["client_p99_ms"] == 20.0
    # Stage table: seconds -> ms, empty recorders stay None-safe.
    decode = kpi["stages"]["stage.decode"]
    assert decode["p50_ms"] == pytest.approx(1.0)
    assert decode["p99_9_ms"] == pytest.approx(5.0)
    assert kpi["stages"]["stage.empty"]["p99_ms"] is None
    assert "requests" not in kpi["stages"]
    assert kpi["cost"]["hosts"] == 2


def test_kpis_from_rollup_without_source_falls_back_to_hosts():
    payload = synthetic_rollup()
    del payload["source"]
    kpi = kpis_from_rollup(payload, window_s=2.0)
    assert kpi["traffic"]["offered"] == 103    # handled + rejected
    assert kpi["cost"] is None                 # no shape given


def test_kpis_from_metrics_needs_caller_traffic():
    doc = {"schema": "repro-metrics/1",
           "metrics": synthetic_rollup()["metrics"]}
    kpi = kpis_from_metrics(doc, window_s=4.0,
                            traffic={"offered": 200, "completed": 150,
                                     "shed": 40},
                            shape=HostShape(cpu_cores=16), hosts=1)
    traffic = kpi["traffic"]
    assert traffic["goodput_per_s"] == pytest.approx(37.5)
    assert traffic["shed_pct"] == pytest.approx(20.0)
    assert traffic["failure_pct"] == pytest.approx(25.0)
    assert kpi["stages"]["stage.decode"]["count"] == 90
    assert kpi["cost"]["hosts"] == 1


def test_kpis_from_sweep_merges_points_and_stages():
    rollup = {
        "schema": "repro-sweep/1",
        "num_points": 2,
        "points": [
            {"label": "k2/s23", "seed": 23,
             "values": synthetic_rollup()},
            {"label": "scalar", "seed": 1,
             "values": {"throughput": 123.0}},   # not a fleet payload
        ],
        "merged_latency": {
            "turnaround": {"count": 500, "mean": 0.003, "p50": 0.002,
                           "p90": 0.004, "p99": 0.009, "p999": 0.011,
                           "min": 0.001, "max": 0.012,
                           "sample_count": 500, "samples_crc32": 1},
        },
    }
    kpi = kpis_from_sweep(rollup, window_s=2.0)
    assert [p["label"] for p in kpi["points"]] == ["k2/s23"]
    assert kpi["points"][0]["kpi"]["traffic"]["offered"] == 100
    stage = kpi["stages"]["turnaround"]
    assert stage["p90_ms"] == pytest.approx(4.0)
    assert stage["p99_9_ms"] == pytest.approx(11.0)


def test_compute_kpis_dispatch():
    assert compute_kpis(synthetic_rollup())["source"] == "fleet-rollup"
    assert compute_kpis({"schema": "repro-sweep/1", "points": [],
                         "merged_latency": {}})["source"] == "sweep"
    assert compute_kpis(
        {"schema": "repro-metrics/1", "metrics": {}})["source"] == "metrics"
    # A bare snapshot mapping (no schema key) still dispatches.
    assert compute_kpis(
        {"c": {"type": "counter", "total": 1}})["source"] == "metrics"
    with pytest.raises(ValueError):
        compute_kpis({"schema": "repro-perf/1"})
    with pytest.raises(TypeError):
        compute_kpis([1, 2, 3])


def test_critical_path_accumulator_embeds():
    class FakeAcc:
        def report(self):
            return {"decode": {"wait": 0.001, "service": 0.002}}

    kpi = kpis_from_rollup(synthetic_rollup(), critical_path=FakeAcc())
    assert kpi["critical_path"]["decode"]["service_ms"] == pytest.approx(2.0)
    # A plain report() dict works identically.
    kpi2 = kpis_from_rollup(synthetic_rollup(),
                            critical_path=FakeAcc().report())
    assert kpi2["critical_path"] == kpi["critical_path"]


def test_kpi_json_is_strict_and_stable():
    payload = kpis_from_rollup(synthetic_rollup(), window_s=2.0)
    payload["latency"]["p50_ms"] = math.nan      # sneak in a NaN
    text = kpi_json(payload)
    doc = json.loads(text)                       # strict JSON parses
    assert doc["latency"]["p50_ms"] is None      # scrubbed, not "NaN"
    assert text == kpi_json(payload)             # byte-stable
