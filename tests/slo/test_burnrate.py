"""Multi-window burn-rate alerting on the simulated event clock.

A synthetic probe drives a healthy -> outage -> recovered service; the
evaluator must page only during the outage (both windows over the
factor), resolve after recovery washes the windows out, and produce a
byte-identical alert log on a rerun.
"""

import json

import pytest

from repro.sim import Environment
from repro.slo import (AVAILABILITY, BurnRateRule, SLODefinition,
                       SLOEvaluator, default_rules)


def test_rule_validation():
    with pytest.raises(ValueError):
        BurnRateRule("x", fast_window_s=0.0, slow_window_s=1.0, factor=2.0)
    with pytest.raises(ValueError):
        BurnRateRule("x", fast_window_s=1.0, slow_window_s=1.0, factor=2.0)
    with pytest.raises(ValueError):
        BurnRateRule("x", fast_window_s=0.1, slow_window_s=1.0, factor=0.5)


def test_default_rules_shape():
    page, ticket = default_rules(4.0)
    assert page.label == "page" and ticket.label == "ticket"
    assert page.fast_window_s < page.slow_window_s
    assert page.factor > ticket.factor
    assert ticket.slow_window_s == pytest.approx(2.0)


def test_evaluator_rejects_bad_config():
    env = Environment()
    slo = SLODefinition(name="a", kind=AVAILABILITY, target=0.99)
    with pytest.raises(ValueError):
        SLOEvaluator(env, [])
    with pytest.raises(ValueError):
        SLOEvaluator(env, [slo], period_s=0.0)
    with pytest.raises(ValueError):
        SLOEvaluator(env, [slo, slo])
    evaluator = SLOEvaluator(env, [slo])
    evaluator.start()
    with pytest.raises(RuntimeError):
        evaluator.start()


def _outage_run():
    """1s healthy, 1s at 50% failures, 1.5s recovered."""
    env = Environment()
    slo = SLODefinition(name="avail", kind=AVAILABILITY, target=0.99)
    evaluator = SLOEvaluator(
        env, [slo],
        rules=[BurnRateRule("page", fast_window_s=0.1, slow_window_s=0.4,
                            factor=10.0)],
        period_s=0.05)
    state = {"good": 0, "bad": 0}
    evaluator.add_probe("avail", lambda: (state["good"], state["bad"]))
    evaluator.start()

    def driver():
        while env.now < 3.5:
            yield env.timeout(0.05)
            if env.now <= 1.0:
                state["good"] += 100
            elif env.now <= 2.0:
                state["good"] += 50
                state["bad"] += 50
            else:
                state["good"] += 100

    env.process(driver(), name="driver")
    env.run(until=3.5)
    return evaluator


def test_burn_alert_fires_in_outage_and_resolves_after():
    evaluator = _outage_run()
    fires = [e for e in evaluator.alert_log if e[3] == "fire"]
    resolves = [e for e in evaluator.alert_log if e[3] == "resolve"]
    assert fires and resolves
    # Nothing fires while healthy; the page lands early in the outage.
    assert 1.0 < fires[0][0] < 1.5
    # Both windows were over the factor at fire time.
    assert fires[0][4] >= 10.0 and fires[0][5] >= 10.0
    # Resolved once recovery washed the windows out, and stayed quiet.
    assert resolves[-1][0] < 3.0
    assert not any(on for on in
                   evaluator._objectives["avail"].firing.values())


def test_alert_log_is_deterministic():
    a = _outage_run().payload()
    b = _outage_run().payload()
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def test_payload_schema_and_verdict():
    evaluator = _outage_run()
    doc = evaluator.payload()
    assert doc["schema"] == "repro-slo/1"
    assert doc["ticks"] == evaluator.ticks > 0
    (avail,) = doc["objectives"]
    assert avail["name"] == "avail" and avail["kind"] == AVAILABILITY
    # 1s of 50% failures in 3.5s of traffic blows a 1% budget.
    assert avail["met"] is False and avail["budget_consumed"] > 1.0
    assert avail["alerts"] == len(
        [e for e in doc["alert_log"] if e[3] == "fire"])


def test_window_burn_empty_and_partial_history():
    env = Environment()
    slo = SLODefinition(name="a", kind=AVAILABILITY, target=0.9)
    evaluator = SLOEvaluator(env, [slo], period_s=0.1)
    obj = evaluator._objectives["a"]
    assert obj.window_burn(0.0, 1.0) == 0.0          # no history
    obj.history.append((0.1, 90.0, 10.0))
    # Window reaching before the first snapshot baselines at zero.
    assert obj.window_burn(0.1, 1.0) == pytest.approx(1.0)
    obj.history.append((0.2, 180.0, 10.0))
    # Trailing 0.1s window: 90 good, 0 bad since t=0.1.
    assert obj.window_burn(0.2, 0.1) == 0.0


def test_latency_objective_via_source_observation():
    """attach_source classifies per-request latency at the done event
    (exercised end-to-end through a tiny fake source here)."""
    env = Environment()
    slo = SLODefinition(name="lat", kind="latency", target=0.5,
                        threshold_s=0.1)

    class FakeSource:
        observers = []

    class Req:
        def __init__(self, sent_at):
            self.sent_at = sent_at

    class Done:
        def __init__(self, ok):
            self._ok = ok

    source = FakeSource()
    evaluator = SLOEvaluator(env, [slo], period_s=0.05)
    evaluator.attach_source(source)
    (observe,) = source.observers

    def driver():
        yield env.timeout(0.05)
        observe(Req(env.now - 0.01), Done(True))    # fast -> good
        observe(Req(env.now - 0.2), Done(True))     # slow -> bad
        observe(Req(env.now - 0.01), Done(False))   # failed -> bad

    env.process(driver(), name="driver")
    env.run(until=0.2)
    obj = evaluator._objectives["lat"]
    assert (obj.good, obj.bad) == (1, 2)
