"""FPGAReader resilience: retransmit table, quarantine, breaker routing."""

import pytest

from repro.calib import DEFAULT_TESTBED
from repro.engines import CpuCorePool
from repro.faults import (CircuitBreaker, FaultInjector, FaultPlan,
                          RetryPolicy)
from repro.fpga import FpgaDevice, FPGAChannel, ImageDecoderMirror
from repro.host import BatchSpec, FPGAReader, WorkItem
from repro.memory import MemManager
from repro.sim import Environment, SeedBank


def build(plan=None, retry=None, breaker=None, batch_size=4, unit_count=4,
          seed=0, cpu_cores=32):
    env = Environment()
    cpu = CpuCorePool(env, cpu_cores) if cpu_cores else None
    injector = FaultInjector(env, plan, seeds=SeedBank(seed)) \
        if plan is not None else None
    spec = BatchSpec(batch_size=batch_size, out_h=32, out_w=32, channels=3)
    pool = MemManager(env, unit_size=spec.batch_bytes,
                      unit_count=unit_count, allocate_arena=False)
    device = FpgaDevice(env, DEFAULT_TESTBED)
    mirror = ImageDecoderMirror(env, DEFAULT_TESTBED, injector=injector,
                                site="fpga0")
    device.load_mirror(mirror)
    channel = FPGAChannel(env, mirror, injector=injector, site="fpga0")
    reader = FPGAReader(env, DEFAULT_TESTBED, channel, pool, spec, cpu=cpu,
                        injector=injector, retry=retry, breaker=breaker)
    return env, pool, channel, reader


def items(n, size=50_000):
    return [WorkItem(source="dram", size_bytes=size,
                     work_pixels=int(375 * 500 * 1.5), channels=3, label=i)
            for i in range(n)]


def feed(env, reader, n):
    def _f(env):
        yield from reader.run_epoch(items(n))
    return env.process(_f(env))


def test_dropped_cmds_are_retried_to_success():
    env, pool, channel, reader = build(
        plan=FaultPlan.of(FaultPlan.cmd_drop(1.0, limit=2)),
        retry=RetryPolicy(max_attempts=3))
    proc = feed(env, reader, 8)
    env.run(until=proc)
    assert channel.dropped.total == 2
    assert reader.timeouts.total == 2
    assert reader.retries.total == 2
    assert reader.items_decoded_fpga.total == 8
    assert reader.batches_produced.total == 2
    assert pool.conservation_ok()


def test_timeout_without_retry_policy_raises():
    env, pool, channel, reader = build(
        plan=FaultPlan.of(FaultPlan.cmd_drop(1.0, limit=1)))
    feed(env, reader, 4)
    with pytest.raises(RuntimeError, match="missed its deadline"):
        env.run()


def test_poison_items_are_quarantined_not_batched():
    env, pool, channel, reader = build(
        plan=FaultPlan.of(FaultPlan.payload_corrupt(1.0)),
        retry=RetryPolicy(max_attempts=2), batch_size=4)
    proc = feed(env, reader, 8)
    env.run(until=proc)
    # Every item poisoned: retried once (attempt 2 is also poisoned,
    # since corruption travels with the cmd), then quarantined.
    assert reader.quarantine.total == 8
    assert reader.retries.total == 8
    assert reader.batches_produced.total == 0
    assert reader.empty_batches.total == 2
    assert pool.conservation_ok()          # empty units were recycled
    reasons = reader.quarantine.reasons()
    assert sum(reasons.values()) == 8
    assert all("BadHuffman" in r for r in reasons)


def test_partial_poison_batch_excludes_bad_slots():
    env, pool, channel, reader = build(
        plan=FaultPlan.of(FaultPlan.payload_corrupt(1.0, limit=1)),
        retry=RetryPolicy(max_attempts=1), batch_size=4)
    proc = feed(env, reader, 4)
    env.run(until=proc)
    assert reader.quarantine.total == 1
    assert reader.batches_produced.total == 1
    _, unit = pool.full_batch_queue.try_get()
    assert unit.item_count == 3
    assert len(unit.payload) == 3


def test_finish_stall_causes_timeout_then_duplicate_suppression():
    env, pool, channel, reader = build(
        plan=FaultPlan.of(FaultPlan.finish_stall(1.0, 0.05)),
        retry=RetryPolicy(deadline_s=0.001, max_attempts=3), batch_size=2)
    proc = feed(env, reader, 2)
    env.run(until=proc)
    env.run()       # let the stalled FINISH records surface
    # Deadlines fire long before the stalled FINISH: each item burns its
    # attempts and fails over to the CPU; the late records are stale.
    assert reader.failover_items.total == 2
    assert reader.duplicate_finishes.total >= 1
    assert reader.batches_produced.total == 1
    done = (reader.items_decoded_fpga.total + reader.failover_items.total
            + reader.quarantine.total)
    assert done == reader.items_accepted.total


def test_open_breaker_routes_items_to_cpu_and_probe_readmits():
    env, pool, channel, reader = build(batch_size=4)
    breaker = CircuitBreaker(env, failure_threshold=1, probe_successes=1,
                             probe_interval_s=10.0)
    reader.breaker = breaker
    breaker.record_failure()               # force the open state
    assert breaker.is_open
    proc = feed(env, reader, 4)
    env.run(until=proc)
    # Item 0 went through as the probe; its FINISH closed the circuit,
    # but items 1-3 were already routed to the CPU pool by then.
    assert reader.items_decoded_fpga.total >= 1
    assert reader.failover_items.total >= 1
    assert reader.items_decoded_fpga.total + reader.failover_items.total == 4
    assert not breaker.is_open
    assert int(breaker.recoveries.total) == 1
    assert reader.batches_produced.total == 1


def test_deadline_estimate_scales_with_cmd_size():
    env, pool, channel, reader = build()
    small = reader._deadline_estimate(
        reader._cmd_generator(items(1, size=1_000)[0],
                              _fake_batch(reader), 0))
    big = reader._deadline_estimate(
        reader._cmd_generator(items(1, size=1_000_000)[0],
                              _fake_batch(reader), 0))
    assert big > small


def _fake_batch(reader):
    from repro.host.reader import _OpenBatch
    unit = reader.pool.try_get_item()
    return _OpenBatch(unit=unit, tag=999)
