"""Tests for the DataCollector and the Table-1 API inventory."""

import pytest

from repro.calib import DEFAULT_TESTBED
from repro.engines import CpuCorePool
from repro.host import DataCollector, TABLE1, validate_table1
from repro.net import Link, NetRequest, Nic
from repro.sim import Environment, SeedBank
from repro.storage import FileManifest


def test_table1_fully_implemented():
    assert validate_table1() == []


def test_table1_covers_paper_rows():
    owners = {row.owner for row in TABLE1}
    assert owners == {"FPGAChannel", "MemManager", "DataCollector"}
    apis = {row.api for row in TABLE1}
    assert apis == {"submit_cmd", "drain_out", "get_item", "recycle_item",
                    "phy2virt", "virt2phy", "load_from_disk",
                    "load_from_net"}


def make_manifest(n=10):
    m = FileManifest()
    for i in range(n):
        m.add(f"{i}.jpg", size_bytes=1000 + i, height=375, width=500,
              channels=3, label=i % 3)
    return m


def test_disk_epoch_translates_metadata():
    env = Environment()
    coll = DataCollector(env)
    coll.load_from_disk(make_manifest(5))
    items = list(coll.disk_epoch())
    assert len(items) == 5
    assert all(i.source == "disk" for i in items)
    assert items[0].size_bytes == 1000
    assert items[0].work_pixels == int(375 * 500 * 1.5)
    assert coll.items_from_disk.total == 5


def test_disk_epoch_shuffle():
    env = Environment()
    coll = DataCollector(env)
    coll.load_from_disk(make_manifest(50))
    rng = SeedBank(1).stream("shuffle")
    shuffled = [i.entry.file_id for i in coll.disk_epoch(rng)]
    assert sorted(shuffled) == list(range(50))
    assert shuffled != list(range(50))


def test_disk_epoch_without_load_raises():
    coll = DataCollector(Environment())
    with pytest.raises(RuntimeError, match="load_from_disk"):
        next(coll.disk_epoch())


def test_net_source_blocks_until_arrival():
    env = Environment()
    link = Link(env, 1e9)
    cpu = CpuCorePool(env, 4)
    nic = Nic(env, link, cpu.tracker, per_packet_s=1e-6)
    coll = DataCollector(env)
    coll.load_from_net(nic)
    got = []

    def consumer(env):
        item = yield from coll.next_from_net()
        got.append((env.now, item))

    def sender(env):
        yield env.timeout(0.5)
        req = NetRequest(request_id=1, client_id=0, size_bytes=50_000,
                         height=375, width=500, channels=3, sent_at=env.now)
        yield from nic.deliver(req)

    env.process(consumer(env))
    env.process(sender(env))
    env.run()
    assert len(got) == 1
    t, item = got[0]
    assert t > 0.5
    assert item.source == "dram"
    assert item.request.request_id == 1
    assert coll.items_from_net.total == 1


def test_net_source_without_load_raises():
    env = Environment()
    coll = DataCollector(env)

    def p(env):
        yield from coll.next_from_net()

    env.process(p(env))
    with pytest.raises(RuntimeError, match="load_from_net"):
        env.run()
