"""Tests for FPGAReader (Algorithm 1) and Dispatcher (Algorithm 3)."""

import pytest

from repro.calib import DEFAULT_TESTBED
from repro.engines import CpuCorePool, DeviceBatch, GpuDevice
from repro.fpga import FpgaDevice, FPGAChannel, ImageDecoderMirror
from repro.host import BatchSpec, DataCollector, Dispatcher, FPGAReader, \
    WorkItem
from repro.memory import MemManager
from repro.sim import Environment, QueuePair
from repro.storage import FileManifest


def build(batch_size=4, unit_count=4, num_channels=1):
    env = Environment()
    cpu = CpuCorePool(env, 32)
    spec = BatchSpec(batch_size=batch_size, out_h=32, out_w=32, channels=3)
    pool = MemManager(env, unit_size=spec.batch_bytes,
                      unit_count=unit_count, allocate_arena=False)
    channels = []
    for i in range(num_channels):
        device = FpgaDevice(env, DEFAULT_TESTBED, name=f"f{i}")
        mirror = ImageDecoderMirror(env, DEFAULT_TESTBED, name=f"m{i}")
        device.load_mirror(mirror)
        channels.append(FPGAChannel(env, mirror, queue_id=i))
    reader = FPGAReader(env, DEFAULT_TESTBED, channels[0], pool, spec,
                        cpu=cpu, channels=channels)
    return env, cpu, spec, pool, channels, reader


def items(n, size=50_000):
    return [WorkItem(source="dram", size_bytes=size,
                     work_pixels=int(375 * 500 * 1.5), channels=3, label=i)
            for i in range(n)]


# ---------------------------------------------------------------- reader
def test_reader_produces_full_batches():
    env, cpu, spec, pool, channels, reader = build(batch_size=4)

    def feed(env):
        yield from reader.run_epoch(items(12))

    proc = env.process(feed(env))
    env.run(until=proc)
    assert reader.batches_produced.total == 3
    assert len(pool.full_batch_queue) == 3
    assert reader.items_submitted.total == 12


def test_reader_short_tail_batch():
    env, cpu, spec, pool, channels, reader = build(batch_size=4)

    def feed(env):
        yield from reader.run_epoch(items(6))

    proc = env.process(feed(env))
    env.run(until=proc)
    assert reader.batches_produced.total == 2
    # The tail unit carries only 2 items.
    ok, unit = pool.full_batch_queue.try_get()
    ok2, tail = pool.full_batch_queue.try_get()
    counts = sorted([unit.item_count, tail.item_count])
    assert counts == [2, 4]


def test_reader_batches_carry_items_and_offsets():
    env, cpu, spec, pool, channels, reader = build(batch_size=3)

    def feed(env):
        yield from reader.run_epoch(items(3))

    proc = env.process(feed(env))
    env.run(until=proc)
    _, unit = pool.full_batch_queue.try_get()
    assert unit.item_count == 3
    assert [w.label for w in unit.payload] == [0, 1, 2]
    assert unit.used_bytes == 3 * spec.item_bytes


def test_reader_blocks_on_pool_exhaustion_until_recycle():
    env, cpu, spec, pool, channels, reader = build(batch_size=2,
                                                   unit_count=2)

    def feed(env):
        yield from reader.run_epoch(items(12))

    def drain(env):
        for _ in range(6):
            unit = yield from pool.full_batch_queue.get()
            yield env.timeout(0.01)
            yield from pool.recycle_item(unit)

    proc = env.process(feed(env))
    env.process(drain(env))
    env.run(until=proc)
    assert reader.batches_produced.total == 6
    assert pool.conservation_ok()


def test_reader_round_robins_channels():
    env, cpu, spec, pool, channels, reader = build(batch_size=4,
                                                   num_channels=2)

    def feed(env):
        yield from reader.run_epoch(items(8))

    proc = env.process(feed(env))
    env.run(until=proc)
    assert channels[0].submitted.total == 4
    assert channels[1].submitted.total == 4


def test_reader_charges_preprocess_cpu():
    env, cpu, spec, pool, channels, reader = build(batch_size=4)

    def feed(env):
        yield from reader.run_epoch(items(8))
        yield env.timeout(1.0)

    proc = env.process(feed(env))
    env.run(until=proc)
    assert cpu.tracker.busy_seconds("preprocess") == pytest.approx(
        8 * DEFAULT_TESTBED.reader_cmd_cost_s)


def test_reader_recycle_shuts_channels():
    env, cpu, spec, pool, channels, reader = build()
    reader.recycle()
    assert not reader.running
    with pytest.raises(RuntimeError):
        channels[0].drain_out()


# ------------------------------------------------------------ dispatcher
class FakeSolver:
    """Minimal Trans-Queue owner for dispatcher tests."""

    def __init__(self, env, gpu, depth=2, item_bytes=32 * 32 * 3):
        self.gpu = gpu
        self.trans = QueuePair(env, capacity=depth, name="fake.trans")
        self.trans.seed([DeviceBatch(device_addr=i, capacity_bytes=64_000,
                                     gpu_index=gpu.index)
                         for i in range(depth)])

    @property
    def trans_queues(self):
        return self.trans


def test_dispatcher_round_robin_and_recycle():
    env = Environment()
    cpu = CpuCorePool(env, 8)
    pool = MemManager(env, unit_size=1024, unit_count=4,
                      allocate_arena=False)
    solvers = [FakeSolver(env, GpuDevice(env, DEFAULT_TESTBED, i))
               for i in range(2)]
    disp = Dispatcher(env, DEFAULT_TESTBED, pool, solvers, cpu=cpu)
    disp.start()

    def produce(env):
        for i in range(6):
            unit = yield from pool.get_item()
            unit.item_count = 8
            unit.used_bytes = 512
            yield from pool.full_batch_queue.put(unit)

    def consume(env, solver, got):
        while True:
            batch = yield from solver.trans_queues.full.get()
            got.append(batch.item_count)
            batch.reset()
            yield from solver.trans_queues.free.put(batch)

    got0, got1 = [], []
    env.process(produce(env))
    env.process(consume(env, solvers[0], got0))
    env.process(consume(env, solvers[1], got1))
    env.run(until=1.0)
    # Round-robin: 3 batches each; every host unit recycled.
    assert len(got0) == 3 and len(got1) == 3
    assert pool.conservation_ok()
    assert len(pool.free_batch_queue) == 4
    assert disp.batches_dispatched.total == 6


def test_dispatcher_requires_solvers():
    env = Environment()
    pool = MemManager(env, unit_size=64, unit_count=1,
                      allocate_arena=False)
    with pytest.raises(ValueError):
        Dispatcher(env, DEFAULT_TESTBED, pool, [])


def test_dispatcher_copies_take_pcie_time():
    env = Environment()
    pool = MemManager(env, unit_size=1 << 20, unit_count=2,
                      allocate_arena=False)
    solver = FakeSolver(env, GpuDevice(env, DEFAULT_TESTBED, 0))
    disp = Dispatcher(env, DEFAULT_TESTBED, pool, [solver])
    disp.start()
    arrival = []

    def produce(env):
        unit = yield from pool.get_item()
        unit.item_count = 1
        unit.used_bytes = int(DEFAULT_TESTBED.pcie_copy_rate * 0.01)
        yield from pool.full_batch_queue.put(unit)

    def consume(env):
        yield from solver.trans_queues.full.get()
        arrival.append(env.now)

    env.process(produce(env))
    env.process(consume(env))
    env.run(until=1.0)
    assert arrival[0] == pytest.approx(0.01, abs=1e-4)


def test_reader_run_stream_blocking_source():
    """run_stream pulls from a blocking generator source (the NIC path)."""
    env, cpu, spec, pool, channels, reader = build(batch_size=2)
    from repro.sim import Channel
    source_q = Channel(env, capacity=16, name="source")

    def next_item():
        item = yield from source_q.get()
        return item

    def producer(env):
        for item in items(6):
            yield env.timeout(0.001)
            yield from source_q.put(item)

    def drain(env):
        for _ in range(3):
            unit = yield from pool.full_batch_queue.get()
            yield from pool.recycle_item(unit)

    env.process(producer(env))
    env.process(reader.run_stream(next_item, count=6))
    proc = env.process(drain(env))
    env.run(until=proc)
    assert reader.items_submitted.total == 6
    assert reader.batches_produced.total == 3
    assert pool.conservation_ok()


def test_reader_run_stream_unbounded_keeps_consuming():
    env, cpu, spec, pool, channels, reader = build(batch_size=2,
                                                   unit_count=2)
    from repro.sim import Channel
    source_q = Channel(env, capacity=64, name="source")

    def next_item():
        item = yield from source_q.get()
        return item

    def producer(env):
        while True:
            yield env.timeout(0.0005)
            yield from source_q.put(items(1)[0])

    def recycler(env):
        while True:
            unit = yield from pool.full_batch_queue.get()
            yield from pool.recycle_item(unit)

    env.process(producer(env))
    env.process(reader.run_stream(next_item))
    env.process(recycler(env))
    env.run(until=0.1)
    assert reader.items_submitted.total > 50
    assert pool.conservation_ok()


# ------------------------------------------------- dispatcher stop / drain
def test_dispatcher_request_drain_exits_at_round_boundary():
    env = Environment()
    pool = MemManager(env, unit_size=1024, unit_count=4,
                      allocate_arena=False)
    solver = FakeSolver(env, GpuDevice(env, DEFAULT_TESTBED, 0))
    disp = Dispatcher(env, DEFAULT_TESTBED, pool, [solver])
    disp.start()

    def produce(env):
        for _ in range(2):
            unit = yield from pool.get_item()
            unit.item_count = 4
            unit.used_bytes = 256
            yield from pool.full_batch_queue.put(unit)
        disp.request_drain()

    def consume(env):
        while True:
            batch = yield from solver.trans_queues.full.get()
            batch.reset()
            yield from solver.trans_queues.free.put(batch)

    env.process(produce(env))
    env.process(consume(env))
    env.run(until=1.0)
    assert disp.stopped
    assert not disp.proc.is_alive
    assert disp.batches_dispatched.total == 2
    assert pool.conservation_ok()


def test_dispatcher_stop_while_parked_on_empty_queue():
    env = Environment()
    pool = MemManager(env, unit_size=1024, unit_count=2,
                      allocate_arena=False)
    solver = FakeSolver(env, GpuDevice(env, DEFAULT_TESTBED, 0))
    disp = Dispatcher(env, DEFAULT_TESTBED, pool, [solver])
    disp.start()
    env.run(until=0.1)                     # parked on Full_Batch_Queue
    disp.stop()
    env.run(until=0.2)
    assert disp.stopped
    assert not disp.proc.is_alive
    assert pool.conservation_ok()
    assert len(pool.free_batch_queue) == 2


def test_dispatcher_stop_restitutes_half_round_state():
    """Stop the pump while it holds a host unit and waits for a device
    buffer: the unit must go back to the Full_Batch_Queue, conserved."""
    env = Environment()
    pool = MemManager(env, unit_size=1024, unit_count=2,
                      allocate_arena=False)
    solver = FakeSolver(env, GpuDevice(env, DEFAULT_TESTBED, 0), depth=2)
    disp = Dispatcher(env, DEFAULT_TESTBED, pool, [solver])

    def starve_trans(env):
        # Take both device buffers so the pump blocks mid-round.
        yield from solver.trans_queues.free.get()
        yield from solver.trans_queues.free.get()

    def produce(env):
        unit = yield from pool.get_item()
        unit.item_count = 4
        unit.used_bytes = 256
        yield from pool.full_batch_queue.put(unit)

    env.process(starve_trans(env))
    env.process(produce(env))
    env.run(until=0.05)
    disp.start()
    env.run(until=0.1)                     # holds the unit, waits for dev
    disp.stop()
    env.run(until=0.2)
    assert disp.stopped
    assert len(pool.full_batch_queue) == 1   # restituted, not lost
    assert pool.conservation_ok()


def test_dispatcher_stop_before_start_and_twice_is_safe():
    env = Environment()
    pool = MemManager(env, unit_size=64, unit_count=1,
                      allocate_arena=False)
    solver = FakeSolver(env, GpuDevice(env, DEFAULT_TESTBED, 0))
    disp = Dispatcher(env, DEFAULT_TESTBED, pool, [solver])
    disp.stop()                            # never started: no-op
    assert disp.stopped
    disp.stop()                            # idempotent
    assert disp.stopped
