"""Tests for the link, NIC RX path and client fleet."""

import pytest

from repro.net import ClientFleet, Link, NetRequest, Nic
from repro.sim import BusyTracker, Environment, SeedBank


def make_stack(env, rate=1e9, mtu=1000, rx_capacity=64):
    link = Link(env, rate_bytes_per_s=rate, mtu=mtu)
    cpu = BusyTracker(env, name="cpu")
    nic = Nic(env, link, cpu, per_packet_s=1e-6, rx_capacity=rx_capacity)
    return link, cpu, nic


def req(rid, size, env, done=True):
    return NetRequest(request_id=rid, client_id=0, size_bytes=size,
                      height=375, width=500, channels=3, sent_at=env.now,
                      done_event=env.event() if done else None)


def test_link_transmit_time():
    env = Environment()
    link = Link(env, rate_bytes_per_s=1e6)
    done = []

    def p(env):
        yield from link.transmit(500_000)
        done.append(env.now)

    env.process(p(env))
    env.run()
    assert done == [pytest.approx(0.5)]
    assert link.bytes_sent.total == 500_000


def test_link_serializes_senders():
    env = Environment()
    link = Link(env, rate_bytes_per_s=1e6)
    done = []

    def p(env, name):
        yield from link.transmit(1_000_000)
        done.append((name, env.now))

    env.process(p(env, "a"))
    env.process(p(env, "b"))
    env.run()
    assert done[0][1] == pytest.approx(1.0)
    assert done[1][1] == pytest.approx(2.0)


def test_link_packet_count():
    env = Environment()
    link = Link(env, rate_bytes_per_s=1e9, mtu=9000)
    assert link.packets_for(9000) == 1
    assert link.packets_for(9001) == 2
    assert link.packets_for(1) == 1


def test_link_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Link(env, rate_bytes_per_s=0)
    link = Link(env, rate_bytes_per_s=1e6)

    def p(env):
        yield from link.transmit(0)

    env.process(p(env))
    with pytest.raises(ValueError):
        env.run()


def test_nic_delivers_to_rx_queue():
    env = Environment()
    link, cpu, nic = make_stack(env)
    r = req(1, 10_000, env)

    def p(env):
        yield from nic.deliver(r)

    env.process(p(env))
    env.run()
    assert len(nic.rx_queue) == 1
    assert r.received_at > 0
    assert nic.packets.total == 10  # 10,000 B / 1,000 MTU


def test_nic_charges_per_packet_cpu():
    env = Environment()
    link, cpu, nic = make_stack(env)

    def p(env):
        yield from nic.deliver(req(1, 50_000, env))
        yield env.timeout(1.0)

    env.process(p(env))
    env.run()
    assert cpu.busy_seconds("net-rx") == pytest.approx(50e-6)


def test_nic_rx_overflow_drops_and_fails_request():
    env = Environment()
    link, cpu, nic = make_stack(env, rx_capacity=1)
    r1, r2 = req(1, 1000, env), req(2, 1000, env)
    failed = []

    def sender(env):
        yield from nic.deliver(r1)
        yield from nic.deliver(r2)

    def watcher(env):
        try:
            yield r2.done_event
        except ConnectionError:
            failed.append(r2.request_id)

    env.process(sender(env))
    env.process(watcher(env))
    env.run()
    assert nic.drops.total == 1
    assert failed == [2]


def test_client_fleet_closed_loop_window():
    env = Environment()
    link, cpu, nic = make_stack(env, rate=1e12)
    fleet = ClientFleet(env, nic, num_clients=2, image_hw=(375, 500),
                        rng=SeedBank(0).stream("clients"), window=3)
    fleet.start()

    # A server that answers instantly.
    def server(env):
        while True:
            r = yield from nic.rx_queue.get()
            r.done_event.succeed()

    env.process(server(env))
    env.run(until=0.05)
    # 2 clients x 3 window slots all active.
    assert fleet.completed.total > 10
    assert fleet.rtt.count == fleet.completed.total


def test_client_fleet_outstanding_bounded():
    env = Environment()
    link, cpu, nic = make_stack(env, rate=1e12, rx_capacity=10_000)
    fleet = ClientFleet(env, nic, num_clients=2, image_hw=(375, 500),
                        rng=SeedBank(0).stream("clients"), window=4)
    fleet.start()
    env.run(until=0.05)  # no server: queue fills to the window and stops
    assert len(nic.rx_queue) == 2 * 4
    assert fleet.sent.total == 8


def test_client_image_sizes_plausible():
    env = Environment()
    link, cpu, nic = make_stack(env, rate=1e12, rx_capacity=10_000)
    fleet = ClientFleet(env, nic, num_clients=1, image_hw=(375, 500),
                        rng=SeedBank(7).stream("clients"), window=200)
    fleet.start()

    def server(env):
        while True:
            r = yield from nic.rx_queue.get()
            r.done_event.succeed()

    env.process(server(env))
    env.run(until=0.01)
    sizes = []

    # Re-sample the distribution directly for statistics.
    rng = SeedBank(7).stream("check")
    sizes = [fleet._default_size(rng) for _ in range(2000)]
    mean = sum(sizes) / len(sizes)
    # Paper: 500x375 color JPEGs, ~110 KB mean at web quality.
    assert 60_000 < mean < 200_000


def test_client_fleet_validation():
    env = Environment()
    link, cpu, nic = make_stack(env)
    with pytest.raises(ValueError):
        ClientFleet(env, nic, num_clients=0, image_hw=(1, 1),
                    rng=SeedBank(0).stream("x"))
