"""Cross-module integration tests.

These exercise the *whole* Figure-3 stack in one simulation — including
a functional run where real JPEG bytes flow NIC-to-GPU-buffer — and
check system-level invariants no unit test can see: epoch completeness,
buffer conservation under load, end-to-end determinism, and agreement
between the functional and modeled fidelity levels.
"""

import numpy as np
import pytest

from repro.backends import DLBoosterBackend
from repro.calib import DEFAULT_TESTBED, TRAIN_MODELS
from repro.data import functional_jpeg_manifest, imagenet_like_manifest
from repro.engines import CpuCorePool, GpuDevice, SyncGroup, TrainingSolver
from repro.host import BatchSpec
from repro.jpeg import decode_resized
from repro.sim import Environment, SeedBank


def build_training(manifest, model="alexnet", gpus=1, functional=False,
                   bspec=None):
    env = Environment()
    cpu = CpuCorePool(env, DEFAULT_TESTBED.cpu_cores)
    spec = TRAIN_MODELS[model]
    if bspec is None:
        bspec = BatchSpec(batch_size=spec.batch_size,
                          out_h=spec.input_hw[0], out_w=spec.input_hw[1],
                          channels=spec.channels)
    sync = SyncGroup(env, gpus, spec, DEFAULT_TESTBED)
    solvers = []
    for g in range(gpus):
        s = TrainingSolver(env, GpuDevice(env, DEFAULT_TESTBED, g), spec,
                           sync, cpu, DEFAULT_TESTBED,
                           batch_size=bspec.batch_size)
        s.start()
        solvers.append(s)
    backend = DLBoosterBackend(env, DEFAULT_TESTBED, cpu, manifest, bspec,
                               SeedBank(0), functional=functional)
    backend.start(solvers)
    return env, cpu, backend, solvers


def test_functional_pixels_reach_device_batches():
    """Real JPEGs -> FPGA decode -> hugepage pool -> solver, bit-exact."""
    manifest = functional_jpeg_manifest(8, 40, 56, SeedBank(1))
    bspec = BatchSpec(batch_size=4, out_h=28, out_w=28, channels=3)
    env = Environment()
    cpu = CpuCorePool(env, 8)
    backend = DLBoosterBackend(env, DEFAULT_TESTBED, cpu, manifest, bspec,
                               SeedBank(0), functional=True, pool_units=2)

    # Drain full batches manually (no GPU needed for this check).
    seen = []

    def drain(env):
        for _ in range(2):  # 8 images = 2 batches of 4
            unit = yield from backend.pool.full_batch_queue.get()
            # Copy out pixels before recycling.
            for slot in range(unit.item_count):
                raw = unit.read(slot * bspec.item_bytes, bspec.item_bytes)
                seen.append((unit.payload[slot], raw.copy()))
            yield from backend.pool.recycle_item(unit)

    def feed(env):
        from repro.backends.base import epoch_stream
        yield from backend.reader.run_epoch(epoch_stream(manifest, None, 0))

    env.process(feed(env))
    proc = env.process(drain(env))
    env.run(until=proc)
    assert len(seen) == 8
    for work_item, raw in seen:
        expected = decode_resized(work_item.payload, 28, 28)
        np.testing.assert_array_equal(
            raw.reshape(28, 28, 3), expected)


def test_epoch_completeness_every_image_once():
    """One epoch submits every manifest entry exactly once."""
    manifest = imagenet_like_manifest(1000, SeedBank(0))
    env, cpu, backend, solvers = build_training(manifest)
    horizon = 0.0
    while backend.epochs_done < 1:
        horizon += 0.5
        env.run(until=horizon)
        assert horizon < 60, "epoch never completed"
    decoded = backend.devices[0].mirror.decoded.total
    assert decoded >= 1000
    assert backend.reader.items_submitted.total % 1000 == 0 or \
        backend.reader.items_submitted.total >= 1000


def test_pool_conservation_under_sustained_load():
    manifest = imagenet_like_manifest(50_000, SeedBank(0))
    env, cpu, backend, solvers = build_training(manifest, gpus=2)
    for t in (1.0, 2.5, 4.0):
        env.run(until=t)
        assert backend.pool.conservation_ok()
    assert solvers[0].images_trained.total > 0
    assert solvers[1].images_trained.total > 0


def test_full_stack_determinism():
    def one_run():
        manifest = imagenet_like_manifest(20_000, SeedBank(3))
        env, cpu, backend, solvers = build_training(manifest, gpus=2)
        env.run(until=3.0)
        return (tuple(s.images_trained.total for s in solvers),
                cpu.cores_used(),
                backend.devices[0].mirror.decoded.total)

    assert one_run() == one_run()


def test_modeled_and_functional_same_virtual_time():
    """Fidelity levels share the timing model: identical simulated time
    for the same (sizes, geometry) corpus."""
    seeds = SeedBank(5)
    functional = functional_jpeg_manifest(12, 32, 48, seeds)
    # A modeled twin: same byte sizes and geometry, no payloads.
    from repro.storage import FileManifest
    modeled = FileManifest()
    for e in functional:
        modeled.add(e.name, e.size_bytes, e.height, e.width, e.channels,
                    e.label)

    times = {}
    for label, manifest, fn in (("functional", functional, True),
                                ("modeled", modeled, False)):
        bspec = BatchSpec(batch_size=4, out_h=16, out_w=16, channels=3)
        env = Environment()
        cpu = CpuCorePool(env, 8)
        backend = DLBoosterBackend(env, DEFAULT_TESTBED, cpu, manifest,
                                   bspec, SeedBank(0), functional=fn,
                                   pool_units=4)

        def drain(env, backend=backend):
            for _ in range(3):
                unit = yield from backend.pool.full_batch_queue.get()
                yield from backend.pool.recycle_item(unit)

        def feed(env, backend=backend, manifest=manifest):
            from repro.backends.base import epoch_stream
            yield from backend.reader.run_epoch(
                epoch_stream(manifest, None, 0))

        env.process(feed(env))
        proc = env.process(drain(env))
        env.run(until=proc)
        times[label] = env.now
    assert times["functional"] == pytest.approx(times["modeled"],
                                                rel=1e-9)


def test_cpu_cores_never_exceed_physical():
    manifest = imagenet_like_manifest(50_000, SeedBank(0))
    env = Environment()
    cpu = CpuCorePool(env, DEFAULT_TESTBED.cpu_cores)
    spec = TRAIN_MODELS["alexnet"]
    bspec = BatchSpec(batch_size=spec.batch_size, out_h=227, out_w=227,
                      channels=3)
    from repro.backends import CpuOnlineBackend
    sync = SyncGroup(env, 2, spec, DEFAULT_TESTBED)
    solvers = []
    for g in range(2):
        s = TrainingSolver(env, GpuDevice(env, DEFAULT_TESTBED, g), spec,
                           sync, cpu, DEFAULT_TESTBED)
        s.start()
        solvers.append(s)
    CpuOnlineBackend(env, DEFAULT_TESTBED, cpu, manifest, bspec,
                     SeedBank(0)).start(solvers)
    env.run(until=4.0)
    # Slot-accounted work can never exceed the physical pool; the
    # unaccounted charges (launch/poll fractions) are bounded too.
    slotted = cpu.tracker.busy_seconds("preprocess") / 4.0
    assert slotted <= DEFAULT_TESTBED.cpu_cores + 1e-6
    assert cpu.cores_used() <= DEFAULT_TESTBED.cpu_cores + 4


def test_two_fpgas_share_one_nvme_disk():
    """Two decoder mirrors reading the same disk contend on its
    bandwidth; both still make progress and split the work."""
    from repro.storage import NvmeDisk

    manifest = imagenet_like_manifest(20_000, SeedBank(2))
    env = Environment()
    cpu = CpuCorePool(env, DEFAULT_TESTBED.cpu_cores)
    disk = NvmeDisk(env, DEFAULT_TESTBED)
    spec = TRAIN_MODELS["alexnet"]
    bspec = BatchSpec(batch_size=spec.batch_size, out_h=227, out_w=227,
                      channels=3)
    backend = DLBoosterBackend(env, DEFAULT_TESTBED, cpu, manifest, bspec,
                               SeedBank(0), num_fpgas=2, disk=disk)

    def feed(env):
        from repro.backends.base import epoch_stream
        yield from backend.reader.run_epoch(epoch_stream(manifest, None, 0))

    def recycler(env):
        while True:
            unit = yield from backend.pool.full_batch_queue.get()
            yield from backend.pool.recycle_item(unit)

    env.process(feed(env))
    env.process(recycler(env))
    env.run(until=2.0)
    decoded = [d.mirror.decoded.total for d in backend.devices]
    assert all(d > 100 for d in decoded)
    assert abs(decoded[0] - decoded[1]) <= 2
    assert disk.bytes_read.total > 0
    assert disk.utilization() > 0.1
