"""Tests for MetricsRegistry, QueueDepthSampler and trace/JSON export."""

import json

import pytest

from repro.memory import MemManager
from repro.sim import (BusyTracker, Channel, Counter, Environment,
                       LatencyRecorder, TimeWeighted, Tracer)
from repro.telemetry import (BENCH_SCHEMA, MetricsRegistry,
                             QueueDepthSampler, emit_bench, load_bench)


# ------------------------------------------------------------- registry core
def test_register_by_instrument_name_and_collision_suffix():
    env = Environment()
    reg = MetricsRegistry()
    a = Counter(env, name="nic.packets")
    b = Counter(env, name="nic.packets")
    reg.register(a)
    reg.register(b)
    assert reg.get("nic.packets") is a
    assert reg.get("nic.packets#2") is b
    assert len(reg) == 2
    # re-registering the same object is a no-op
    reg.register(a)
    assert len(reg) == 2


def test_register_with_explicit_canonical_name():
    env = Environment()
    reg = MetricsRegistry()
    lat = LatencyRecorder(name="fpga-reader.latency")
    reg.register(lat, name="backend.reader.latency")
    assert reg.get("backend.reader.latency") is lat


def test_installed_context_auto_registers_everything():
    env = Environment()
    reg = MetricsRegistry()
    with reg.installed():
        Counter(env, name="a.count")
        TimeWeighted(env, 0, name="a.depth")
        BusyTracker(env, name="a.busy")
        LatencyRecorder(name="a.latency")
        ch = Channel(env, name="nic.rx")   # registers occupancy + wait
    outside = Counter(env, name="outside")
    assert "a.count" in reg and "a.latency" in reg
    assert "nic.rx.occupancy" in reg and "nic.rx.wait" in reg
    assert "outside" not in reg
    assert ch.occupancy is reg.get("nic.rx.occupancy")


def test_installed_context_restores_previous_sink():
    env = Environment()
    outer, inner = MetricsRegistry("outer"), MetricsRegistry("inner")
    with outer.installed():
        Counter(env, name="o1")
        with inner.installed():
            Counter(env, name="i1")
        Counter(env, name="o2")
    assert sorted(outer.names()) == ["o1", "o2"]
    assert inner.names() == ["i1"]


def test_factories_and_subtree():
    env = Environment()
    reg = MetricsRegistry()
    reg.counter(env, "nic.rx.packets")
    reg.gauge(env, "nic.rx.depth")
    reg.latency("nic.rx.wait")
    reg.counter(env, "gpu0.predictions")
    sub = reg.subtree("nic.rx")
    assert sorted(sub) == ["nic.rx.depth", "nic.rx.packets", "nic.rx.wait"]
    assert reg.subtree("nic.rx.depth") == {
        "nic.rx.depth": reg.get("nic.rx.depth")}
    assert "gpu0.predictions" not in sub


def test_snapshot_types_and_values():
    env = Environment()
    reg = MetricsRegistry()
    c = reg.counter(env, "c")
    g = reg.gauge(env, "g", initial=2.0)
    lat = reg.latency("l")
    c.add(3)
    g.set(5.0)
    for v in (1.0, 2.0, 3.0, 4.0):
        lat.record(v)
    snap = reg.snapshot()
    assert snap["c"]["type"] == "counter" and snap["c"]["total"] == 3.0
    assert snap["g"]["type"] == "gauge" and snap["g"]["value"] == 5.0
    assert snap["l"]["type"] == "latency"
    assert snap["l"]["count"] == 4
    assert snap["l"]["p50"] == pytest.approx(2.5)
    assert snap["l"]["exact"] is True


def test_to_json_is_strict_and_scrubs_nan(tmp_path):
    env = Environment()
    reg = MetricsRegistry(name="unit")
    reg.latency("empty.latency")        # all-NaN stats
    reg.counter(env, "ok.count").add(7)
    path = tmp_path / "metrics.json"
    text = reg.to_json(str(path), extra={"queue_depths": {"q": [(0.0, 1.0)]}})
    doc = json.loads(text)              # strict: json.dumps(allow_nan=False)
    assert doc == json.loads(path.read_text())
    assert doc["schema"] == "repro-metrics/1"
    assert doc["registry"] == "unit"
    assert doc["metrics"]["empty.latency"]["mean"] is None
    assert doc["metrics"]["ok.count"]["total"] == 7.0
    assert doc["queue_depths"]["q"] == [[0.0, 1.0]]


def test_registry_to_trace_emits_counter_events():
    env = Environment()
    reg = MetricsRegistry()
    reg.counter(env, "c").add(2)
    tracer = Tracer(env)
    reg.to_trace(tracer)
    events = json.loads(tracer.to_chrome_trace())
    counters = [e for e in events if e["ph"] == "C"]
    assert counters and counters[0]["name"] == "metric:c"
    assert counters[0]["args"]["total"] == 2.0


# ------------------------------------------------------------------ sampler
def test_sampler_records_depth_series():
    env = Environment()
    ch = Channel(env, name="nic.rx")
    sampler = QueueDepthSampler(env, interval_s=0.01)
    sampler.watch_channel(ch)
    sampler.start()

    def burst(env):
        # Mid-interval times (0.105, 0.205) so no event shares a sample
        # instant and the observed series is scheduling-independent.
        yield env.timeout(0.105)
        for i in range(8):
            ch.try_put(i)
        yield env.timeout(0.1)
        ch.drain()

    env.process(burst(env))
    env.run(until=0.5)
    series = sampler.series()["nic.rx.depth"]
    assert len(series) > 10
    times = [t for t, _ in series]
    assert times == sorted(times)
    assert sampler.peak("nic.rx.depth") == 8.0
    assert sampler.last("nic.rx.depth") == 0.0
    assert 0.0 < sampler.mean("nic.rx.depth") < 8.0


def test_sampler_decimates_to_bounded_memory():
    env = Environment()
    ch = Channel(env, name="q")
    sampler = QueueDepthSampler(env, interval_s=0.001, max_points=64)
    sampler.watch_channel(ch)
    sampler.start()
    env.run(until=1.0)
    assert sampler.decimations >= 1
    assert len(sampler.series()["q.depth"]) <= 64
    assert sampler.interval_s > 0.001    # coarsened, never truncated
    # Uniform coverage: first samples survive decimation, so the series
    # still spans (most of) the run rather than just its head.
    series = sampler.series()["q.depth"]
    assert series[0][0] == pytest.approx(0.0)
    assert series[-1][0] > 0.5


def test_sampler_watch_pool_and_pair():
    env = Environment()
    pool = MemManager(env, unit_size=16, unit_count=4, name="pool",
                      allocate_arena=False)
    sampler = QueueDepthSampler(env, interval_s=0.01)
    sampler.watch_pool(pool)
    sampler.watch_pair(pool.queues)
    sampler.start()

    def consume(env):
        unit = yield from pool.get_item()
        yield env.timeout(0.2)
        yield from pool.recycle_item(unit)

    env.process(consume(env))
    env.run(until=0.5)
    assert sampler.peak("pool.in_use") == 1.0
    assert sampler.last("pool.in_use") == 0.0
    assert sampler.peak("pool.free.depth") == 4.0
    assert "pool.full.depth" in sampler.series()


def test_sampler_rejects_duplicates_and_bad_config():
    env = Environment()
    ch = Channel(env, name="q")
    sampler = QueueDepthSampler(env)
    sampler.watch_channel(ch)
    with pytest.raises(ValueError):
        sampler.watch_channel(ch)
    with pytest.raises(ValueError):
        QueueDepthSampler(env, interval_s=0.0)
    with pytest.raises(ValueError):
        QueueDepthSampler(env, max_points=4)


def test_sampler_to_trace_counter_tracks():
    env = Environment()
    ch = Channel(env, name="q")
    sampler = QueueDepthSampler(env, interval_s=0.05)
    sampler.watch_channel(ch)
    sampler.start()
    ch.try_put("x")
    env.run(until=0.2)
    tracer = Tracer(env)
    sampler.to_trace(tracer)
    events = json.loads(tracer.to_chrome_trace())
    counters = [e for e in events if e["ph"] == "C" and e["name"] == "q.depth"]
    assert len(counters) >= 3
    assert all(e["args"]["depth"] == 1.0 for e in counters)
    # samples are backdated to their collection time, not export time
    assert counters[0]["ts"] == pytest.approx(0.0)


# ------------------------------------------------------------------- bench
def test_emit_and_load_bench_roundtrip(tmp_path):
    path = tmp_path / "BENCH_TEST.json"
    doc = emit_bench({"p99_ms": 4.2, "bad": float("nan")}, str(path),
                     label="unit", meta={"profile": "quick"})
    assert doc["schema"] == BENCH_SCHEMA
    loaded = load_bench(str(path))
    assert loaded["metrics"]["p99_ms"] == 4.2
    assert loaded["metrics"]["bad"] is None
    assert loaded["meta"]["profile"] == "quick"
    with pytest.raises(ValueError):
        (tmp_path / "junk.json").write_text("{}")
        load_bench(str(tmp_path / "junk.json"))
