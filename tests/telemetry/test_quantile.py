"""Quantile accuracy of the reservoir-sampling LatencyRecorder.

Validated against exact ``np.percentile`` (linear interpolation — the
same rule the recorder uses, so below-cap results must match to float
precision and beyond-cap results must land within the documented
reservoir rank-error bound).

Documented bound: for a reservoir of ``k`` samples, the estimate of the
q-th percentile has rank standard error ``sqrt(q*(1-q)/k)`` (q as a
fraction).  We assert the estimate lies between the exact percentiles at
``q +- 5 standard errors`` (plus one rank point of slack for
interpolation granularity), which a correct uniform reservoir satisfies
essentially always and the old head-biased recorder fails immediately
for any late-shifting stream.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import LatencyRecorder


def rank_bound(q: float, cap: int) -> float:
    """+-rank window (in percentile points) for a cap-sized reservoir."""
    frac = q / 100.0
    return 100.0 * 5.0 * math.sqrt(frac * (1.0 - frac) / cap) + 1.0


def assert_within_rank_bound(recorder, data, q):
    lo_q = max(0.0, q - rank_bound(q, recorder.sample_count))
    hi_q = min(100.0, q + rank_bound(q, recorder.sample_count))
    lo = np.percentile(data, lo_q)
    hi = np.percentile(data, hi_q)
    estimate = recorder.percentile(q)
    assert lo <= estimate <= hi, (
        f"p{q} estimate {estimate} outside exact[{lo_q:.2f}%, {hi_q:.2f}%] "
        f"= [{lo}, {hi}]")


# ------------------------------------------------------- the 250k regression
def test_late_tail_250k_stream_p99_within_5pct():
    """Acceptance pin: a 250k-sample stream whose slowest decile arrives
    *last* must report p99 within 5% of exact ``np.percentile``.

    The old recorder stopped sampling at ``max_samples``, so the entire
    late tail was invisible and p99 reflected only the fast head.
    """
    rng = np.random.default_rng(1234)
    head = rng.uniform(0.001, 0.010, size=150_000)       # fast early phase
    tail = rng.uniform(0.080, 0.120, size=100_000)       # slow late phase
    stream = np.concatenate([head, tail])                # tail arrives last
    recorder = LatencyRecorder(name="regression", max_samples=20_000)
    for value in stream:
        recorder.record(float(value))
    exact = float(np.percentile(stream, 99))
    assert recorder.count == 250_000
    assert recorder.sample_count == 20_000
    assert recorder.p99() == pytest.approx(exact, rel=0.05)
    # And the head-bias smoking gun: the estimate must be nowhere near
    # the head-only percentile the old code would have reported.
    head_only = float(np.percentile(stream[:20_000], 99))
    assert recorder.p99() > 5 * head_only


# ------------------------------------------------- orderings x distributions
def _uniform(rng, n):
    return rng.uniform(0.0, 1.0, size=n)


def _heavy_tail(rng, n):
    return rng.lognormal(mean=-3.0, sigma=1.5, size=n)


@pytest.mark.parametrize("order", ["ascending", "descending", "shuffled"])
@pytest.mark.parametrize("dist", [_uniform, _heavy_tail])
@pytest.mark.parametrize("q", [50.0, 90.0, 99.0])
def test_reservoir_vs_exact_across_orderings(order, dist, q):
    """n >> cap: the estimate stays inside the documented rank bound for
    ascending, descending and shuffled arrival orders."""
    n, cap = 50_000, 4_096
    rng = np.random.default_rng(7)
    data = dist(rng, n)
    if order == "ascending":
        stream = np.sort(data)
    elif order == "descending":
        stream = np.sort(data)[::-1]
    else:
        stream = data
    recorder = LatencyRecorder(name=f"{order}-{q}", max_samples=cap)
    for value in stream:
        recorder.record(float(value))
    assert recorder.sample_count == cap
    assert_within_rank_bound(recorder, data, q)


# ------------------------------------------------------- hypothesis properties
@settings(max_examples=60, deadline=None)
@given(values=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                 allow_nan=False, allow_infinity=False),
                       min_size=1, max_size=200),
       q=st.floats(min_value=0.0, max_value=100.0))
def test_exact_below_cap_matches_numpy(values, q):
    """While the stream fits in the reservoir, percentile() is *exact*:
    identical (to float tolerance) to np.percentile's linear rule."""
    recorder = LatencyRecorder(name="exact", max_samples=1_024)
    for value in values:
        recorder.record(value)
    assert recorder.is_exact
    expected = float(np.percentile(values, q))
    assert recorder.percentile(q) == pytest.approx(expected, rel=1e-9,
                                                   abs=1e-12)


@settings(max_examples=40, deadline=None)
@given(values=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                 allow_nan=False, allow_infinity=False),
                       min_size=50, max_size=2_000))
def test_scalar_stats_exact_beyond_cap(values):
    """count/mean/min/max never degrade to reservoir estimates."""
    cap = 32
    recorder = LatencyRecorder(name="scalars", max_samples=cap)
    for value in values:
        recorder.record(value)
    assert recorder.count == len(values)
    assert recorder.sample_count == min(cap, len(values))
    assert recorder.mean() == pytest.approx(float(np.mean(values)),
                                            rel=1e-6, abs=1e-6)
    assert recorder.min() == min(values)
    assert recorder.max() == max(values)
