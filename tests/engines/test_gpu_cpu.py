"""Tests for the GPU/stream models and the CPU core pool."""

import pytest

from repro.calib import DEFAULT_TESTBED
from repro.engines import CpuCorePool, GpuDevice
from repro.sim import Environment


# ----------------------------------------------------------- CudaStream
def test_stream_ops_execute_in_order():
    env = Environment()
    gpu = GpuDevice(env, DEFAULT_TESTBED)
    done = []

    def p(env):
        e1 = gpu.compute_stream.submit(1.0, "a")
        e2 = gpu.compute_stream.submit(0.1, "b")

        def watch(env, evt, name):
            yield evt
            done.append((name, env.now))

        env.process(watch(env, e1, "a"))
        env.process(watch(env, e2, "b"))
        yield env.timeout(0)

    env.process(p(env))
    env.run()
    # FIFO: b finishes after a even though it is shorter.
    assert done == [("a", 1.0), ("b", 1.1)]


def test_stream_synchronize():
    env = Environment()
    gpu = GpuDevice(env, DEFAULT_TESTBED)
    times = []

    def p(env):
        gpu.copy_stream.submit(0.5)
        gpu.copy_stream.submit(0.5)
        yield from gpu.copy_stream.synchronize()
        times.append(env.now)
        yield from gpu.copy_stream.synchronize()  # idle: returns at once
        times.append(env.now)

    env.process(p(env))
    env.run()
    assert times == [1.0, 1.0]


def test_stream_rejects_negative():
    env = Environment()
    gpu = GpuDevice(env, DEFAULT_TESTBED)
    with pytest.raises(ValueError):
        gpu.compute_stream.submit(-1.0)


def test_memcpy_async_timing():
    env = Environment()
    gpu = GpuDevice(env, DEFAULT_TESTBED)
    done = []

    def p(env):
        evt = gpu.memcpy_async(int(DEFAULT_TESTBED.pcie_copy_rate // 2))
        yield evt
        done.append(env.now)

    env.process(p(env))
    env.run()
    assert done[0] == pytest.approx(0.5)


def test_memcpy_validation():
    gpu = GpuDevice(Environment(), DEFAULT_TESTBED)
    with pytest.raises(ValueError):
        gpu.memcpy_async(0)


# ------------------------------------------------------------ contention
def test_decode_contention_penalty():
    env = Environment()
    gpu = GpuDevice(env, DEFAULT_TESTBED)
    assert gpu.compute_penalty() == 1.0
    gpu.begin_decode_kernel(0.30)
    assert gpu.compute_penalty() == pytest.approx(1.0 / 0.7)
    gpu.begin_decode_kernel(0.30)
    gpu.end_decode_kernel()
    assert gpu.compute_penalty() == pytest.approx(1.0 / 0.7)
    gpu.end_decode_kernel()
    assert gpu.compute_penalty() == 1.0


def test_decode_contention_stretches_kernels():
    env = Environment()
    gpu = GpuDevice(env, DEFAULT_TESTBED)
    done = []

    def p(env):
        gpu.begin_decode_kernel(0.5)
        evt = gpu.run_compute(1.0)
        yield evt
        done.append(env.now)

    env.process(p(env))
    env.run()
    assert done[0] == pytest.approx(2.0)  # 1 s / (1 - 0.5)


def test_decode_share_validation():
    gpu = GpuDevice(Environment(), DEFAULT_TESTBED)
    with pytest.raises(ValueError):
        gpu.begin_decode_kernel(0.0)
    with pytest.raises(ValueError):
        gpu.begin_decode_kernel(1.0)
    with pytest.raises(RuntimeError):
        gpu.end_decode_kernel()


def test_gpu_busy_accounting():
    env = Environment()
    gpu = GpuDevice(env, DEFAULT_TESTBED)

    def p(env):
        yield gpu.run_compute(0.4, "infer")
        yield env.timeout(0.6)

    env.process(p(env))
    env.run()
    assert gpu.utilization("infer") == pytest.approx(0.4)


# ---------------------------------------------------------------- cpu pool
def test_cpu_pool_run_occupies_core():
    env = Environment()
    cpu = CpuCorePool(env, 2)
    finish = []

    def worker(env, name):
        yield from cpu.run(1.0, "decode")
        finish.append((name, env.now))

    for name in "abc":
        env.process(worker(env, name))
    env.run()
    # Two run in parallel; the third waits for a free core.
    assert finish[0][1] == 1.0 and finish[1][1] == 1.0
    assert finish[2][1] == 2.0


def test_cpu_pool_cores_used_windowed():
    env = Environment()
    cpu = CpuCorePool(env, 4)

    def worker(env):
        yield from cpu.run(2.0, "decode")
        yield env.timeout(2.0)

    env.process(worker(env))
    env.process(worker(env))
    env.run()
    assert cpu.cores_used("decode") == pytest.approx(1.0)  # 4 busy-s / 4 s


def test_cpu_pool_charge_unaccounted_bypasses_slots():
    env = Environment()
    cpu = CpuCorePool(env, 1)

    def p(env):
        yield env.timeout(1.0)
        cpu.charge_unaccounted(0.3, "polling")

    env.process(p(env))
    env.run()
    assert cpu.breakdown()["polling"] == pytest.approx(0.3)


def test_cpu_pool_zero_duration_noop():
    env = Environment()
    cpu = CpuCorePool(env, 1)

    def p(env):
        yield from cpu.run(0.0)

    env.process(p(env))
    env.run()
    assert cpu.cores_used() == 0.0


def test_cpu_pool_validation():
    with pytest.raises(ValueError):
        CpuCorePool(Environment(), 0)
    env = Environment()
    cpu = CpuCorePool(env, 1)

    def p(env):
        yield from cpu.run(-1.0)

    env.process(p(env))
    with pytest.raises(ValueError):
        env.run()


def test_cpu_pool_busy_now_and_waiting():
    env = Environment()
    cpu = CpuCorePool(env, 1)

    def worker(env):
        yield from cpu.run(5.0)

    env.process(worker(env))
    env.process(worker(env))
    env.run(until=1.0)
    assert cpu.busy_now == 1
    assert cpu.waiting == 1


def test_decode_active_fraction_time_averaged():
    env = Environment()
    gpu = GpuDevice(env, DEFAULT_TESTBED)

    def decode_half_duty(env):
        for _ in range(5):
            gpu.begin_decode_kernel(0.3)
            yield env.timeout(1.0)
            gpu.end_decode_kernel()
            yield env.timeout(1.0)

    env.process(decode_half_duty(env))
    env.run()
    # Over the whole run decode was resident 50% of the time.
    frac = gpu.decode_active_fraction()
    assert frac == pytest.approx(0.5, abs=0.01)
    # The query window resets: immediately re-querying sees ~no time.
    assert gpu.decode_active_fraction() in (0.0, 1.0)


def test_compute_penalty_scales_with_duty_cycle():
    env = Environment()
    gpu = GpuDevice(env, DEFAULT_TESTBED)

    def decode_duty(env):
        for _ in range(10):
            gpu.begin_decode_kernel(0.5)
            yield env.timeout(0.25)
            gpu.end_decode_kernel()
            yield env.timeout(0.75)

    env.process(decode_duty(env))
    env.run()
    # 25% duty at 50% share -> penalty 1/(1 - 0.125) ~= 1.143.
    assert gpu.compute_penalty() == pytest.approx(1.0 / (1 - 0.125),
                                                  rel=0.02)
