"""Tests for model cost helpers, training solvers and inference engines."""

import pytest

from repro.calib import DEFAULT_TESTBED, INFER_MODELS, TRAIN_MODELS
from repro.engines import (CpuCorePool, DeviceBatch, GpuDevice,
                           InferenceEngine, SyncGroup, TrainingSolver,
                           allreduce_seconds, get_model,
                           inference_batch_seconds, inference_rate,
                           train_iteration_seconds)
from repro.sim import Environment


# ----------------------------------------------------------------- models
def test_get_model_both_zoos():
    assert get_model("alexnet").name == "alexnet"
    assert get_model("resnet50").name == "resnet50"
    with pytest.raises(KeyError):
        get_model("bert")


def test_train_iteration_seconds():
    spec = TRAIN_MODELS["alexnet"]
    assert train_iteration_seconds(spec, 256) == pytest.approx(256 / 2496.0)
    with pytest.raises(ValueError):
        train_iteration_seconds(INFER_MODELS["vgg16"], 32)


def test_inference_rate_saturates():
    spec = INFER_MODELS["googlenet"]
    r1 = inference_rate(spec, 1)
    r32 = inference_rate(spec, 32)
    assert r1 < r32 < spec.peak_rate
    assert r32 > 0.9 * spec.peak_rate
    with pytest.raises(ValueError):
        inference_rate(spec, 0)
    with pytest.raises(ValueError):
        inference_rate(TRAIN_MODELS["lenet5"], 8)


def test_inference_batch_seconds_monotone():
    spec = INFER_MODELS["resnet50"]
    assert inference_batch_seconds(spec, 64) > inference_batch_seconds(
        spec, 1)


def test_allreduce_scaling():
    spec = TRAIN_MODELS["alexnet"]
    assert allreduce_seconds(spec, 1, DEFAULT_TESTBED) == 0.0
    t2 = allreduce_seconds(spec, 2, DEFAULT_TESTBED)
    t4 = allreduce_seconds(spec, 4, DEFAULT_TESTBED)
    assert t2 > 0
    assert t4 > t2  # 2(n-1)/n grows with n
    # AlexNet's 2-GPU scaling efficiency lands near the paper's 93%.
    compute = train_iteration_seconds(spec, 256)
    eff = compute / (compute + t2)
    assert 0.90 <= eff <= 0.96


# ---------------------------------------------------------------- solvers
def feed_forever(env, solver, batch_size):
    def feeder(env):
        while True:
            batch = yield from solver.trans_queues.free.get()
            batch.item_count = batch_size
            yield from solver.trans_queues.full.put(batch)

    env.process(feeder(env))


def test_training_solver_throughput_matches_spec():
    env = Environment()
    cpu = CpuCorePool(env, 32)
    spec = TRAIN_MODELS["alexnet"]
    sync = SyncGroup(env, 1, spec, DEFAULT_TESTBED)
    solver = TrainingSolver(env, GpuDevice(env, DEFAULT_TESTBED), spec,
                            sync, cpu, DEFAULT_TESTBED)
    solver.start()
    feed_forever(env, solver, 256)
    env.run(until=10.0)
    assert solver.throughput() == pytest.approx(spec.train_rate, rel=0.05)


def test_training_solver_charges_launch_and_update_cpu():
    env = Environment()
    cpu = CpuCorePool(env, 32)
    spec = TRAIN_MODELS["alexnet"]
    sync = SyncGroup(env, 1, spec, DEFAULT_TESTBED)
    solver = TrainingSolver(env, GpuDevice(env, DEFAULT_TESTBED), spec,
                            sync, cpu, DEFAULT_TESTBED)
    solver.start()
    feed_forever(env, solver, 256)
    env.run(until=10.0)
    bd = cpu.breakdown()
    assert bd["kernels"] == pytest.approx(0.95, rel=0.1)
    assert bd["update"] == pytest.approx(0.12, rel=0.15)


def test_two_solvers_sync_throughput():
    env = Environment()
    cpu = CpuCorePool(env, 32)
    spec = TRAIN_MODELS["alexnet"]
    sync = SyncGroup(env, 2, spec, DEFAULT_TESTBED)
    solvers = []
    for g in range(2):
        s = TrainingSolver(env, GpuDevice(env, DEFAULT_TESTBED, g), spec,
                           sync, cpu, DEFAULT_TESTBED)
        s.start()
        feed_forever(env, s, 256)
        solvers.append(s)
    env.run(until=10.0)
    total = sum(s.throughput() for s in solvers)
    # Paper Fig. 2: ideal 2-GPU AlexNet ~4,652 img/s.
    assert total == pytest.approx(4652, rel=0.05)
    assert sync.rounds == solvers[0].iterations.total


def test_sync_group_validation():
    with pytest.raises(ValueError):
        SyncGroup(Environment(), 0, TRAIN_MODELS["alexnet"],
                  DEFAULT_TESTBED)


def test_solver_double_start_rejected():
    env = Environment()
    cpu = CpuCorePool(env, 4)
    spec = TRAIN_MODELS["lenet5"]
    sync = SyncGroup(env, 1, spec, DEFAULT_TESTBED)
    solver = TrainingSolver(env, GpuDevice(env, DEFAULT_TESTBED), spec,
                            sync, cpu, DEFAULT_TESTBED)
    solver.start()
    with pytest.raises(RuntimeError):
        solver.start()


# ---------------------------------------------------------------- engines
class FakeRequest:
    def __init__(self, env, received_at):
        self.received_at = received_at
        self.done_event = env.event()
        self.request = self


def test_inference_engine_completes_requests():
    env = Environment()
    cpu = CpuCorePool(env, 8)
    spec = INFER_MODELS["googlenet"]
    engine = InferenceEngine(env, GpuDevice(env, DEFAULT_TESTBED), spec,
                             cpu, DEFAULT_TESTBED, batch_size=4)
    engine.start()
    reqs = [FakeRequest(env, received_at=0.0) for _ in range(4)]

    def feeder(env):
        batch = yield from engine.trans_queues.free.get()
        batch.item_count = 4
        batch.payload = reqs
        yield from engine.trans_queues.full.put(batch)

    env.process(feeder(env))
    env.run(until=1.0)
    assert all(r.done_event.triggered for r in reqs)
    assert engine.predictions.total == 4
    assert engine.latency.count == 4
    expected = inference_batch_seconds(spec, 4)
    assert engine.latency.mean() == pytest.approx(expected, rel=0.05)


def test_inference_engine_throughput_at_batch():
    env = Environment()
    cpu = CpuCorePool(env, 8)
    spec = INFER_MODELS["vgg16"]
    engine = InferenceEngine(env, GpuDevice(env, DEFAULT_TESTBED), spec,
                             cpu, DEFAULT_TESTBED, batch_size=32)
    engine.start()

    def feeder(env):
        while True:
            batch = yield from engine.trans_queues.free.get()
            batch.item_count = 32
            batch.payload = []
            yield from engine.trans_queues.full.put(batch)

    env.process(feeder(env))
    env.run(until=5.0)
    assert engine.throughput() == pytest.approx(
        inference_rate(spec, 32), rel=0.05)


def test_inference_engine_validation():
    env = Environment()
    cpu = CpuCorePool(env, 8)
    with pytest.raises(ValueError):
        InferenceEngine(env, GpuDevice(env, DEFAULT_TESTBED),
                        INFER_MODELS["vgg16"], cpu, DEFAULT_TESTBED,
                        batch_size=0)


def test_device_batch_reset():
    batch = DeviceBatch(device_addr=1, capacity_bytes=10, gpu_index=0,
                        payload=[1], item_count=5, tag="x")
    batch.reset()
    assert batch.payload is None and batch.item_count == 0
    assert batch.tag is None
