"""Tests anchoring the calibration constants to the paper's numbers."""

import dataclasses

import pytest

from repro.calib import (DEFAULT_TESTBED, GB, INFER_MODELS, KB, MB,
                         TRAIN_MODELS)


def test_unit_constants():
    assert KB == 1024
    assert MB == 1024 ** 2
    assert GB == 1024 ** 3


def test_testbed_matches_section_5_1():
    tb = DEFAULT_TESTBED
    assert tb.cpu_cores == 32          # "32 cores in all"
    assert tb.gpu_count == 2           # 2x Tesla P100
    assert tb.nic_rate == pytest.approx(40e9 / 8)  # 40 Gbps
    assert tb.inference_clients == 5
    assert tb.client_image_hw == (375, 500)


def test_cpu_decode_anchor_300_per_core():
    # S2.2: "each Xeon E5 CPU core can decode only 300 images per second"
    # for the 500x375 color corpus image (~110 KB).
    t = DEFAULT_TESTBED.cpu_decode_seconds(110_000, int(375 * 500 * 1.5))
    assert 1 / t == pytest.approx(300, rel=0.1)


def test_mnist_decode_much_cheaper():
    t_mnist = DEFAULT_TESTBED.cpu_decode_seconds(700, 784)
    t_imagenet = DEFAULT_TESTBED.cpu_decode_seconds(
        110_000, int(375 * 500 * 1.5))
    assert t_mnist < t_imagenet / 20


def test_lmdb_record_service_anchor():
    # AlexNet datum records (~197 KB) -> ~3,200 img/s aggregate (Fig. 2b).
    per = DEFAULT_TESTBED.lmdb_record_seconds(256 * 256 * 3 + 64)
    assert 1 / per == pytest.approx(3200, rel=0.12)


def test_training_specs_cover_paper_models():
    assert set(TRAIN_MODELS) == {"lenet5", "alexnet", "resnet18"}
    assert TRAIN_MODELS["lenet5"].batch_size == 512
    assert TRAIN_MODELS["alexnet"].batch_size == 256
    assert TRAIN_MODELS["resnet18"].batch_size == 128
    for spec in TRAIN_MODELS.values():
        assert spec.train_rate > 0
        assert spec.param_bytes > 0


def test_inference_specs_cover_paper_models():
    assert set(INFER_MODELS) == {"googlenet", "vgg16", "resnet50"}
    assert INFER_MODELS["googlenet"].batch_size == 32
    assert INFER_MODELS["vgg16"].batch_size == 32
    assert INFER_MODELS["resnet50"].batch_size == 64
    for spec in INFER_MODELS.values():
        assert spec.peak_rate > 0
        assert spec.half_sat_batch > 0


def test_power_numbers_match_section_5_4():
    tb = DEFAULT_TESTBED
    assert tb.fpga_power_w == 25.0
    assert tb.cpu_power_w == 130.0
    assert tb.gpu_power_w == 250.0
    assert 0.10 <= tb.core_price_per_hour <= 0.11
    assert tb.fpga_equivalent_cores == 30


def test_fpga_unit_counts_match_section_4_1():
    tb = DEFAULT_TESTBED
    assert tb.fpga_huffman_ways == 4
    assert tb.fpga_resizer_ways == 2


def test_testbed_is_immutable_but_replaceable():
    tb = DEFAULT_TESTBED
    with pytest.raises(dataclasses.FrozenInstanceError):
        tb.cpu_cores = 64
    slower = dataclasses.replace(tb, nvme_read_rate=1 * GB)
    assert slower.nvme_read_rate == GB
    assert DEFAULT_TESTBED.nvme_read_rate == 2.5 * GB


def test_cost_helpers_monotone():
    tb = DEFAULT_TESTBED
    assert tb.per_item_copy_seconds(2_000_000) > tb.per_item_copy_seconds(1)
    assert tb.transform_seconds(1_000_000) > tb.transform_seconds(100)
    assert tb.cpu_decode_seconds(200_000, 300_000) > \
        tb.cpu_decode_seconds(100_000, 150_000)
