"""Unit tests for the DES kernel (repro.sim.core)."""

import pytest

from repro.sim import (AllOf, AnyOf, Environment, Interrupt,
                       SimulationError)


def test_clock_starts_at_zero():
    assert Environment().now == 0.0


def test_clock_custom_start():
    assert Environment(initial_time=7.5).now == 7.5


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(3.0)
    env.run()
    assert env.now == 3.0


def test_timeout_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_timeout_carries_value():
    env = Environment()
    seen = []

    def p(env):
        v = yield env.timeout(1.0, value="payload")
        seen.append(v)

    env.process(p(env))
    env.run()
    assert seen == ["payload"]


def test_process_sequences_timeouts():
    env = Environment()
    trace = []

    def p(env):
        yield env.timeout(1.0)
        trace.append(env.now)
        yield env.timeout(2.5)
        trace.append(env.now)

    env.process(p(env))
    env.run()
    assert trace == [1.0, 3.5]


def test_processes_interleave_in_time_order():
    env = Environment()
    trace = []

    def p(env, name, delay):
        yield env.timeout(delay)
        trace.append((name, env.now))

    env.process(p(env, "slow", 2.0))
    env.process(p(env, "fast", 1.0))
    env.run()
    assert trace == [("fast", 1.0), ("slow", 2.0)]


def test_same_time_events_fire_fifo():
    env = Environment()
    trace = []

    def p(env, name):
        yield env.timeout(1.0)
        trace.append(name)

    for name in "abc":
        env.process(p(env, name))
    env.run()
    assert trace == ["a", "b", "c"]


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def p(env):
        while True:
            yield env.timeout(1.0)

    env.process(p(env))
    env.run(until=5.5)
    assert env.now == 5.5


def test_run_until_past_raises():
    env = Environment(initial_time=10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_run_until_event_returns_value():
    env = Environment()

    def p(env):
        yield env.timeout(2.0)
        return 42

    proc = env.process(p(env))
    assert env.run(until=proc) == 42
    assert env.now == 2.0


def test_run_until_never_fires_raises():
    env = Environment()
    orphan = env.event()
    with pytest.raises(SimulationError):
        env.run(until=orphan)


def test_join_on_process_gets_return_value():
    env = Environment()
    got = []

    def worker(env):
        yield env.timeout(3.0)
        return "result"

    def waiter(env, target):
        value = yield target
        got.append((env.now, value))

    target = env.process(worker(env))
    env.process(waiter(env, target))
    env.run()
    assert got == [(3.0, "result")]


def test_join_on_already_finished_process():
    env = Environment()
    got = []

    def worker(env):
        yield env.timeout(1.0)
        return "early"

    def late_waiter(env, target):
        yield env.timeout(5.0)
        value = yield target
        got.append((env.now, value))

    target = env.process(worker(env))
    env.process(late_waiter(env, target))
    env.run()
    assert got == [(5.0, "early")]


def test_event_succeed_wakes_waiters():
    env = Environment()
    gate = env.event()
    woken = []

    def waiter(env):
        v = yield gate
        woken.append((env.now, v))

    def opener(env):
        yield env.timeout(4.0)
        gate.succeed("open")

    env.process(waiter(env))
    env.process(opener(env))
    env.run()
    assert woken == [(4.0, "open")]


def test_event_double_trigger_rejected():
    env = Environment()
    evt = env.event()
    evt.succeed(1)
    with pytest.raises(SimulationError):
        evt.succeed(2)


def test_event_fail_raises_in_waiter():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter(env):
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(waiter(env))
    gate.fail(RuntimeError("boom"))
    env.run()
    assert caught == ["boom"]


def test_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_event_value_before_trigger_raises():
    env = Environment()
    evt = env.event()
    with pytest.raises(SimulationError):
        _ = evt.value


def test_strict_mode_propagates_process_errors():
    env = Environment(strict=True)

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("bug in process")

    env.process(bad(env))
    with pytest.raises(ValueError, match="bug in process"):
        env.run()


def test_nonstrict_mode_fails_process_event():
    env = Environment(strict=False)

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("contained")

    proc = env.process(bad(env))
    env.run()
    assert proc.triggered and not proc.ok
    assert isinstance(proc.value, ValueError)


def test_yield_non_event_rejected():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(SimulationError, match="yielded"):
        env.run()


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as i:
            log.append((env.now, i.cause))

    def interrupter(env, victim):
        yield env.timeout(2.0)
        victim.interrupt("wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [(2.0, "wake up")]


def test_interrupt_dead_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    proc = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_interrupted_process_can_continue():
    env = Environment()
    trace = []

    def resilient(env):
        try:
            yield env.timeout(100.0)
        except Interrupt:
            trace.append(("interrupted", env.now))
        yield env.timeout(1.0)
        trace.append(("done", env.now))

    def interrupter(env, victim):
        yield env.timeout(5.0)
        victim.interrupt()

    victim = env.process(resilient(env))
    env.process(interrupter(env, victim))
    env.run()
    assert trace == [("interrupted", 5.0), ("done", 6.0)]


def test_all_of_waits_for_slowest():
    env = Environment()
    got = []

    def p(env):
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(3.0, value="b")
        result = yield env.all_of([t1, t2])
        got.append((env.now, sorted(result.values())))

    env.process(p(env))
    env.run()
    assert got == [(3.0, ["a", "b"])]


def test_any_of_fires_on_fastest():
    env = Environment()
    got = []

    def p(env):
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(3.0, value="slow")
        result = yield env.any_of([t1, t2])
        got.append((env.now, list(result.values())))

    env.process(p(env))
    env.run(until=10.0)
    assert got == [(1.0, ["fast"])]


def test_all_of_empty_triggers_immediately():
    env = Environment()
    got = []

    def p(env):
        yield env.all_of([])
        got.append(env.now)

    env.process(p(env))
    env.run()
    assert got == [0.0]


def test_peek_and_step():
    env = Environment()
    env.timeout(2.0)
    env.timeout(5.0)
    assert env.peek() == 2.0
    env.step()
    assert env.now == 2.0
    assert env.peek() == 5.0


def test_step_empty_queue_raises():
    with pytest.raises(SimulationError):
        Environment().step()


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_is_alive_lifecycle():
    env = Environment()

    def p(env):
        yield env.timeout(1.0)

    proc = env.process(p(env))
    assert proc.is_alive
    env.run()
    assert not proc.is_alive
    assert proc.ok


def test_determinism_two_runs_identical():
    def build_and_run():
        env = Environment()
        trace = []

        def p(env, name, period):
            while env.now < 10:
                yield env.timeout(period)
                trace.append((name, env.now))

        env.process(p(env, "x", 1.7))
        env.process(p(env, "y", 2.3))
        env.run(until=20.0)
        return trace

    assert build_and_run() == build_and_run()


def test_interrupt_while_waiting_on_resource_withdraws_request():
    """An interrupted resource wait must not leak the queued request:
    the slot goes to the next live waiter instead."""
    from repro.sim import Resource

    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder(env):
        req = res.request()
        yield req
        yield env.timeout(10.0)
        res.release(req)

    def impatient(env):
        req = res.request()
        try:
            yield req
            order.append("impatient-got-slot")
            res.release(req)
        except Interrupt:
            order.append("impatient-interrupted")

    def patient(env):
        yield env.timeout(1.0)
        req = res.request()
        yield req
        order.append(("patient-got-slot", env.now))
        res.release(req)

    env.process(holder(env))
    victim = env.process(impatient(env))
    env.process(patient(env))

    def interrupter(env):
        yield env.timeout(5.0)
        victim.interrupt()

    env.process(interrupter(env))
    env.run()
    assert order == ["impatient-interrupted", ("patient-got-slot", 10.0)]
    assert res.count == 0
    assert res.queue_len == 0
