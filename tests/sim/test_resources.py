"""Unit tests for Resource/Store/Container primitives."""

import pytest

from repro.sim import (Container, Environment, FilterStore,
                       PriorityResource, Resource, SimulationError, Store)


# ---------------------------------------------------------------- Resource
def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    grants = []

    def user(env, name):
        req = res.request()
        yield req
        grants.append((name, env.now))
        yield env.timeout(10.0)
        res.release(req)

    for name in "abc":
        env.process(user(env, name))
    env.run(until=5.0)
    assert [g[0] for g in grants] == ["a", "b"]
    env.run(until=15.0)
    assert grants[-1] == ("c", 10.0)


def test_resource_capacity_validation():
    with pytest.raises(ValueError):
        Resource(Environment(), capacity=0)


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(env, name, hold):
        req = res.request()
        yield req
        order.append(name)
        yield env.timeout(hold)
        res.release(req)

    for name in ["first", "second", "third"]:
        env.process(user(env, name, 1.0))
    env.run()
    assert order == ["first", "second", "third"]


def test_resource_release_foreign_request_rejected():
    env = Environment()
    res = Resource(env, capacity=1)
    req = res.request()
    env.run()
    res.release(req)
    with pytest.raises(SimulationError):
        res.release(req)


def test_resource_count_and_queue_len():
    env = Environment()
    res = Resource(env, capacity=1)
    r1 = res.request()
    res.request()
    env.run()
    assert res.count == 1
    assert res.queue_len == 1
    res.release(r1)
    env.run()
    assert res.count == 1
    assert res.queue_len == 0


def test_request_cancel_removes_waiter():
    env = Environment()
    res = Resource(env, capacity=1)
    r1 = res.request()
    r2 = res.request()
    r3 = res.request()
    env.run()
    r2.cancel()
    res.release(r1)
    env.run()
    assert r3.triggered
    assert not r2.triggered


def test_priority_resource_serves_lowest_priority_first():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder(env):
        req = res.request()
        yield req
        yield env.timeout(5.0)
        res.release(req)

    def user(env, name, prio, arrive):
        yield env.timeout(arrive)
        req = res.request(priority=prio)
        yield req
        order.append(name)
        res.release(req)

    env.process(holder(env))
    env.process(user(env, "low-urgency", 10, 1.0))
    env.process(user(env, "high-urgency", 0, 2.0))
    env.run()
    assert order == ["high-urgency", "low-urgency"]


# ---------------------------------------------------------------- Store
def test_store_put_get_fifo():
    env = Environment()
    store = Store(env)
    out = []

    def producer(env):
        for i in range(3):
            yield store.put(i)
            yield env.timeout(1.0)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            out.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert out == [0, 1, 2]


def test_store_capacity_blocks_putter():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer(env):
        yield store.put("a")
        times.append(("put-a", env.now))
        yield store.put("b")
        times.append(("put-b", env.now))

    def consumer(env):
        yield env.timeout(5.0)
        yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert times == [("put-a", 0.0), ("put-b", 5.0)]


def test_store_get_blocks_until_item():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        item = yield store.get()
        got.append((item, env.now))

    def producer(env):
        yield env.timeout(3.0)
        yield store.put("x")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [("x", 3.0)]


def test_store_try_put_try_get():
    env = Environment()
    store = Store(env, capacity=1)
    assert store.try_put("a") is True
    assert store.try_put("b") is False
    ok, item = store.try_get()
    assert ok and item == "a"
    ok, item = store.try_get()
    assert not ok and item is None


def test_store_capacity_validation():
    with pytest.raises(ValueError):
        Store(Environment(), capacity=0)


def test_store_len_tracks_buffer():
    env = Environment()
    store = Store(env)
    store.try_put(1)
    store.try_put(2)
    assert len(store) == 2 and store.level == 2


def test_filter_store_selects_by_predicate():
    env = Environment()
    store = FilterStore(env)
    got = []

    def consumer(env):
        item = yield store.get(lambda x: x % 2 == 0)
        got.append(item)

    env.process(consumer(env))
    store.try_put(1)
    store.try_put(3)
    store.try_put(4)
    env.run()
    assert got == [4]
    assert list(store.items) == [1, 3]


def test_filter_store_blocked_getter_does_not_stall_others():
    env = Environment()
    store = FilterStore(env)
    got = []

    def blocked(env):
        item = yield store.get(lambda x: x == "never")
        got.append(("blocked", item))

    def eager(env):
        item = yield store.get(lambda x: x == "yes")
        got.append(("eager", item))

    env.process(blocked(env))
    env.process(eager(env))
    store.try_put("yes")
    env.run(until=1.0)
    assert got == [("eager", "yes")]


# ---------------------------------------------------------------- Container
def test_container_levels():
    env = Environment()
    tank = Container(env, capacity=100, init=50)
    assert tank.level == 50

    def p(env):
        yield tank.get(30)
        assert tank.level == 20
        yield tank.put(80)
        assert tank.level == 100

    env.process(p(env))
    env.run()
    assert tank.level == 100


def test_container_get_blocks_until_enough():
    env = Environment()
    tank = Container(env, capacity=100, init=0)
    got = []

    def consumer(env):
        yield tank.get(10)
        got.append(env.now)

    def filler(env):
        for _ in range(10):
            yield env.timeout(1.0)
            yield tank.put(1)

    env.process(consumer(env))
    env.process(filler(env))
    env.run()
    assert got == [10.0]


def test_container_put_blocks_when_full():
    env = Environment()
    tank = Container(env, capacity=10, init=10)
    times = []

    def producer(env):
        yield tank.put(5)
        times.append(env.now)

    def drainer(env):
        yield env.timeout(2.0)
        yield tank.get(5)

    env.process(producer(env))
    env.process(drainer(env))
    env.run()
    assert times == [2.0]


def test_container_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=0)
    with pytest.raises(ValueError):
        Container(env, capacity=10, init=11)
    tank = Container(env, capacity=10)
    with pytest.raises(ValueError):
        tank.put(0)
    with pytest.raises(ValueError):
        tank.get(-1)
