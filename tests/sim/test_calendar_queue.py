"""Calendar-queue scheduler: exact-order contract with the binary heap.

The calendar (ladder) queue lives behind the same pending-set interface
as the heap; the only acceptable difference is wall-clock.  These tests
pin the pop order bit-exactly, the density-based migration points, and
the ``reference_mode()`` escape hatch that keeps A/B replays on the
pre-PR8 heap.
"""

import heapq
import random

import pytest

import repro.sim.core as core
from repro.sim import CalendarQueue, Environment
from repro.sim.core import _CAL_THRESHOLD


def _items(n, seed, span=10.0):
    rng = random.Random(seed)
    return [(rng.uniform(0.0, span), eid, object()) for eid in range(n)]


class TestCalendarQueueOrder:
    @pytest.mark.parametrize("seed", range(5))
    def test_pops_in_heap_order(self, seed):
        items = _items(300, seed)
        heap = list(items)
        heapq.heapify(heap)
        cal = CalendarQueue.from_items(list(items))
        assert len(cal) == len(heap)
        while heap:
            assert cal.pop() == heapq.heappop(heap)
        assert len(cal) == 0

    def test_interleaved_push_pop(self):
        rng = random.Random(42)
        items = _items(200, 7)
        heap, cal = [], CalendarQueue.from_items(list(items[:100]))
        for it in items[:100]:
            heapq.heappush(heap, it)
        for it in items[100:]:
            cal.push(it)
            heapq.heappush(heap, it)
            if rng.random() < 0.5 and heap:
                assert cal.pop() == heapq.heappop(heap)
        while heap:
            assert cal.pop() == heapq.heappop(heap)

    def test_min_time_tracks_head(self):
        items = _items(64, 3)
        cal = CalendarQueue.from_items(list(items))
        assert cal.min_time() == min(t for t, _, _ in items)

    def test_far_future_push_does_not_overflow(self):
        cal = CalendarQueue.from_items([(0.0, 0, object())])
        cal.push((1e308, 1, object()))     # would overflow int(t / width)
        assert cal.pop()[0] == 0.0
        assert cal.pop()[0] == 1e308


@pytest.fixture
def pinned_verdict():
    """Pin the "auto" calibration verdict for a test, restoring after."""
    saved = core._AUTO_VERDICT

    def pin(verdict):
        core.scheduler_calibration(force=verdict)

    yield pin
    core._AUTO_VERDICT = saved


class TestSchedulerSelection:
    def test_auto_starts_on_heap(self):
        env = Environment()
        assert env.scheduler_active == "heap"

    def test_auto_migrates_past_threshold_when_calendar_wins(
            self, pinned_verdict):
        pinned_verdict("calendar")
        env = Environment()
        for _ in range(_CAL_THRESHOLD + 8):
            env.timeout(1.0)
        env.run(until=0.5)
        assert env.scheduler_active == "calendar"

    def test_auto_stays_on_heap_when_calibration_says_heap(
            self, pinned_verdict):
        pinned_verdict("heap")
        env = Environment()
        for _ in range(_CAL_THRESHOLD + 8):
            env.timeout(1.0)
        env.run(until=0.5)
        assert env.scheduler_active == "heap"

    def test_calibration_caches_and_returns_valid_verdict(self):
        saved = core._AUTO_VERDICT
        try:
            core.scheduler_calibration(force="")       # clear cache
            verdict = core.scheduler_calibration()     # real measurement
            assert verdict in ("heap", "calendar")
            assert core.scheduler_calibration() == verdict   # cached
            with pytest.raises(ValueError):
                core.scheduler_calibration(force="wheel")
        finally:
            core._AUTO_VERDICT = saved

    def test_auto_demotes_on_pathological_late_pushes(self, pinned_verdict):
        """An "auto" env whose calendar sees a hostile push pattern
        (most pushes landing in the draining bucket) reverts to the
        heap at the next boundary — and stays there."""
        pinned_verdict("calendar")
        env = Environment()
        for _ in range(_CAL_THRESHOLD + 8):
            env.timeout(1.0)
        env.run(until=0.5)
        assert env.scheduler_active == "calendar"
        cal = env._cal
        # Simulate the guard's trigger condition directly: counters say
        # pushes since migration are overwhelmingly late.
        env._cal_mark = env.events_processed - core._CAL_GUARD_MIN_EVENTS
        cal._late = core._CAL_GUARD_MIN_EVENTS
        env.run(until=0.75)
        assert env.scheduler_active == "heap"
        assert env._cal_banned
        env.run(until=2.0)                 # never re-promotes
        assert env.scheduler_active == "heap"
        # Demotion lost no events: every timeout still fires once.
        assert env.events_processed == _CAL_THRESHOLD + 8

    def test_stale_density_triggers_rebuild_not_demotion(self):
        env = Environment(scheduler="calendar")
        env.timeout(1.0)
        env.run(until=0.5)
        cal = env._cal
        cal._needs_rebuild = True
        env.run(until=0.75)
        assert env.scheduler_active == "calendar"
        assert env._cal is not cal         # fresh widths
        assert not env._cal._needs_rebuild

    def test_forced_calendar_migrates_immediately(self):
        env = Environment(scheduler="calendar")
        env.timeout(1.0)
        env.run(until=0.5)
        assert env.scheduler_active == "calendar"

    def test_heap_mode_never_migrates(self):
        env = Environment(scheduler="heap")
        for _ in range(_CAL_THRESHOLD + 8):
            env.timeout(1.0)
        env.run(until=2.0)
        assert env.scheduler_active == "heap"

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError):
            Environment(scheduler="wheel")

    def test_force_heap_flag_pins_heap(self, monkeypatch):
        monkeypatch.setattr(core, "_FORCE_HEAP", True)
        env = Environment(scheduler="calendar")
        env.timeout(1.0)
        env.run(until=2.0)
        assert env.scheduler_active == "heap"


def _actor_soup(env, seed):
    """A deliberately messy workload: timers, zero-delays, cancels,
    processes waking each other — logs every step for comparison."""
    rng = random.Random(seed)
    log = []

    def ticker(name, period):
        while True:
            yield env.timeout(period)
            log.append((round(env.now, 9), "tick", name))

    def chatter(name, peer_delay):
        for i in range(30):
            yield env.timeout(rng.random() * peer_delay)
            log.append((round(env.now, 9), "chat", name, i))
            if rng.random() < 0.3:
                yield env.timeout(0)
                log.append((round(env.now, 9), "zero", name, i))

    for i in range(12):
        env.process(ticker(f"t{i}", 0.01 + 0.013 * i))
    for i in range(20):
        env.process(chatter(f"c{i}", 0.05 + 0.01 * (i % 5)))
    return log


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_heap_and_calendar_runs_bit_identical(seed):
    """The tentpole contract: identical event logs and counts under
    either scheduler — the calendar queue is a pure wall-clock change."""
    logs, counts = [], []
    for scheduler in ("heap", "calendar"):
        env = Environment(scheduler=scheduler)
        log = _actor_soup(env, seed)
        env.run(until=2.0)
        assert env.scheduler_active == scheduler
        logs.append(log)
        counts.append(env.events_processed)
    assert logs[0] == logs[1]
    assert counts[0] == counts[1]
