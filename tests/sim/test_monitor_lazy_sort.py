"""Equivalence tests for the LatencyRecorder lazy-sort fast path.

Below the reservoir cap the optimized recorder appends and defers the
sort until an ordered read; the pre-pass implementation insorted every
record.  Both must expose identical state at every observable point —
samples, percentiles, exemplars, merges — including across the
append->reservoir transition, where the deferred sort must happen at
exactly the moment the cap is reached so the RNG draws and eviction
indices line up with the eager implementation's.
"""

import numpy as np
import pytest

from repro.perf.reference import _lr_record_ref
from repro.sim.monitor import LatencyRecorder


def eager_recorder(name="lat", max_samples=200_000):
    """A recorder forced onto the pre-pass insort-every-record path."""
    rec = LatencyRecorder(name=name, max_samples=max_samples)
    rec.record = _lr_record_ref.__get__(rec, LatencyRecorder)
    return rec


def feed(rec, values, trace_ids=None):
    for i, v in enumerate(values):
        rec.record(v, trace_ids[i] if trace_ids else None)


def assert_identical(a, b):
    assert a.count == b.count
    assert a.sample_count == b.sample_count
    assert a.samples == b.samples
    assert a.exemplars() == b.exemplars()
    for q in (0.0, 0.1, 0.5, 0.9, 0.99, 1.0):
        assert a.percentile(q) == b.percentile(q)


def test_below_cap_identical():
    rng = np.random.default_rng(3)
    values = rng.exponential(1.0, 500).tolist()
    ids = rng.integers(1, 1000, 500).tolist()
    fast, ref = LatencyRecorder("x"), eager_recorder("x")
    feed(fast, values, ids)
    feed(ref, values, ids)
    assert_identical(fast, ref)


def test_across_cap_transition_identical():
    """The reservoir RNG is consumed in the same order whether the
    below-cap records were insorted eagerly or sorted on overflow."""
    rng = np.random.default_rng(9)
    values = rng.exponential(1.0, 400).tolist()
    fast = LatencyRecorder("y", max_samples=100)
    ref = eager_recorder("y", max_samples=100)
    feed(fast, values)
    feed(ref, values)
    assert_identical(fast, ref)


def test_read_mid_stream_then_continue():
    """An ordered read below the cap (forcing the deferred sort early)
    must not change what the reservoir phase later does."""
    rng = np.random.default_rng(21)
    values = rng.exponential(1.0, 300).tolist()
    fast = LatencyRecorder("z", max_samples=120)
    ref = eager_recorder("z", max_samples=120)
    feed(fast, values[:50])
    _ = fast.samples          # triggers the deferred sort
    _ = fast.percentile(0.5)
    feed(fast, values[50:])
    feed(ref, values)
    assert_identical(fast, ref)


def test_merge_identical():
    rng = np.random.default_rng(5)
    a_vals = rng.exponential(1.0, 150).tolist()
    b_vals = rng.exponential(2.0, 150).tolist()
    fast_a, fast_b = LatencyRecorder("m"), LatencyRecorder("m2")
    ref_a, ref_b = eager_recorder("m"), eager_recorder("m2")
    feed(fast_a, a_vals), feed(fast_b, b_vals)
    feed(ref_a, a_vals), feed(ref_b, b_vals)
    fast_a.merge(fast_b)
    ref_a.merge(ref_b)
    assert_identical(fast_a, ref_a)


def test_negative_latency_still_rejected():
    rec = LatencyRecorder("neg")
    with pytest.raises(ValueError):
        rec.record(-0.1)
