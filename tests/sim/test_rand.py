"""Tests for deterministic seed-bank streams."""

import numpy as np

from repro.sim import SeedBank


def test_same_name_same_stream_object():
    bank = SeedBank(1)
    assert bank.stream("a") is bank.stream("a")


def test_streams_reproducible_across_banks():
    a = SeedBank(42).stream("clients").random(100)
    b = SeedBank(42).stream("clients").random(100)
    assert np.array_equal(a, b)


def test_different_names_independent():
    bank = SeedBank(42)
    a = bank.stream("a").random(100)
    b = bank.stream("b").random(100)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = SeedBank(1).stream("x").random(50)
    b = SeedBank(2).stream("x").random(50)
    assert not np.array_equal(a, b)


def test_reset_replays_streams():
    bank = SeedBank(7)
    first = bank.stream("x").random(10)
    bank.reset()
    second = bank.stream("x").random(10)
    assert np.array_equal(first, second)


def test_spawn_child_bank_independent_and_reproducible():
    parent = SeedBank(9)
    child1 = parent.spawn("worker").stream("x").random(20)
    child2 = SeedBank(9).spawn("worker").stream("x").random(20)
    assert np.array_equal(child1, child2)
    assert not np.array_equal(child1, parent.stream("x").random(20))
