"""LatencyRecorder.merge() must be commutative and order-insensitive.

The parallel sweep runner (repro.sweep) merges per-worker reservoirs in
deterministic index order, but the *contract* is stronger: merging the
same recorders in any order — including when every reservoir is at its
cap, where the old implementation consumed RNG draws per call and so
depended on call order — yields byte-identical merged state.
"""

import copy
import itertools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.monitor import LatencyRecorder


def build(name, values, cap):
    rec = LatencyRecorder(name=name, max_samples=cap)
    for i, v in enumerate(values):
        rec.record(v, trace_id=(i if i % 3 == 0 else None))
    return rec


def state(rec):
    return (rec.samples, rec.exemplars(), rec.count, rec.total(),
            rec.min(), rec.max())


def merged_in_order(sources, order, cap):
    target = LatencyRecorder(name="rollup", max_samples=cap)
    for idx in order:
        target.merge(copy.deepcopy(sources[idx]))
    return target


latencies = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=0,
    max_size=60)


@settings(max_examples=60, deadline=None)
@given(streams=st.lists(latencies, min_size=2, max_size=4),
       cap=st.integers(min_value=1, max_value=40),
       seed=st.integers(min_value=0, max_value=2**31))
def test_merge_is_order_insensitive(streams, cap, seed):
    """Every permutation of merge order yields byte-identical state —
    in particular when the sources and the target are all at cap."""
    sources = [build(f"w{i}", vals, cap) for i, vals in enumerate(streams)]
    orders = list(itertools.permutations(range(len(sources))))
    baseline = state(merged_in_order(sources, orders[0], cap))
    for order in orders[1:]:
        assert state(merged_in_order(sources, order, cap)) == baseline


@settings(max_examples=40, deadline=None)
@given(streams=st.lists(latencies, min_size=3, max_size=3),
       cap=st.integers(min_value=2, max_value=25))
def test_merge_is_associative(streams, cap):
    """(a + b) + c == a + (b + c): bottom-k by content hash is a
    mergeable sketch, so tree-shaped and sequential rollups agree."""
    sources = [build(f"w{i}", vals, cap) for i, vals in enumerate(streams)]
    seq = merged_in_order(sources, (0, 1, 2), cap)

    left = LatencyRecorder(name="rollup", max_samples=cap)
    left.merge(copy.deepcopy(sources[0]))
    left.merge(copy.deepcopy(sources[1]))
    right = LatencyRecorder(name="right", max_samples=cap)
    right.merge(copy.deepcopy(sources[2]))
    left.merge(right)
    assert state(left) == state(seq)


def test_merge_exact_stats_survive_over_cap_sources():
    """count/sum/min/max stay exact even when a source retained far
    fewer samples than it saw (the old merge lost the difference)."""
    src = build("big", [float(v % 89) for v in range(5000)], cap=32)
    assert src.count == 5000 and src.sample_count == 32
    tgt = LatencyRecorder(name="rollup", max_samples=32)
    tgt.merge(src)
    assert tgt.count == 5000
    assert tgt.mean() == pytest.approx(src.mean())
    assert tgt.min() == src.min() and tgt.max() == src.max()
    assert tgt.sample_count == 32


def test_merge_below_cap_is_exact_union():
    a = build("a", [1.0, 3.0, 5.0], cap=100)
    b = build("b", [2.0, 4.0], cap=100)
    tgt = LatencyRecorder(name="rollup", max_samples=100)
    tgt.merge(a)
    tgt.merge(b)
    assert tgt.samples == (1.0, 2.0, 3.0, 4.0, 5.0)
    assert tgt.is_exact and tgt.count == 5


def test_merge_consumes_no_rng():
    """Merging must not advance the target's record() RNG stream: the
    RNG state after construction + merges equals a fresh recorder's, no
    matter how many merges happened (record() past the cap is what
    draws — so the check has to run before any post-merge records)."""
    baseline = LatencyRecorder(name="r", max_samples=16)._rng.getstate()

    one = LatencyRecorder(name="r", max_samples=16)
    one.merge(build("w0", [1.0] * 64, cap=16))
    assert one._rng.getstate() == baseline

    many = LatencyRecorder(name="r", max_samples=16)
    for i in range(5):
        many.merge(build("w0", [1.0] * 64, cap=16))
    assert many._rng.getstate() == baseline

    # And the merged recorder still records past the cap normally.
    for v in (float(v % 13) for v in range(400)):
        many.record(v)
    assert many.count == 5 * 64 + 400 and many.sample_count == 16


def test_merge_self_rejected():
    rec = build("a", [1.0], cap=4)
    with pytest.raises(ValueError):
        rec.merge(rec)


def test_merge_empty_sides():
    empty = LatencyRecorder(name="e", max_samples=8)
    full = build("f", [2.0, 1.0], cap=8)
    tgt = LatencyRecorder(name="rollup", max_samples=8)
    tgt.merge(empty)
    assert tgt.count == 0 and math.isnan(tgt.mean())
    tgt.merge(full)
    assert tgt.samples == (1.0, 2.0)
    tgt.merge(LatencyRecorder(name="e2", max_samples=8))
    assert tgt.samples == (1.0, 2.0) and tgt.count == 2


# ---------------------------------------------------------------------------
# percentile() / exemplar_for() on reservoirs built purely by at-cap
# merges — the shape the sweep rollup and the KPI layer read from.

QS = (0, 10, 25, 50, 75, 90, 99, 99.9, 100)


def test_percentile_on_merged_reservoir_at_cap():
    """Percentiles of a merged at-cap reservoir interpolate over the
    retained union: bounded by the retained extremes, monotone in q,
    and the tail quantiles (p99/p99.9) resolve rather than erroring."""
    cap = 16
    sources = [build(f"w{i}", [float(j % 97) + i for j in range(200)], cap)
               for i in range(4)]
    tgt = merged_in_order(sources, (0, 1, 2, 3), cap)
    assert tgt.sample_count == cap and not tgt.is_exact
    samples = tgt.samples
    assert tgt.percentile(0) == samples[0]
    assert tgt.percentile(100) == samples[-1]
    values = [tgt.percentile(q) for q in QS]
    assert values == sorted(values)
    assert samples[0] <= tgt.percentile(99.9) <= samples[-1]
    with pytest.raises(ValueError):
        tgt.percentile(101)


def test_exemplar_for_on_merged_reservoir_at_cap():
    """Every quantile's exemplar names a trace_id actually retained in
    the merged reservoir, and the answer is merge-order-insensitive."""
    cap = 8
    sources = []
    for i in range(3):
        rec = LatencyRecorder(name=f"w{i}", max_samples=cap)
        for j in range(50):      # every record trace-linked, unique ids
            rec.record(float(j), trace_id=i * 1000 + j)
        sources.append(rec)
    tgt = merged_in_order(sources, (0, 1, 2), cap)
    linked = {tid for _, tid in tgt.exemplars()}
    assert len(linked) == cap    # all retained entries carry their link
    for q in QS:
        assert tgt.exemplar_for(q) in linked
    baseline = [tgt.exemplar_for(q) for q in QS]
    for order in itertools.permutations(range(3)):
        other = merged_in_order(sources, order, cap)
        assert [other.exemplar_for(q) for q in QS] == baseline


def test_exemplar_for_unlinked_merged_reservoir_is_none():
    """A merged at-cap reservoir with no trace links anywhere answers
    None for every quantile instead of inventing an exemplar."""
    src = LatencyRecorder(name="nolink", max_samples=8)
    for v in range(100):
        src.record(float(v % 7))
    assert src.sample_count == 8 and not src.is_exact
    tgt = LatencyRecorder(name="rollup", max_samples=8)
    tgt.merge(src)
    assert tgt.exemplar_for(50) is None
    assert tgt.exemplar_for(99.9) is None
