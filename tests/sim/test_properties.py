"""Property-based tests on the DES substrate's core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (Channel, Environment, LatencyRecorder, QueuePair,
                       Store, TimeWeighted)


@given(st.lists(st.floats(0.001, 100.0), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_timeout_completion_order_is_time_order(delays):
    """Whatever the creation order, processes finish sorted by delay."""
    env = Environment()
    finished = []

    def p(env, idx, delay):
        yield env.timeout(delay)
        finished.append(idx)

    for idx, delay in enumerate(delays):
        env.process(p(env, idx, delay))
    env.run()
    expected = [idx for idx, _ in
                sorted(enumerate(delays), key=lambda t: (t[1], t[0]))]
    assert finished == expected


@given(st.lists(st.integers(0, 1000), max_size=50),
       st.integers(1, 8))
@settings(max_examples=50, deadline=None)
def test_store_is_fifo_under_any_capacity(items, capacity):
    env = Environment()
    store = Store(env, capacity=capacity)
    out = []

    def producer(env):
        for item in items:
            yield store.put(item)

    def consumer(env):
        for _ in items:
            out.append((yield store.get()))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert out == items


@given(st.lists(st.sampled_from(["produce", "consume"]), max_size=60))
@settings(max_examples=50, deadline=None)
def test_channel_never_loses_or_duplicates(ops):
    env = Environment()
    ch = Channel(env, capacity=8)
    put, got = [], []
    counter = iter(range(10_000))
    for op in ops:
        if op == "produce":
            val = next(counter)
            if ch.try_put(val):
                put.append(val)
        else:
            ok, val = ch.try_get()
            if ok:
                got.append(val)
    got.extend(ch.drain())
    assert got == put  # FIFO, complete, no duplicates


@given(st.integers(1, 6), st.lists(st.floats(0.01, 1.0), min_size=1,
                                   max_size=20))
@settings(max_examples=30, deadline=None)
def test_queue_pair_conservation_any_schedule(population, delays):
    env = Environment()
    qp = QueuePair(env, capacity=population)
    qp.seed(list(range(population)))

    def cycler(env, delay):
        while env.now < 10.0:
            carrier = yield from qp.free.get()
            yield env.timeout(delay)
            yield from qp.full.put(carrier)
            carrier2 = yield from qp.full.get()
            yield env.timeout(delay / 2)
            yield from qp.free.put(carrier2)

    for delay in delays:
        env.process(cycler(env, delay))
    env.run(until=12.0)
    assert len(qp.free) + len(qp.full) + qp.in_flight() == population
    assert qp.in_flight() >= 0


@given(st.lists(st.floats(0.0, 1e6, allow_nan=False), min_size=1,
                max_size=200))
@settings(max_examples=50, deadline=None)
def test_latency_percentiles_match_numpy(samples):
    rec = LatencyRecorder()
    for s in samples:
        rec.record(s)
    for q in (0, 25, 50, 75, 99, 100):
        assert rec.percentile(q) == np.percentile(
            np.array(samples), q, method="linear") or \
            abs(rec.percentile(q) - np.percentile(samples, q)) < 1e-6


@given(st.lists(st.tuples(st.floats(0.01, 10.0), st.floats(-100, 100)),
                min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_time_weighted_mean_within_bounds(steps):
    """The time-weighted mean always lies within [min, max] of values."""
    env = Environment()
    tw = TimeWeighted(env, initial=0.0)

    def p(env):
        for dt, value in steps:
            yield env.timeout(dt)
            tw.set(value)
        yield env.timeout(1.0)

    env.process(p(env))
    env.run()
    values = [0.0] + [v for _, v in steps]
    assert min(values) - 1e-9 <= tw.mean() <= max(values) + 1e-9
    assert tw.max_value == max(values)
    assert tw.min_value == min(values)
