"""Additional kernel edge cases: condition failure paths, priority
ties, container ordering, channel instrumentation under churn."""

import pytest

from repro.sim import (AllOf, AnyOf, Channel, Container, Environment,
                       PriorityResource, SimulationError)


def test_all_of_fails_fast_on_failed_member():
    env = Environment()
    good = env.timeout(5.0)
    bad = env.event()
    caught = []

    def p(env):
        try:
            yield env.all_of([good, bad])
        except RuntimeError as exc:
            caught.append((env.now, str(exc)))

    env.process(p(env))

    def failer(env):
        yield env.timeout(1.0)
        bad.fail(RuntimeError("member died"))

    env.process(failer(env))
    env.run()
    # Fails at t=1 without waiting for the 5 s member.
    assert caught == [(1.0, "member died")]


def test_any_of_fails_on_failed_member():
    env = Environment()
    slow = env.timeout(5.0)
    bad = env.event()
    caught = []

    def p(env):
        try:
            yield env.any_of([slow, bad])
        except ValueError:
            caught.append(env.now)

    env.process(p(env))
    bad.fail(ValueError("x"))
    env.run()
    assert caught == [0.0]


def test_nested_conditions():
    env = Environment()
    got = []

    def p(env):
        inner = env.all_of([env.timeout(1.0), env.timeout(2.0)])
        outer = env.any_of([inner, env.timeout(10.0)])
        yield outer
        got.append(env.now)

    env.process(p(env))
    env.run(until=20.0)
    assert got == [2.0]


def test_priority_resource_equal_priorities_fifo():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder(env):
        req = res.request()
        yield req
        yield env.timeout(1.0)
        res.release(req)

    def user(env, name):
        req = res.request(priority=5)
        yield req
        order.append(name)
        res.release(req)

    env.process(holder(env))
    for name in ["first", "second", "third"]:
        env.process(user(env, name))
    env.run()
    assert order == ["first", "second", "third"]


def test_priority_resource_cancel_from_heap():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    r1 = res.request(priority=0)
    r2 = res.request(priority=1)
    r3 = res.request(priority=2)
    env.run()
    r2.cancel()
    assert res.queue_len == 1
    res.release(r1)
    env.run()
    assert r3.triggered and not r2.triggered


def test_container_put_get_interleaving_progress():
    """A blocked put unblocks the moment a get makes room, and vice
    versa, within the same drain pass."""
    env = Environment()
    tank = Container(env, capacity=10, init=10)
    log = []

    def producer(env):
        yield tank.put(5)
        log.append(("put", env.now))

    def consumer(env):
        yield env.timeout(1.0)
        yield tank.get(5)
        log.append(("got", env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert log == [("got", 1.0), ("put", 1.0)]
    assert tank.level == 10


def test_channel_occupancy_under_churn():
    env = Environment()
    ch = Channel(env, capacity=4)

    def producer(env):
        for i in range(100):
            yield from ch.put(i)

    def consumer(env):
        for _ in range(100):
            yield env.timeout(0.01)
            yield from ch.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert ch.put_count == ch.get_count == 100
    # Bounded channel: occupancy never exceeded capacity.
    assert ch.occupancy.max_value <= 4
    assert ch.wait.count == 100


def test_run_until_already_processed_event():
    env = Environment()
    evt = env.timeout(1.0, value="done")
    env.run()  # processes the timeout
    assert env.run(until=evt) == "done"  # returns at once, no dry-run error


def test_event_fail_then_value_accessible():
    env = Environment()
    evt = env.event()
    exc = RuntimeError("kept")
    evt.fail(exc)
    env.run()
    assert evt.ok is False
    assert evt.value is exc
