"""Tests for the span tracer and Chrome-trace export."""

import json

import pytest

from repro.sim import Channel, Environment, Tracer
from repro.fpga import PipelineUnit


def test_span_recording():
    env = Environment()
    tracer = Tracer(env)

    def p(env):
        tok = tracer.begin("work", "worker-0", item=7)
        yield env.timeout(2.0)
        tracer.end(tok)
        tracer.instant("done", "worker-0")

    env.process(p(env))
    env.run()
    assert len(tracer.spans) == 1
    span = tracer.spans[0]
    assert span.name == "work"
    assert span.track == "worker-0"
    assert span.start == 0.0 and span.end == 2.0
    assert span.duration == 2.0
    assert span.args == {"item": 7}
    assert tracer.instants == [("done", "worker-0", 2.0)]


def test_busy_time_and_tracks():
    env = Environment()
    tracer = Tracer(env)

    def p(env, track, dur):
        tok = tracer.begin("svc", track)
        yield env.timeout(dur)
        tracer.end(tok)

    env.process(p(env, "a", 1.0))
    env.process(p(env, "b", 3.0))
    env.run()
    assert tracer.busy_time("a") == pytest.approx(1.0)
    assert tracer.busy_time("b") == pytest.approx(3.0)
    assert set(tracer.tracks()) == {"a", "b"}
    assert len(tracer.spans_on("a")) == 1


def test_chrome_trace_export(tmp_path):
    env = Environment()
    tracer = Tracer(env)

    def p(env):
        tok = tracer.begin("decode", "huffman[0]")
        yield env.timeout(0.001)
        tracer.end(tok)
        tracer.instant("finish")

    env.process(p(env))
    env.run()
    path = str(tmp_path / "trace.json")
    text = tracer.to_chrome_trace(path)
    events = json.loads(text)
    assert json.loads(open(path).read()) == events
    phases = {e["ph"] for e in events}
    assert phases == {"M", "X", "i"}
    span = next(e for e in events if e["ph"] == "X")
    assert span["name"] == "decode"
    assert span["dur"] == pytest.approx(1000.0)  # 1 ms -> 1000 us


def test_max_events_drops_tail():
    env = Environment()
    tracer = Tracer(env, max_events=2)

    def p(env):
        for _ in range(5):
            tok = tracer.begin("s", "t")
            yield env.timeout(0.1)
            tracer.end(tok)

    env.process(p(env))
    env.run()
    assert len(tracer.spans) == 2
    assert tracer.dropped == 3


def test_pipeline_unit_traces_service_spans():
    env = Environment()
    tracer = Tracer(env)
    inbox = Channel(env, capacity=8, name="in")
    unit = PipelineUnit(env, "stage", ways=2,
                        service_time=lambda item: 0.5,
                        inbox=inbox, outbox=None, tracer=tracer)
    unit.start()
    for i in range(4):
        inbox.try_put(i)
    env.run(until=2.0)
    assert len(tracer.spans) == 4
    # Two ways -> two tracks.
    assert set(tracer.tracks()) == {"stage[0]", "stage[1]"}
    assert tracer.busy_time("stage[0]") == pytest.approx(1.0)
