"""Tests for the span tracer and Chrome-trace export."""

import json

import pytest

from repro.sim import Channel, Environment, Tracer
from repro.fpga import PipelineUnit


def test_span_recording():
    env = Environment()
    tracer = Tracer(env)

    def p(env):
        tok = tracer.begin("work", "worker-0", item=7)
        yield env.timeout(2.0)
        tracer.end(tok)
        tracer.instant("done", "worker-0")

    env.process(p(env))
    env.run()
    assert len(tracer.spans) == 1
    span = tracer.spans[0]
    assert span.name == "work"
    assert span.track == "worker-0"
    assert span.start == 0.0 and span.end == 2.0
    assert span.duration == 2.0
    assert span.args == {"item": 7}
    assert tracer.instants == [("done", "worker-0", 2.0)]


def test_busy_time_and_tracks():
    env = Environment()
    tracer = Tracer(env)

    def p(env, track, dur):
        tok = tracer.begin("svc", track)
        yield env.timeout(dur)
        tracer.end(tok)

    env.process(p(env, "a", 1.0))
    env.process(p(env, "b", 3.0))
    env.run()
    assert tracer.busy_time("a") == pytest.approx(1.0)
    assert tracer.busy_time("b") == pytest.approx(3.0)
    assert set(tracer.tracks()) == {"a", "b"}
    assert len(tracer.spans_on("a")) == 1


def test_chrome_trace_export(tmp_path):
    env = Environment()
    tracer = Tracer(env)

    def p(env):
        tok = tracer.begin("decode", "huffman[0]")
        yield env.timeout(0.001)
        tracer.end(tok)
        tracer.instant("finish")

    env.process(p(env))
    env.run()
    path = str(tmp_path / "trace.json")
    text = tracer.to_chrome_trace(path)
    events = json.loads(text)
    assert json.loads(open(path).read()) == events
    phases = {e["ph"] for e in events}
    assert phases == {"M", "X", "i"}
    span = next(e for e in events if e["ph"] == "X")
    assert span["name"] == "decode"
    assert span["dur"] == pytest.approx(1000.0)  # 1 ms -> 1000 us


def test_max_events_drops_tail():
    env = Environment()
    tracer = Tracer(env, max_events=2)

    def p(env):
        for _ in range(5):
            tok = tracer.begin("s", "t")
            yield env.timeout(0.1)
            tracer.end(tok)

    env.process(p(env))
    env.run()
    assert len(tracer.spans) == 2
    assert tracer.dropped == 3


def test_end_unknown_token_raises_descriptive_error():
    env = Environment()
    tracer = Tracer(env)
    tracer.begin("work", "t")
    with pytest.raises(KeyError, match="single-use"):
        tracer.end(999)
    tok = tracer.begin("other", "t")
    tracer.end(tok)
    with pytest.raises(KeyError, match="already consumed|single-use"):
        tracer.end(tok)


def test_flush_open_closes_spans_in_token_order():
    env = Environment()
    tracer = Tracer(env)

    def p(env):
        tracer.begin("b", "t")
        tracer.begin("a", "t")
        yield env.timeout(1.0)

    env.process(p(env))
    env.run()
    assert tracer.open_spans == 2
    assert tracer.flush_open() == 2
    assert tracer.open_spans == 0
    # Token order (begin order), not name order; all closed at env.now
    # and stamped as flushed.
    assert [s.name for s in tracer.spans] == ["b", "a"]
    assert all(s.end == 1.0 and s.args["flushed"] for s in tracer.spans)


def test_export_counts_unended_spans_as_dropped():
    env = Environment()
    tracer = Tracer(env)
    tracer.begin("leaked", "t")
    tok = tracer.begin("done", "t")
    tracer.end(tok)
    tracer.to_chrome_trace()
    assert tracer.dropped_open == 1
    assert tracer.total_dropped == 1
    # flush_open rescues the leak; a re-export has nothing open.
    tracer.flush_open()
    tracer.to_chrome_trace()
    assert tracer.dropped_open == 0
    assert tracer.total_dropped == 0


def test_span_at_records_explicit_extent():
    env = Environment()
    tracer = Tracer(env)
    tracer.span_at("late", "t", 1.5, 2.25, item=3)
    (span,) = tracer.spans
    assert (span.start, span.end) == (1.5, 2.25)
    assert span.args == {"item": 3}


def test_flow_phase_validated():
    env = Environment()
    tracer = Tracer(env)
    with pytest.raises(ValueError, match="flow phase"):
        tracer.flow("x", "t", "t", 0)


def test_chrome_trace_export_validity(tmp_path):
    """The export is valid Chrome-trace JSON: round-trips, one
    thread_name metadata event per track, timestamps monotonic, and
    every flow id appears as exactly one s/f pair."""
    env = Environment()
    tracer = Tracer(env)

    def p(env):
        tok = tracer.begin("decode", "fpga")
        yield env.timeout(0.002)
        tracer.end(tok)
        fid = tracer.next_flow_id()
        tracer.flow("req1", "fpga", "s", fid, at=0.0)
        tracer.flow("req1", "gpu", "f", fid, at=0.002)
        tracer.span_at("infer", "gpu", 0.002, 0.004)
        tracer.counter("depth", {"rx": 3}, at=0.001)
        tracer.instant("done", "gpu")

    env.process(p(env))
    env.run()
    path = str(tmp_path / "trace.json")
    events = json.loads(tracer.to_chrome_trace(path))
    assert json.loads(open(path).read()) == events

    meta = [e for e in events if e["ph"] == "M"]
    tracks = [e["args"]["name"] for e in meta]
    assert sorted(tracks) == ["fpga", "gpu"]          # one per track
    assert len({e["tid"] for e in meta}) == len(meta)  # distinct tids
    # Metadata leads; everything after is in timestamp order.
    assert all(e["ph"] == "M" for e in events[:len(meta)])
    ts = [e["ts"] for e in events[len(meta):]]
    assert ts == sorted(ts)

    flows = [e for e in events if e["ph"] in ("s", "f")]
    by_id = {}
    for e in flows:
        by_id.setdefault(e["id"], []).append(e)
    for pair in by_id.values():
        assert sorted(e["ph"] for e in pair) == ["f", "s"]
        (fin,) = [e for e in pair if e["ph"] == "f"]
        assert fin["bp"] == "e"
        assert all(e["cat"] == "flow" for e in pair)


def test_pipeline_unit_traces_service_spans():
    env = Environment()
    tracer = Tracer(env)
    inbox = Channel(env, capacity=8, name="in")
    unit = PipelineUnit(env, "stage", ways=2,
                        service_time=lambda item: 0.5,
                        inbox=inbox, outbox=None, tracer=tracer)
    unit.start()
    for i in range(4):
        inbox.try_put(i)
    env.run(until=2.0)
    assert len(tracer.spans) == 4
    # Two ways -> two tracks.
    assert set(tracer.tracks()) == {"stage[0]", "stage[1]"}
    assert tracer.busy_time("stage[0]") == pytest.approx(1.0)
