"""Tests for instrumented channels, queue pairs and monitors."""

import math

import pytest

from repro.sim import (BusyTracker, Channel, Counter, Environment,
                       IntervalRate, LatencyRecorder, QueuePair,
                       TimeWeighted)


# ---------------------------------------------------------------- Channel
def test_channel_put_get_roundtrip():
    env = Environment()
    ch = Channel(env)
    out = []

    def producer(env):
        yield from ch.put("item")

    def consumer(env):
        item = yield from ch.get()
        out.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert out == ["item"]
    assert ch.put_count == 1 and ch.get_count == 1


def test_channel_records_wait_time():
    env = Environment()
    ch = Channel(env)

    def producer(env):
        yield from ch.put("early")

    def consumer(env):
        yield env.timeout(4.0)
        yield from ch.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert ch.wait.mean() == pytest.approx(4.0)


def test_channel_capacity_backpressure():
    env = Environment()
    ch = Channel(env, capacity=2)
    done = []

    def producer(env):
        for i in range(4):
            yield from ch.put(i)
        done.append(env.now)

    def consumer(env):
        for _ in range(4):
            yield env.timeout(1.0)
            yield from ch.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    # 4th put admitted when a slot opens at t=2 (two items consumed).
    assert done == [2.0]


def test_channel_try_ops_and_drain():
    env = Environment()
    ch = Channel(env, capacity=2)
    assert ch.try_put(1) and ch.try_put(2)
    assert not ch.try_put(3)
    assert ch.drain() == [1, 2]
    ok, item = ch.try_get()
    assert not ok and item is None


def test_channel_occupancy_time_weighted():
    env = Environment()
    ch = Channel(env)

    def p(env):
        ch.try_put("x")
        yield env.timeout(10.0)
        ch.try_get()
        yield env.timeout(10.0)

    env.process(p(env))
    env.run()
    assert ch.occupancy.mean() == pytest.approx(0.5)


# ---------------------------------------------------------------- QueuePair
def test_queue_pair_seed_and_conservation():
    env = Environment()
    qp = QueuePair(env, capacity=10)
    qp.seed(["buf0", "buf1", "buf2"])
    assert qp.population == 3
    assert len(qp.free) == 3 and len(qp.full) == 0
    assert qp.in_flight() == 0

    ok, buf = qp.free.try_get()
    assert ok
    assert qp.in_flight() == 1
    qp.full.try_put(buf)
    assert qp.in_flight() == 0


def test_queue_pair_seed_overflow():
    env = Environment()
    qp = QueuePair(env, capacity=1)
    with pytest.raises(OverflowError):
        qp.seed(["a", "b"])


def test_queue_pair_recycle_cycle():
    env = Environment()
    qp = QueuePair(env, capacity=4)
    qp.seed([f"b{i}" for i in range(4)])
    seen = []

    def filler(env):
        for _ in range(8):
            buf = yield from qp.free.get()
            yield env.timeout(0.5)
            yield from qp.full.put(buf)

    def drainer(env):
        for _ in range(8):
            buf = yield from qp.full.get()
            seen.append(buf)
            yield env.timeout(0.25)
            yield from qp.free.put(buf)

    env.process(filler(env))
    env.process(drainer(env))
    env.run()
    assert len(seen) == 8
    assert qp.in_flight() == 0
    assert len(qp.free) == 4


# ---------------------------------------------------------------- monitors
def test_counter_rate():
    env = Environment()
    c = Counter(env)

    def p(env):
        for _ in range(10):
            yield env.timeout(1.0)
            c.add()

    env.process(p(env))
    env.run()
    assert c.total == 10
    assert c.rate() == pytest.approx(1.0)


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        Counter(Environment()).add(-1)


def test_time_weighted_mean():
    env = Environment()
    tw = TimeWeighted(env, initial=0)

    def p(env):
        yield env.timeout(5.0)
        tw.set(10)
        yield env.timeout(5.0)

    env.process(p(env))
    env.run()
    assert tw.mean() == pytest.approx(5.0)
    assert tw.max_value == 10
    assert tw.min_value == 0


def test_time_weighted_adjust():
    env = Environment()
    tw = TimeWeighted(env, initial=3)
    tw.adjust(+2)
    assert tw.value == 5
    tw.adjust(-4)
    assert tw.value == 1


def test_busy_tracker_cores():
    env = Environment()
    bt = BusyTracker(env)

    def worker(env, start, dur):
        yield env.timeout(start)
        tok = bt.begin("decode")
        yield env.timeout(dur)
        bt.end(tok)

    # Two workers each busy 5 of 10 seconds -> 1.0 cores.
    env.process(worker(env, 0.0, 5.0))
    env.process(worker(env, 5.0, 5.0))
    env.run(until=10.0)
    assert bt.cores() == pytest.approx(1.0)
    assert bt.cores("decode") == pytest.approx(1.0)
    assert bt.cores("other") == 0.0


def test_busy_tracker_concurrent_intervals_stack():
    env = Environment()
    bt = BusyTracker(env)

    def worker(env):
        tok = bt.begin()
        yield env.timeout(10.0)
        bt.end(tok)

    for _ in range(3):
        env.process(worker(env))
    env.run(until=10.0)
    assert bt.cores() == pytest.approx(3.0)


def test_busy_tracker_open_interval_counted():
    env = Environment()
    bt = BusyTracker(env)

    def worker(env):
        bt.begin("forever")
        yield env.timeout(100.0)

    env.process(worker(env))
    env.run(until=10.0)
    assert bt.cores() == pytest.approx(1.0)


def test_busy_tracker_charge_and_breakdown():
    env = Environment()
    bt = BusyTracker(env)

    def p(env):
        yield env.timeout(10.0)
        bt.charge(1.2, "update")
        bt.charge(9.5, "kernels")
        bt.charge(1.5, "transform")
        bt.charge(3.0, "preprocess")

    env.process(p(env))
    env.run()
    bd = bt.breakdown()
    assert bd["update"] == pytest.approx(0.12)
    assert bd["kernels"] == pytest.approx(0.95)
    assert bd["transform"] == pytest.approx(0.15)
    assert bd["preprocess"] == pytest.approx(0.30)
    assert bt.cores() == pytest.approx(1.52)


def test_busy_tracker_rejects_negative_charge():
    with pytest.raises(ValueError):
        BusyTracker(Environment()).charge(-1.0)


def test_latency_recorder_percentiles():
    lr = LatencyRecorder()
    for v in range(1, 101):
        lr.record(float(v))
    assert lr.count == 100
    assert lr.mean() == pytest.approx(50.5)
    assert lr.p50() == pytest.approx(50.5)
    assert lr.percentile(0) == 1.0
    assert lr.percentile(100) == 100.0
    assert lr.min() == 1.0 and lr.max() == 100.0


def test_latency_recorder_empty_is_nan():
    lr = LatencyRecorder()
    assert math.isnan(lr.mean())
    assert math.isnan(lr.p50())


def test_latency_recorder_validation():
    lr = LatencyRecorder()
    with pytest.raises(ValueError):
        lr.record(-0.1)
    lr.record(1.0)
    with pytest.raises(ValueError):
        lr.percentile(101)
    with pytest.raises(ValueError):
        LatencyRecorder(max_samples=0)


def test_latency_recorder_head_bias_regression():
    """ISSUE 3 repro: a late-arriving tail must dominate p99.

    The pre-fix recorder kept only the *first* ``max_samples`` values, so
    5 small values followed by 100 x 100 ms reported p99 = 4.96 ms.  With
    true reservoir sampling the reservoir is a uniform sample of all 105
    values and p99 ~ 100 ms.
    """
    lr = LatencyRecorder(max_samples=5)
    for v in (1.0, 2.0, 3.0, 4.0, 5.0):
        lr.record(v * 1e-3)
    for _ in range(100):
        lr.record(0.100)
    assert lr.count == 105
    assert lr.sample_count == 5
    assert not lr.is_exact
    assert lr.p99() == pytest.approx(0.100, rel=0.05)
    # min/max/mean/count stay exact over the full stream.
    assert lr.min() == pytest.approx(1e-3)
    assert lr.max() == pytest.approx(0.100)
    assert lr.mean() == pytest.approx((15e-3 + 100 * 0.100) / 105)


def test_latency_recorder_exact_below_cap():
    lr = LatencyRecorder(max_samples=1000)
    for v in range(100, 0, -1):
        lr.record(float(v))
    assert lr.is_exact and lr.sample_count == 100
    assert lr.samples == tuple(float(v) for v in range(1, 101))
    assert lr.p50() == pytest.approx(50.5)


def test_latency_recorder_merge_combines_windows():
    a = LatencyRecorder(name="a")
    b = LatencyRecorder(name="b")
    for v in range(1, 51):
        a.record(float(v))
    for v in range(51, 101):
        b.record(float(v))
    merged = LatencyRecorder(name="merged")
    merged.merge(a)
    merged.merge(b)
    assert merged.count == 100
    assert merged.p50() == pytest.approx(50.5)
    assert merged.min() == 1.0 and merged.max() == 100.0


def test_latency_recorder_deterministic_reservoir():
    def build():
        lr = LatencyRecorder(name="det", max_samples=32)
        for v in range(10_000):
            lr.record(float(v % 997))
        return lr.samples

    assert build() == build()


def test_interval_rate_windows():
    env = Environment()
    ir = IntervalRate(env)

    def p(env):
        for _ in range(10):
            yield env.timeout(1.0)
            ir.add(2.0)

    env.process(p(env))
    env.run(until=5.0)
    assert ir.mark() == pytest.approx(2.0)
    env.run(until=10.0)
    assert ir.mark() == pytest.approx(2.0)
    assert ir.total == 20.0


def test_interval_rate_zero_window_is_nan():
    """dt == 0 means "no window", not "zero throughput" — two marks at
    the same sim instant must not report a measured 0.0 rate."""
    env = Environment()
    ir = IntervalRate(env)
    ir.add(5.0)
    assert math.isnan(ir.mark())        # no time elapsed since creation
    env.run(until=1.0)
    assert ir.mark() == pytest.approx(5.0)
    assert math.isnan(ir.mark())        # immediate re-mark: empty window
