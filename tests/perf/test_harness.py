"""Tests for the repro.perf harness: timing, serialization, regression
gating, and the reference_mode patch/restore contract."""

import json

import numpy as np
import pytest

from repro.perf import (bench, check_regression, load_payload,
                        merge_payloads, reference_mode, to_payload,
                        write_payload)
from repro.perf.harness import SCHEMA, BenchResult


def test_bench_basic():
    calls = []
    result = bench(lambda: calls.append(1), name="noop", warmup=2, k=3,
                   min_time=0.001, units={"ops": 1.0})
    assert result.name == "noop"
    assert result.best_s > 0
    assert result.best_s <= result.mean_s
    assert len(result.runs) == 3
    assert result.reps >= 1
    # warmup + calibration + k timed runs all actually called fn
    assert len(calls) >= 2 + result.reps * 3
    assert result.rate()["ops_per_s"] == 1.0 / result.best_s


def test_bench_calibrates_fast_functions():
    result = bench(lambda: None, k=2, min_time=0.01)
    # A no-op takes nanoseconds; calibration must batch many reps.
    assert result.reps > 100


def test_bench_rejects_bad_args():
    with pytest.raises(ValueError):
        bench(lambda: None, k=0)
    with pytest.raises(ValueError):
        bench(lambda: None, min_time=0)


def test_payload_roundtrip(tmp_path):
    r = BenchResult(name="a.b", best_s=0.5, mean_s=0.6, runs=(0.5, 0.7),
                    reps=2, units={"bytes": 100.0})
    payload = to_payload([r], {"a.b_speedup": 2.0})
    assert payload["schema"] == SCHEMA
    assert payload["results"]["a.b"]["rate"]["bytes_per_s"] == 200.0
    path = str(tmp_path / "bench.json")
    write_payload(path, payload)
    loaded = load_payload(path)
    assert loaded["derived"]["a.b_speedup"] == 2.0
    # Merging on write: a second document extends, does not clobber.
    r2 = BenchResult(name="c.d", best_s=1.0, mean_s=1.0, runs=(1.0,),
                     reps=1)
    write_payload(path, to_payload([r2], {"c.d_speedup": 3.0}))
    loaded = load_payload(path)
    assert set(loaded["results"]) == {"a.b", "c.d"}
    assert loaded["derived"] == {"a.b_speedup": 2.0, "c.d_speedup": 3.0}


def test_load_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": "other/9"}))
    with pytest.raises(ValueError):
        load_payload(str(path))


def test_merge_rejects_wrong_schema():
    with pytest.raises(ValueError):
        merge_payloads({"schema": SCHEMA}, {"schema": "nope"})


def test_check_regression():
    baseline = {"schema": SCHEMA, "derived": {"x": 3.0, "y": 1.5,
                                              "only_base": 9.0}}
    current = {"schema": SCHEMA, "derived": {"x": 2.2, "y": 0.9,
                                             "only_cur": 1.0}}
    failures = check_regression(current, baseline, tolerance=0.30)
    # x: floor 2.1, current 2.2 -> ok.  y: floor 1.05, current 0.9 ->
    # fail.  Keys present in only one document are ignored.
    assert len(failures) == 1
    assert failures[0].startswith("y:")
    assert check_regression(current, baseline, tolerance=0.50) == []


def test_reference_mode_restores_on_exit():
    from repro.jpeg import decoder as decoder_mod
    from repro.jpeg.huffman import HuffmanTable
    from repro.sim.core import Event
    before = (decoder_mod.decode_block, HuffmanTable.decode, Event.succeed)
    with reference_mode():
        during = (decoder_mod.decode_block, HuffmanTable.decode,
                  Event.succeed)
        assert all(d is not b for d, b in zip(during, before))
    after = (decoder_mod.decode_block, HuffmanTable.decode, Event.succeed)
    assert all(a is b for a, b in zip(after, before))


def test_reference_mode_restores_on_error():
    from repro.jpeg import decoder as decoder_mod
    before = decoder_mod.decode_block
    with pytest.raises(RuntimeError):
        with reference_mode():
            raise RuntimeError("boom")
    assert decoder_mod.decode_block is before


def test_reference_mode_decode_bit_identical():
    """The whole point: the optimized decoder and the pre-pass decoder
    must produce the same pixels for the same bytes."""
    from repro.data.datasets import synthetic_photo
    from repro.jpeg.decoder import decode
    from repro.jpeg.encoder import encode
    img = synthetic_photo(np.random.default_rng(42), 64, 80)
    data = encode(img, quality=75)
    new = decode(data)
    with reference_mode():
        old = decode(data)
    assert np.array_equal(new, old)


def test_reference_mode_sim_bit_identical():
    """A small end-to-end sim gives identical results either mode."""
    from repro.sim import Channel, Environment

    def run_once():
        env = Environment()
        ch = Channel(env, capacity=4, name="t")
        got = []

        def producer():
            for i in range(50):
                yield from ch.put(i)
                yield env.timeout(0.25)

        def consumer():
            for _ in range(50):
                item = yield from ch.get()
                got.append((env.now, item))
                yield env.timeout(0.4)

        env.process(producer())
        env.process(consumer())
        env.run()
        return got, env.now, ch.wait.percentile(0.99), ch.put_count

    new = run_once()
    with reference_mode():
        old = run_once()
    assert new == old
