"""Edge cases of the perf baseline machinery: missing baseline keys,
zero-time samples, and merged multi-worker payloads — the shapes the
parallel sweep runner actually produces."""

import json

import pytest

from repro.perf.harness import (SCHEMA, BenchResult, check_regression,
                                load_payload, merge_payloads, to_payload,
                                write_payload)


def _payload(derived):
    return {"schema": SCHEMA, "results": {}, "derived": dict(derived)}


class TestCheckRegressionEdges:
    def test_baseline_key_missing_from_current_is_ignored(self):
        """A metric only the baseline knows must not fail the check —
        retiring a benchmark must not break old baselines."""
        failures = check_regression(
            _payload({"kept": 1.0}),
            _payload({"kept": 1.0, "retired": 9.9}))
        assert failures == []

    def test_current_key_missing_from_baseline_is_ignored(self):
        failures = check_regression(
            _payload({"brand_new": 0.001}), _payload({}))
        assert failures == []

    def test_empty_documents(self):
        assert check_regression({}, {}) == []
        assert check_regression(_payload({}), _payload({"x": 1.0})) == []

    def test_regression_detected_and_named(self):
        failures = check_regression(
            _payload({"speedup": 0.5}), _payload({"speedup": 1.0}),
            tolerance=0.3)
        assert len(failures) == 1
        assert "speedup" in failures[0]

    def test_within_tolerance_passes(self):
        assert check_regression(
            _payload({"speedup": 0.71}), _payload({"speedup": 1.0}),
            tolerance=0.3) == []


class TestZeroTimeSamples:
    def test_zero_best_s_reports_no_rates(self):
        res = BenchResult(name="instant", best_s=0.0, mean_s=0.0,
                          runs=(0.0,), reps=1, units={"events": 100.0})
        assert res.rate() == {}
        assert res.to_dict()["rate"] == {}

    def test_zero_time_payload_is_strict_json(self, tmp_path):
        """No Infinity leaks into the document (json.load round-trip
        with strict parsing)."""
        res = BenchResult(name="instant", best_s=0.0, mean_s=0.0,
                          runs=(0.0,), reps=1, units={"events": 5.0})
        path = str(tmp_path / "perf.json")
        write_payload(path, to_payload([res]))
        text = open(path).read()
        assert "Infinity" not in text
        doc = json.loads(text, parse_constant=lambda c: pytest.fail(
            f"non-strict JSON constant {c!r} in payload"))
        assert doc["results"]["instant"]["rate"] == {}

    def test_positive_best_s_still_reports_rates(self):
        res = BenchResult(name="b", best_s=0.5, mean_s=0.5, runs=(0.5,),
                          reps=1, units={"events": 10.0})
        assert res.rate() == {"events_per_s": 20.0}


class TestMergedWorkerPayloads:
    """The sweep runner merges per-worker repro-perf/1 payloads into the
    committed BENCH artifact; the baseline check must consume that."""

    def test_merge_then_check(self):
        worker_a = _payload({"sweep.events_per_s": 1000.0})
        worker_b = _payload({"codec.decode_speedup": 3.0})
        merged = merge_payloads(worker_a, worker_b)
        assert set(merged["derived"]) == {"sweep.events_per_s",
                                          "codec.decode_speedup"}
        baseline = _payload({"sweep.events_per_s": 900.0,
                             "codec.decode_speedup": 2.8})
        assert check_regression(merged, baseline) == []
        bad = _payload({"sweep.events_per_s": 10_000.0})
        assert len(check_regression(merged, bad)) == 1

    def test_merge_collision_latest_wins(self):
        merged = merge_payloads(_payload({"x": 1.0}), _payload({"x": 2.0}))
        assert merged["derived"]["x"] == 2.0

    def test_merge_rejects_wrong_schema(self):
        with pytest.raises(ValueError):
            merge_payloads(_payload({}), {"schema": "other/1"})

    def test_sweep_payload_round_trips_through_file(self, tmp_path):
        """End to end: a real sweep perf payload survives write/load and
        feeds check_regression without error."""
        from repro.sweep import SweepPoint, run_sweep
        pts = [SweepPoint(runner="fig7_infer",
                          config={"model": "googlenet",
                                  "backend": "dlbooster", "batch_size": 1,
                                  "warmup_s": 0.2, "measure_s": 0.5,
                                  "telemetry": False},
                          seed=0, label="g/dlb/bs1/s0")]
        outcome = run_sweep(pts, parallel=1)
        path = str(tmp_path / "bench.json")
        write_payload(path, outcome.perf_payload())
        loaded = load_payload(path)
        assert "sweep.total[parallel=1]" in loaded["results"]
        assert check_regression(
            loaded, _payload({"sweep.events_per_s":
                              loaded["derived"]["sweep.events_per_s"]}),
            tolerance=0.99) == []
