"""Shared pytest configuration: a pytest-timeout fallback shim.

Supervision tests exercise watchdogs and shutdown paths where the
failure mode of a regression is a *hang*, not an assertion — so they
carry ``@pytest.mark.timeout(n)``.  CI installs pytest-timeout and runs
with ``--timeout``; on dev boxes without the plugin this shim honors
the same marker via SIGALRM, so a deadlock still fails the test in
seconds instead of wedging the whole suite.
"""

from __future__ import annotations

import signal

import pytest


def _timeout_plugin_loaded(config) -> bool:
    return config.pluginmanager.hasplugin("timeout")


def pytest_configure(config):
    if not _timeout_plugin_loaded(config):
        config.addinivalue_line(
            "markers",
            "timeout(seconds): fail the test if it runs longer than "
            "``seconds`` (SIGALRM fallback when pytest-timeout is absent)")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    marker = item.get_closest_marker("timeout")
    use_shim = (marker is not None
                and not _timeout_plugin_loaded(item.config)
                and hasattr(signal, "SIGALRM"))
    if not use_shim:
        yield
        return
    seconds = float(marker.args[0] if marker.args
                    else marker.kwargs.get("timeout", 60))

    def _alarm(signum, frame):
        raise TimeoutError(
            f"{item.nodeid} exceeded {seconds:g}s (SIGALRM timeout shim)")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
