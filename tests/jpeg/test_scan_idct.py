"""Scan-wide batched iDCT: bit-identical to the per-block loop.

``idct2_dequant_scan`` stacks every component's blocks into one GEMM;
because the same 8x8 matmul runs per slice regardless of stack shape,
the result must match ``idct2_dequant`` applied block by block to the
last bit — it's the decoder's hot loop, so this contract is what lets
the batching exist at all.
"""

import numpy as np
import pytest

from repro.jpeg.dct import idct2_dequant, idct2_dequant_scan


def _qtable(rng):
    return rng.integers(1, 64, size=(8, 8)).astype(np.uint16)


def _stack(rng, *lead):
    return rng.integers(-1024, 1024, size=(*lead, 8, 8)).astype(np.int32)


@pytest.mark.parametrize("seed", range(3))
def test_scan_matches_per_block_bitwise(seed):
    rng = np.random.default_rng(seed)
    stacks = [_stack(rng, 6, 4), _stack(rng, 3, 2), _stack(rng, 3, 2)]
    qtables = [_qtable(rng) for _ in range(3)]
    outs = idct2_dequant_scan(stacks, qtables)
    for coeffs, qtable, out in zip(stacks, qtables, outs):
        assert out.shape == coeffs.shape
        assert out.dtype == np.float64
        for idx in np.ndindex(coeffs.shape[:-2]):
            expect = idct2_dequant(coeffs[idx], qtable)
            assert np.array_equal(out[idx], expect)


def test_single_block_stack():
    rng = np.random.default_rng(9)
    coeffs, qtable = _stack(rng, 1), _qtable(rng)
    (out,) = idct2_dequant_scan([coeffs], [qtable])
    assert np.array_equal(out[0], idct2_dequant(coeffs[0], qtable))


def test_empty_component_list():
    assert idct2_dequant_scan([], []) == []


def test_mismatched_lengths_rejected():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        idct2_dequant_scan([_stack(rng, 2)], [])


def test_bad_trailing_shape_rejected():
    rng = np.random.default_rng(0)
    bad = rng.integers(0, 8, size=(2, 4, 4)).astype(np.int32)
    with pytest.raises(ValueError):
        idct2_dequant_scan([bad], [_qtable(rng)])
