"""Property tests: LUT-accelerated Huffman decode == the T.81 reference.

The optimized ``decode_block`` (16-bit combined lookahead, inline bulk
refill) must be *bit-exact* with the pre-optimization implementation —
same symbols, same magnitudes, same consumed bit positions, same
exceptions — on every stream, including pathological ones: codes longer
than 8 bits, restart markers, truncated segments.  The verbatim pre-pass
implementation kept in :mod:`repro.perf.reference` is the oracle.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jpeg.bitstream import BitReader, BitWriter, EndOfScan
from repro.jpeg.huffman import (STD_AC_CHROMA, STD_AC_LUMA, STD_DC_CHROMA,
                                STD_DC_LUMA, HuffmanTable,
                                build_table_from_freqs, decode_block,
                                encode_block)
from repro.perf.reference import decode_block_ref


def bit_offset(reader: BitReader) -> int:
    """Absolute consumed payload-bit position, independent of how many
    bytes each refill strategy happens to have buffered.

    ``_pos`` counts raw bytes including 0xFF00 stuffing, and the bulk
    refill may have pulled a stuffed pair the byte-at-a-time reference
    has not reached yet — so stuffed 0x00 bytes must be discounted
    before comparing positions.
    """
    data, pos = reader._data, reader._pos
    stuffed = sum(1 for i in range(1, pos)
                  if data[i] == 0x00 and data[i - 1] == 0xFF)
    return (pos - stuffed) * 8 - reader._nbits


def encode_blocks(blocks, dc_table, ac_table, restart_every=0) -> bytes:
    """Entropy-encode blocks, optionally with RST markers between them."""
    out = bytearray()
    writer = BitWriter()
    pred = 0
    rst = 0
    for i, zz in enumerate(blocks):
        if restart_every and i and i % restart_every == 0:
            writer.flush()
            out += writer.getvalue()
            out += bytes([0xFF, 0xD0 + rst])
            rst = (rst + 1) % 8
            writer = BitWriter()
            pred = 0
        pred = encode_block(writer, zz, pred, dc_table, ac_table)
    writer.flush()
    out += writer.getvalue()
    out += b"\xFF\xD9"  # EOI so refill stops at a marker, as in a scan
    return bytes(out)


def decode_all(data, n_blocks, dc_table, ac_table, impl, restart_every=0):
    """Decode ``n_blocks`` with ``impl``; returns (blocks, trace).

    ``trace`` is the list of consumed-bit positions after every block —
    the strongest equivalence signal short of instruction traces.
    """
    reader = BitReader(data)
    pred = 0
    blocks, trace = [], []
    for i in range(n_blocks):
        if restart_every and i and i % restart_every == 0:
            reader.align_and_consume_rst()
            pred = 0
        zz, pred = impl(reader, pred, dc_table, ac_table)
        blocks.append(zz.copy())
        trace.append(bit_offset(reader))
    return blocks, trace


# Zig-zag vectors: mostly zero (realistic), coefficients within the
# 4-bit-category range so every magnitude path (incl. ssss up to 10+)
# gets exercised via the DC differences.
coeff = st.integers(min_value=-1023, max_value=1023)


def _pairs_to_block(pairs):
    zz = np.zeros(64, dtype=np.int32)
    for idx, val in pairs:
        zz[idx] = val
    return zz


sparse_block = st.lists(
    st.tuples(st.integers(0, 63), coeff), min_size=0, max_size=16
).map(_pairs_to_block)

blocks_strategy = st.lists(sparse_block, min_size=1, max_size=6)

TABLES = [(STD_DC_LUMA, STD_AC_LUMA), (STD_DC_CHROMA, STD_AC_CHROMA)]


@settings(max_examples=60, deadline=None)
@given(blocks=blocks_strategy, which=st.integers(0, 1))
def test_random_blocks_identical(blocks, which):
    dc_t, ac_t = TABLES[which]
    data = encode_blocks(blocks, dc_t, ac_t)
    got, got_trace = decode_all(data, len(blocks), dc_t, ac_t, decode_block)
    ref, ref_trace = decode_all(data, len(blocks), dc_t, ac_t,
                                decode_block_ref)
    assert got_trace == ref_trace
    for g, r in zip(got, ref):
        assert np.array_equal(g, r)


@settings(max_examples=30, deadline=None)
@given(blocks=st.lists(sparse_block, min_size=4, max_size=8),
       restart_every=st.integers(1, 3))
def test_restart_markers_identical(blocks, restart_every):
    dc_t, ac_t = STD_DC_LUMA, STD_AC_LUMA
    data = encode_blocks(blocks, dc_t, ac_t, restart_every=restart_every)
    got, got_trace = decode_all(data, len(blocks), dc_t, ac_t,
                                decode_block, restart_every=restart_every)
    ref, ref_trace = decode_all(data, len(blocks), dc_t, ac_t,
                                decode_block_ref,
                                restart_every=restart_every)
    assert got_trace == ref_trace
    for g, r in zip(got, ref):
        assert np.array_equal(g, r)


@settings(max_examples=60, deadline=None)
@given(blocks=blocks_strategy, cut=st.integers(0, 200), data=st.data())
def test_truncated_streams_raise_identically(blocks, cut, data):
    """Any truncation raises the same exception type/message at the
    same block index in both implementations (EndOfScan for running out
    of data, ValueError for streams corrupted by the cut)."""
    dc_t, ac_t = STD_DC_LUMA, STD_AC_LUMA
    full = encode_blocks(blocks, dc_t, ac_t)[:-2]  # drop EOI
    truncated = full[:min(cut, max(len(full) - 1, 0))]

    def run(impl):
        reader = BitReader(truncated)
        pred = 0
        out = []
        try:
            for _ in range(len(blocks)):
                zz, pred = impl(reader, pred, dc_t, ac_t)
                out.append(zz.copy())
        except (EndOfScan, ValueError) as exc:
            return out, type(exc), str(exc), bit_offset(reader)
        return out, None, None, bit_offset(reader)

    got_out, got_exc, got_msg, _ = run(decode_block)
    ref_out, ref_exc, ref_msg, _ = run(decode_block_ref)
    assert got_exc is ref_exc
    assert got_msg == ref_msg
    assert len(got_out) == len(ref_out)
    for g, r in zip(got_out, ref_out):
        assert np.array_equal(g, r)
    if got_exc is None and ref_exc is None:
        pass  # both decoded everything (cut landed after the data)


def test_truncated_stream_raises_endofscan():
    """The basic contract: an empty/short stream is EndOfScan, not a
    crash or a garbage block."""
    zz = np.zeros(64, dtype=np.int32)
    zz[0] = 100
    data = encode_blocks([zz], STD_DC_LUMA, STD_AC_LUMA)[:-2]
    for impl in (decode_block, decode_block_ref):
        with pytest.raises(EndOfScan):
            reader = BitReader(data[:1] if len(data) > 1 else b"")
            impl(reader, 0, STD_DC_LUMA, STD_AC_LUMA)


small_block = st.lists(
    st.tuples(st.integers(0, 63), st.integers(-255, 255)),
    min_size=0, max_size=16
).map(_pairs_to_block)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31 - 1),
       blocks=st.lists(small_block, min_size=1, max_size=6))
def test_skewed_tables_exercise_long_codes(seed, blocks):
    """Tables built from heavily skewed frequencies contain codes longer
    than 8 bits, forcing the lookahead miss / slow paths."""
    rng = np.random.default_rng(seed)
    # Geometric-ish frequencies over many symbols -> long canonical
    # codes.  Coefficients are capped at |255| (ssss <= 8), so the table
    # covers every symbol the encoder can emit.
    dc_freqs = {s: int(2 ** max(0, 14 - s)) for s in range(12)}
    ac_symbols = [0x00, 0xF0] + [(r << 4) | s for r in range(16)
                                 for s in range(1, 9)]
    ac_freqs = {sym: int(rng.integers(1, 1 << max(1, 14 - i % 14)))
                for i, sym in enumerate(ac_symbols)}
    dc_t = build_table_from_freqs(dc_freqs)
    ac_t = build_table_from_freqs(ac_freqs)
    longest = max(length for _, length in ac_t.encode_map.values())
    assert longest > 8  # the property this test exists to exercise

    data = encode_blocks(blocks, dc_t, ac_t)
    got, got_trace = decode_all(data, len(blocks), dc_t, ac_t, decode_block)
    ref, ref_trace = decode_all(data, len(blocks), dc_t, ac_t,
                                decode_block_ref)
    assert got_trace == ref_trace
    for g, r in zip(got, ref):
        assert np.array_equal(g, r)


def test_lut8_decode_matches_decode_ref():
    """HuffmanTable.decode (8-bit lookahead) == decode_ref, symbol by
    symbol, on a stream long enough to hit both fast and slow paths."""
    rng = np.random.default_rng(11)
    table = STD_AC_LUMA
    symbols = list(table.encode_map)
    seq = [symbols[i] for i in rng.integers(0, len(symbols), 500)]
    writer = BitWriter()
    for sym in seq:
        table.encode(writer, sym)
    writer.flush()
    data = writer.getvalue() + b"\xFF\xD9"

    r1, r2 = BitReader(data), BitReader(data)
    for expected in seq:
        assert table.decode(r1) == expected
        assert table.decode_ref(r2) == expected
        assert bit_offset(r1) == bit_offset(r2)
