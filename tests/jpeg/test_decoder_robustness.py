"""Decoder robustness: fuzzing-adjacent tests that corrupt valid streams
and assert the decoder fails *cleanly* (JpegFormatError or a decoded
image — never a hang, crash, or unbounded loop)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import synthetic_photo
from repro.jpeg import JpegFormatError, decode, encode


def reference(seed=0, h=48, w=64, **kw):
    img = synthetic_photo(np.random.default_rng(seed), h, w)
    return encode(img, 75, **kw)


def try_decode(data: bytes):
    """Decode must either produce an array or raise JpegFormatError —
    every corruption surfaces as the one typed format error."""
    try:
        out = decode(data)
    except JpegFormatError:
        return None
    assert isinstance(out, np.ndarray)
    return out


@given(st.integers(2, 400), st.integers(0, 255))
@settings(max_examples=60, deadline=None)
def test_single_byte_corruption_never_hangs(pos, value):
    data = bytearray(reference())
    pos = pos % len(data)
    data[pos] = value
    try_decode(bytes(data))


@given(st.integers(0, 2000))
@settings(max_examples=30, deadline=None)
def test_truncation_never_hangs(cut):
    data = reference()
    try_decode(data[:cut % len(data)])


@given(st.binary(min_size=0, max_size=64))
@settings(max_examples=40, deadline=None)
def test_garbage_prefix_streams_rejected(junk):
    with pytest.raises(JpegFormatError):
        decode(junk + b"\x01\x02\x03")


def test_bit_flips_in_scan_detected_or_decoded():
    """Flipping entropy-coded bits must never escape the block bounds."""
    data = bytearray(reference(seed=3))
    rng = np.random.default_rng(0)
    from repro.jpeg import parse_jpeg
    scan_start = parse_jpeg(bytes(data)).scan_offset
    flips = rng.integers(scan_start, len(data) - 2, size=20)
    for pos in flips:
        corrupted = bytearray(data)
        corrupted[pos] ^= 0x40
        try_decode(bytes(corrupted))


def test_double_eoi_harmless():
    data = reference() + b"\xFF\xD9"
    out = decode(data)
    assert out.shape == (48, 64, 3)


def test_trailing_garbage_after_eoi_harmless():
    data = reference() + b"garbage trailing bytes"
    out = decode(data)
    assert out.shape == (48, 64, 3)
