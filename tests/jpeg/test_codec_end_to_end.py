"""End-to-end encoder/decoder tests: round-trip fidelity, staged API,
marker handling, resize, malformed input."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jpeg import (JpegFormatError, center_crop, coefficients_to_planes,
                        decode, decode_resized, encode, entropy_decode,
                        parse_jpeg, planes_to_image, resize_bilinear,
                        resize_nearest)


def make_test_image(h, w, seed=0):
    """Smooth gradient + mild texture: compresses realistically."""
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:h, 0:w]
    base = np.stack([xx * 255 / max(w - 1, 1),
                     yy * 255 / max(h - 1, 1),
                     (xx + yy) * 255 / max(h + w - 2, 1)], axis=-1)
    noise = rng.normal(0, 6, (h, w, 3))
    return np.clip(base + noise, 0, 255).astype(np.uint8)


def psnr(a, b):
    mse = np.mean((a.astype(np.float64) - b.astype(np.float64)) ** 2)
    return np.inf if mse == 0 else 10 * np.log10(255.0 ** 2 / mse)


# ----------------------------------------------------------- round trips
@pytest.mark.parametrize("subsampling", ["4:4:4", "4:2:0"])
@pytest.mark.parametrize("quality", [50, 75, 95])
def test_color_roundtrip_quality(subsampling, quality):
    img = make_test_image(64, 80)
    out = decode(encode(img, quality=quality, subsampling=subsampling))
    assert out.shape == img.shape
    assert psnr(out, img) > 30


def test_higher_quality_higher_fidelity():
    img = make_test_image(48, 48, seed=1)
    p_low = psnr(decode(encode(img, quality=30)), img)
    p_high = psnr(decode(encode(img, quality=90)), img)
    assert p_high > p_low


def test_higher_quality_bigger_file():
    img = make_test_image(48, 48, seed=2)
    assert len(encode(img, quality=90)) > len(encode(img, quality=30))


def test_grayscale_roundtrip():
    img = make_test_image(40, 56, seed=3)[..., 0]
    out = decode(encode(img, quality=85))
    assert out.shape == img.shape
    assert out.ndim == 2
    assert psnr(out, img) > 35


@pytest.mark.parametrize("h,w", [(8, 8), (16, 24), (17, 23), (1, 1),
                                 (9, 31), (64, 48)])
def test_arbitrary_dimensions(h, w):
    img = make_test_image(h, w, seed=h * 100 + w)
    out = decode(encode(img, quality=80, subsampling="4:2:0"))
    assert out.shape == (h, w, 3)


def test_flat_image_exact_dc():
    img = np.full((32, 32, 3), 128, dtype=np.uint8)
    out = decode(encode(img, quality=75))
    assert np.max(np.abs(out.astype(int) - 128)) <= 2


def test_restart_interval_roundtrip():
    img = make_test_image(64, 64, seed=4)
    plain = decode(encode(img, quality=75, subsampling="4:2:0"))
    rst = decode(encode(img, quality=75, subsampling="4:2:0",
                        restart_interval=2))
    np.testing.assert_array_equal(plain, rst)


def test_restart_interval_many_segments():
    # >8 restarts exercises the RSTn modulo-8 counter.
    img = make_test_image(96, 96, seed=5)
    data = encode(img, quality=60, restart_interval=1)
    assert decode(data).shape == img.shape


def test_input_validation():
    with pytest.raises(TypeError):
        encode(np.zeros((8, 8), dtype=np.float32))
    with pytest.raises(ValueError):
        encode(np.zeros((8, 8, 2), dtype=np.uint8))
    with pytest.raises(ValueError):
        encode(np.zeros((8, 8, 3), dtype=np.uint8), subsampling="4:2:2")
    with pytest.raises(ValueError):
        encode(np.zeros((8, 8, 3), dtype=np.uint8), quality=0)


# ------------------------------------------------------------- staged API
def test_staged_pipeline_matches_fused():
    img = make_test_image(40, 40, seed=6)
    data = encode(img, quality=75, subsampling="4:2:0")
    parsed = parse_jpeg(data)
    coeffs = entropy_decode(parsed)
    planes = coefficients_to_planes(parsed, coeffs)
    staged = planes_to_image(parsed, planes)
    np.testing.assert_array_equal(staged, decode(data))


def test_entropy_stage_shapes():
    img = make_test_image(33, 49, seed=7)
    parsed = parse_jpeg(encode(img, quality=75, subsampling="4:2:0"))
    coeffs = entropy_decode(parsed)
    assert len(coeffs) == 3
    # 4:2:0: luma grid is 2x the chroma grid, MCU-aligned.
    assert coeffs[0].shape[0] == 2 * coeffs[1].shape[0]
    assert coeffs[0].shape[1] == 2 * coeffs[1].shape[1]
    assert coeffs[0].shape[2] == 64


def test_parse_reports_geometry():
    img = make_test_image(33, 49, seed=8)
    parsed = parse_jpeg(encode(img, subsampling="4:2:0"))
    f = parsed.frame
    assert (f.height, f.width) == (33, 49)
    assert f.hmax == 2 and f.vmax == 2
    assert f.mcu_width == 16 and f.mcu_height == 16
    assert f.mcus_per_row == 4 and f.mcu_rows == 3


def test_parse_restart_interval():
    img = make_test_image(32, 32, seed=9)
    parsed = parse_jpeg(encode(img, restart_interval=5))
    assert parsed.restart_interval == 5


# ------------------------------------------------------------- malformed
def test_missing_soi_rejected():
    with pytest.raises(JpegFormatError, match="SOI"):
        parse_jpeg(b"\x00\x01\x02\x03")


def test_truncated_stream_rejected():
    img = make_test_image(32, 32, seed=10)
    data = encode(img)
    with pytest.raises(JpegFormatError):
        decode(data[:len(data) // 2])


def test_empty_input_rejected():
    with pytest.raises(JpegFormatError):
        parse_jpeg(b"")


def test_no_sos_rejected():
    with pytest.raises(JpegFormatError, match="SOS|EOI"):
        parse_jpeg(b"\xFF\xD8\xFF\xD9")


def test_corrupt_scan_detected():
    img = make_test_image(32, 32, seed=11)
    data = bytearray(encode(img, quality=75))
    parsed = parse_jpeg(bytes(data))
    # Truncate right after the scan start: decoder must not hang or wrap.
    with pytest.raises(JpegFormatError):
        decode(bytes(data[:parsed.scan_offset + 4]))


# ---------------------------------------------------------------- resize
def test_decode_resized_shape():
    img = make_test_image(60, 90, seed=12)
    out = decode_resized(encode(img), 224, 224)
    assert out.shape == (224, 224, 3)
    assert out.dtype == np.uint8


def test_resize_bilinear_identity():
    img = make_test_image(32, 32, seed=13)
    np.testing.assert_array_equal(resize_bilinear(img, 32, 32), img)


def test_resize_bilinear_constant_preserved():
    img = np.full((10, 10), 50.0)
    np.testing.assert_allclose(resize_bilinear(img, 23, 17), 50.0)


def test_resize_downscale_averages():
    img = np.zeros((4, 4))
    img[:, 2:] = 100.0
    out = resize_bilinear(img, 2, 2)
    assert out[0, 0] < out[0, 1]


def test_resize_nearest_exact_upscale():
    img = np.array([[1, 2], [3, 4]], dtype=np.uint8)
    out = resize_nearest(img, 4, 4)
    np.testing.assert_array_equal(out, [[1, 1, 2, 2], [1, 1, 2, 2],
                                        [3, 3, 4, 4], [3, 3, 4, 4]])


def test_resize_validation():
    with pytest.raises(ValueError):
        resize_bilinear(np.zeros((4,)), 2, 2)
    with pytest.raises(ValueError):
        resize_bilinear(np.zeros((4, 4)), 0, 2)
    with pytest.raises(ValueError):
        resize_nearest(np.zeros(4), 2, 2)


def test_center_crop():
    img = make_test_image(10, 12, seed=14)
    out = center_crop(img, 4, 6)
    np.testing.assert_array_equal(out, img[3:7, 3:9])
    with pytest.raises(ValueError):
        center_crop(img, 11, 4)


# ------------------------------------------------------------- properties
@given(st.integers(1, 40), st.integers(1, 40), st.integers(20, 95))
@settings(max_examples=15, deadline=None)
def test_roundtrip_shape_property(h, w, quality):
    img = make_test_image(h, w, seed=h * 1000 + w)
    out = decode(encode(img, quality=quality))
    assert out.shape == (h, w, 3)
