"""Tests for restart-segment-parallel Huffman decoding — the functional
model behind the FPGA's 4-way Huffman unit."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import synthetic_photo
from repro.jpeg import (JpegFormatError, decode, encode,
                        entropy_decode, entropy_decode_parallel,
                        entropy_decode_segments, find_restart_segments,
                        parse_jpeg)


def make_jpeg(h=64, w=80, restart_interval=2, quality=75, seed=0,
              gray=False):
    rng = np.random.default_rng(seed)
    img = synthetic_photo(rng, h, w, gray=gray)
    return img, encode(img, quality=quality,
                       subsampling="4:4:4" if gray else "4:2:0",
                       restart_interval=restart_interval)


def test_segment_count_matches_restart_interval():
    _, data = make_jpeg(h=64, w=80, restart_interval=2)
    parsed = parse_jpeg(data)
    # 64x80 4:2:0 -> 4x5 = 20 MCUs -> ceil(20/2) = 10 segments.
    assert len(find_restart_segments(parsed)) == 10


def test_no_restarts_single_segment():
    _, data = make_jpeg(restart_interval=0)
    parsed = parse_jpeg(data)
    assert len(find_restart_segments(parsed)) == 1


def test_segments_cover_scan_without_overlap():
    _, data = make_jpeg(restart_interval=3)
    parsed = parse_jpeg(data)
    segments = find_restart_segments(parsed)
    assert segments[0][0] == parsed.scan_offset
    for (s1, e1), (s2, e2) in zip(segments, segments[1:]):
        assert e1 < s2              # RST marker bytes between segments
        assert s2 == e1 + 2         # exactly the 2-byte marker
    assert all(s < e for s, e in segments)


@pytest.mark.parametrize("ways", [1, 2, 4, 7])
def test_parallel_matches_sequential(ways):
    _, data = make_jpeg(restart_interval=2)
    parsed = parse_jpeg(data)
    seq = entropy_decode(parsed)
    par = entropy_decode_parallel(parsed, ways=ways)
    assert len(seq) == len(par)
    for a, b in zip(seq, par):
        np.testing.assert_array_equal(a, b)


def test_parallel_gray():
    _, data = make_jpeg(restart_interval=4, gray=True)
    parsed = parse_jpeg(data)
    seq = entropy_decode(parsed)
    par = entropy_decode_parallel(parsed, ways=4)
    np.testing.assert_array_equal(seq[0], par[0])


def test_parallel_without_restarts_degenerates():
    img, data = make_jpeg(restart_interval=0)
    parsed = parse_jpeg(data)
    par = entropy_decode_parallel(parsed, ways=4)
    seq = entropy_decode(parsed)
    for a, b in zip(seq, par):
        np.testing.assert_array_equal(a, b)


def test_segments_helper_equals_parallel_one_way():
    _, data = make_jpeg(restart_interval=2)
    parsed = parse_jpeg(data)
    a = entropy_decode_segments(parsed)
    b = entropy_decode_parallel(parsed, ways=1)
    for x, y in zip(a, b):
        np.testing.assert_array_equal(x, y)


def test_ways_validation():
    _, data = make_jpeg()
    parsed = parse_jpeg(data)
    with pytest.raises(ValueError):
        entropy_decode_parallel(parsed, ways=0)


def test_truncated_segment_detected():
    _, data = make_jpeg(restart_interval=2)
    parsed = parse_jpeg(data)
    segments = find_restart_segments(parsed)
    # Chop the middle of the second segment out of the stream.
    s, e = segments[1]
    broken = data[:s + 2] + data[e:]
    with pytest.raises(JpegFormatError):
        entropy_decode_parallel(parse_jpeg(broken), ways=2)


@given(st.integers(1, 6), st.integers(1, 5))
@settings(max_examples=10, deadline=None)
def test_parallel_roundtrip_property(restart_interval, ways):
    img, data = make_jpeg(h=48, w=48, restart_interval=restart_interval,
                          seed=restart_interval * 10 + ways)
    parsed = parse_jpeg(data)
    par = entropy_decode_parallel(parsed, ways=ways)
    seq = entropy_decode(parsed)
    for a, b in zip(seq, par):
        np.testing.assert_array_equal(a, b)


def test_full_decode_unaffected_by_restart_encoding():
    img, plain = make_jpeg(restart_interval=0, seed=5)
    _, rst = make_jpeg(restart_interval=2, seed=5)
    np.testing.assert_array_equal(decode(plain), decode(rst))
