"""Edge-case tests for the JFIF marker parser and segment writer."""

import struct

import numpy as np
import pytest

from repro.data import synthetic_photo
from repro.jpeg import JpegFormatError, Marker, encode, parse_jpeg
from repro.jpeg.jfif import SegmentWriter, FrameHeader, FrameComponent
from repro.jpeg.huffman import STD_DC_LUMA
from repro.jpeg.quant import STD_LUMA_QTABLE


def valid_jpeg(seed=0, **kwargs):
    img = synthetic_photo(np.random.default_rng(seed), 32, 40)
    return encode(img, 75, **kwargs)


# ----------------------------------------------------------------- parser
def test_progressive_sof2_rejected():
    data = bytearray(valid_jpeg())
    # Rewrite the SOF0 marker to SOF2 (progressive).
    idx = data.find(bytes([0xFF, Marker.SOF0]))
    data[idx + 1] = Marker.SOF2
    with pytest.raises(JpegFormatError, match="progressive"):
        parse_jpeg(bytes(data))


def test_sixteen_bit_qtables_rejected():
    data = bytearray(valid_jpeg())
    idx = data.find(bytes([0xFF, Marker.DQT]))
    data[idx + 4] |= 0x10  # Pq = 1 -> 16-bit entries
    with pytest.raises(JpegFormatError, match="16-bit"):
        parse_jpeg(bytes(data))


def test_eoi_before_sos_rejected():
    seg = SegmentWriter()
    seg.soi()
    seg.eoi()
    with pytest.raises(JpegFormatError, match="EOI before SOS"):
        parse_jpeg(seg.getvalue())


def test_sos_before_sof_rejected():
    data = valid_jpeg()
    sof = data.find(bytes([0xFF, Marker.SOF0]))
    sof_len = struct.unpack(">H", data[sof + 2:sof + 4])[0]
    # Remove the SOF segment entirely.
    stripped = data[:sof] + data[sof + 2 + sof_len:]
    with pytest.raises(JpegFormatError, match="SOS before SOF0"):
        parse_jpeg(stripped)


def test_zero_dimension_rejected():
    data = bytearray(valid_jpeg())
    idx = data.find(bytes([0xFF, Marker.SOF0]))
    data[idx + 5:idx + 7] = b"\x00\x00"  # height = 0
    with pytest.raises(JpegFormatError, match="zero"):
        parse_jpeg(bytes(data))


def test_unknown_app_segments_skipped():
    # Insert an APP7 segment after APP0; the parser must skip it.
    data = valid_jpeg()
    app0_end = data.find(bytes([0xFF, Marker.DQT]))
    custom = bytes([0xFF, 0xE7]) + struct.pack(">H", 6) + b"abcd"
    patched = data[:app0_end] + custom + data[app0_end:]
    parsed = parse_jpeg(patched)
    assert parsed.frame.width == 40


def test_comment_segment_skipped():
    data = valid_jpeg()
    app0_end = data.find(bytes([0xFF, Marker.DQT]))
    comment = bytes([0xFF, Marker.COM]) + struct.pack(">H", 7) + b"hello"
    patched = data[:app0_end] + comment + data[app0_end:]
    assert parse_jpeg(patched).frame.height == 32


def test_truncated_segment_header():
    data = valid_jpeg()
    with pytest.raises(JpegFormatError):
        parse_jpeg(data[:6])


def test_multiple_qtables_one_segment():
    """One DQT segment may carry several tables (T.81 allows it)."""
    seg = SegmentWriter()
    payload = b""
    for tid in (0, 1):
        zz = STD_LUMA_QTABLE.reshape(64).astype(np.uint8)
        payload += bytes([tid]) + zz.tobytes()
    # Build a full minimal stream around the double DQT.
    data = valid_jpeg()
    dqt = data.find(bytes([0xFF, Marker.DQT]))
    dqt_len = struct.unpack(">H", data[dqt + 2:dqt + 4])[0]
    combined = bytes([0xFF, Marker.DQT]) + \
        struct.pack(">H", len(payload) + 2) + payload
    patched = data[:dqt] + combined + data[dqt + 2 + dqt_len:]
    parsed = parse_jpeg(patched)
    assert 0 in parsed.qtables and 1 in parsed.qtables


# ----------------------------------------------------------------- writer
def test_segment_writer_dqt_id_validation():
    seg = SegmentWriter()
    with pytest.raises(ValueError):
        seg.dqt(4, STD_LUMA_QTABLE)


def test_segment_writer_dht_class_validation():
    seg = SegmentWriter()
    with pytest.raises(ValueError):
        seg.dht(2, 0, STD_DC_LUMA)


def test_frame_header_geometry_helpers():
    frame = FrameHeader(precision=8, height=33, width=49, components=(
        FrameComponent(1, 2, 2, 0), FrameComponent(2, 1, 1, 1),
        FrameComponent(3, 1, 1, 1)))
    assert frame.hmax == 2 and frame.vmax == 2
    assert frame.mcu_width == 16 and frame.mcu_height == 16
    assert frame.mcus_per_row == 4 and frame.mcu_rows == 3
