"""Tests for two-pass (optimized-Huffman-table) encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import synthetic_photo
from repro.jpeg import decode, encode, parse_jpeg
from repro.jpeg.huffman import count_block_symbols, encode_block
from repro.jpeg.bitstream import BitWriter
from repro.jpeg.huffman import STD_AC_LUMA, STD_DC_LUMA


def photo(h=64, w=80, seed=0, gray=False):
    return synthetic_photo(np.random.default_rng(seed), h, w, gray=gray)


def test_optimized_decodes_identically():
    img = photo()
    std = encode(img, 80)
    opt = encode(img, 80, optimize_huffman=True)
    np.testing.assert_array_equal(decode(std), decode(opt))


def test_optimized_is_smaller_on_photos():
    img = photo(seed=1)
    std = encode(img, 80)
    opt = encode(img, 80, optimize_huffman=True)
    assert len(opt) < len(std)


def test_optimized_with_restart_markers():
    img = photo(seed=2)
    std = encode(img, 75, restart_interval=2)
    opt = encode(img, 75, restart_interval=2, optimize_huffman=True)
    np.testing.assert_array_equal(decode(std), decode(opt))
    assert len(opt) < len(std)


def test_optimized_grayscale():
    img = photo(seed=3, gray=True)
    opt = encode(img, 85, optimize_huffman=True)
    out = decode(opt)
    assert out.shape == img.shape
    np.testing.assert_array_equal(out, decode(encode(img, 85)))


def test_optimized_tables_are_custom():
    img = photo(seed=4)
    parsed_std = parse_jpeg(encode(img, 80))
    parsed_opt = parse_jpeg(encode(img, 80, optimize_huffman=True))
    assert parsed_std.dc_tables[0].bits == STD_DC_LUMA.bits
    assert parsed_opt.ac_tables[0].bits != parsed_std.ac_tables[0].bits


def test_optimized_444():
    img = photo(32, 32, seed=5)
    opt = encode(img, 80, subsampling="4:4:4", optimize_huffman=True)
    np.testing.assert_array_equal(
        decode(opt), decode(encode(img, 80, subsampling="4:4:4")))


def test_count_block_symbols_matches_encoder_output():
    """The statistics pass counts exactly the symbols encode_block emits."""
    rng = np.random.default_rng(6)
    zz = np.zeros(64, dtype=np.int32)
    zz[0] = 50
    for pos in rng.choice(np.arange(1, 64), size=8, replace=False):
        zz[pos] = int(rng.integers(-100, 100))
    dc_freqs, ac_freqs = {}, {}
    pred = count_block_symbols(zz, 0, dc_freqs, ac_freqs)
    assert pred == 50
    # Encoding with the standard tables emits one DC symbol + the same
    # number of AC symbols that were counted.
    writer = BitWriter()
    encode_block(writer, zz, 0, STD_DC_LUMA, STD_AC_LUMA)
    assert sum(dc_freqs.values()) == 1
    assert sum(ac_freqs.values()) >= 8  # one per nonzero AC (plus runs/EOB)


@given(st.integers(10, 48), st.integers(10, 48), st.integers(0, 4))
@settings(max_examples=10, deadline=None)
def test_optimized_roundtrip_property(h, w, rst):
    img = photo(h, w, seed=h * 100 + w)
    opt = encode(img, 75, restart_interval=rst, optimize_huffman=True)
    std = encode(img, 75, restart_interval=rst)
    np.testing.assert_array_equal(decode(opt), decode(std))
