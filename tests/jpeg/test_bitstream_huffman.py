"""Tests for bit I/O, byte stuffing and Huffman coding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jpeg import (STD_AC_CHROMA, STD_AC_LUMA, STD_DC_CHROMA,
                        STD_DC_LUMA, BitReader, BitWriter, EndOfScan,
                        HuffmanTable, build_table_from_freqs)
from repro.jpeg.huffman import (decode_block, decode_magnitude, encode_block,
                                encode_magnitude, magnitude_category)


# -------------------------------------------------------------- bitstream
def test_bitwriter_msb_first():
    w = BitWriter()
    w.write(0b1, 1)
    w.write(0b0101, 4)
    w.write(0b101, 3)
    assert w.getvalue() == bytes([0b10101101])


def test_bitwriter_stuffs_ff():
    w = BitWriter()
    w.write(0xFF, 8)
    assert w.getvalue() == b"\xFF\x00"


def test_bitwriter_flush_pads_with_ones():
    w = BitWriter()
    w.write(0b10, 2)
    w.flush()
    assert w.getvalue() == bytes([0b10111111])


def test_bitwriter_validation():
    w = BitWriter()
    with pytest.raises(ValueError):
        w.write(4, 2)  # doesn't fit
    with pytest.raises(ValueError):
        w.write(0, -1)
    w.write(0, 0)  # zero-width is a no-op
    assert len(w) == 0


def test_bitreader_unstuffs_ff00():
    r = BitReader(b"\xFF\x00\x80")
    assert r.read(8) == 0xFF
    assert r.read(8) == 0x80


def test_bitreader_stops_at_marker():
    r = BitReader(b"\xAB\xFF\xD9")
    assert r.read(8) == 0xAB
    with pytest.raises(EndOfScan):
        r.read(8)
    assert r.marker_found == 0xD9


def test_bitreader_out_of_data():
    r = BitReader(b"\xAA")
    assert r.read(8) == 0xAA
    with pytest.raises(EndOfScan):
        r.read(1)


def test_bit_roundtrip_random_payload():
    rng = np.random.default_rng(0)
    fields = [(int(rng.integers(0, 1 << n)), n)
              for n in rng.integers(1, 17, size=200)]
    w = BitWriter()
    for value, n in fields:
        w.write(value, n)
    w.flush()
    r = BitReader(w.getvalue())
    for value, n in fields:
        assert r.read(n) == value


def test_rst_marker_roundtrip():
    w = BitWriter()
    w.write(0b101, 3)
    w.emit_marker(0xD3)
    w.write(0xAB, 8)
    w.flush()
    r = BitReader(w.getvalue())
    assert r.read(3) == 0b101
    assert r.align_and_consume_rst() == 3
    assert r.read(8) == 0xAB


def test_rst_expected_but_missing():
    r = BitReader(b"\x00\x01")
    with pytest.raises(EndOfScan):
        r.align_and_consume_rst()


# ---------------------------------------------------------------- huffman
def test_standard_tables_wellformed():
    for table in (STD_DC_LUMA, STD_AC_LUMA, STD_DC_CHROMA, STD_AC_CHROMA):
        assert sum(table.bits) == len(table.values)
        lengths = table.code_lengths()
        assert all(1 <= ln <= 16 for ln in lengths.values())


def test_huffman_codes_prefix_free():
    for table in (STD_DC_LUMA, STD_AC_LUMA, STD_DC_CHROMA, STD_AC_CHROMA):
        codes = [(format(code, f"0{ln}b"))
                 for code, ln in table.encode_map.values()]
        codes.sort()
        for a, b in zip(codes, codes[1:]):
            assert not b.startswith(a), f"{a} is a prefix of {b}"


def test_huffman_encode_decode_all_symbols():
    for table in (STD_DC_LUMA, STD_AC_LUMA, STD_DC_CHROMA, STD_AC_CHROMA):
        w = BitWriter()
        symbols = list(table.values)
        for s in symbols:
            table.encode(w, s)
        w.flush()
        r = BitReader(w.getvalue())
        for s in symbols:
            assert table.decode(r) == s


def test_huffman_unknown_symbol_rejected():
    w = BitWriter()
    with pytest.raises(ValueError):
        STD_DC_LUMA.encode(w, 200)


def test_huffman_table_validation():
    with pytest.raises(ValueError):
        HuffmanTable(bits=(1,) * 8, values=(0,))  # sum mismatch
    with pytest.raises(ValueError):
        HuffmanTable(bits=(0,) * 16, values=())  # empty
    with pytest.raises(ValueError):
        HuffmanTable(bits=(3,) + (0,) * 15, values=(0, 1, 2))  # oversubscribed
    with pytest.raises(ValueError):
        HuffmanTable(bits=(0, 2) + (0,) * 14, values=(5, 5))  # duplicate


# -------------------------------------------------------------- magnitudes
@pytest.mark.parametrize("value,category", [
    (0, 0), (1, 1), (-1, 1), (2, 2), (3, 2), (-3, 2), (4, 3), (7, 3),
    (255, 8), (-255, 8), (1023, 10), (-1024, 11), (2047, 11),
])
def test_magnitude_category(value, category):
    assert magnitude_category(value) == category


@given(st.integers(-32767, 32767))
@settings(max_examples=200, deadline=None)
def test_magnitude_roundtrip_property(value):
    bits, ssss = encode_magnitude(value)
    assert decode_magnitude(bits, ssss) == value


# ------------------------------------------------------------ block coding
def _roundtrip_block(zz):
    w = BitWriter()
    pred = encode_block(w, zz, 0, STD_DC_LUMA, STD_AC_LUMA)
    w.flush()
    r = BitReader(w.getvalue())
    decoded, pred2 = decode_block(r, 0, STD_DC_LUMA, STD_AC_LUMA)
    assert pred == pred2
    return decoded


def test_block_roundtrip_sparse():
    zz = np.zeros(64, dtype=np.int32)
    zz[0] = 120
    zz[3] = -7
    zz[20] = 1
    np.testing.assert_array_equal(_roundtrip_block(zz), zz)


def test_block_roundtrip_zrl_run():
    # Long zero runs exercise the ZRL (16-zero) symbol.
    zz = np.zeros(64, dtype=np.int32)
    zz[0] = 5
    zz[40] = 3
    np.testing.assert_array_equal(_roundtrip_block(zz), zz)


def test_block_roundtrip_dense():
    rng = np.random.default_rng(1)
    zz = rng.integers(-200, 200, 64).astype(np.int32)
    np.testing.assert_array_equal(_roundtrip_block(zz), zz)


def test_block_roundtrip_all_zero():
    zz = np.zeros(64, dtype=np.int32)
    np.testing.assert_array_equal(_roundtrip_block(zz), zz)


def test_block_last_coefficient_no_eob():
    # Non-zero in position 63 means no EOB symbol is written.
    zz = np.zeros(64, dtype=np.int32)
    zz[63] = -2
    np.testing.assert_array_equal(_roundtrip_block(zz), zz)


def test_dc_prediction_chain():
    w = BitWriter()
    blocks = []
    pred = 0
    rng = np.random.default_rng(2)
    for _ in range(10):
        zz = np.zeros(64, dtype=np.int32)
        zz[0] = int(rng.integers(-500, 500))
        blocks.append(zz)
        pred = encode_block(w, zz, pred, STD_DC_LUMA, STD_AC_LUMA)
    w.flush()
    r = BitReader(w.getvalue())
    pred = 0
    for zz in blocks:
        decoded, pred = decode_block(r, pred, STD_DC_LUMA, STD_AC_LUMA)
        assert decoded[0] == zz[0]


@given(st.lists(st.tuples(st.integers(1, 63), st.integers(-255, 255)),
                max_size=10))
@settings(max_examples=50, deadline=None)
def test_block_roundtrip_property(entries):
    zz = np.zeros(64, dtype=np.int32)
    zz[0] = 100
    for pos, val in entries:
        zz[pos] = val
    np.testing.assert_array_equal(_roundtrip_block(zz), zz)


# ----------------------------------------------------- optimized tables
def test_build_table_from_freqs_roundtrip():
    freqs = {0: 100, 1: 50, 2: 25, 3: 10, 4: 5, 5: 1}
    table = build_table_from_freqs(freqs)
    w = BitWriter()
    for s in freqs:
        table.encode(w, s)
    w.flush()
    r = BitReader(w.getvalue())
    for s in freqs:
        assert table.decode(r) == s


def test_build_table_frequent_symbols_shorter():
    freqs = {0: 1000, 1: 1}
    lengths = build_table_from_freqs(freqs).code_lengths()
    assert lengths[0] <= lengths[1]


def test_build_table_length_limit():
    # Pathological exponential frequencies would want >16-bit codes.
    freqs = {i: 2 ** i for i in range(25)}
    lengths = build_table_from_freqs(freqs).code_lengths()
    assert max(lengths.values()) <= 16
    assert len(lengths) == 25


def test_build_table_empty_rejected():
    with pytest.raises(ValueError):
        build_table_from_freqs({})


def test_build_table_single_symbol():
    table = build_table_from_freqs({7: 42})
    w = BitWriter()
    table.encode(w, 7)
    w.flush()
    assert table.decode(BitReader(w.getvalue())) == 7
