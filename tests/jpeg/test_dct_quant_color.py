"""Tests for the DCT, quantization-table and color-space primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays
from scipy.fft import dctn, idctn

from repro.jpeg import (STD_CHROMA_QTABLE, STD_LUMA_QTABLE, fdct2, idct2,
                        idct2_dequant, rgb_to_ycbcr, scale_qtable,
                        subsample_420, upsample_420, ycbcr_to_rgb,
                        zigzag_flatten, zigzag_unflatten)
from repro.jpeg.quant import INV_ZIGZAG, ZIGZAG


# ------------------------------------------------------------------- DCT
def test_fdct_matches_scipy():
    rng = np.random.default_rng(0)
    block = rng.uniform(-128, 127, (8, 8))
    ours = fdct2(block)
    ref = dctn(block, type=2, norm="ortho")
    np.testing.assert_allclose(ours, ref, atol=1e-10)


def test_idct_matches_scipy():
    rng = np.random.default_rng(1)
    coeffs = rng.uniform(-1000, 1000, (8, 8))
    ours = idct2(coeffs)
    ref = idctn(coeffs, type=2, norm="ortho")
    np.testing.assert_allclose(ours, ref, atol=1e-10)


def test_dct_roundtrip_identity():
    rng = np.random.default_rng(2)
    block = rng.uniform(-128, 127, (8, 8))
    np.testing.assert_allclose(idct2(fdct2(block)), block, atol=1e-10)


def test_dct_batched_matches_loop():
    rng = np.random.default_rng(3)
    stack = rng.uniform(-128, 127, (5, 7, 8, 8))
    batched = fdct2(stack)
    for i in range(5):
        for j in range(7):
            np.testing.assert_allclose(batched[i, j], fdct2(stack[i, j]),
                                       atol=1e-10)


def test_dct_dc_coefficient_is_scaled_mean():
    block = np.full((8, 8), 100.0)
    coeffs = fdct2(block)
    assert coeffs[0, 0] == pytest.approx(100.0 * 8)
    np.testing.assert_allclose(coeffs.reshape(-1)[1:], 0, atol=1e-10)


def test_dct_energy_preservation():
    # Orthonormal transform: Parseval's theorem holds.
    rng = np.random.default_rng(4)
    block = rng.uniform(-128, 127, (8, 8))
    assert np.sum(block ** 2) == pytest.approx(np.sum(fdct2(block) ** 2))


def test_dct_shape_validation():
    with pytest.raises(ValueError):
        fdct2(np.zeros((7, 8)))
    with pytest.raises(ValueError):
        idct2(np.zeros((8, 9)))


def test_idct_dequant_equals_manual():
    rng = np.random.default_rng(5)
    q = np.arange(1, 65).reshape(8, 8).astype(np.uint16)
    coeffs = rng.integers(-50, 50, (3, 8, 8))
    np.testing.assert_allclose(idct2_dequant(coeffs, q),
                               idct2(coeffs.astype(float) * q), atol=1e-10)


def test_idct_dequant_qtable_validation():
    with pytest.raises(ValueError):
        idct2_dequant(np.zeros((8, 8)), np.ones((4, 4)))


@given(arrays(np.float64, (8, 8),
              elements=st.floats(-128, 127, allow_nan=False)))
@settings(max_examples=30, deadline=None)
def test_dct_roundtrip_property(block):
    np.testing.assert_allclose(idct2(fdct2(block)), block, atol=1e-8)


# --------------------------------------------------------------- zig-zag
def test_zigzag_is_permutation():
    assert sorted(ZIGZAG.tolist()) == list(range(64))
    assert np.array_equal(ZIGZAG[INV_ZIGZAG], np.arange(64))


def test_zigzag_standard_prefix():
    # First coefficients of the T.81 scan: 0, 1, 8, 16, 9, 2, 3, 10 ...
    assert ZIGZAG[:8].tolist() == [0, 1, 8, 16, 9, 2, 3, 10]
    assert ZIGZAG[-1] == 63


def test_zigzag_roundtrip():
    rng = np.random.default_rng(6)
    block = rng.integers(-100, 100, (8, 8))
    np.testing.assert_array_equal(
        zigzag_unflatten(zigzag_flatten(block)), block)


def test_zigzag_batched():
    rng = np.random.default_rng(7)
    stack = rng.integers(-100, 100, (4, 8, 8))
    flat = zigzag_flatten(stack)
    assert flat.shape == (4, 64)
    np.testing.assert_array_equal(zigzag_unflatten(flat), stack)


def test_zigzag_validation():
    with pytest.raises(ValueError):
        zigzag_flatten(np.zeros((8, 7)))
    with pytest.raises(ValueError):
        zigzag_unflatten(np.zeros(63))


# ------------------------------------------------------------ quant tables
def test_quality_50_is_identity():
    np.testing.assert_array_equal(scale_qtable(STD_LUMA_QTABLE, 50),
                                  STD_LUMA_QTABLE)


def test_quality_extremes():
    q100 = scale_qtable(STD_LUMA_QTABLE, 100)
    assert q100.max() == 1  # near lossless
    q1 = scale_qtable(STD_LUMA_QTABLE, 1)
    assert q1.max() == 255  # fully clamped


def test_quality_monotone_coarseness():
    prev = None
    for q in (10, 30, 50, 70, 90):
        table = scale_qtable(STD_CHROMA_QTABLE, q).astype(int).sum()
        if prev is not None:
            assert table <= prev
        prev = table


def test_quality_validation():
    with pytest.raises(ValueError):
        scale_qtable(STD_LUMA_QTABLE, 0)
    with pytest.raises(ValueError):
        scale_qtable(STD_LUMA_QTABLE, 101)


def test_qtable_entries_in_byte_range():
    for q in (1, 25, 50, 75, 100):
        t = scale_qtable(STD_LUMA_QTABLE, q)
        assert t.min() >= 1 and t.max() <= 255


# ----------------------------------------------------------------- color
def test_ycbcr_roundtrip_uint8():
    rng = np.random.default_rng(8)
    rgb = rng.integers(0, 256, (16, 16, 3), dtype=np.uint8)
    back = ycbcr_to_rgb(rgb_to_ycbcr(rgb))
    assert np.max(np.abs(back.astype(int) - rgb.astype(int))) <= 1


def test_gray_maps_to_neutral_chroma():
    gray = np.full((4, 4, 3), 77, dtype=np.uint8)
    ycc = rgb_to_ycbcr(gray)
    np.testing.assert_allclose(ycc[..., 0], 77, atol=1e-9)
    np.testing.assert_allclose(ycc[..., 1:], 128, atol=1e-9)


def test_primary_luma_weights():
    red = np.zeros((1, 1, 3), dtype=np.uint8)
    red[..., 0] = 255
    assert rgb_to_ycbcr(red)[0, 0, 0] == pytest.approx(0.299 * 255)


def test_color_shape_validation():
    with pytest.raises(ValueError):
        rgb_to_ycbcr(np.zeros((4, 4)))
    with pytest.raises(ValueError):
        ycbcr_to_rgb(np.zeros((4, 4, 4)))


@given(arrays(np.uint8, (6, 6, 3), elements=st.integers(0, 255)))
@settings(max_examples=30, deadline=None)
def test_ycbcr_roundtrip_property(rgb):
    back = ycbcr_to_rgb(rgb_to_ycbcr(rgb))
    assert np.max(np.abs(back.astype(int) - rgb.astype(int))) <= 1


# ------------------------------------------------------------ subsampling
def test_subsample_constant_plane_exact():
    plane = np.full((8, 8), 42.0)
    np.testing.assert_array_equal(subsample_420(plane), np.full((4, 4), 42.0))


def test_subsample_box_average():
    plane = np.array([[0.0, 4.0], [8.0, 12.0]])
    np.testing.assert_array_equal(subsample_420(plane), [[6.0]])


def test_subsample_odd_dimensions_pad():
    plane = np.arange(15.0).reshape(3, 5)
    out = subsample_420(plane)
    assert out.shape == (2, 3)


def test_upsample_replicates_and_crops():
    plane = np.array([[1.0, 2.0], [3.0, 4.0]])
    up = upsample_420(plane, 3, 4)
    np.testing.assert_array_equal(up, [[1, 1, 2, 2], [1, 1, 2, 2],
                                       [3, 3, 4, 4]])


def test_sub_then_up_constant_identity():
    plane = np.full((10, 12), 99.0)
    up = upsample_420(subsample_420(plane), 10, 12)
    np.testing.assert_array_equal(up, plane)


def test_subsample_validation():
    with pytest.raises(ValueError):
        subsample_420(np.zeros((2, 2, 3)))
    with pytest.raises(ValueError):
        upsample_420(np.zeros((2, 2, 1)), 4, 4)
