"""The content-addressed decode cache must be invisible and poison-safe.

Invisible: cached pixels are bit-identical to uncached ones (the first
decode *is* the uncached decoder), reference_mode() bypasses the cache
entirely, and the FPGA mirror's staged pipeline produces the same
results/errors with the cache hot as cold.  Poison-safe: the key is the
payload content, so a fault-injected (corrupted/truncated) stream can
never be served a stale clean result, and a clean stream can never
inherit a poisoned error — proven here against the real FaultInjector
mutations.
"""

import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calib import DEFAULT_TESTBED
from repro.data import synthetic_photo
from repro.faults import FaultInjector, FaultPlan
from repro.fpga import DecodeCmd, ImageDecoderMirror
from repro.jpeg import (JpegDecodeError, cached_decode,
                        cached_decode_resized, clear_decode_cache, decode,
                        decode_cache, decode_resized, encode)
from repro.jpeg.cache import DecodeCache
from repro.perf import reference_mode
from repro.sim import Environment, SeedBank


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_decode_cache()
    yield
    clear_decode_cache()


def corpus_payload(index=0, h=48, w=64, quality=80, gray=False):
    img = synthetic_photo(np.random.default_rng(index), h, w, gray=gray)
    return encode(img, quality=quality,
                  subsampling="4:4:4" if gray else "4:2:0")


def poisoned_copy(payload, seed=0):
    """The exact mutation FaultInjector.maybe_poison_cmd performs."""

    class _Cmd:
        def __init__(self, data):
            self.payload = data
            self.poisoned = False

    inj = FaultInjector(Environment(), FaultPlan.of(
        FaultPlan.payload_corrupt(1.0)), seeds=SeedBank(seed))
    cmd = _Cmd(payload)
    assert inj.maybe_poison_cmd(cmd)
    assert cmd.payload != payload
    return cmd.payload


class TestBitIdentity:
    @settings(max_examples=12, deadline=None)
    @given(index=st.integers(min_value=0, max_value=5),
           quality=st.sampled_from([60, 80, 95]),
           gray=st.booleans(),
           out=st.sampled_from([(32, 32), (24, 40), (48, 64)]))
    def test_cached_equals_uncached(self, index, quality, gray, out):
        payload = corpus_payload(index, quality=quality, gray=gray)
        expected = decode_resized(payload, *out)
        first = cached_decode_resized(payload, *out)   # miss: real decode
        second = cached_decode_resized(payload, *out)  # hit: cached array
        np.testing.assert_array_equal(first, expected)
        np.testing.assert_array_equal(second, expected)
        assert second is first                          # shared, not copied
        assert not second.flags.writeable

    def test_full_decode_cached(self):
        payload = corpus_payload()
        expected = decode(payload)
        np.testing.assert_array_equal(cached_decode(payload), expected)
        before = decode_cache.hits
        np.testing.assert_array_equal(cached_decode(payload), expected)
        assert decode_cache.hits == before + 1

    def test_geometry_is_part_of_the_key(self):
        payload = corpus_payload()
        a = cached_decode_resized(payload, 32, 32)
        b = cached_decode_resized(payload, 16, 16)
        assert a.shape[:2] == (32, 32) and b.shape[:2] == (16, 16)


class TestReferenceModeBypass:
    def test_no_lookup_and_no_insert_inside_reference_mode(self):
        payload = corpus_payload()
        warm = cached_decode_resized(payload, 32, 32)    # hot entry
        stats_before = decode_cache.stats()
        with reference_mode():
            ref = cached_decode_resized(payload, 32, 32)
        # Same pixels (the decoders are bit-compatible) but measured,
        # not served: no hit, no miss, no new entry.
        np.testing.assert_array_equal(ref, warm)
        assert ref is not warm
        assert decode_cache.stats() == stats_before

    def test_cache_resumes_after_reference_mode(self):
        payload = corpus_payload()
        with reference_mode():
            cached_decode_resized(payload, 32, 32)
        assert len(decode_cache) == 0
        cached_decode_resized(payload, 32, 32)
        assert len(decode_cache) == 1


class TestPoisonChaos:
    def test_corrupted_stream_never_gets_stale_clean_result(self):
        """Scan-byte corruption often still decodes (to garbage) — the
        cache must serve the garbage matching those bytes, never the
        hot clean entry for the original."""
        clean = corpus_payload()
        clean_pixels = cached_decode_resized(clean, 32, 32)  # entry hot
        bad = poisoned_copy(clean)
        expected_bad = decode_resized(bad, 32, 32)           # uncached ref
        assert not np.array_equal(expected_bad, clean_pixels)
        got = cached_decode_resized(bad, 32, 32)             # miss
        np.testing.assert_array_equal(got, expected_bad)
        hot = cached_decode_resized(bad, 32, 32)             # hit
        np.testing.assert_array_equal(hot, expected_bad)

    def test_clean_stream_never_inherits_poisoned_outcome(self):
        clean = corpus_payload()
        truncated = clean[:len(clean) // 2]
        with pytest.raises(JpegDecodeError):
            cached_decode_resized(truncated, 32, 32)     # error entry hot
        got = cached_decode_resized(clean, 32, 32)
        np.testing.assert_array_equal(got, decode_resized(clean, 32, 32))

    def test_cached_failure_is_the_same_typed_error(self):
        truncated = corpus_payload()[:64]
        with pytest.raises(JpegDecodeError) as first:
            cached_decode(truncated)
        with pytest.raises(JpegDecodeError) as again:    # cached failure
            cached_decode(truncated)
        assert type(again.value) is type(first.value)
        assert str(again.value) == str(first.value)

    def test_truncated_stream_is_its_own_entry(self):
        clean = corpus_payload()
        cached_decode_resized(clean, 32, 32)
        with pytest.raises(JpegDecodeError):
            cached_decode_resized(clean[:len(clean) // 3], 32, 32)
        # The clean entry is still clean.
        np.testing.assert_array_equal(
            cached_decode_resized(clean, 32, 32),
            decode_resized(clean, 32, 32))


class TestMirrorSeam:
    """The FPGA mirror's staged decode through the cache."""

    def _mirror(self):
        return ImageDecoderMirror(Environment(), DEFAULT_TESTBED,
                                  functional=True)

    def _push(self, mirror, payload, out_hw=(32, 32)):
        cmd = DecodeCmd(cmd_id=0, source="dram", size_bytes=len(payload),
                        work_pixels=48 * 64 * 3 // 2, out_h=out_hw[0],
                        out_w=out_hw[1], channels=3, dest_phy=0,
                        dest_offset=0, payload=payload)
        return mirror._resize_fn(mirror._idct_fn(mirror._huffman_fn(cmd)))

    def test_hit_produces_identical_pixels(self):
        mirror = self._mirror()
        payload = corpus_payload()
        cold = self._push(mirror, payload)
        assert decode_cache.hits == 0
        hot = self._push(mirror, payload)
        assert decode_cache.hits == 1
        np.testing.assert_array_equal(hot.result, cold.result)
        np.testing.assert_array_equal(
            cold.result, decode_resized(payload, 32, 32))

    def test_poisoned_cmd_errors_identically_hot_and_cold(self):
        mirror = self._mirror()
        bad = corpus_payload()[:96]              # reliably unparseable
        cold = self._push(mirror, bad)
        hot = self._push(mirror, bad)
        assert cold.error is not None
        assert hot.error == cold.error
        assert hot.result is None

    def test_clean_and_poisoned_cmds_never_cross(self):
        mirror = self._mirror()
        clean = corpus_payload()
        bad = clean[:len(clean) // 2]
        ok = self._push(mirror, clean)
        err = self._push(mirror, bad)
        ok2 = self._push(mirror, clean)
        err2 = self._push(mirror, bad)
        assert ok.error is None and ok2.error is None
        assert err.error is not None and err2.error == err.error
        np.testing.assert_array_equal(ok2.result, ok.result)

    def test_corrupted_cmd_pixels_match_its_own_bytes(self):
        mirror = self._mirror()
        clean = corpus_payload()
        bad = poisoned_copy(clean)
        ok = self._push(mirror, clean)
        garbled = self._push(mirror, bad)
        garbled_hot = self._push(mirror, bad)
        np.testing.assert_array_equal(garbled_hot.result, garbled.result)
        assert not np.array_equal(garbled.result, ok.result)


class TestCacheMechanics:
    def test_crc32_collision_is_a_miss_not_an_alias(self):
        """Two different byte strings with the same crc32 must never
        serve each other's outcome (a precomputed real collision)."""
        a = b"\xa3\x17\x82'\x8a\x18\x1d\xcd"
        b = b"n\x1e\xc6q\x1ek\xf6P"
        assert a != b and zlib.crc32(a) == zlib.crc32(b)
        cache = DecodeCache()
        cache.insert(a, ("t",), "outcome-for-a")
        assert cache.lookup(b, ("t",)) is None
        assert cache.collisions == 1
        assert cache.lookup(a, ("t",)) == ("outcome-for-a",)

    def test_lru_eviction_keeps_recently_used(self):
        cache = DecodeCache(maxsize=2)
        cache.insert(b"a", (), 1)
        cache.insert(b"b", (), 2)
        assert cache.lookup(b"a", ()) == (1,)    # refresh a
        cache.insert(b"c", (), 3)                # evicts b
        assert cache.lookup(b"b", ()) is None
        assert cache.lookup(b"a", ()) == (1,)
        assert cache.lookup(b"c", ()) == (3,)
        assert cache.evictions == 1

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            DecodeCache(maxsize=0)

    def test_stats_shape(self):
        cache = DecodeCache()
        cache.insert(b"x", (), None)
        assert cache.lookup(b"x", ()) == (None,)  # None outcome != miss
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 0,
                                 "collisions": 0, "evictions": 0}
        cache.clear()
        assert cache.stats()["entries"] == 0
