"""Tests for the pluggable-mirror registry and non-image mirrors."""

import numpy as np
import pytest

from repro.calib import DEFAULT_TESTBED
from repro.fpga import (AudioCmd, AudioSpectrogramMirror, FpgaDevice,
                        ImageDecoderMirror, MIRROR_REGISTRY, TextCmd,
                        TextQuantizerMirror, create_mirror, register_mirror)
from repro.sim import Environment


def test_registry_ships_three_mirrors():
    for name in ("image-decoder", "audio-spectrogram", "text-quantizer"):
        assert name in MIRROR_REGISTRY


def test_create_mirror_by_name():
    env = Environment()
    mirror = create_mirror("image-decoder", env, DEFAULT_TESTBED)
    assert isinstance(mirror, ImageDecoderMirror)


def test_create_unknown_mirror():
    with pytest.raises(KeyError, match="available"):
        create_mirror("video-transcoder", Environment(), DEFAULT_TESTBED)


def test_register_custom_mirror():
    register_mirror("custom-test", lambda env, tb, **kw: "sentinel")
    assert create_mirror("custom-test", Environment(),
                         DEFAULT_TESTBED) == "sentinel"
    del MIRROR_REGISTRY["custom-test"]


def test_register_requires_callable():
    with pytest.raises(TypeError):
        register_mirror("bad", 42)


def _drive_audio(functional=False, n=20):
    env = Environment()
    device = FpgaDevice(env, DEFAULT_TESTBED)
    mirror = AudioSpectrogramMirror(env, DEFAULT_TESTBED,
                                    functional=functional)
    device.load_mirror(mirror)
    rng = np.random.default_rng(0)

    done = []

    def submit(env):
        for i in range(n):
            samples = rng.standard_normal(4096) if functional else None
            cmd = AudioCmd(cmd_id=i, num_samples=4096, frame_size=512,
                           dest_phy=0x4000_0000, dest_offset=0,
                           samples=samples)
            yield from mirror.cmd_queue.put(cmd)

    def collect(env):
        while len(done) < n:
            done.append((yield from mirror.finish_queue.get()))

    env.process(submit(env))
    proc = env.process(collect(env))
    env.run(until=proc)
    return env, mirror, done


def test_audio_mirror_processes_commands():
    env, mirror, done = _drive_audio()
    assert len(done) == 20
    assert mirror.decoded.total == 20
    assert env.now > 0


def test_audio_mirror_functional_spectrogram():
    env, mirror, done = _drive_audio(functional=True, n=3)
    record, spectra = done[0]
    assert spectra.shape == (8, 512)  # 4096 samples / 512 frame
    assert spectra.dtype == np.float32
    assert np.all(spectra >= 0)  # log1p(|dct|)


def test_audio_mirror_fits_device():
    env = Environment()
    mirror = AudioSpectrogramMirror(env, DEFAULT_TESTBED)
    device = FpgaDevice(env, DEFAULT_TESTBED)
    device.load_mirror(mirror)
    assert device.clb_free >= 0


def test_text_mirror_processes_commands():
    env = Environment()
    device = FpgaDevice(env, DEFAULT_TESTBED)
    mirror = TextQuantizerMirror(env, DEFAULT_TESTBED)
    device.load_mirror(mirror)
    done = []

    def submit(env):
        for i in range(10):
            cmd = TextCmd(cmd_id=i, num_tokens=128, embed_dim=256,
                          dest_phy=0x4000_0000, dest_offset=0)
            yield from mirror.cmd_queue.put(cmd)

    def collect(env):
        while len(done) < 10:
            done.append((yield from mirror.finish_queue.get()))

    env.process(submit(env))
    proc = env.process(collect(env))
    env.run(until=proc)
    assert len(done) == 10
    assert done[0].out_bytes == 128 * 256 * 4


def test_mirror_swap_image_to_audio():
    """S3.1: different preprocessing mirrors download to the same board."""
    env = Environment()
    device = FpgaDevice(env, DEFAULT_TESTBED)
    device.load_mirror(ImageDecoderMirror(env, DEFAULT_TESTBED))
    audio = AudioSpectrogramMirror(env, DEFAULT_TESTBED)
    device.load_mirror(audio)
    assert device.mirror is audio
