"""Tests for the image-decoder mirror pipeline and FPGAChannel."""

import numpy as np
import pytest

from repro.calib import DEFAULT_TESTBED
from repro.data import synthetic_photo
from repro.fpga import (DecodeCmd, FpgaDevice, FPGAChannel,
                        ImageDecoderMirror, fpga_init)
from repro.jpeg import decode_resized, encode
from repro.memory import MemManager
from repro.sim import Environment


def make_stack(functional=False, pool=None, **mirror_kwargs):
    env = Environment()
    device = FpgaDevice(env, DEFAULT_TESTBED)
    mirror = ImageDecoderMirror(env, DEFAULT_TESTBED, functional=functional,
                                host_pool=pool, **mirror_kwargs)
    device.load_mirror(mirror)
    channel = FPGAChannel(env, mirror)
    return env, device, mirror, channel


def std_cmd(i=0, batch_tag=None, dest_phy=0x4000_0000, payload=None,
            out_hw=(224, 224), size_bytes=110_000,
            work_pixels=int(375 * 500 * 1.5)):
    return DecodeCmd(cmd_id=i, source="dram", size_bytes=size_bytes,
                     work_pixels=work_pixels, out_h=out_hw[0],
                     out_w=out_hw[1], channels=3, dest_phy=dest_phy,
                     dest_offset=0, batch_tag=batch_tag, payload=payload)


def run_n(env, channel, n, **cmd_kwargs):
    def submit(env):
        for i in range(n):
            yield from channel.submit_cmd(std_cmd(i, **cmd_kwargs))

    done = []

    def collect(env):
        while len(done) < n:
            done.append((yield from channel.wait_one()))

    env.process(submit(env))
    proc = env.process(collect(env))
    env.run(until=proc)
    return done


def test_single_decode_completes_with_finish():
    env, device, mirror, channel = make_stack()
    done = run_n(env, channel, 1)
    assert len(done) == 1
    rec = done[0]
    assert rec.cmd_id == 0
    assert rec.out_bytes == 224 * 224 * 3
    assert rec.finished_at == env.now
    assert mirror.decoded.total == 1


def test_pipeline_throughput_matches_analytic_bound():
    env, device, mirror, channel = make_stack()
    n = 300
    run_n(env, channel, n)
    measured = n / env.now
    bound = mirror.throughput_bound(110_000, int(375 * 500 * 1.5), 224 * 224)
    assert 0.9 * bound <= measured <= 1.02 * bound


def test_idct_is_the_designed_bottleneck():
    env, device, mirror, channel = make_stack()
    run_n(env, channel, 200)
    assert mirror.bottleneck() == "idct"
    utils = mirror.stage_utilizations()
    # S3.3 load balance: huffman and resizer close behind the bottleneck.
    assert utils["huffman"] > 0.7
    assert utils["idct"] > 0.9


def test_huffman_ways_share_work_evenly():
    env, device, mirror, channel = make_stack()
    run_n(env, channel, 200)
    assert mirror.huffman.way_imbalance() < 1.1


def test_small_images_bound_by_cmd_overhead():
    env, device, mirror, channel = make_stack()
    n = 200
    run_n(env, channel, n, size_bytes=700, out_hw=(28, 28),
          work_pixels=784)
    measured = n / env.now
    # MNIST-size items: parser/cmd path dominates, not the compute units.
    bound = mirror.throughput_bound(700, 784, 784)
    assert measured == pytest.approx(bound, rel=0.15)


def test_fifo_backpressure_blocks_submit():
    env, device, mirror, channel = make_stack()
    # Fill the FIFO beyond its depth without draining completions.
    submitted = []

    def submit(env):
        for i in range(DEFAULT_TESTBED.fpga_queue_depth * 3):
            yield from channel.submit_cmd(std_cmd(i))
            submitted.append(env.now)

    env.process(submit(env))
    env.run(until=0.001)
    # Later submissions were delayed by backpressure.
    assert submitted[0] == 0.0
    assert channel.in_flight > 0


def test_drain_out_nonblocking():
    env, device, mirror, channel = make_stack()
    assert channel.drain_out() == []

    def submit(env):
        yield from channel.submit_cmd(std_cmd(0))

    env.process(submit(env))
    env.run()
    records = channel.drain_out()
    assert len(records) == 1
    assert channel.in_flight == 0


def test_try_submit_when_full():
    env, device, mirror, channel = make_stack()
    depth = DEFAULT_TESTBED.fpga_queue_depth
    accepted = sum(channel.try_submit_cmd(std_cmd(i))
                   for i in range(depth + 10))
    assert accepted == depth


def test_channel_recycle_blocks_use():
    env, device, mirror, channel = make_stack()
    channel.recycle()
    with pytest.raises(RuntimeError):
        channel.drain_out()


def test_fpga_init_helper():
    env, device, mirror, _ = make_stack()
    channel = fpga_init(env, mirror, queue_id=3)
    assert channel.queue_id == 3


def test_unknown_source_rejected():
    env, device, mirror, channel = make_stack()
    cmd = std_cmd(0)
    cmd.source = "tape"

    def submit(env):
        yield from channel.submit_cmd(cmd)

    env.process(submit(env))
    with pytest.raises(ValueError, match="unknown source"):
        env.run(until=1.0)


def test_functional_mode_writes_real_pixels():
    env = Environment()
    img = synthetic_photo(np.random.default_rng(3), 48, 64)
    payload = encode(img, quality=80)
    pool = MemManager(env, unit_size=32 * 32 * 3, unit_count=2,
                      name="fnpool")
    device = FpgaDevice(env, DEFAULT_TESTBED)
    mirror = ImageDecoderMirror(env, DEFAULT_TESTBED, functional=True,
                                host_pool=pool)
    device.load_mirror(mirror)
    channel = FPGAChannel(env, mirror)
    unit = pool.try_get_item()

    cmd = DecodeCmd(cmd_id=0, source="dram", size_bytes=len(payload),
                    work_pixels=48 * 64 * 3 // 2, out_h=32, out_w=32,
                    channels=3, dest_phy=unit.phy_addr, dest_offset=0,
                    payload=payload)

    def submit(env):
        yield from channel.submit_cmd(cmd)
        yield from channel.wait_one()

    proc = env.process(submit(env))
    env.run(until=proc)
    got = unit.read(0, 32 * 32 * 3).reshape(32, 32, 3)
    expected = decode_resized(payload, 32, 32)
    np.testing.assert_array_equal(got, expected)


def test_throughput_bound_scales_with_ways():
    env = Environment()
    tb = DEFAULT_TESTBED
    narrow = ImageDecoderMirror(env, tb, huffman_ways=1, name="narrow")
    wide = ImageDecoderMirror(env, tb, huffman_ways=4, name="wide")
    args = (110_000, int(375 * 500 * 1.5), 224 * 224)
    assert wide.throughput_bound(*args) > narrow.throughput_bound(*args)
