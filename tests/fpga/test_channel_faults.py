"""FPGAChannel edge cases and fault-injection behavior."""

import pytest

from repro.calib import DEFAULT_TESTBED
from repro.faults import FaultInjector, FaultPlan
from repro.fpga import DecodeCmd, FpgaDevice, FPGAChannel, ImageDecoderMirror
from repro.sim import Environment, SeedBank


def make_stack(plan=None, seed=0, **channel_kwargs):
    env = Environment()
    injector = FaultInjector(env, plan, seeds=SeedBank(seed)) \
        if plan is not None else None
    device = FpgaDevice(env, DEFAULT_TESTBED)
    mirror = ImageDecoderMirror(env, DEFAULT_TESTBED, injector=injector,
                                site="fpga0")
    device.load_mirror(mirror)
    channel = FPGAChannel(env, mirror, injector=injector, site="fpga0",
                          **channel_kwargs)
    return env, mirror, channel


def std_cmd(i=0):
    return DecodeCmd(cmd_id=i, source="dram", size_bytes=110_000,
                     work_pixels=int(375 * 500 * 1.5), out_h=224, out_w=224,
                     channels=3, dest_phy=0x4000_0000, dest_offset=0)


def submit_n(env, channel, n):
    def _s(env):
        for i in range(n):
            yield from channel.submit_cmd(std_cmd(i))
    return env.process(_s(env))


# ------------------------------------------------------------- edge cases
def test_empty_drain_out_is_stable():
    env, mirror, channel = make_stack()
    assert channel.drain_out() == []
    assert channel.drain_out() == []     # repeated drains stay empty
    assert channel.in_flight == 0


def test_double_recycle_raises():
    env, mirror, channel = make_stack()
    channel.recycle()
    with pytest.raises(RuntimeError, match="recycled twice"):
        channel.recycle()


def test_counter_conservation_interleaved_submit_and_drain():
    env, mirror, channel = make_stack()
    drained = []

    def drain(env):
        while len(drained) < 30:
            drained.extend(channel.drain_out())
            yield env.timeout(1e-4)

    submit_n(env, channel, 30)
    proc = env.process(drain(env))
    env.run(until=proc)
    assert channel.submitted.total == 30
    assert channel.completed.total == 30
    assert len(drained) == 30
    assert channel.in_flight == 0
    assert channel.dropped.total == 0


# -------------------------------------------------------- fault injection
def test_cmd_drop_loses_cmds_without_finish():
    env, mirror, channel = make_stack(
        plan=FaultPlan.of(FaultPlan.cmd_drop(1.0)))
    proc = submit_n(env, channel, 5)
    env.run(until=proc)
    env.run()                             # let any straggler finish
    assert channel.submitted.total == 5
    assert channel.dropped.total == 5
    assert channel.completed.total == 0
    assert channel.in_flight == 0         # lost cmds never occupy the FIFO
    assert channel.drain_out() == []


def test_cmd_drop_partial_conserves_counters():
    env, mirror, channel = make_stack(
        plan=FaultPlan.of(FaultPlan.cmd_drop(0.4)), seed=3)
    proc = submit_n(env, channel, 50)
    env.run(until=proc)
    env.run()
    dropped = int(channel.dropped.total)
    assert 0 < dropped < 50
    assert len(channel.drain_out()) == 50 - dropped
    assert channel.completed.total == 50 - dropped
    assert channel.in_flight == 0


def test_try_submit_counts_dropped_cmds_as_accepted():
    env, mirror, channel = make_stack(
        plan=FaultPlan.of(FaultPlan.cmd_drop(1.0)))
    assert channel.try_submit_cmd(std_cmd(0))
    assert channel.dropped.total == 1
    assert channel.in_flight == 0


def test_decoder_crash_window_swallows_cmds_then_recovers():
    env, mirror, channel = make_stack(
        plan=FaultPlan.of(FaultPlan.decoder_crash(0.0, 0.001)))

    def staged(env):
        yield from channel.submit_cmd(std_cmd(0))   # inside the window
        yield env.timeout(0.002)                    # window over
        yield from channel.submit_cmd(std_cmd(1))

    proc = env.process(staged(env))
    env.run(until=proc)
    env.run()
    assert channel.dropped.total == 1
    records = channel.drain_out()
    assert [r.cmd_id for r in records] == [1]
    assert channel.completed.total == 1


def test_finish_stall_delays_the_record():
    def completion_time(plan):
        env, mirror, channel = make_stack(plan=plan)
        done = []

        def go(env):
            yield from channel.submit_cmd(std_cmd(0))
            done.append((yield from channel.wait_one()))

        proc = env.process(go(env))
        env.run(until=proc)
        return env.now

    base = completion_time(None)
    stalled = completion_time(
        FaultPlan.of(FaultPlan.finish_stall(1.0, 0.005)))
    assert stalled == pytest.approx(base + 0.005, rel=1e-6)


def test_empty_plan_injector_matches_no_injector_timing():
    def completion_time(plan):
        env, mirror, channel = make_stack(plan=plan)
        proc = submit_n(env, channel, 20)
        env.run(until=proc)
        env.run()
        channel.drain_out()
        assert channel.completed.total == 20
        return env.now

    assert completion_time(None) == completion_time(FaultPlan())
