"""Tests for the pipeline-unit framework and the FPGA device model."""

import pytest

from repro.calib import DEFAULT_TESTBED
from repro.fpga import (ARRIA10_CLB_BUDGET, FpgaDevice, FpgaResourceError,
                        ImageDecoderMirror, PipelineUnit)
from repro.sim import Channel, Environment


def make_unit(env, ways=1, service=0.1, capacity=16):
    inbox = Channel(env, capacity=capacity, name="in")
    outbox = Channel(env, capacity=capacity, name="out")
    unit = PipelineUnit(env, "unit", ways=ways,
                        service_time=lambda item: service,
                        inbox=inbox, outbox=outbox, clb_cost_per_way=100)
    return unit, inbox, outbox


def test_unit_processes_in_order():
    env = Environment()
    unit, inbox, outbox = make_unit(env, ways=1, service=0.1)
    unit.start()
    for i in range(5):
        inbox.try_put(i)
    env.run(until=1.0)
    assert outbox.drain() == [0, 1, 2, 3, 4]
    assert unit.stats.items.total == 5


def test_unit_ways_parallelism():
    env = Environment()
    # 4 items, 1 s each: 1 way -> 4 s; 4 ways -> 1 s.
    unit1, in1, _ = make_unit(env, ways=1, service=1.0)
    unit4, in4, _ = make_unit(env, ways=4, service=1.0)
    unit1.start()
    unit4.start()
    for i in range(4):
        in1.try_put(i)
        in4.try_put(i)
    env.run(until=1.001)
    assert unit4.stats.items.total == 4
    assert unit1.stats.items.total == 1


def test_unit_utilization():
    env = Environment()
    unit, inbox, outbox = make_unit(env, ways=2, service=1.0)
    unit.start()
    for i in range(4):
        inbox.try_put(i)
    env.run(until=4.0)  # 2 ways x 2 s busy of 4 s wall = 0.5 per way
    assert unit.utilization() == pytest.approx(0.5)


def test_unit_transform_applied():
    env = Environment()
    inbox = Channel(env, capacity=4, name="in")
    outbox = Channel(env, capacity=4, name="out")
    unit = PipelineUnit(env, "x2", ways=1, service_time=lambda i: 0.0,
                        inbox=inbox, outbox=outbox,
                        transform=lambda i: i * 2)
    unit.start()
    inbox.try_put(21)
    env.run(until=0.1)
    assert outbox.drain() == [42]


def test_unit_way_imbalance_metric():
    env = Environment()
    unit, inbox, _ = make_unit(env, ways=2, service=0.1)
    unit.start()
    for i in range(20):
        inbox.try_put(i)
    env.run(until=10.0)
    assert unit.way_imbalance() == pytest.approx(1.0, abs=0.01)


def test_unit_validation():
    env = Environment()
    inbox = Channel(env, name="in")
    with pytest.raises(ValueError):
        PipelineUnit(env, "bad", ways=0, service_time=lambda i: 0,
                     inbox=inbox, outbox=None)
    unit, inbox2, _ = make_unit(env)
    unit.start()
    with pytest.raises(RuntimeError):
        unit.start()


def test_unit_negative_service_rejected():
    env = Environment()
    inbox = Channel(env, name="in")
    unit = PipelineUnit(env, "neg", ways=1, service_time=lambda i: -1.0,
                        inbox=inbox, outbox=None)
    unit.start()
    inbox.try_put("x")
    with pytest.raises(ValueError):
        env.run(until=1.0)


# ------------------------------------------------------------- device
def test_device_loads_fitting_mirror():
    env = Environment()
    device = FpgaDevice(env, DEFAULT_TESTBED)
    mirror = ImageDecoderMirror(env, DEFAULT_TESTBED)
    device.load_mirror(mirror)
    assert device.mirror is mirror
    assert 0 < device.clb_used <= ARRIA10_CLB_BUDGET
    assert device.clb_free == ARRIA10_CLB_BUDGET - device.clb_used


def test_device_rejects_oversized_mirror():
    env = Environment()
    device = FpgaDevice(env, DEFAULT_TESTBED)
    big = ImageDecoderMirror(env, DEFAULT_TESTBED, huffman_ways=8,
                             resizer_ways=4)
    with pytest.raises(FpgaResourceError):
        device.load_mirror(big)


def test_device_mirror_swap():
    env = Environment()
    device = FpgaDevice(env, DEFAULT_TESTBED)
    first = ImageDecoderMirror(env, DEFAULT_TESTBED, name="first")
    second = ImageDecoderMirror(env, DEFAULT_TESTBED, name="second")
    device.load_mirror(first)
    device.load_mirror(second)
    assert device.mirror is second
    assert first.device is None


def test_device_dma_timing():
    env = Environment()
    device = FpgaDevice(env, DEFAULT_TESTBED)
    done = []

    def p(env):
        yield from device.dma_write(int(DEFAULT_TESTBED.fpga_dma_rate))
        done.append(env.now)

    env.process(p(env))
    env.run()
    assert done[0] == pytest.approx(1.0)
    assert device.dma_utilization() == pytest.approx(1.0)


def test_device_dma_validation():
    env = Environment()
    device = FpgaDevice(env, DEFAULT_TESTBED)

    def p(env):
        yield from device.dma_write(0)

    env.process(p(env))
    with pytest.raises(ValueError):
        env.run()
