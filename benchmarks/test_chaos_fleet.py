"""Chaos-fleet benchmarks: the experiment's shape checks plus the
chaos-machinery overhead measurement (BENCH_PR7.json).

The flight table, retry budget and per-attempt proxy events only exist
on a chaos/recovery-armed balancer, so two costs matter: (a) an
*unarmed* fleet must pay nothing (pinned bit-identical by test, here we
pin wall-clock sanity), and (b) an armed fleet under active faults must
stay within a small constant factor of the fault-free baseline — the
recovery machinery may not dominate the simulation it protects.
"""

import os
import time

from repro.experiments import chaos_fleet as chaos_experiment
from repro.faults import FaultPlan
from repro.perf import BenchResult, to_payload, write_payload
from repro.sim.core import total_events_processed

from conftest import FULL, run_report

BENCH_PR7 = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_PR7.json")


def test_chaos_fleet_experiment(benchmark):
    run_report(benchmark, chaos_experiment.run)


def _timed(fn):
    fn()                                    # warm caches
    ev0 = total_events_processed()
    t0 = time.perf_counter()
    payload = fn()
    wall = time.perf_counter() - t0
    return payload, wall, total_events_processed() - ev0


def test_chaos_overhead_vs_faultfree_baseline():
    """Wall-clock of the same K-host fleet run three ways: unarmed
    (PR 6 path), armed-with-empty-plan (hooks only), and armed with a
    crash + recovery (flights, sweep, re-dispatch).  BENCH_PR7.json."""
    k = 3
    sim_s = 0.5 if not FULL else 1.0
    x = 0.7 * k
    crash = FaultPlan.of(FaultPlan.host_crash(0.4 * sim_s, "host01"),
                         name="bench-crash")

    def baseline():
        return chaos_experiment.serve_chaos(
            plan=None, k=k, overload_x=x, sim_s=sim_s)

    def hooks_only():
        return chaos_experiment.serve_chaos(
            plan=FaultPlan.of(name="empty"), k=k, overload_x=x,
            sim_s=sim_s)

    def chaos_on():
        return chaos_experiment.serve_chaos(
            plan=crash, recovery=chaos_experiment.default_recovery(),
            outlier=chaos_experiment.default_outlier(),
            k=k, overload_x=x, sim_s=sim_s)

    base_payload, base_wall, base_events = _timed(baseline)
    hook_payload, hook_wall, hook_events = _timed(hooks_only)
    on_payload, on_wall, on_events = _timed(chaos_on)

    assert base_payload["fleet"]["conserved"]
    assert on_payload["flights"]["request_ledger_ok"]
    assert on_payload["flights"]["attempt_ledger_ok"]
    # Unarmed hooks are free: same event count as the PR 6 path.
    assert hook_events == base_events
    # Armed chaos + recovery stays within a small constant factor.
    overhead = on_wall / base_wall
    assert overhead < 2.0, (
        f"chaos-on overhead {overhead:.2f}x vs fault-free baseline")

    results = [
        BenchResult(name="chaos.baseline", best_s=base_wall,
                    mean_s=base_wall, runs=(base_wall,), reps=1,
                    units={"events": base_events}),
        BenchResult(name="chaos.hooks_only", best_s=hook_wall,
                    mean_s=hook_wall, runs=(hook_wall,), reps=1,
                    units={"events": hook_events}),
        BenchResult(name="chaos.crash_recovery_on", best_s=on_wall,
                    mean_s=on_wall, runs=(on_wall,), reps=1,
                    units={"events": on_events,
                           "redispatches": on_payload["lb"]
                           ["redispatches"]}),
    ]
    write_payload(BENCH_PR7, to_payload(results, derived={
        "chaos_on_overhead_x": overhead,
        "hooks_only_overhead_x": hook_wall / base_wall,
        "chaos_extra_events": on_events - base_events,
    }))
    print(f"\nchaos overhead: hooks {hook_wall / base_wall:.2f}x, "
          f"armed {overhead:.2f}x over {base_wall:.2f}s baseline")
