"""Chaos: resilience degradation curves under injected faults."""

from repro.experiments import chaos

from conftest import run_report


def test_chaos_resilience(benchmark):
    run_report(benchmark, chaos.run)
