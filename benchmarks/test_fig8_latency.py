"""Figure 8: inference latency over the batch sweep."""

import pytest

from repro.experiments import fig8_infer_latency

from conftest import run_report


@pytest.mark.parametrize("model", ["googlenet", "vgg16", "resnet50"])
def test_fig8_inference_latency(benchmark, model):
    run_report(benchmark, fig8_infer_latency.run, models=(model,))
