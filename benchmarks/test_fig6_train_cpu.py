"""Figure 6: CPU cost in training (incl. the 6(d) breakdown)."""

import pytest

from repro.experiments import fig6_train_cpu

from conftest import run_report


@pytest.mark.parametrize("model", ["lenet5", "alexnet", "resnet18"])
def test_fig6_train_cpu(benchmark, model):
    run_report(benchmark, fig6_train_cpu.run, models=(model,))
