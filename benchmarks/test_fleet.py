"""Fleet benchmarks: the experiment's shape checks plus a wall-clock
scaling curve (events/s and wall seconds vs fleet size, BENCH_PR6.json).

The K-host fleet multiplies the whole single-host pipeline inside one
Environment, so sim-kernel cost should grow roughly linearly in K at a
fixed per-host arrival rate; a superlinear blowup would mean the fleet
layer added per-event overhead.  One timed run per K (these are
multi-second simulations, not microbenchmarks).
"""

import os
import time

from repro.experiments import fleet as fleet_experiment
from repro.perf import BenchResult, to_payload, write_payload
from repro.sim.core import total_events_processed

from conftest import FULL, run_report

BENCH_PR6 = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_PR6.json")


def test_fleet_experiment(benchmark):
    run_report(benchmark, fleet_experiment.run)


def test_fleet_scaling_wall_clock():
    """Wall seconds + events/s for K = 1, 2, 4 hosts at a fixed
    0.75-knee per-host offered rate; written to BENCH_PR6.json."""
    sim_s = 0.5 if not FULL else 1.0
    results = []
    rates = {}
    for k in (1, 2, 4):
        def one_run(k=k):
            return fleet_experiment.serve_fleet(
                policy="least-loaded", k=k, overload_x=0.75 * k,
                sim_s=sim_s, degraded_host=-1)   # all hosts healthy

        one_run()                               # warm caches
        ev0 = total_events_processed()
        t0 = time.perf_counter()
        payload = one_run()
        wall = time.perf_counter() - t0
        events = total_events_processed() - ev0
        assert payload["fleet"]["conserved"]
        assert payload["fleet"]["completed"] > 0
        results.append(BenchResult(
            name=f"fleet.k{k}", best_s=wall, mean_s=wall, runs=(wall,),
            reps=1, units={"events": events,
                           "served": payload["fleet"]["completed"]}))
        rates[k] = events / wall
    # Per-host kernel throughput should not collapse as K grows: the
    # fleet layer adds no superlinear per-event cost.  (4x the hosts at
    # 4x the total arrival rate => within 3x the wall per event.)
    assert rates[4] > rates[1] / 3.0, rates
    write_payload(BENCH_PR6, to_payload(
        results, derived={"events_per_s_k1": rates[1],
                          "events_per_s_k4": rates[4],
                          "k4_vs_k1_events_rate": rates[4] / rates[1]}))
    print(f"\nfleet scaling: " + ", ".join(
        f"K={k}: {rates[k]:,.0f} ev/s" for k in rates))
