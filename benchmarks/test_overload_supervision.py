"""Overload: deadline shedding bounds p99 where no-shed collapses."""

from repro.experiments import overload

from conftest import run_report


def test_overload_supervision(benchmark):
    run_report(benchmark, overload.run)
