"""Figure 5: training throughput, one benchmark per panel."""

import pytest

from repro.experiments import fig5_train_throughput

from conftest import run_report


@pytest.mark.parametrize("model", ["lenet5", "alexnet", "resnet18"])
def test_fig5_training_throughput(benchmark, model):
    run_report(benchmark, fig5_train_throughput.run, models=(model,))
