"""Perf regression benchmark: functional JPEG decode, new vs pre-pass.

Times the optimized decoder and — in the same process, via
``reference_mode()`` — the implementation it replaced, asserts
bit-identical pixels and a healthy speedup, and records both absolute
MB/s and the speedup ratio into ``BENCH_PR5.json`` (``repro-perf/1``).
"""

import numpy as np
import pytest

from repro.jpeg.decoder import decode
from repro.perf import bench, reference_mode
from repro.perf.workloads import codec_workload

from conftest import FULL, bench_out

# The measured speedup on an idle machine is ~3.5x (the optimization
# target was >= 3x); the hard floor here is set low enough that a noisy
# shared CI runner cannot flake the suite — the committed perf baseline
# plus the 30% regression gate (test_perf_experiments) police the real
# target.
MIN_SPEEDUP = 2.0


@pytest.fixture(scope="module")
def workload():
    return codec_workload()


def test_decode_bit_identical_across_modes(workload):
    new_pixels = decode(workload.data)
    with reference_mode():
        ref_pixels = decode(workload.data)
    assert new_pixels.dtype == ref_pixels.dtype
    assert np.array_equal(new_pixels, ref_pixels)


def test_decode_speedup(workload):
    units = {"bytes": float(workload.nbytes)}
    kwargs = dict(k=3, min_time=0.2) if FULL else dict(k=2, min_time=0.05)
    rounds = 2 if FULL else 1
    # Interleave the modes so slow machine drift biases neither side.
    news, olds = [], []
    for _ in range(rounds):
        news.append(bench(lambda: decode(workload.data),
                          name="codec.decode", units=units, **kwargs))
        with reference_mode():
            olds.append(bench(lambda: decode(workload.data),
                              name="codec.decode_ref", units=units,
                              **kwargs))
    new = min(news, key=lambda r: r.best_s)
    old = min(olds, key=lambda r: r.best_s)
    speedup = old.best_s / new.best_s
    bench_out([new, old], {"codec.decode_speedup": speedup})
    print(f"\ndecode: {workload.nbytes / new.best_s / 1e6:.2f} MB/s "
          f"(ref {workload.nbytes / old.best_s / 1e6:.2f} MB/s, "
          f"{speedup:.2f}x)")
    assert speedup >= MIN_SPEEDUP, (
        f"decode speedup {speedup:.2f}x below floor {MIN_SPEEDUP}x")
