"""Figure 2: motivation — AlexNet/Caffe backend comparison."""

from repro.experiments import fig2_motivation

from conftest import run_report


def test_fig2_motivation(benchmark):
    run_report(benchmark, fig2_motivation.run)
