"""Sweep-runner benchmarks: warm-pool parallel speedup with
byte-identical results, the redeemed calendar-queue event core, and the
content-addressed decode cache.  Results land in BENCH_PR10.json
(BENCH_PR8.json stays committed as the pre-fix historical record).

PR 8's methodology let a 0.92x "speedup" ship green: it timed a fresh
cold pool (workers paid the runner-stack import inside the measured
window), gated the assertion on ``os.cpu_count()`` (which ignores
container CPU affinity), and recorded the ratio without any committed
floor.  This file fixes all three:

* both legs are warmed before the stopwatch starts — the parent
  pre-imports and pre-builds the corpus, the (reused) pool is primed
  with one untimed point;
* gating uses ``effective_cores()`` (affinity-aware), and the portable
  metric is ``sweep.parallel_efficiency`` = speedup / min(workers,
  cores, points) — 1.0 is perfect scaling on *this* machine, so the
  floor travels from the 1-core dev box to a 4-core CI runner;
* the efficiency, calendar and cache ratios are asserted against
  ``benchmarks/perf_baseline.json`` at the end of this file, so a
  regression fails the suite instead of being silently recorded.
"""

import json
import os
import time

import pytest

from repro.perf import (BenchResult, bench, check_regression, load_payload,
                        to_payload, write_payload)
from repro.sweep import (effective_cores, fig7_points, run_sweep,
                         shared_pool, warm_process)

from conftest import FULL

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_PR10 = os.path.join(_ROOT, "BENCH_PR10.json")
BENCH_PR8 = os.path.join(_ROOT, "BENCH_PR8.json")
BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "perf_baseline.json")

QUICK = {"warmup_s": 0.3, "measure_s": 1.0} if not FULL else \
    {"warmup_s": 0.8, "measure_s": 2.5}

WORKERS = 4


def _bench_out(results, derived):
    write_payload(BENCH_PR10, to_payload(list(results), derived))


def test_sweep_parallel_speedup_and_identity():
    """The acceptance bar: a 12-point fig7 multi-seed sweep runs
    >= 2.5x faster at --parallel 4 (with >= 4 *effective* cores) and
    the merged rollup is byte-identical to the serial run.  The
    machine-portable floor is parallel_efficiency, asserted always."""
    # 12 points: 6 would cap the ideal parallel=4 speedup at exactly
    # 3.0x (two scheduling rounds); 12 make the ideal 4x.
    points = fig7_points(models=("googlenet",),
                         backends=("cpu-online", "nvjpeg", "dlbooster"),
                         batches=(1, 4), seeds=(0, 1), telemetry=True,
                         **QUICK)
    assert len(points) >= 6
    cores = effective_cores()

    # Warm both legs before any stopwatch: parent imports + corpus
    # (serial leg), pool workers forked from the warm parent and primed
    # with one untimed point (parallel leg).  This is the fix for the
    # PR 8 cold-pool methodology bug.
    warm_process()
    pool = shared_pool(WORKERS)
    prime = points[:2]
    run_sweep(prime, parallel=1)
    run_sweep(prime, parallel=WORKERS, pool=pool)

    t0 = time.perf_counter()
    serial = run_sweep(points, parallel=1)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    par = run_sweep(points, parallel=WORKERS, pool=pool)
    parallel_s = time.perf_counter() - t0

    serial_doc = serial.rollup_json()
    assert serial_doc == par.rollup_json(), \
        "parallel sweep diverged from serial rollup"
    merged = serial.rollup()["merged_latency"]
    assert merged, "no latency reservoirs merged"

    speedup = serial_s / parallel_s
    # Perfect scaling is bounded by workers, cores and points — divide
    # it out so the metric is comparable across machines.
    efficiency = speedup / min(WORKERS, cores, len(points))

    results = [
        BenchResult(name="sweep.serial", best_s=serial_s, mean_s=serial_s,
                    runs=(serial_s,), reps=1,
                    units={"points": float(len(points)),
                           "events": float(sum(serial.events))}),
        BenchResult(name=f"sweep.parallel{WORKERS}", best_s=parallel_s,
                    mean_s=parallel_s, runs=(parallel_s,), reps=1,
                    units={"points": float(len(points)),
                           "events": float(sum(par.events))}),
    ]
    derived = {"sweep.parallel4_speedup": speedup,
               "sweep.parallel_efficiency": efficiency,
               "sweep.effective_cores": float(cores),
               "sweep.rollup_bytes": float(len(serial_doc))}
    _bench_out(results, derived)
    print(f"\nsweep: serial {serial_s:.2f}s, parallel={WORKERS} "
          f"{parallel_s:.2f}s ({speedup:.2f}x, efficiency "
          f"{efficiency:.2f}), rollup {len(serial_doc):,} bytes, "
          f"{cores} effective cores")
    if cores >= 4:
        assert speedup >= 2.5, \
            f"expected >= 2.5x at --parallel 4 on {cores} cores, " \
            f"got {speedup:.2f}x"


def test_calendar_queue_event_rate():
    """Dense-timer event core: heap vs calendar vs the honest "auto"
    policy on the same workload.  When the per-box calibration says the
    calendar wins, it must actually win (>= 1.0), and auto must land on
    whichever representation the calibration picked.

    Methodology notes: 8000 concurrent tickers keep the pending set
    dense (heap pops pay ~log2(8000) sift levels, calendar pops are
    bucket-local), and the three schedulers are timed *interleaved*,
    best-of-7 each — back-to-back blocks let background load drift
    favour whichever leg ran during a quiet spell, which is exactly how
    PR 8 recorded a loss as a win."""
    from repro.sim import Environment
    from repro.sim.core import scheduler_calibration

    SCHEDULERS = ("heap", "calendar", "auto")
    N, UNTIL, REPS = 8000, 0.06, 7

    def soup(scheduler, until=UNTIL, probe=None):
        env = Environment(scheduler=scheduler)

        def ticker(period):
            while True:
                yield env.timeout(period)

        for i in range(N):
            env.process(ticker(0.001 + 1e-6 * i))
        t0 = time.perf_counter()
        env.run(until=until)
        elapsed = time.perf_counter() - t0
        if probe is not None:
            probe.append(env.scheduler_active)
        return elapsed, env.events_processed

    verdict = scheduler_calibration()
    active = []
    events = soup("heap", probe=active)[1]
    assert events == soup("calendar", probe=active)[1]
    assert events == soup("auto", probe=active)[1]  # identical counts
    # Structural honesty: the pinned modes are what they claim, and
    # "auto" lands wherever the per-box calibration pointed it.
    assert active == ["heap", "calendar", verdict]

    runs = {s: [] for s in SCHEDULERS}
    for s in SCHEDULERS:                            # warmup
        soup(s, until=UNTIL / 5)
    for _ in range(REPS):                           # interleaved
        for s in SCHEDULERS:
            runs[s].append(soup(s)[0])

    res = [BenchResult(name=f"sim.soup[{s}]", best_s=min(runs[s]),
                       mean_s=sum(runs[s]) / REPS, runs=tuple(runs[s]),
                       reps=1, units={"events": float(events)})
           for s in SCHEDULERS]
    ratio = min(runs["heap"]) / min(runs["calendar"])
    auto_ratio = min(runs["heap"]) / min(runs["auto"])
    _bench_out(res, {
        "sim.calendar_vs_heap": ratio,
        "sim.auto_vs_heap": auto_ratio,
        "sim.auto_picks_calendar": float(verdict == "calendar")})
    print(f"\ncalendar vs heap on {events:,} events: {ratio:.2f}x; "
          f"auto vs heap: {auto_ratio:.2f}x (calibration: {verdict})")
    if verdict == "calendar":
        assert ratio >= 1.0, \
            f"calibration chose the calendar but it lost: {ratio:.2f}x"
    # Auto runs the exact same loop as whichever side it picked (proven
    # structurally above); the timing assert is only a noise floor.
    assert auto_ratio >= 0.70 * min(ratio, 1.0), \
        f"auto pathologically slow: {auto_ratio:.2f}x vs heap"


def test_decode_cache_speedup():
    """Functional-decode cache: a content-addressed hit must be far
    cheaper than a real decode, with bit-identical pixels."""
    import numpy as np

    from repro.jpeg import (cached_decode_resized, clear_decode_cache,
                            decode_resized)
    from repro.perf.workloads import codec_workload

    data = codec_workload().data
    expected = decode_resized(data, 224, 224)
    clear_decode_cache()
    assert np.array_equal(cached_decode_resized(data, 224, 224), expected)

    cold = bench(lambda: decode_resized(data, 224, 224),
                 name="codec.decode_resized[uncached]",
                 warmup=1, k=3, min_time=0.2,
                 units={"bytes": float(len(data))})
    hot = bench(lambda: cached_decode_resized(data, 224, 224),
                name="codec.decode_resized[cached]",
                warmup=1, k=3, min_time=0.05,
                units={"bytes": float(len(data))})
    speedup = cold.best_s / hot.best_s
    _bench_out([cold, hot], {"codec.decode_cache_speedup": speedup})
    print(f"\ndecode cache hit speedup: {speedup:,.0f}x "
          f"(miss {cold.best_s * 1e3:.1f}ms, hit {hot.best_s * 1e6:.1f}us)")
    assert speedup >= 5.0, \
        f"cache hit barely cheaper than a decode: {speedup:.2f}x"


def test_scan_idct_vs_reference_decode():
    """Whole-decoder speed with the scan-batched iDCT vs the pre-PR8
    per-block reference path, bit-identical outputs required."""
    import numpy as np

    from repro.jpeg import decode
    from repro.perf import reference_mode
    from repro.perf.workloads import codec_workload

    data = codec_workload().data
    fast = decode(data)
    with reference_mode():
        ref_res = bench(lambda: decode(data), name="codec.decode[ref]",
                        warmup=1, k=3, min_time=0.2,
                        units={"bytes": float(len(data))})
        assert np.array_equal(decode(data), fast), \
            "reference decode diverged"
    new_res = bench(lambda: decode(data), name="codec.decode[scan-idct]",
                    warmup=1, k=3, min_time=0.2,
                    units={"bytes": float(len(data))})
    speedup = ref_res.best_s / new_res.best_s
    _bench_out([ref_res, new_res], {"codec.scan_idct_speedup": speedup})
    print(f"\nscan-iDCT decode speedup vs reference: {speedup:.2f}x")
    assert speedup > 0.7, f"batched iDCT slower than per-block: {speedup:.2f}x"


def test_no_regression_vs_committed_baseline():
    """The in-file gate (runs after the benchmarks above have written
    their ratios): any recorded ratio falling >30% below its floor in
    benchmarks/perf_baseline.json fails the suite — this is what makes
    a 0.92x 'speedup' impossible to ship green again."""
    if not os.path.exists(BENCH_PR10):
        pytest.skip("sweep benchmarks did not run")
    current = load_payload(BENCH_PR10)
    baseline = load_payload(BASELINE)
    failures = check_regression(current, baseline, tolerance=0.30)
    assert not failures, "perf regressions vs baseline:\n" + "\n".join(
        failures)


def test_bench_artifacts_valid():
    """BENCH_PR10.json (this suite's receipt) and BENCH_PR8.json (the
    committed pre-fix history) are valid repro-perf/1 documents."""
    assert os.path.exists(BENCH_PR10), "run the sweep benchmarks first"
    with open(BENCH_PR10) as fh:
        doc = json.load(fh)
    assert doc["schema"] == "repro-perf/1"
    assert "sweep.parallel4_speedup" in doc["derived"]
    assert "sweep.parallel_efficiency" in doc["derived"]
    assert "sim.calendar_vs_heap" in doc["derived"]

    with open(BENCH_PR8) as fh:       # history, never regenerated here
        old = json.load(fh)
    assert old["schema"] == "repro-perf/1"
