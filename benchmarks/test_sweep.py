"""Sweep-runner benchmarks: parallel speedup with byte-identical
results, plus the PR's two kernel wins (calendar-queue event core,
scan-batched iDCT) measured against their reference-mode ancestors.
Results land in BENCH_PR8.json.

The speedup assertion is gated on core count: inside a 1-2 core
container a process pool only adds fork/pickle overhead, so the >= 3x
acceptance bar is only meaningful (and only enforced) with >= 4 cores —
the identity assertion holds everywhere regardless.
"""

import json
import os
import time

import pytest

from repro.perf import (BenchResult, bench, reference_mode, to_payload,
                        write_payload)
from repro.sweep import fig7_points, run_sweep

from conftest import FULL

BENCH_PR8 = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_PR8.json")

QUICK = {"warmup_s": 0.3, "measure_s": 1.0} if not FULL else \
    {"warmup_s": 0.8, "measure_s": 2.5}


def _bench_out(results, derived):
    write_payload(BENCH_PR8, to_payload(list(results), derived))


def test_sweep_parallel_speedup_and_identity():
    """The acceptance bar: a >= 6-point fig7 multi-seed sweep runs
    >= 3x faster at --parallel 4 (with >= 4 cores) and the merged
    rollup is byte-identical to the serial run."""
    # 12 points: 6 would cap the ideal parallel=4 speedup at exactly
    # 3.0x (two scheduling rounds), leaving zero headroom for the >= 3x
    # bar; 12 points make the ideal 4x.
    points = fig7_points(models=("googlenet",),
                         backends=("cpu-online", "nvjpeg", "dlbooster"),
                         batches=(1, 4), seeds=(0, 1), telemetry=True,
                         **QUICK)
    assert len(points) >= 6

    t0 = time.perf_counter()
    serial = run_sweep(points, parallel=1)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    par = run_sweep(points, parallel=4)
    parallel_s = time.perf_counter() - t0

    serial_doc = serial.rollup_json()
    assert serial_doc == par.rollup_json(), \
        "parallel sweep diverged from serial rollup"
    merged = serial.rollup()["merged_latency"]
    assert merged, "no latency reservoirs merged"
    speedup = serial_s / parallel_s

    results = [
        BenchResult(name="sweep.serial", best_s=serial_s, mean_s=serial_s,
                    runs=(serial_s,), reps=1,
                    units={"points": float(len(points)),
                           "events": float(sum(serial.events))}),
        BenchResult(name="sweep.parallel4", best_s=parallel_s,
                    mean_s=parallel_s, runs=(parallel_s,), reps=1,
                    units={"points": float(len(points)),
                           "events": float(sum(par.events))}),
    ]
    derived = {"sweep.parallel4_speedup": speedup,
               "sweep.rollup_bytes": float(len(serial_doc))}
    _bench_out(results, derived)
    print(f"\nsweep: serial {serial_s:.2f}s, parallel=4 {parallel_s:.2f}s "
          f"({speedup:.2f}x), rollup {len(serial_doc):,} bytes, "
          f"{os.cpu_count()} cores")
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 3.0, \
            f"expected >= 3x at --parallel 4, got {speedup:.2f}x"


def test_calendar_queue_event_rate():
    """Dense-timer event core: heap vs calendar scheduler on the same
    workload, same event count — the calendar should never be slower
    than ~half the heap (it wins on dense sets; this is a floor, the
    wall-clock claim lives in the committed JSON)."""
    from repro.sim import Environment

    def soup(scheduler):
        env = Environment(scheduler=scheduler)

        def ticker(period):
            while True:
                yield env.timeout(period)

        for i in range(800):
            env.process(ticker(0.001 + 1e-6 * i))
        env.run(until=1.0)
        return env.events_processed

    events = soup("heap")
    assert events == soup("calendar")      # identical event counts

    res = {}
    for scheduler in ("heap", "calendar"):
        res[scheduler] = bench(lambda s=scheduler: soup(s),
                               name=f"sim.soup[{scheduler}]",
                               warmup=1, k=3, min_time=0.2,
                               units={"events": float(events)})
    ratio = res["heap"].best_s / res["calendar"].best_s
    _bench_out(res.values(), {"sim.calendar_vs_heap": ratio})
    print(f"\ncalendar vs heap on {events:,} events: {ratio:.2f}x")
    assert ratio > 0.5, f"calendar queue pathologically slow: {ratio:.2f}x"


def test_scan_idct_vs_reference_decode():
    """Whole-decoder speed with the scan-batched iDCT vs the pre-PR8
    per-block reference path, bit-identical outputs required."""
    import numpy as np

    from repro.jpeg import decode
    from repro.perf.workloads import codec_workload

    data = codec_workload().data
    fast = decode(data)
    with reference_mode():
        ref_res = bench(lambda: decode(data), name="codec.decode[ref]",
                        warmup=1, k=3, min_time=0.2,
                        units={"bytes": float(len(data))})
        assert np.array_equal(decode(data), fast), \
            "reference decode diverged"
    new_res = bench(lambda: decode(data), name="codec.decode[scan-idct]",
                    warmup=1, k=3, min_time=0.2,
                    units={"bytes": float(len(data))})
    speedup = ref_res.best_s / new_res.best_s
    _bench_out([ref_res, new_res], {"codec.scan_idct_speedup": speedup})
    print(f"\nscan-iDCT decode speedup vs reference: {speedup:.2f}x")
    assert speedup > 0.7, f"batched iDCT slower than per-block: {speedup:.2f}x"


def test_bench_pr8_written_and_valid():
    """BENCH_PR8.json exists (committed + regenerated by this suite)
    and is a valid repro-perf/1 document."""
    assert os.path.exists(BENCH_PR8), "run the other sweep benchmarks first"
    with open(BENCH_PR8) as fh:
        doc = json.load(fh)
    assert doc["schema"] == "repro-perf/1"
    assert "sweep.parallel4_speedup" in doc["derived"]
