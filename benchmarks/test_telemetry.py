"""Telemetry-enabled serving benchmark: end-to-end registry + sampler
overhead check, emitting the machine-readable ``BENCH_PR3.json``.

The emitted file is the CI artifact for the unified-telemetry PR: the
serving headline numbers (throughput, p50/p99) measured *with* the
metrics registry and queue-depth sampler attached, plus observability
meta (metric count, depth-series points) proving the export pipeline
ran.  Percentiles come from the reservoir-sampling LatencyRecorder, so
they reflect the whole measurement window rather than its head.
"""

import os

from repro.telemetry import TelemetryConfig, emit_bench
from repro.workflows import InferenceConfig, run_inference

from conftest import FULL

BENCH_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_PR3.json")


def test_telemetry_serving_bench(benchmark):
    cfg = InferenceConfig(
        model="googlenet", backend="dlbooster", batch_size=8,
        warmup_s=1.0 if FULL else 0.4,
        measure_s=4.0 if FULL else 1.0,
        telemetry=TelemetryConfig(sample_interval_s=0.005))
    result = benchmark.pedantic(lambda: run_inference(cfg),
                                rounds=1, iterations=1)
    assert result.throughput > 0

    tel = result.extras["telemetry"]
    metrics = tel["metrics"]
    depths = tel["queue_depths"]
    assert "nic.rx.occupancy" in metrics
    assert "nic.rx.depth" in depths

    doc = emit_bench(
        {
            "throughput_img_s": result.throughput,
            "latency_p50_ms": result.latency_p50_ms,
            "latency_p99_ms": result.latency_p99_ms,
            "cpu_cores": result.cpu_cores,
            "gpu_compute_util": result.gpu_compute_util,
            "metrics_registered": float(len(metrics)),
            "depth_series": float(len(depths)),
            "depth_points_nic_rx": float(len(depths["nic.rx.depth"])),
        },
        os.path.abspath(BENCH_PATH),
        label="telemetry-serving-googlenet-bs8",
        meta={"profile": "full" if FULL else "quick",
              "backend": cfg.backend, "model": cfg.model,
              "batch_size": cfg.batch_size,
              "sample_interval_s": cfg.telemetry.sample_interval_s})
    assert doc["metrics"]["latency_p99_ms"] is not None
