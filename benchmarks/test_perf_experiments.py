"""Perf benchmark: experiment wall-clock + the committed regression gate.

Runs the fig7 experiment end-to-end, records its wall seconds and
kernel events/s (from the report's perf section) into
``BENCH_PR5.json``, then replays the regression check CI runs: every
derived speedup ratio recorded by the perf benchmarks this session must
stay within 30% of ``benchmarks/perf_baseline.json``.
"""

import os

from repro.experiments import fig7_infer_throughput
from repro.perf import (BenchResult, check_regression, load_payload)

from conftest import BENCH_JSON, bench_out

BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "perf_baseline.json")


def test_experiment_wall_clock_recorded():
    report = fig7_infer_throughput.run(quick=True)
    assert not report.failed_checks()
    perf = report.perf
    assert perf["wall_s"] > 0 and perf["events"] > 0
    result = BenchResult(name="experiments.fig7",
                         best_s=perf["wall_s"], mean_s=perf["wall_s"],
                         runs=(perf["wall_s"],), reps=1,
                         units={"events": float(perf["events"])})
    bench_out([result])
    print(f"\nfig7 experiment: {perf['wall_s']:.1f}s wall, "
          f"{perf['events_per_s']:,.0f} events/s")


def test_no_regression_vs_committed_baseline():
    """The CI gate: >30% regression on any recorded ratio fails."""
    if not os.path.exists(BENCH_JSON):
        # Running this file alone: nothing recorded yet, nothing to gate.
        return
    current = load_payload(BENCH_JSON)
    baseline = load_payload(BASELINE)
    failures = check_regression(current, baseline, tolerance=0.30)
    assert not failures, "perf regressions vs baseline:\n" + "\n".join(
        failures)
