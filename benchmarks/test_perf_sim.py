"""Perf regression benchmark: sim kernel + telemetry, new vs pre-pass.

Two measurements:

* raw kernel events/s on a producer/consumer ping-pong (the purest
  dispatch-loop figure, via ``Environment.events_processed``);
* the fig7 modeled inference cell, new vs ``reference_mode()``, with the
  simulated throughput asserted bit-identical across the mode switch —
  the optimizations must never change a simulated result, only how fast
  it is computed.
"""

import time

import pytest

from repro.perf import BenchResult, bench, reference_mode
from repro.perf.workloads import fig7_config
from repro.sim import Channel, Environment
from repro.workflows.inference import run_inference

from conftest import FULL, bench_out

# Idle-machine measurement is ~1.5-1.7x (target >= 1.5x); the floor is
# noise-tolerant, the committed baseline + 30% gate police the target.
MIN_SIM_SPEEDUP = 1.15


def _pingpong(n_items: int) -> int:
    """A channel producer/consumer pair; returns events processed."""
    env = Environment()
    ch = Channel(env, capacity=8, name="bench")

    def producer():
        for i in range(n_items):
            yield from ch.put(i)
            yield env.timeout(0.001)

    def consumer():
        for _ in range(n_items):
            yield from ch.get()
            yield env.timeout(0.001)

    env.process(producer())
    env.process(consumer())
    env.run()
    return env.events_processed


def test_kernel_events_per_second():
    n = 20_000 if FULL else 5_000
    events = _pingpong(n)  # warm + learn the event count
    with reference_mode():
        _pingpong(n)  # warm the reference paths too
    # Interleaved min-of-3 so machine drift hits both modes equally.
    new_s, old_s = [], []
    for _ in range(3):
        t0 = time.perf_counter()
        _pingpong(n)
        new_s.append(time.perf_counter() - t0)
        with reference_mode():
            t0 = time.perf_counter()
            _pingpong(n)
            old_s.append(time.perf_counter() - t0)
    new_s, old_s = min(new_s), min(old_s)
    result = BenchResult(name="sim.pingpong", best_s=new_s, mean_s=new_s,
                         runs=(new_s,), reps=1,
                         units={"events": float(events)})
    ref = BenchResult(name="sim.pingpong_ref", best_s=old_s, mean_s=old_s,
                      runs=(old_s,), reps=1,
                      units={"events": float(events)})
    bench_out([result, ref],
              {"sim.pingpong_speedup": old_s / new_s})
    print(f"\nkernel: {events / new_s:,.0f} events/s "
          f"(ref {events / old_s:,.0f}, {old_s / new_s:.2f}x)")
    assert events / new_s > 0


@pytest.mark.timeout(600)
def test_fig7_speedup_and_bit_identical_metrics():
    cfg = fig7_config()
    reps = 3 if FULL else 1

    run_inference(cfg)  # warm
    with reference_mode():
        run_inference(cfg)  # warm the reference paths too
    # Interleave modes round-by-round: slow machine drift then biases
    # neither side of the ratio.
    new_runs, old_runs = [], []
    new_tp = old_tp = None
    for _ in range(reps):
        t0 = time.perf_counter()
        res = run_inference(cfg)
        new_runs.append(time.perf_counter() - t0)
        new_tp = res.throughput
        with reference_mode():
            t0 = time.perf_counter()
            res = run_inference(cfg)
            old_runs.append(time.perf_counter() - t0)
            old_tp = res.throughput

    # The headline simulated metric must not move by a single bit.
    assert new_tp == old_tp, (new_tp, old_tp)

    speedup = min(old_runs) / min(new_runs)
    new = BenchResult(name="sim.fig7", best_s=min(new_runs),
                      mean_s=sum(new_runs) / len(new_runs),
                      runs=tuple(new_runs), reps=1,
                      units={"images": new_tp * min(new_runs)})
    old = BenchResult(name="sim.fig7_ref", best_s=min(old_runs),
                      mean_s=sum(old_runs) / len(old_runs),
                      runs=tuple(old_runs), reps=1,
                      units={"images": old_tp * min(old_runs)})
    bench_out([new, old], {"sim.fig7_speedup": speedup})
    print(f"\nfig7: {min(new_runs):.2f}s "
          f"(ref {min(old_runs):.2f}s, {speedup:.2f}x), "
          f"throughput {new_tp}")
    assert speedup >= MIN_SIM_SPEEDUP, (
        f"fig7 speedup {speedup:.2f}x below floor {MIN_SIM_SPEEDUP}x")
