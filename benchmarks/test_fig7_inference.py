"""Figure 7: inference throughput over the batch sweep."""

import pytest

from repro.experiments import fig7_infer_throughput

from conftest import run_report


@pytest.mark.parametrize("model", ["googlenet", "vgg16", "resnet50"])
def test_fig7_inference_throughput(benchmark, model):
    run_report(benchmark, fig7_infer_throughput.run, models=(model,))
