"""Shared benchmark plumbing.

Each benchmark runs one experiment module end-to-end (pedantic, one
round — these are simulations, not microbenchmarks), prints the
paper-style table and *asserts every shape check*, so a calibration or
code regression fails the suite.

Set ``REPRO_FULL=1`` for the full batch sweeps / longer measurement
windows; default is the quick profile.
"""

import os

import pytest

FULL = os.environ.get("REPRO_FULL", "0") not in ("0", "", "false")


def run_report(benchmark, fn, **kwargs):
    """Benchmark an experiment runner; print + assert its report."""
    report = benchmark.pedantic(
        lambda: fn(quick=not FULL, **kwargs), rounds=1, iterations=1)
    print()
    print(report.render())
    failed = report.failed_checks()
    assert not failed, "shape checks failed:\n" + "\n".join(
        str(c) for c in failed)
    return report


@pytest.fixture
def full_mode():
    return FULL


# Where the perf benchmarks (test_perf_*.py) accumulate their
# machine-readable results.  One file per run of the suite; each test
# merges its entries in, so partial runs still produce valid JSON.
BENCH_JSON = os.environ.get(
    "REPRO_BENCH_OUT",
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                 "BENCH_PR5.json"))


def bench_out(results, derived=None):
    """Merge BenchResults (and derived ratios) into ``BENCH_JSON``."""
    from repro.perf import to_payload, write_payload
    write_payload(BENCH_JSON, to_payload(list(results), derived))
