"""Figure 9: CPU cost in inference."""

from repro.experiments import fig9_infer_cpu

from conftest import run_report


def test_fig9_inference_cpu(benchmark):
    run_report(benchmark, fig9_infer_cpu.run)
