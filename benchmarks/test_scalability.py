"""Section 2.2: the scalability argument."""

from repro.experiments import scalability

from conftest import run_report


def test_scalability_argument(benchmark):
    run_report(benchmark, scalability.run)
