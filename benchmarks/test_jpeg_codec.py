"""Microbenchmarks of the functional JPEG codec — the real compute the
FPGA decoder model stands in for.  These are genuine pytest-benchmark
timings (wall clock), useful for profiling the functional-mode paths.
"""

import numpy as np
import pytest

from repro.data import synthetic_photo
from repro.jpeg import (coefficients_to_planes, decode, decode_resized,
                        encode, entropy_decode, parse_jpeg, planes_to_image,
                        resize_bilinear)


@pytest.fixture(scope="module")
def corpus():
    rng = np.random.default_rng(7)
    img = synthetic_photo(rng, 240, 320)
    data = encode(img, quality=80, subsampling="4:2:0")
    return img, data


def test_bench_encode(benchmark, corpus):
    img, _ = corpus
    out = benchmark(encode, img, 80)
    assert out[:2] == b"\xFF\xD8"


def test_bench_decode_full(benchmark, corpus):
    _, data = corpus
    out = benchmark(decode, data)
    assert out.shape == (240, 320, 3)


def test_bench_huffman_stage(benchmark, corpus):
    """The stage the paper gives 4 hardware ways."""
    _, data = corpus
    parsed = parse_jpeg(data)
    coeffs = benchmark(entropy_decode, parsed)
    assert len(coeffs) == 3


def test_bench_idct_stage(benchmark, corpus):
    _, data = corpus
    parsed = parse_jpeg(data)
    coeffs = entropy_decode(parsed)
    planes = benchmark(coefficients_to_planes, parsed, coeffs)
    assert planes[0].shape == (240, 320)


def test_bench_color_stage(benchmark, corpus):
    _, data = corpus
    parsed = parse_jpeg(data)
    planes = coefficients_to_planes(parsed, entropy_decode(parsed))
    out = benchmark(planes_to_image, parsed, planes)
    assert out.shape == (240, 320, 3)


def test_bench_resizer_stage(benchmark, corpus):
    img, _ = corpus
    out = benchmark(resize_bilinear, img, 224, 224)
    assert out.shape == (224, 224, 3)


def test_bench_fused_decode_resize(benchmark, corpus):
    """The exact function DLBooster offloads: decode + resize."""
    _, data = corpus
    out = benchmark(decode_resized, data, 224, 224)
    assert out.shape == (224, 224, 3)
