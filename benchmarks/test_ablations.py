"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each isolates one mechanism the paper credits for DLBooster's wins:
batch-block memory vs per-datum copies (S5.2), the 4-way/2-way unit
balance under the CLB budget (S3.3), the epoch cache of the hybrid
primitive (S3.1), scaling past the decoder bound with more FPGAs
(S5.3), and the shared-LMDB reader contention (S5.2).
"""

import dataclasses

import pytest

from repro.calib import DEFAULT_TESTBED
from repro.experiments.report import Report, fmt_table
from repro.fpga import (ARRIA10_CLB_BUDGET, DecodeCmd, FpgaDevice,
                        FPGAChannel, FpgaResourceError, ImageDecoderMirror)
from repro.sim import Environment
from repro.workflows import InferenceConfig, TrainingConfig, run_inference, \
    run_training

from conftest import FULL

WARM, MEAS = (1.0, 3.0) if not FULL else (2.0, 8.0)


# ------------------------------------------------------- batch vs per-item
def test_ablation_batch_memory_vs_per_item_copies(benchmark):
    """S5.2 claim (1): large-block batch memory eliminates the ~20%
    small-piece copy penalty (LeNet-5 is the sensitive workload)."""

    def run():
        rows = []
        # DLBooster moves whole batches; the CPU loader copies per item.
        dlb = run_training(TrainingConfig(
            model="lenet5", backend="dlbooster", num_gpus=1,
            warmup_s=WARM, measure_s=MEAS))
        cheap = dataclasses.replace(DEFAULT_TESTBED,
                                    per_item_copy_overhead_s=0.5e-6)
        cpu_base = run_training(TrainingConfig(
            model="lenet5", backend="cpu-online", num_gpus=1,
            warmup_s=WARM, measure_s=MEAS))
        cpu_cheap = run_training(TrainingConfig(
            model="lenet5", backend="cpu-online", num_gpus=1,
            warmup_s=WARM, measure_s=MEAS), testbed=cheap)
        rows.append(("dlbooster (batch copies)", dlb.throughput))
        rows.append(("cpu-online (per-item copies)", cpu_base.throughput))
        rows.append(("cpu-online (per-item cost -> ~0)",
                     cpu_cheap.throughput))
        return rows, dlb, cpu_base, cpu_cheap

    rows, dlb, cpu_base, cpu_cheap = benchmark.pedantic(run, rounds=1,
                                                        iterations=1)
    print()
    print(fmt_table(["configuration", "img/s"], rows))
    # The per-item overhead explains most of the gap to the bound.
    assert cpu_base.throughput < 0.9 * dlb.throughput
    assert cpu_cheap.throughput > 1.1 * cpu_base.throughput


# ------------------------------------------------------------- unit ways
def test_ablation_fpga_way_scaling(benchmark):
    """S3.3: stage way-counts are chosen for load balance under the CLB
    budget; 4-way Huffman + 2-way resize balances, 5/3 does not fit."""

    corpus = dict(size_bytes=110_000, work_pixels=int(375 * 500 * 1.5),
                  out_pixels=224 * 224)

    def drive(huffman_ways, resizer_ways, n=400):
        env = Environment()
        device = FpgaDevice(env, DEFAULT_TESTBED)
        mirror = ImageDecoderMirror(env, DEFAULT_TESTBED,
                                    huffman_ways=huffman_ways,
                                    resizer_ways=resizer_ways)
        device.load_mirror(mirror)
        channel = FPGAChannel(env, mirror)

        def submit(env):
            for i in range(n):
                cmd = DecodeCmd(cmd_id=i, source="dram",
                                size_bytes=corpus["size_bytes"],
                                work_pixels=corpus["work_pixels"],
                                out_h=224, out_w=224, channels=3,
                                dest_phy=0x4000_0000, dest_offset=0)
                yield from channel.submit_cmd(cmd)

        done = []

        def collect(env):
            while len(done) < n:
                record = yield from channel.wait_one()
                done.append(record)

        env.process(submit(env))
        proc = env.process(collect(env))
        env.run(until=proc)
        return n / env.now, mirror

    def run():
        rows = []
        results = {}
        for hw, rw in [(1, 1), (2, 1), (4, 2), (4, 1)]:
            rate, mirror = drive(hw, rw)
            utils = mirror.stage_utilizations()
            rows.append((f"huffman x{hw} / resizer x{rw}", rate,
                         mirror.bottleneck(),
                         f"{mirror.clb_cost():,}"))
            results[(hw, rw)] = (rate, utils, mirror.clb_cost())
        return rows, results

    rows, results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(fmt_table(["config", "img/s", "bottleneck", "CLBs"], rows))

    # More Huffman ways help until the iDCT unit binds.
    assert results[(2, 1)][0] > 1.6 * results[(1, 1)][0]
    assert results[(4, 2)][0] > results[(2, 1)][0]
    # The paper's 4/2 point fits the Arria-10; one more way of each would
    # exceed the logic budget.
    assert results[(4, 2)][2] <= ARRIA10_CLB_BUDGET
    env = Environment()
    oversized = ImageDecoderMirror(env, DEFAULT_TESTBED, huffman_ways=5,
                                   resizer_ways=3)
    with pytest.raises(FpgaResourceError):
        FpgaDevice(env, DEFAULT_TESTBED).load_mirror(oversized)
    # At 4/2 the heavy units are balanced — Huffman and iDCT both above
    # 55% while the decoder saturates (no straggler unit, S3.3).  The
    # output-driven resizer runs with headroom by design: its cost
    # scales with the (small) model input, not the source image.
    _, utils, _ = results[(4, 2)]
    assert utils["huffman"] > 0.55, utils
    assert utils["idct"] > 0.55, utils
    assert utils["resizer"] < utils["idct"], utils


# ------------------------------------------------------------ epoch cache
def test_ablation_epoch_cache(benchmark):
    """S3.1 hybrid primitive: caching the decoded first epoch lets
    iterative workloads skip the decoder from epoch 2 on."""

    def run():
        cached = run_training(TrainingConfig(
            model="lenet5", backend="dlbooster", num_gpus=1,
            warmup_s=WARM, measure_s=MEAS))
        no_cache_tb = dataclasses.replace(DEFAULT_TESTBED,
                                          cache_capacity_bytes=0)
        uncached = run_training(TrainingConfig(
            model="lenet5", backend="dlbooster", num_gpus=1,
            warmup_s=WARM, measure_s=MEAS), testbed=no_cache_tb)
        return cached, uncached

    cached, uncached = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(fmt_table(
        ["configuration", "img/s", "cache active"],
        [("hybrid (epoch cache)", cached.throughput,
          str(cached.extras["cache_active"])),
         ("always-online (no cache)", uncached.throughput,
          str(uncached.extras["cache_active"]))]))
    assert cached.extras["cache_active"] is True
    assert uncached.extras["cache_active"] is False
    # MNIST decode on the FPGA is cmd-overhead-bound; the cache removes
    # that path entirely and reaches the GPU bound.
    assert cached.throughput >= uncached.throughput


# ----------------------------------------------------------- more FPGAs
def test_ablation_fpga_count_scaling(benchmark):
    """S5.3: 'the bottleneck can be overcome by plugging more FPGA
    devices' — 2 decoders lift GoogLeNet@32 off the decoder bound."""

    def run():
        one = run_inference(InferenceConfig(
            model="googlenet", backend="dlbooster", batch_size=32,
            warmup_s=WARM, measure_s=MEAS, num_fpgas=1))
        two = run_inference(InferenceConfig(
            model="googlenet", backend="dlbooster", batch_size=32,
            warmup_s=WARM, measure_s=MEAS, num_fpgas=2))
        return one, two

    one, two = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(fmt_table(["FPGAs", "img/s"],
                    [(1, one.throughput), (2, two.throughput)]))
    assert two.throughput > 1.05 * one.throughput


# ------------------------------------------------------- LMDB contention
def test_ablation_lmdb_shared_env_contention(benchmark):
    """S5.2 claim (2): decoding instances competing on the shared LMDB
    cap aggregate throughput; per-GPU rate halves at 2 readers."""

    def run():
        results = {}
        for gpus in (1, 2):
            results[gpus] = run_training(TrainingConfig(
                model="alexnet", backend="lmdb", num_gpus=gpus,
                warmup_s=WARM, measure_s=MEAS))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(fmt_table(
        ["GPUs", "img/s total", "img/s per GPU"],
        [(g, r.throughput, r.per_gpu_throughput)
         for g, r in results.items()]))
    # Aggregate gains little from the second reader: the env is the cap.
    assert results[2].throughput < 1.45 * results[1].throughput
    assert results[2].per_gpu_throughput < 0.8 * results[1].throughput


# --------------------------------------------------------- GPU-direct DMA
def test_ablation_gpu_direct_writes(benchmark):
    """S7 future-work (2): decoder DMA peer-to-peer into device memory
    removes the host staging hop — the dispatcher's CPU share and the
    extra PCIe copy disappear at equal throughput."""

    def run():
        staged = run_inference(InferenceConfig(
            model="googlenet", backend="dlbooster", batch_size=32,
            warmup_s=WARM, measure_s=MEAS, gpu_direct=False))
        direct = run_inference(InferenceConfig(
            model="googlenet", backend="dlbooster", batch_size=32,
            warmup_s=WARM, measure_s=MEAS, gpu_direct=True))
        return staged, direct

    staged, direct = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(fmt_table(
        ["path", "img/s", "mean ms", "cpu cores"],
        [("staged (host pool + dispatcher)", staged.throughput,
          staged.latency_mean_ms, staged.cpu_cores),
         ("gpu-direct (peer DMA)", direct.throughput,
          direct.latency_mean_ms, direct.cpu_cores)]))
    assert direct.throughput >= 0.97 * staged.throughput
    assert direct.cpu_cores < staged.cpu_cores
    assert direct.latency_mean_ms <= 1.05 * staged.latency_mean_ms
