"""Section 5.4: economic analysis."""

from repro.experiments import econ_analysis

from conftest import run_report


def test_economic_analysis(benchmark):
    run_report(benchmark, econ_analysis.run)
