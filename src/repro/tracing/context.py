"""Per-request trace context: the causal record of one item's journey.

A :class:`RequestTrace` is minted at ingest (NIC RX for serving, the
reader's epoch stream for training) and rides the item itself — the
``trace`` attribute on :class:`~repro.net.NetRequest`,
:class:`~repro.host.WorkItem` and :class:`~repro.fpga.DecodeCmd` — so
it survives every hand-off of the pipeline, including the batching
fan-in (N items -> 1 hugepage unit) and the dispatch fan-out (1 batch
-> a GPU Trans Queue).

The latency decomposition is *cursor-based*: the trace always has
exactly one open segment, and ``mark(stage, kind)`` closes it at the
current sim time while opening the next.  Segments therefore tile
``[started_at, finished_at]`` with no gaps and no overlaps, which makes
the critical-path invariant — per-stage wait + service sums to the
measured end-to-end latency — true *by construction* rather than by
reconciliation (see :mod:`repro.tracing.critical_path`).

Retries get an *attempt epoch*: the reader bumps ``trace.attempt``
whenever it reissues an item (FPGA resubmission or CPU failover), and
each travelling :class:`~repro.fpga.DecodeCmd` carries the epoch it was
created under.  :func:`mark_cmd` only marks when the epochs match, so a
ghost cmd — one that was declared lost but is still crawling through
the mirror — can never scribble stages onto a trace that has moved on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = ["Segment", "RequestTrace", "mark_cmd", "trace_of"]

WAIT = "wait"
SERVICE = "service"

_ids = itertools.count(1)


@dataclass(frozen=True)
class Segment:
    """One closed interval of a trace: time spent at ``stage``, either
    queued (``kind == "wait"``) or being worked on (``"service"``)."""

    stage: str
    kind: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class RequestTrace:
    """The causal context of one request/item, propagated by reference."""

    __slots__ = ("trace_id", "started_at", "finished_at", "status",
                 "segments", "baggage", "attempt",
                 "_now", "_on_finish", "_stage", "_kind", "_open_at")

    def __init__(self, now_fn: Callable[[], float], stage: str,
                 kind: str = WAIT, baggage: Optional[dict] = None,
                 on_finish=None, trace_id: Optional[int] = None):
        self.trace_id = next(_ids) if trace_id is None else trace_id
        self._now = now_fn
        self._on_finish = on_finish
        now = now_fn()
        self.started_at = now
        self.finished_at: Optional[float] = None
        self.status: Optional[str] = None
        self.segments: list[Segment] = []
        self.baggage = baggage
        self.attempt = 0
        self._stage = stage
        self._kind = kind
        self._open_at = now

    # -- cursor ----------------------------------------------------------
    @property
    def current_stage(self) -> str:
        """Where the request is *right now* (or was when it finished)."""
        return self._stage

    @property
    def is_finished(self) -> bool:
        return self.finished_at is not None

    def _close_segment(self, now: float) -> None:
        if now > self._open_at:      # zero-length segments add nothing
            self.segments.append(
                Segment(self._stage, self._kind, self._open_at, now))

    def mark(self, stage: str, kind: str) -> None:
        """Advance the cursor: close the open segment at the current sim
        time and start accounting to ``(stage, kind)``.  No-op once the
        trace is finished (late duplicate FINISH records, ghost cmds)."""
        if self.finished_at is not None:
            return
        now = self._now()
        self._close_segment(now)
        self._stage = stage
        self._kind = kind
        self._open_at = now

    def finish(self, status: str = "ok") -> None:
        """Seal the trace: close the open segment, stamp the outcome and
        hand the trace to its tracker (flight recorder, attribution)."""
        if self.finished_at is not None:
            return
        now = self._now()
        self._close_segment(now)
        self.finished_at = now
        self.status = status
        if self._on_finish is not None:
            self._on_finish(self)

    def abort(self, status: str) -> None:
        """Finish with a non-``"ok"`` outcome (shed, quarantine, drop)."""
        self.finish(status=status)

    # -- reporting -------------------------------------------------------
    @property
    def e2e_latency(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def summary(self) -> dict:
        """A flat dict snapshot (flight recorder / post-mortem payload)."""
        return {
            "trace_id": self.trace_id,
            "status": self.status if self.status is not None else "active",
            "stage": self._stage,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "e2e_s": self.e2e_latency,
            "attempt": self.attempt,
            "baggage": self.baggage,
            "segments": [(s.stage, s.kind, s.start, s.end)
                         for s in self.segments],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = self.status if self.status is not None else "active"
        return (f"RequestTrace(id={self.trace_id}, {state}, "
                f"stage={self._stage!r}, segments={len(self.segments)})")


def trace_of(item) -> Optional[RequestTrace]:
    """The trace riding ``item``, looking through a WorkItem to its
    originating NetRequest when the item itself is untraced."""
    trace = getattr(item, "trace", None)
    if trace is not None:
        return trace
    request = getattr(item, "request", None)
    return getattr(request, "trace", None) if request is not None else None


def mark_cmd(cmd, stage: str, kind: str) -> None:
    """Mark the trace carried by a travelling cmd — but only when the
    cmd belongs to the trace's current attempt epoch.  A cmd that was
    declared lost (the reader retried or failed over) keeps moving
    through the mirror; its stale epoch makes this a no-op, so the
    retry's own marks are never interleaved with the ghost's.

    With tracing off (``cmd.trace is None``) this is one attribute test.
    """
    trace = getattr(cmd, "trace", None)
    if trace is None or trace.finished_at is not None:
        return
    if getattr(cmd, "trace_attempt", 0) != trace.attempt:
        return
    trace.mark(stage, kind)
