"""Causal per-request tracing, critical-path attribution and the
post-mortem flight recorder.

Layered over :class:`repro.sim.Tracer`: where the tracer records what
each *component* did (spans on tracks), this package records what each
*request* experienced — a :class:`RequestTrace` minted at ingest,
propagated through cmds and batches, decomposed into per-stage
wait/service time, and kept in a bounded :class:`FlightRecorder` so
stalls, sheds, quarantines and circuit-breaks come with evidence.
"""

from .config import TracingConfig
from .context import RequestTrace, Segment, mark_cmd, trace_of
from .critical_path import (CriticalPathAccumulator, TraceDecompositionError,
                            aggregate, decompose, dominant_segment, validate)
from .tracker import FlightRecorder, Postmortem, RequestTracker

__all__ = ["TracingConfig", "RequestTrace", "Segment", "mark_cmd",
           "trace_of", "RequestTracker", "FlightRecorder", "Postmortem",
           "CriticalPathAccumulator", "TraceDecompositionError",
           "decompose", "validate", "dominant_segment", "aggregate"]
