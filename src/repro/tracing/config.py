"""TracingConfig — the workflow-level switch for causal tracing.

Mirrors :class:`~repro.telemetry.TelemetryConfig`: a frozen dataclass a
workflow config carries.  ``None`` (or ``enabled=False``) constructs no
tracking objects at all, so the run is bit-identical to a build without
this subsystem — the guarantee the tier-1 observer-effect test pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["TracingConfig"]


@dataclass(frozen=True)
class TracingConfig:
    """Knobs for :class:`~repro.tracing.RequestTracker` wiring.

    ``flight_recorder_size`` bounds the ring of recently finished/
    aborted traces kept for post-mortems.  ``emit_spans`` also renders
    every finished trace as per-stage spans + flow events on the run's
    tracer (turn off to keep only the attribution aggregates on very
    long runs).  ``export_path`` writes the Chrome-trace JSON at the end
    of the workflow; ``max_events`` caps the tracer underneath it.
    """

    enabled: bool = True
    flight_recorder_size: int = 256
    emit_spans: bool = True
    max_events: int = 500_000
    export_path: Optional[str] = None
