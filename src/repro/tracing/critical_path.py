"""Critical-path analysis over finished request traces.

The cursor design of :class:`~repro.tracing.context.RequestTrace`
guarantees segments tile the trace's lifetime, so decomposing a
request's end-to-end latency into per-stage wait/service time is a
telescoping sum — :func:`validate` asserts the invariant anyway (to a
floating-point tolerance) because the whole point of the decomposition
is that nothing is unaccounted for.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .context import RequestTrace, Segment

__all__ = ["TraceDecompositionError", "decompose", "validate",
           "dominant_segment", "CriticalPathAccumulator", "aggregate"]

#: Acceptance tolerance on |sum(segments) - e2e latency|.  The residual
#: of the telescoping sum is a few ulps (~1e-14 s at simulated-seconds
#: magnitudes), so 1e-9 s leaves six orders of headroom while still
#: catching any real accounting gap.
TOLERANCE_S = 1e-9


class TraceDecompositionError(AssertionError):
    """A trace's segment sum disagrees with its measured e2e latency."""


def decompose(trace: RequestTrace) -> dict[tuple[str, str], float]:
    """Per-``(stage, kind)`` seconds of one finished trace."""
    if trace.finished_at is None:
        raise ValueError(f"trace {trace.trace_id} is still active")
    out: dict[tuple[str, str], float] = {}
    for seg in trace.segments:
        key = (seg.stage, seg.kind)
        out[key] = out.get(key, 0.0) + seg.duration
    return out


def validate(trace: RequestTrace, tol: float = TOLERANCE_S) -> float:
    """Assert the decomposition sums to the measured e2e latency; returns
    the (signed) residual.  Raises :class:`TraceDecompositionError` when
    the residual exceeds ``tol`` — an accounting hole, not jitter."""
    total = sum(seg.duration for seg in trace.segments)
    residual = total - (trace.finished_at - trace.started_at)
    if abs(residual) > tol:
        raise TraceDecompositionError(
            f"trace {trace.trace_id}: per-stage segments sum to {total!r}s "
            f"but e2e latency is {trace.e2e_latency!r}s "
            f"(residual {residual:.3e}s > tolerance {tol:.0e}s)")
    return residual


def dominant_segment(trace: RequestTrace) -> Optional[Segment]:
    """The single longest segment — where this request's latency went."""
    if not trace.segments:
        return None
    return max(trace.segments, key=lambda s: s.duration)


class CriticalPathAccumulator:
    """Streaming per-stage latency attribution over many traces.

    Every finished trace is validated (sum == e2e within ``tol``) and
    folded into a ``stage -> {wait, service}`` aggregate, so the report
    answers "across the run, where did request time go?" without
    retaining the traces themselves.  Violations are counted rather than
    raised here — the tracker must not crash a simulation mid-flight —
    and surface through :attr:`violations` / :attr:`worst_residual` for
    the tests that assert the invariant.
    """

    def __init__(self, tol: float = TOLERANCE_S):
        self.tol = tol
        self.traces = 0
        self.violations = 0
        self.worst_residual = 0.0
        self._totals: dict[tuple[str, str], float] = {}

    def add(self, trace: RequestTrace) -> None:
        self.traces += 1
        total = sum(seg.duration for seg in trace.segments)
        residual = total - (trace.finished_at - trace.started_at)
        if abs(residual) > abs(self.worst_residual):
            self.worst_residual = residual
        if abs(residual) > self.tol:
            self.violations += 1
        for seg in trace.segments:
            key = (seg.stage, seg.kind)
            self._totals[key] = self._totals.get(key, 0.0) + seg.duration

    def report(self) -> dict[str, dict[str, float]]:
        """``{stage: {"wait": s, "service": s}}``, stages in first-seen
        order — the run's aggregate latency attribution table."""
        out: dict[str, dict[str, float]] = {}
        for (stage, kind), seconds in self._totals.items():
            out.setdefault(stage, {"wait": 0.0, "service": 0.0})
            out[stage][kind] = out[stage].get(kind, 0.0) + seconds
        return out

    def to_payload(self) -> dict:
        """JSON-safe, ms-scaled attribution table (the shape the KPI
        layer embeds as a ``critical_path`` section)."""
        return {
            "traces": self.traces,
            "violations": self.violations,
            "stages": {stage: {"wait_ms": kinds["wait"] * 1e3,
                               "service_ms": kinds["service"] * 1e3}
                       for stage, kinds in self.report().items()},
        }

    def render(self) -> str:
        """Human-readable attribution table, hottest stage first."""
        rows = sorted(self.report().items(),
                      key=lambda kv: -sum(kv[1].values()))
        lines = [f"critical path over {self.traces} trace(s) "
                 f"({self.violations} decomposition violation(s)):"]
        for stage, kinds in rows:
            lines.append(f"  {stage:<24s} wait {kinds['wait'] * 1e3:9.3f} ms"
                         f"   service {kinds['service'] * 1e3:9.3f} ms")
        return "\n".join(lines)


def aggregate(traces: Iterable[RequestTrace],
              tol: float = TOLERANCE_S) -> CriticalPathAccumulator:
    """Fold an iterable of finished traces into one accumulator."""
    acc = CriticalPathAccumulator(tol=tol)
    for trace in traces:
        acc.add(trace)
    return acc
