"""RequestTracker — mints traces, keeps the flight recorder, explains
failures.

One tracker serves a whole pipeline run.  Components hold a reference
and call :meth:`RequestTracker.start` at ingest; everything downstream
propagates the :class:`~repro.tracing.context.RequestTrace` by
reference and marks it.  When a trace finishes (prediction made, item
trained) or aborts (shed, quarantined, dropped) it lands here: the
bounded :class:`FlightRecorder` ring keeps the most recent ones for
post-mortems, the critical-path accumulator folds in its latency
attribution, and — when a :class:`~repro.sim.Tracer` is attached — the
trace is emitted as per-stage spans plus a Chrome-trace *flow* pair
(``ph:"s"`` at ingest, ``ph:"f"`` at completion) tying the request's
journey together across tracks in Perfetto.

The tracker is deliberately inert with respect to the simulation: it
creates no processes, schedules no events and consumes no randomness,
so a run with tracing armed is event-for-event identical to one
without — only the Python-side bookkeeping differs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from .context import RequestTrace
from .critical_path import CriticalPathAccumulator

__all__ = ["Postmortem", "FlightRecorder", "RequestTracker"]


@dataclass(frozen=True)
class Postmortem:
    """One explained failure event: what happened, where, and the flight
    recorder's evidence — trace summaries whose ``stage`` field names
    the pipeline stage each request was blocked at."""

    when: float
    kind: str                      # "stall" | "shed:*" | "quarantine:*" | ...
    stage: Optional[str]           # the blocking stage, when known
    traces: tuple                  # trace summary dicts (see RequestTrace)

    def render(self) -> str:
        lines = [f"[t={self.when:.6f}s] post-mortem: {self.kind}"
                 + (f" at {self.stage}" if self.stage else "")]
        for t in self.traces:
            e2e = (f"{t['e2e_s'] * 1e3:.3f} ms" if t["e2e_s"] is not None
                   else f"{(self.when - t['started_at']) * 1e3:.3f} ms open")
            lines.append(f"  trace {t['trace_id']} ({t['status']}) "
                         f"blocked at {t['stage']}: {e2e}, "
                         f"attempt {t['attempt']}")
        if not self.traces:
            lines.append("  (no traces in flight)")
        return "\n".join(lines)


class FlightRecorder:
    """Bounded ring of recently completed/aborted traces."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self._ring: deque[RequestTrace] = deque(maxlen=capacity)

    def record(self, trace: RequestTrace) -> None:
        self._ring.append(trace)

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def traces(self) -> tuple[RequestTrace, ...]:
        return tuple(self._ring)

    def last(self, n: int) -> list[RequestTrace]:
        """The ``n`` most recent traces, newest last."""
        return list(self._ring)[-n:]

    def find(self, trace_id: int) -> Optional[RequestTrace]:
        """Dereference an exemplar trace_id to its full trace (None once
        the ring has evicted it)."""
        for trace in self._ring:
            if trace.trace_id == trace_id:
                return trace
        return None

    def snapshot(self) -> list[dict]:
        return [t.summary() for t in self._ring]


class RequestTracker:
    """Factory + sink for :class:`RequestTrace` over one pipeline run."""

    def __init__(self, env, tracer=None, flight_capacity: int = 256,
                 emit_spans: bool = True, max_postmortems: int = 200):
        self.env = env
        self.tracer = tracer
        self.emit_spans = emit_spans
        self.max_postmortems = max_postmortems
        self.active: dict[int, RequestTrace] = {}
        self.recorder = FlightRecorder(flight_capacity)
        self.attribution = CriticalPathAccumulator()
        self.postmortems: list[Postmortem] = []
        self.started = 0
        self.finished = 0
        self.aborted = 0
        self.batches = 0
        self._seen_abort_kinds: set[str] = set()

    # -- minting ---------------------------------------------------------
    def start(self, stage: str, kind: str = "wait",
              baggage: Optional[dict] = None) -> RequestTrace:
        """Mint a trace at ingest; the caller attaches it to the item."""
        trace = RequestTrace(self._now, stage, kind=kind, baggage=baggage,
                             on_finish=self._on_finished)
        self.started += 1
        self.active[trace.trace_id] = trace
        return trace

    def _now(self) -> float:
        return self.env.now

    # -- completion ------------------------------------------------------
    def _on_finished(self, trace: RequestTrace) -> None:
        self.active.pop(trace.trace_id, None)
        self.recorder.record(trace)
        self.attribution.add(trace)
        if trace.status == "ok":
            self.finished += 1
        else:
            self.aborted += 1
            # First sighting of each failure mode dumps the flight
            # recorder — one explainable post-mortem per abort kind, not
            # one per aborted request.
            if trace.status not in self._seen_abort_kinds:
                self._seen_abort_kinds.add(trace.status)
                self.postmortem(trace.status, stage=trace.current_stage,
                                traces=[trace])
        self._emit(trace)

    def _emit(self, trace: RequestTrace) -> None:
        if self.tracer is None or not self.emit_spans or not trace.segments:
            return
        for seg in trace.segments:
            self.tracer.span_at(seg.kind, f"req.{seg.stage}",
                                seg.start, seg.end, trace=trace.trace_id)
        fid = self.tracer.next_flow_id()
        name = f"req{trace.trace_id}"
        first, last = trace.segments[0], trace.segments[-1]
        self.tracer.flow(name, f"req.{first.stage}", "s", fid,
                         at=trace.started_at)
        self.tracer.flow(name, f"req.{last.stage}", "f", fid,
                         at=trace.finished_at)

    # -- fan-in ----------------------------------------------------------
    def batch_fanin(self, tag, traces, start: float, end: float) -> None:
        """Record N member traces converging into one batch: a span on
        the batch-assembly track carrying every member's trace_id, plus
        a flow link from each member's request track into the batch."""
        self.batches += 1
        if self.tracer is None or not self.emit_spans or not traces:
            return
        ids = [t.trace_id for t in traces]
        self.tracer.span_at(f"batch#{tag}", "batch.assembly", start, end,
                            members=ids, count=len(ids))
        for t in traces:
            fid = self.tracer.next_flow_id()
            name = f"batch#{tag}<-req{t.trace_id}"
            self.tracer.flow(name, f"req.{t.current_stage}", "s", fid, at=end)
            self.tracer.flow(name, "batch.assembly", "f", fid, at=end)

    # -- post-mortems ----------------------------------------------------
    def postmortem(self, kind: str, stage: Optional[str] = None,
                   traces=None, limit: int = 5) -> Optional[Postmortem]:
        """Dump the flight recorder for one failure event.

        ``traces=None`` picks the evidence automatically: the oldest
        still-active traces (the most stuck requests — their ``stage``
        names where they are blocked), falling back to the most recently
        completed ones when nothing is in flight.
        """
        if len(self.postmortems) >= self.max_postmortems:
            return None
        if traces is None:
            traces = sorted(self.active.values(),
                            key=lambda t: t.started_at)[:limit]
            if not traces:
                traces = self.recorder.last(limit)
        pm = Postmortem(when=self.env.now, kind=kind, stage=stage,
                        traces=tuple(t.summary() for t in traces))
        self.postmortems.append(pm)
        if self.tracer is not None:
            self.tracer.instant(f"postmortem:{kind}", track="tracing")
        return pm

    # -- reporting -------------------------------------------------------
    def stats(self) -> dict[str, int]:
        return {
            "started": self.started,
            "finished": self.finished,
            "aborted": self.aborted,
            "active": len(self.active),
            "batches": self.batches,
            "postmortems": len(self.postmortems),
            "decomposition_violations": self.attribution.violations,
        }

    def export_chrome(self, path: Optional[str] = None) -> Optional[str]:
        """Flush still-open tracer spans and write the Chrome-trace JSON
        (request spans + flows + any counter tracks merged in)."""
        if self.tracer is None:
            return None
        self.tracer.flush_open()
        return self.tracer.to_chrome_trace(path)
