"""Synthetic corpora matching the paper's datasets."""

from .datasets import (functional_jpeg_manifest, imagenet_like_manifest,
                       jpeg_size_sampler, mnist_like_manifest,
                       synthetic_photo)
from .transform import (IMAGENET_MEAN, TransformSpec, apply_transform,
                        mean_subtract, random_crop, random_mirror, to_chw)

__all__ = ["imagenet_like_manifest", "mnist_like_manifest",
           "functional_jpeg_manifest", "synthetic_photo",
           "jpeg_size_sampler", "TransformSpec", "apply_transform",
           "random_crop", "random_mirror", "mean_subtract", "to_chw",
           "IMAGENET_MEAN"]
