"""Synthetic experiment corpora.

The paper's corpora are MNIST (60k grayscale 28x28), ILSVRC12 (12.8M
color JPEGs) and an online stream of 500x375 color JPEGs from 5 clients.
None ship with this repository, so we synthesise statistically matching
stand-ins:

* *modeled* manifests carry per-file byte sizes (lognormal around the
  corpus mean) and pixel geometry — all the cost models need;
* *functional* manifests additionally carry **real JPEG payloads**
  produced by :mod:`repro.jpeg`'s encoder, so functional pipelines
  decode genuine bitstreams.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..jpeg import encode
from ..sim import SeedBank
from ..storage import FileManifest

__all__ = ["imagenet_like_manifest", "mnist_like_manifest",
           "functional_jpeg_manifest", "synthetic_photo", "jpeg_size_sampler"]

# Mean encoded size of a 500x375 web-quality color JPEG (~0.58 bpp).
IMAGENET_MEAN_BYTES = 110_000
IMAGENET_SIGMA = 0.35
MNIST_BYTES = 700  # one IDX-style record + framing


def jpeg_size_sampler(mean_bytes: float = IMAGENET_MEAN_BYTES,
                      sigma: float = IMAGENET_SIGMA):
    """Sampler factory for encoded-JPEG sizes (lognormal)."""

    def sample(rng: np.random.Generator) -> int:
        return max(2048, int(rng.lognormal(np.log(mean_bytes), sigma)))

    return sample


def imagenet_like_manifest(n: int, seeds: Optional[SeedBank] = None,
                           hw: tuple[int, int] = (375, 500),
                           num_classes: int = 1000) -> FileManifest:
    """ILSVRC12-shaped corpus: color JPEGs, lognormal sizes, 1000 labels."""
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = (seeds or SeedBank()).stream("imagenet-sizes")
    sampler = jpeg_size_sampler()
    manifest = FileManifest(name="ilsvrc12-like")
    for i in range(n):
        manifest.add(f"img_{i:08d}.jpg", size_bytes=sampler(rng),
                     height=hw[0], width=hw[1], channels=3,
                     label=int(rng.integers(num_classes)))
    return manifest


def mnist_like_manifest(n: int = 60_000,
                        seeds: Optional[SeedBank] = None) -> FileManifest:
    """MNIST-shaped corpus: 28x28 grayscale, 10 labels."""
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = (seeds or SeedBank()).stream("mnist-labels")
    manifest = FileManifest(name="mnist-like")
    for i in range(n):
        manifest.add(f"digit_{i:06d}", size_bytes=MNIST_BYTES,
                     height=28, width=28, channels=1,
                     label=int(rng.integers(10)))
    return manifest


def synthetic_photo(rng: np.random.Generator, h: int, w: int,
                    gray: bool = False) -> np.ndarray:
    """A photo-like test image: smooth gradients + blobs + noise, so it
    compresses like a natural image rather than like white noise."""
    yy, xx = np.mgrid[0:h, 0:w]
    base = (np.sin(xx / max(w, 1) * np.pi * rng.uniform(1, 3))
            + np.cos(yy / max(h, 1) * np.pi * rng.uniform(1, 3)))
    img = np.empty((h, w, 3))
    for c in range(3):
        phase = rng.uniform(0, 2 * np.pi)
        img[..., c] = 128 + 90 * np.sin(base + phase)
    img += rng.normal(0, 8, (h, w, 3))
    img = np.clip(img, 0, 255).astype(np.uint8)
    return img[..., 0] if gray else img


def functional_jpeg_manifest(n: int, h: int, w: int,
                             seeds: Optional[SeedBank] = None,
                             quality: int = 80,
                             gray: bool = False) -> FileManifest:
    """A small corpus of *real* JPEG bytes for functional-mode runs."""
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = (seeds or SeedBank()).stream("functional-images")
    manifest = FileManifest(name="functional")
    for i in range(n):
        img = synthetic_photo(rng, h, w, gray=gray)
        payload = encode(img, quality=quality,
                         subsampling="4:4:4" if gray else "4:2:0")
        manifest.add(f"real_{i:05d}.jpg", size_bytes=len(payload),
                     height=h, width=w, channels=1 if gray else 3,
                     label=int(rng.integers(10)), payload=payload)
    return manifest


# The standard functional corpus (perf-workload geometry: 240x320 q80).
# Encoding real JPEG bytes is the expensive part of functional-mode
# startup, so it is built once per process and shared; sweep worker
# pools materialize it in the parent *before* forking, making it free
# (copy-on-write) in every fork worker.
_DEFAULT_CORPUS: Optional[FileManifest] = None


def default_functional_corpus() -> FileManifest:
    """The memoized standard functional JPEG corpus.

    Deterministic (default SeedBank stream) and treated as immutable by
    callers — decode it, never mutate its payloads.
    """
    global _DEFAULT_CORPUS
    if _DEFAULT_CORPUS is None:
        _DEFAULT_CORPUS = functional_jpeg_manifest(n=8, h=240, w=320)
    return _DEFAULT_CORPUS
