"""Data-augmentation transforms (the preprocessing the paper leaves on
the GPU side: "we offload the decoding and the resizing to FPGAs and
leave the data augmentation to GPU", S3.1).

These are the functional counterparts of Caffe's DataTransformer:
random/center crop, horizontal mirror, mean subtraction, scale, and
HWC->CHW layout.  Deterministic given an RNG; vectorised over batches
where the operation allows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..jpeg.resize import center_crop

__all__ = ["TransformSpec", "random_crop", "random_mirror",
           "mean_subtract", "to_chw", "apply_transform", "IMAGENET_MEAN"]

# Per-channel BGR means of the Caffe ImageNet recipe, in RGB order.
IMAGENET_MEAN = np.array([123.68, 116.779, 103.939], dtype=np.float64)


@dataclass(frozen=True)
class TransformSpec:
    """One training-time augmentation policy."""

    crop_h: int
    crop_w: int
    mirror: bool = True
    mean: Optional[np.ndarray] = None
    scale: float = 1.0
    train: bool = True   # False -> deterministic center crop, no mirror


def random_crop(img: np.ndarray, crop_h: int, crop_w: int,
                rng: np.random.Generator) -> np.ndarray:
    """Uniformly random crop (training path)."""
    h, w = img.shape[:2]
    if crop_h > h or crop_w > w:
        raise ValueError(f"crop {crop_h}x{crop_w} exceeds image {h}x{w}")
    y0 = int(rng.integers(0, h - crop_h + 1))
    x0 = int(rng.integers(0, w - crop_w + 1))
    return img[y0:y0 + crop_h, x0:x0 + crop_w]


def random_mirror(img: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Horizontal flip with probability 1/2."""
    return img[:, ::-1] if rng.integers(2) else img


def mean_subtract(img: np.ndarray,
                  mean: Optional[np.ndarray] = None) -> np.ndarray:
    """Subtract per-channel mean; returns float64."""
    out = np.asarray(img, dtype=np.float64)
    if mean is None:
        mean = IMAGENET_MEAN if out.ndim == 3 else np.float64(33.3)
    mean = np.asarray(mean, dtype=np.float64)
    if out.ndim == 3 and mean.ndim == 1 and mean.shape[0] != out.shape[2]:
        raise ValueError(f"mean has {mean.shape[0]} channels, image "
                         f"{out.shape[2]}")
    return out - mean


def to_chw(img: np.ndarray) -> np.ndarray:
    """HWC -> CHW (the layout DL frameworks feed to conv kernels)."""
    if img.ndim == 2:
        return img[np.newaxis]
    if img.ndim != 3:
        raise ValueError(f"expected 2-D or 3-D image, got {img.shape}")
    return np.ascontiguousarray(img.transpose(2, 0, 1))


def apply_transform(img: np.ndarray, spec: TransformSpec,
                    rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Full Caffe-style pipeline: crop -> mirror -> mean/scale -> CHW."""
    if spec.train:
        if rng is None:
            raise ValueError("training transforms need an RNG")
        out = random_crop(img, spec.crop_h, spec.crop_w, rng)
        if spec.mirror:
            out = random_mirror(out, rng)
    else:
        out = center_crop(img, spec.crop_h, spec.crop_w)
    out = mean_subtract(out, spec.mean)
    if spec.scale != 1.0:
        out = out * spec.scale
    return to_chw(out)
