"""HealthView — per-host health derived from the signals hosts already
emit, fed back into routing.

No new probes: health is *derived* from the Supervisor's watchdog
stalls, the circuit breaker's state, and the windowed shed fraction —
the same counters the single-host experiments report.  States:

``healthy``    routable, nothing notable.
``degraded``   routable but impaired: breaker open (FPGA path down,
               CPU failover carrying the traffic) or shedding more
               than ``shed_frac_degraded`` of its intake.  Degraded
               hosts stay in the candidate set — a load-aware policy
               routes *around* them by observing their load, which is
               precisely the round-robin vs least-loaded A/B.
``draining``   autoscaler is retiring it; not routable, in-flight work
               finishes.
``dead``       the host crashed (chaos), or the watchdog reported a
               stall and the host completed nothing last window while
               still holding work; not routable.
``ejected``    balancer-side outlier ejection (PR 7): the host's
               *client-observed* success rate or latency EWMA went bad
               for several consecutive windows.  This is the only
               signal that catches gray failures (``host_hang``,
               ``host_slow``) — from the inside such a host looks busy
               and healthy, so supervisor-derived states never fire.
               Not routable; returns to probation after a cooldown
               (hysteresis: one bad window never ejects, and no host
               is ejected forever).

Transitions into DEAD or EJECTED notify the balancer
(``on_host_death``) so still-within-deadline requests stranded on the
host are re-dispatched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim import Environment

__all__ = ["HEALTHY", "DEGRADED", "DRAINING", "DEAD", "EJECTED",
           "HostHealth", "OutlierConfig", "HealthView"]

HEALTHY = "healthy"
DEGRADED = "degraded"
DRAINING = "draining"
DEAD = "dead"
EJECTED = "ejected"

ROUTABLE = (HEALTHY, DEGRADED)


@dataclass
class HostHealth:
    state: str
    since: float
    reason: str = ""


@dataclass(frozen=True)
class OutlierConfig:
    """Knobs for balancer-side outlier ejection.

    EWMAs are updated once per evaluation window from the deltas of the
    flight table's per-host client stats; a window with fewer than
    ``min_attempts`` settled attempts leaves the EWMAs untouched (no
    evidence, no movement).  A host is ejected only after
    ``consecutive_bad`` bad windows in a row, never beyond
    ``max_eject_frac`` of the fleet at once, and always returns to
    probation after ``cooldown_s`` with its EWMAs reset — it must
    re-offend on fresh evidence to be ejected again.
    """

    min_attempts: int = 8
    success_floor: float = 0.5
    latency_factor: float = 2.0          # x deadline_s
    deadline_s: Optional[float] = None   # None disables the latency gate
    alpha: float = 0.5                   # EWMA smoothing
    consecutive_bad: int = 2
    cooldown_s: float = 0.25
    max_eject_frac: float = 0.5

    def __post_init__(self):
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if self.consecutive_bad < 1:
            raise ValueError("consecutive_bad must be >= 1")
        if not 0.0 < self.max_eject_frac <= 1.0:
            raise ValueError("max_eject_frac must be in (0, 1]")
        if self.cooldown_s <= 0:
            raise ValueError("cooldown_s must be positive")


class _EjectionTracker:
    """Per-host EWMA state for the outlier detector."""

    __slots__ = ("succ_ewma", "lat_ewma", "bad_streak", "ejected_until",
                 "ok_mark", "fail_mark", "lat_mark")

    def __init__(self):
        # EWMAs seed from the first evidence window (a fixed optimistic
        # prior would stretch detection by however many windows it
        # takes to wash the prior out).
        self.succ_ewma = None
        self.lat_ewma = None
        self.bad_streak = 0
        self.ejected_until = 0.0
        self.ok_mark = 0
        self.fail_mark = 0
        self.lat_mark = 0.0

    def reset_evidence(self):
        self.succ_ewma = None
        self.lat_ewma = None
        self.bad_streak = 0


class HealthView:
    """Periodically classifies every fleet host; the LoadBalancer asks
    it for the routable candidate set."""

    def __init__(self, env: Environment, balancer,
                 eval_period_s: float = 0.05,
                 shed_frac_degraded: float = 0.05,
                 outlier: Optional[OutlierConfig] = None):
        if eval_period_s <= 0:
            raise ValueError("eval_period_s must be positive")
        self.env = env
        self.balancer = balancer
        self.eval_period_s = eval_period_s
        self.shed_frac_degraded = shed_frac_degraded
        self.outlier = outlier
        self.status: dict[str, HostHealth] = {}
        self.transitions: list[tuple[float, str, str, str, str]] = []
        # host.name -> (handled, shed, completed, stalls) at last update
        self._marks: dict[str, tuple[int, int, int, int]] = {}
        self._ej: dict[str, _EjectionTracker] = {}
        self.running = False

    # -- outlier ejection --------------------------------------------------
    def _ejected_count(self, now: float) -> int:
        return sum(1 for t in self._ej.values() if t.ejected_until > now)

    def _eject_check(self, host, now: float) -> Optional[str]:
        """Returns an ejection reason while the host should be EJECTED,
        else None.  Pure arithmetic over client-stat deltas."""
        cfg = self.outlier
        if cfg is None:
            return None
        stats = self.balancer.client_stats()
        if stats is None:
            return None
        tracker = self._ej.get(host.name)
        if tracker is None:
            tracker = self._ej[host.name] = _EjectionTracker()
        if tracker.ejected_until > now:
            return "ejected (cooldown)"
        if tracker.ejected_until > 0 and tracker.ejected_until <= now:
            # Cooldown just expired: probation — fresh evidence only.
            tracker.ejected_until = 0.0
            tracker.reset_evidence()
        stat = stats.get(host.name)
        if stat is None:
            return None
        d_ok = stat["ok"] - tracker.ok_mark
        d_fail = stat["fail"] - tracker.fail_mark
        d_lat = stat["lat_sum"] - tracker.lat_mark
        tracker.ok_mark, tracker.fail_mark = stat["ok"], stat["fail"]
        tracker.lat_mark = stat["lat_sum"]
        n = d_ok + d_fail
        if n < cfg.min_attempts:
            return None                 # not enough evidence this window
        alpha = cfg.alpha
        if tracker.succ_ewma is None:
            tracker.succ_ewma = d_ok / n
        else:
            tracker.succ_ewma += alpha * (d_ok / n - tracker.succ_ewma)
        if d_ok > 0:
            mean = d_lat / d_ok
            if tracker.lat_ewma is None:
                tracker.lat_ewma = mean
            else:
                tracker.lat_ewma += alpha * (mean - tracker.lat_ewma)
        bad = tracker.succ_ewma < cfg.success_floor
        reason = (f"success EWMA {tracker.succ_ewma:.2f} "
                  f"< {cfg.success_floor}")
        if not bad and cfg.deadline_s is not None \
                and tracker.lat_ewma is not None \
                and tracker.lat_ewma > cfg.latency_factor * cfg.deadline_s:
            bad = True
            reason = (f"latency EWMA {tracker.lat_ewma * 1e3:.1f}ms > "
                      f"{cfg.latency_factor:g}x deadline")
        if not bad:
            tracker.bad_streak = 0
            return None
        tracker.bad_streak += 1
        if tracker.bad_streak < cfg.consecutive_bad:
            return None                 # hysteresis: not yet
        cap = max(1, int(cfg.max_eject_frac * len(self.balancer.hosts)))
        if self._ejected_count(now) >= cap:
            return None                 # never eject past the cap
        tracker.ejected_until = now + cfg.cooldown_s
        tracker.bad_streak = 0
        return f"outlier ejected: {reason}"

    # -- classification ---------------------------------------------------
    def _classify(self, host) -> tuple[str, str]:
        handled = int(host.handled.total)
        shed = host.shed_total()
        completed = int(host.completed.total)
        stalls = host.stalls_detected()
        h0, s0, c0, st0 = self._marks.get(host.name, (0, 0, 0, 0))
        self._marks[host.name] = (handled, shed, completed, stalls)
        d_handled = handled - h0
        d_shed = shed - s0
        d_completed = completed - c0
        if getattr(host, "crashed", False):
            return DEAD, "host crashed"
        if host.draining:
            return DRAINING, "draining"
        if stalls > st0 and d_completed == 0 and d_handled > 0:
            return DEAD, "watchdog stall with zero completions"
        eject_reason = self._eject_check(host, self.env.now)
        if eject_reason is not None:
            return EJECTED, eject_reason
        if host.breaker_open():
            return DEGRADED, "circuit breaker open (FPGA path down)"
        if d_handled > 0 and d_shed / d_handled > self.shed_frac_degraded:
            return DEGRADED, (f"shedding {d_shed}/{d_handled} of intake")
        return HEALTHY, ""

    def update(self) -> None:
        """One evaluation pass over every fleet host."""
        now = self.env.now
        for host in self.balancer.hosts:
            state, reason = self._classify(host)
            prev = self.status.get(host.name)
            if prev is None:
                self.status[host.name] = HostHealth(state, now, reason)
            elif prev.state != state:
                self.transitions.append(
                    (now, host.name, prev.state, state, reason))
                self.status[host.name] = HostHealth(state, now, reason)
                if state in (DEAD, EJECTED):
                    # Stranded requests won't finish here: hand them
                    # back to the balancer for re-dispatch.
                    self.balancer.on_host_death(host)

    def state_of(self, host) -> str:
        health = self.status.get(host.name)
        return health.state if health is not None else HEALTHY

    def candidates(self) -> list:
        """Routable hosts, in stable fleet order."""
        return [h for h in self.balancer.hosts
                if h.accepting and self.state_of(h) in ROUTABLE]

    # -- lifecycle --------------------------------------------------------
    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self.update()
        self.env.process(self._loop(), name="healthview")

    def stop(self) -> None:
        self.running = False

    def _loop(self):
        while self.running:
            yield self.env.timeout(self.eval_period_s)
            self.update()

    def render(self) -> str:
        lines = [f"health @ t={self.env.now:.3f}s"]
        for name, health in sorted(self.status.items()):
            line = f"  {name}: {health.state} (since {health.since:.3f}s)"
            if health.reason:
                line += f" — {health.reason}"
            lines.append(line)
        return "\n".join(lines)
