"""HealthView — per-host health derived from the signals hosts already
emit, fed back into routing.

No new probes: health is *derived* from the Supervisor's watchdog
stalls, the circuit breaker's state, and the windowed shed fraction —
the same counters the single-host experiments report.  States:

``healthy``    routable, nothing notable.
``degraded``   routable but impaired: breaker open (FPGA path down,
               CPU failover carrying the traffic) or shedding more
               than ``shed_frac_degraded`` of its intake.  Degraded
               hosts stay in the candidate set — a load-aware policy
               routes *around* them by observing their load, which is
               precisely the round-robin vs least-loaded A/B.
``draining``   autoscaler is retiring it; not routable, in-flight work
               finishes.
``dead``       watchdog reported a stall and the host completed
               nothing last window while still holding work; not
               routable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim import Environment

__all__ = ["HEALTHY", "DEGRADED", "DRAINING", "DEAD", "HostHealth",
           "HealthView"]

HEALTHY = "healthy"
DEGRADED = "degraded"
DRAINING = "draining"
DEAD = "dead"

ROUTABLE = (HEALTHY, DEGRADED)


@dataclass
class HostHealth:
    state: str
    since: float
    reason: str = ""


class HealthView:
    """Periodically classifies every fleet host; the LoadBalancer asks
    it for the routable candidate set."""

    def __init__(self, env: Environment, balancer,
                 eval_period_s: float = 0.05,
                 shed_frac_degraded: float = 0.05):
        if eval_period_s <= 0:
            raise ValueError("eval_period_s must be positive")
        self.env = env
        self.balancer = balancer
        self.eval_period_s = eval_period_s
        self.shed_frac_degraded = shed_frac_degraded
        self.status: dict[str, HostHealth] = {}
        self.transitions: list[tuple[float, str, str, str, str]] = []
        # host.name -> (handled, shed, completed, stalls) at last update
        self._marks: dict[str, tuple[int, int, int, int]] = {}
        self.running = False

    # -- classification ---------------------------------------------------
    def _classify(self, host) -> tuple[str, str]:
        handled = int(host.handled.total)
        shed = host.shed_total()
        completed = int(host.completed.total)
        stalls = host.stalls_detected()
        h0, s0, c0, st0 = self._marks.get(host.name, (0, 0, 0, 0))
        self._marks[host.name] = (handled, shed, completed, stalls)
        d_handled = handled - h0
        d_shed = shed - s0
        d_completed = completed - c0
        if host.draining:
            return DRAINING, "draining"
        if stalls > st0 and d_completed == 0 and d_handled > 0:
            return DEAD, "watchdog stall with zero completions"
        if host.breaker_open():
            return DEGRADED, "circuit breaker open (FPGA path down)"
        if d_handled > 0 and d_shed / d_handled > self.shed_frac_degraded:
            return DEGRADED, (f"shedding {d_shed}/{d_handled} of intake")
        return HEALTHY, ""

    def update(self) -> None:
        """One evaluation pass over every fleet host."""
        now = self.env.now
        for host in self.balancer.hosts:
            state, reason = self._classify(host)
            prev = self.status.get(host.name)
            if prev is None:
                self.status[host.name] = HostHealth(state, now, reason)
            elif prev.state != state:
                self.transitions.append(
                    (now, host.name, prev.state, state, reason))
                self.status[host.name] = HostHealth(state, now, reason)

    def state_of(self, host) -> str:
        health = self.status.get(host.name)
        return health.state if health is not None else HEALTHY

    def candidates(self) -> list:
        """Routable hosts, in stable fleet order."""
        return [h for h in self.balancer.hosts
                if h.accepting and self.state_of(h) in ROUTABLE]

    # -- lifecycle --------------------------------------------------------
    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self.update()
        self.env.process(self._loop(), name="healthview")

    def stop(self) -> None:
        self.running = False

    def _loop(self):
        while self.running:
            yield self.env.timeout(self.eval_period_s)
            self.update()

    def render(self) -> str:
        lines = [f"health @ t={self.env.now:.3f}s"]
        for name, health in sorted(self.status.items()):
            line = f"  {name}: {health.state} (since {health.since:.3f}s)"
            if health.reason:
                line += f" — {health.reason}"
            lines.append(line)
        return "\n".join(lines)
