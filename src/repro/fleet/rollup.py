"""Fleet-level telemetry rollup.

One payload, two granularities: per-host rows (each host's own
LatencyRecorder percentiles, counters, conservation verdict) and a
fleet aggregate whose percentiles come from *merging* the per-host
recorders — ``LatencyRecorder.merge()`` combines the reservoirs with
per-sample provenance, so the fleet p99 is computed over the union of
samples, never by averaging per-host percentiles (percentiles do not
average).

When the balancer runs the flight path (chaos/recovery armed), host
recorders describe the *server-side* view — they include duplicate
attempts and completions that chaos later swallowed — so the
client-perceived figures switch to the flight table's ledger: one
sample per request (the winning copy's latency, or the deadline for
every expired/shed/failed/rejected flight), which is the only
accounting under which hedged and re-dispatched duplicates don't
double-count.  The payload also grows ``lb`` (retry/hedge/budget
meters) and ``flights`` (the duplicate-accounting conservation ledger,
stranded-reclaim included) sections.
"""

from __future__ import annotations

from typing import Optional

from ..sim import LatencyRecorder

__all__ = ["fleet_rollup", "render_rollup"]


def _ms(seconds: float) -> float:
    return seconds * 1e3


def fleet_rollup(hosts, balancer=None, source=None,
                 health=None, registry=None,
                 deadline_s: Optional[float] = None,
                 chaos=None) -> dict:
    """Merge per-host telemetry into one fleet payload.

    ``hosts`` is the full fleet (drained hosts included — their history
    is part of the run).  Optional collaborators contribute their own
    sections: balancer dispatch counts, source outcome counts, health
    states, and a metrics-registry snapshot.

    With ``deadline_s`` set, the fleet section also reports
    **client-perceived** percentiles: every failed/shed/rejected
    request is counted as one sample at the deadline (a lower bound on
    what its client observed).  Served-only percentiles flatter a
    policy that black-holes traffic — a host that sheds 30% of its
    share returns no slow samples at all — so SLO comparisons between
    routing policies must use the client-perceived figures.
    """
    merged = LatencyRecorder(name="fleet.turnaround")
    per_host = []
    for host in hosts:
        rec = host.turnaround
        merged.merge(rec)
        per_host.append({
            "host": host.name,
            "accepting": host.accepting,
            "draining": host.draining,
            "handled": int(host.handled.total),
            "completed": int(host.completed.total),
            "failed": int(host.failed.total),
            "in_flight": host.in_flight,
            "predictions": host.predictions(),
            "shed": host.shed_breakdown(),
            "breaker_open": host.breaker_open(),
            "latency_count": rec.count,
            "p50_ms": _ms(rec.p50()) if rec.count else None,
            "p99_ms": _ms(rec.p99()) if rec.count else None,
            "mean_ms": _ms(rec.mean()) if rec.count else None,
            "conserved": host.conservation_ok(),
        })
    handled = sum(row["handled"] for row in per_host)
    completed = sum(row["completed"] for row in per_host)
    failed = sum(row["failed"] for row in per_host)
    shed = sum(sum(row["shed"].values()) for row in per_host)
    # Derived decision-layer fields, computed once here so every
    # consumer (KPI layer, experiments, dashboards) reads the same
    # numbers instead of re-deriving them from raw counters.  Goodput
    # integrates over the whole run (the simulation clock at rollup
    # time); shed/failure percentages are fractions of handled work.
    elapsed = hosts[0].env.now if hosts else 0.0
    fleet = {
        "hosts": len(hosts),
        "active_hosts": sum(1 for h in hosts if h.accepting),
        "handled": handled,
        "completed": completed,
        "failed": failed,
        "predictions": sum(row["predictions"] for row in per_host),
        "shed": shed,
        "goodput_per_s": completed / elapsed if elapsed > 0 else None,
        "shed_pct": 100.0 * shed / handled if handled else 0.0,
        "failure_pct": 100.0 * failed / handled if handled else 0.0,
        "latency_count": merged.count,
        "p50_ms": _ms(merged.p50()) if merged.count else None,
        "p99_ms": _ms(merged.p99()) if merged.count else None,
        "p999_ms": (_ms(merged.percentile(99.9))
                    if merged.count else None),
        "mean_ms": _ms(merged.mean()) if merged.count else None,
        "conserved": all(row["conserved"] for row in per_host),
    }
    flights = getattr(balancer, "flights", None) \
        if balancer is not None else None
    if deadline_s is not None:
        client = LatencyRecorder(name="fleet.client")
        if flights is not None:
            # Flight-level: exactly one sample per request, duplicates
            # already collapsed by first-completion-wins.
            client.merge(flights.client_latency)
            failures = (int(flights.expired.total)
                        + int(flights.shed.total)
                        + int(flights.failed.total)
                        + int(flights.rejected.total))
        else:
            client.merge(merged)
            failures = fleet["failed"]
            if balancer is not None:
                failures += int(balancer.rejected.total)
        for _ in range(failures):
            client.record(deadline_s)
        fleet["client_p50_ms"] = _ms(client.p50()) if client.count else None
        fleet["client_p99_ms"] = _ms(client.p99()) if client.count else None
        fleet["client_failures"] = failures
    payload = {"per_host": per_host, "fleet": fleet}
    if balancer is not None:
        payload["balancer"] = {
            "dispatched": int(balancer.dispatched.total),
            "rejected": int(balancer.rejected.total),
            "per_host": {name: int(c.total)
                         for name, c in balancer.per_host.items()},
            "shares": balancer.dispatch_shares(),
            "conserved": balancer.conservation_ok(),
        }
        if hasattr(balancer, "retries"):
            payload["lb"] = {
                "retries": int(balancer.retries.total),
                "budget_exhausted": int(balancer.budget_exhausted.total),
                "budget_tokens_left": round(balancer.budget.available(), 3),
                "link_drops": int(balancer.link_drops.total),
                "hedges": int(balancer.hedges.total),
                "redispatches": int(balancer.redispatches.total),
            }
        if flights is not None:
            payload["flights"] = flights.conservation()
    if source is not None:
        payload["source"] = {
            "sent": int(source.sent.total),
            "completed": int(source.completed.total),
            "expired": int(source.expired.total),
            "failed": int(source.failed.total),
            "conserved": source.conservation_ok(),
        }
    if chaos is not None and chaos.active:
        payload["chaos"] = {
            "injected": int(chaos.injector.injected.total),
            "by_kind": {kind: int(counter.total)
                        for kind, counter in
                        chaos.injector.by_kind.items()},
            "host_crashes": int(chaos.crashes.total),
            "crash_log": [[t, name, kind]
                          for t, name, kind in chaos.crashed_log],
        }
    if health is not None:
        payload["health"] = {
            name: status.state for name, status in health.status.items()}
        payload["health_transitions"] = [
            list(t) for t in health.transitions]
    if registry is not None:
        payload["metrics"] = registry.snapshot()
    return payload


def render_rollup(payload: dict) -> str:
    """Human-readable two-level summary of a rollup payload."""
    lines = []
    for row in payload["per_host"]:
        p50 = f"{row['p50_ms']:.1f}" if row["p50_ms"] is not None else "-"
        p99 = f"{row['p99_ms']:.1f}" if row["p99_ms"] is not None else "-"
        state = "draining" if row["draining"] else (
            "active" if row["accepting"] else "stopped")
        lines.append(
            f"  {row['host']}: {state}, completed {row['completed']}, "
            f"shed {sum(row['shed'].values())}, p50 {p50} ms, "
            f"p99 {p99} ms")
    fleet = payload["fleet"]
    p50 = f"{fleet['p50_ms']:.1f}" if fleet["p50_ms"] is not None else "-"
    p99 = f"{fleet['p99_ms']:.1f}" if fleet["p99_ms"] is not None else "-"
    goodput = (f"{fleet['goodput_per_s']:,.0f}/s"
               if fleet.get("goodput_per_s") is not None else "-")
    lines.append(
        f"  fleet ({fleet['active_hosts']}/{fleet['hosts']} active): "
        f"completed {fleet['completed']} (goodput {goodput}), "
        f"shed {fleet['shed']} ({fleet['shed_pct']:.1f}%), "
        f"p50 {p50} ms, p99 {p99} ms, "
        f"conserved {'yes' if fleet['conserved'] else 'NO'}")
    return "\n".join(lines)
