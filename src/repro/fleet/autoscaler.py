"""Autoscaler — add and drain hosts from fleet telemetry.

Signals (evaluated every ``eval_period_s`` over the *active* fleet):

* **backlog seconds** — total in-flight work normalized by aggregate
  capacity: how far behind the fleet is;
* **shed fraction** — the slice of last-window intake that deadline
  shedding discarded;
* **p99 burn** — last-window p99 turnaround against the request
  deadline (when one is configured).

Scale-up fires after ``sustain_up`` consecutive hot windows (and out of
cool-down): the ``host_factory`` builds a fresh host, it starts, and
the LoadBalancer routes to it from the next request on.  Scale-down
fires after ``sustain_down`` consecutive cold windows: the newest
active host is put into ``draining`` — no new work, in-flight requests
finish — mirroring how real groups retire instances.  Both directions
respect independent cool-downs so one burst cannot thrash the fleet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..sim import Counter, Environment, LatencyRecorder

__all__ = ["AutoscalerConfig", "Autoscaler"]


@dataclass(frozen=True)
class AutoscalerConfig:
    eval_period_s: float = 0.05
    # scale-up triggers (any one)
    backlog_up_s: float = 0.02       # queued seconds of work per capacity
    shed_frac_up: float = 0.02       # fraction of intake shed last window
    p99_burn_up: float = 0.8         # window p99 / deadline
    sustain_up: int = 2              # consecutive hot windows required
    cooldown_up_s: float = 0.15
    # scale-down triggers (all)
    backlog_down_s: float = 0.005
    util_down: float = 0.6           # fleet goodput/capacity with one
                                     # host fewer must stay under this
    sustain_down: int = 6
    cooldown_down_s: float = 0.4
    min_hosts: int = 1
    max_hosts: int = 8

    def __post_init__(self):
        if self.eval_period_s <= 0:
            raise ValueError("eval_period_s must be positive")
        if self.min_hosts < 1 or self.max_hosts < self.min_hosts:
            raise ValueError("need 1 <= min_hosts <= max_hosts")


class Autoscaler:
    """Drives fleet size from the balancer's aggregate telemetry."""

    def __init__(self, env: Environment, balancer,
                 host_factory: Callable[[int], object],
                 config: Optional[AutoscalerConfig] = None,
                 deadline_s: Optional[float] = None,
                 name: str = "autoscaler"):
        self.env = env
        self.balancer = balancer
        self.host_factory = host_factory
        self.config = config if config is not None else AutoscalerConfig()
        self.deadline_s = deadline_s
        self.name = name
        self.scale_ups = Counter(env, name=f"{name}.ups")
        self.scale_downs = Counter(env, name=f"{name}.downs")
        # (t, "add" | "drain", host_name, reason)
        self.events: list[tuple[float, str, str, str]] = []
        self._hot = 0
        self._cold = 0
        self._last_up_t = -float("inf")
        self._last_down_t = -float("inf")
        self._shed_marks: dict[str, int] = {}
        self._handled_marks: dict[str, int] = {}
        self._completed_marks: dict[str, int] = {}
        self.running = False

    # -- lifecycle --------------------------------------------------------
    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self.env.process(self._loop(), name=self.name)

    def stop(self) -> None:
        self.running = False

    def _loop(self):
        while self.running:
            yield self.env.timeout(self.config.eval_period_s)
            self._evaluate()

    # -- signal evaluation ------------------------------------------------
    def _window(self, active) -> dict[str, float]:
        """Aggregate last-window signals over the active hosts."""
        capacity = sum(h.capacity_estimate() for h in active)
        in_flight = sum(h.in_flight for h in active)
        d_shed = d_handled = d_completed = 0
        merged = LatencyRecorder(name=f"{self.name}.window")
        for host in active:
            shed, handled = host.shed_total(), int(host.handled.total)
            completed = int(host.completed.total)
            d_shed += shed - self._shed_marks.get(host.name, 0)
            d_handled += handled - self._handled_marks.get(host.name, 0)
            d_completed += (completed
                            - self._completed_marks.get(host.name, 0))
            self._shed_marks[host.name] = shed
            self._handled_marks[host.name] = handled
            self._completed_marks[host.name] = completed
            merged.merge(host.take_window())
        goodput = d_completed / self.config.eval_period_s
        return {
            "capacity": capacity,
            "backlog_s": in_flight / max(capacity, 1e-9),
            "shed_frac": d_shed / max(d_handled, 1),
            "p99_s": merged.p99() if merged.count else 0.0,
            "goodput": goodput,
        }

    def _evaluate(self) -> None:
        cfg = self.config
        active = self.balancer.active_hosts()
        if not active:
            return
        sig = self._window(active)
        hot = (sig["backlog_s"] > cfg.backlog_up_s
               or sig["shed_frac"] > cfg.shed_frac_up
               or (self.deadline_s is not None
                   and sig["p99_s"] > cfg.p99_burn_up * self.deadline_s))
        smaller_cap = sig["capacity"] * (len(active) - 1) / len(active)
        cold = (not hot
                and sig["backlog_s"] < cfg.backlog_down_s
                and sig["shed_frac"] == 0.0
                and len(active) > 1
                and sig["goodput"] < cfg.util_down * smaller_cap)
        self._hot = self._hot + 1 if hot else 0
        self._cold = self._cold + 1 if cold else 0
        now = self.env.now
        if (self._hot >= cfg.sustain_up
                and len(active) < cfg.max_hosts
                and now - self._last_up_t >= cfg.cooldown_up_s):
            self._scale_up(sig)
        elif (self._cold >= cfg.sustain_down
              and len(active) > cfg.min_hosts
              and now - self._last_down_t >= cfg.cooldown_down_s):
            self._scale_down(active, sig)

    def _scale_up(self, sig: dict) -> None:
        host = self.host_factory(len(self.balancer.hosts))
        host.start()
        self.balancer.add_host(host)
        self.scale_ups.add()
        self._hot = 0
        self._last_up_t = self.env.now
        reason = (f"backlog {sig['backlog_s'] * 1e3:.1f} ms/cap, "
                  f"shed {sig['shed_frac']:.1%}, "
                  f"p99 {sig['p99_s'] * 1e3:.1f} ms")
        self.events.append((self.env.now, "add", host.name, reason))

    def _scale_down(self, active, sig: dict) -> None:
        host = active[-1]          # retire the newest active host
        host.drain()
        self.scale_downs.add()
        self._cold = 0
        self._last_down_t = self.env.now
        reason = (f"backlog {sig['backlog_s'] * 1e3:.1f} ms/cap, "
                  f"goodput {sig['goodput']:.0f}/s of "
                  f"{sig['capacity']:.0f}/s capacity")
        self.events.append((self.env.now, "drain", host.name, reason))

    # -- reporting --------------------------------------------------------
    def additions(self) -> list[tuple[float, str, str, str]]:
        return [e for e in self.events if e[1] == "add"]

    def drains(self) -> list[tuple[float, str, str, str]]:
        return [e for e in self.events if e[1] == "drain"]
