"""Routing policies for the fleet front end.

A policy picks one host out of the routable candidates for each
request.  Policies are deliberately tiny and deterministic: given the
same candidate sequence and the same (seeded) RNG they choose the same
hosts, so a fleet run is bit-identical across reruns — the property the
determinism tests pin.

Candidates arrive in stable fleet order (LoadBalancer insertion order,
health-filtered), so cursor- and index-based tie-breaks are stable too.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from typing import Optional, Sequence

import numpy as np

__all__ = ["RoutingPolicy", "RoundRobin", "LeastLoaded", "ConsistentHash",
           "PowerOfTwoChoices", "ROUTING_POLICIES", "make_policy"]


class RoutingPolicy:
    """Chooses a host for one request; stateful across calls."""

    name = "abstract"

    def choose(self, candidates: Sequence, request):
        raise NotImplementedError


class RoundRobin(RoutingPolicy):
    """Cycle through the candidates, blind to load and client."""

    name = "round-robin"

    def __init__(self):
        self._cursor = 0

    def choose(self, candidates: Sequence, request):
        host = candidates[self._cursor % len(candidates)]
        self._cursor += 1
        return host


class LeastLoaded(RoutingPolicy):
    """Send to the host with the fewest seconds of queued work
    (in-flight normalized by capacity), index tie-break."""

    name = "least-loaded"

    def choose(self, candidates: Sequence, request):
        return min(enumerate(candidates),
                   key=lambda pair: (pair[1].load(), pair[0]))[1]


class ConsistentHash(RoutingPolicy):
    """Client-affine routing on a hash ring.

    Each host contributes ``replicas`` virtual points hashed from its
    (stable) name; a request lands on the first point clockwise of its
    client id.  Adding or removing one host only remaps the keys that
    pointed at it — the property that keeps per-client caches warm
    across fleet resizes.
    """

    name = "consistent-hash"

    def __init__(self, replicas: int = 64):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._ring_key: Optional[tuple] = None
        self._points: list[int] = []
        self._owners: list = []

    def _rebuild(self, candidates: Sequence) -> None:
        points = []
        for host in candidates:
            for r in range(self.replicas):
                point = zlib.crc32(f"{host.name}#{r}".encode())
                points.append((point, host.name, host))
        points.sort(key=lambda p: (p[0], p[1]))
        self._points = [p[0] for p in points]
        self._owners = [p[2] for p in points]

    def choose(self, candidates: Sequence, request):
        key = tuple(h.name for h in candidates)
        if key != self._ring_key:
            self._rebuild(candidates)
            self._ring_key = key
        slot = zlib.crc32(str(request.client_id).encode())
        i = bisect_right(self._points, slot) % len(self._points)
        return self._owners[i]


class PowerOfTwoChoices(RoutingPolicy):
    """Sample two distinct hosts uniformly, route to the less loaded —
    near-optimal balance at a fraction of least-loaded's inspection
    cost (Mitzenmacher's two-choices result)."""

    name = "p2c"

    def __init__(self, rng: np.random.Generator):
        self.rng = rng

    def choose(self, candidates: Sequence, request):
        n = len(candidates)
        if n == 1:
            return candidates[0]
        i = int(self.rng.integers(n))
        j = int(self.rng.integers(n - 1))
        if j >= i:
            j += 1
        a, b = candidates[i], candidates[j]
        if b.load() < a.load():
            return b
        return a


ROUTING_POLICIES = ("round-robin", "least-loaded", "consistent-hash", "p2c")


def make_policy(name: str,
                rng: Optional[np.random.Generator] = None) -> RoutingPolicy:
    """Instantiate a routing policy by name (``rng`` is required by and
    only consumed by ``p2c``)."""
    if name == "round-robin":
        return RoundRobin()
    if name == "least-loaded":
        return LeastLoaded()
    if name == "consistent-hash":
        return ConsistentHash()
    if name == "p2c":
        if rng is None:
            raise ValueError("p2c needs a seeded rng")
        return PowerOfTwoChoices(rng)
    raise ValueError(f"unknown routing policy {name!r}; "
                     f"choose from {ROUTING_POLICIES}")
