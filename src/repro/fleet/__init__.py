"""repro.fleet — multi-host serving on one deterministic simulation.

The paper evaluates one server; production serving is a *fleet*.  This
package instantiates the complete single-host pipeline K times inside
one Environment (:class:`Host`), fronts it with a policy-driven
:class:`LoadBalancer`, derives per-host health from the supervision
signals (:class:`HealthView`), and sizes the fleet from aggregate
telemetry (:class:`Autoscaler`).  :func:`fleet_rollup` merges per-host
latency recorders into one fleet-level payload.
"""

from .autoscaler import Autoscaler, AutoscalerConfig
from .balancer import LoadBalancer, OpenLoopSource, zipf_weights
from .health import (DEAD, DEGRADED, DRAINING, HEALTHY, HealthView,
                     HostHealth)
from .host import Host, HostConfig
from .rollup import fleet_rollup, render_rollup
from .routing import (ROUTING_POLICIES, ConsistentHash, LeastLoaded,
                      PowerOfTwoChoices, RoundRobin, RoutingPolicy,
                      make_policy)

__all__ = [
    "Host", "HostConfig",
    "LoadBalancer", "OpenLoopSource", "zipf_weights",
    "RoutingPolicy", "RoundRobin", "LeastLoaded", "ConsistentHash",
    "PowerOfTwoChoices", "ROUTING_POLICIES", "make_policy",
    "HealthView", "HostHealth",
    "HEALTHY", "DEGRADED", "DRAINING", "DEAD",
    "Autoscaler", "AutoscalerConfig",
    "fleet_rollup", "render_rollup",
]
