"""repro.fleet — multi-host serving on one deterministic simulation.

The paper evaluates one server; production serving is a *fleet*.  This
package instantiates the complete single-host pipeline K times inside
one Environment (:class:`Host`), fronts it with a policy-driven
:class:`LoadBalancer`, derives per-host health from the supervision
signals (:class:`HealthView`), and sizes the fleet from aggregate
telemetry (:class:`Autoscaler`).  :func:`fleet_rollup` merges per-host
latency recorders into one fleet-level payload.

PR 7 adds the fault surface and the machinery that survives it:
:class:`FleetChaos` arms fleet-site fault kinds (host crash/hang/slow,
link partition/flap, zone outage) from a ``FaultPlan``'s
per-host-namespaced streams; :class:`RecoveryConfig` +
:class:`RetryBudget` + the balancer's flight table give the fleet
outlier ejection, in-flight re-dispatch and deadline-aware hedging —
all extra dispatches budgeted, all duplicates first-completion-wins.
"""

from .autoscaler import Autoscaler, AutoscalerConfig
from .balancer import LoadBalancer, OpenLoopSource, zipf_weights
from .chaos import FleetChaos
from .health import (DEAD, DEGRADED, DRAINING, EJECTED, HEALTHY,
                     HealthView, HostHealth, OutlierConfig)
from .host import Host, HostConfig
from .recovery import (AttemptCancelled, Flight, FlightTable,
                       RecoveryConfig, RetryBudget)
from .rollup import fleet_rollup, render_rollup
from .routing import (ROUTING_POLICIES, ConsistentHash, LeastLoaded,
                      PowerOfTwoChoices, RoundRobin, RoutingPolicy,
                      make_policy)

__all__ = [
    "Host", "HostConfig",
    "LoadBalancer", "OpenLoopSource", "zipf_weights",
    "RoutingPolicy", "RoundRobin", "LeastLoaded", "ConsistentHash",
    "PowerOfTwoChoices", "ROUTING_POLICIES", "make_policy",
    "HealthView", "HostHealth", "OutlierConfig",
    "HEALTHY", "DEGRADED", "DRAINING", "DEAD", "EJECTED",
    "Autoscaler", "AutoscalerConfig",
    "FleetChaos", "RecoveryConfig", "RetryBudget", "FlightTable",
    "Flight", "AttemptCancelled",
    "fleet_rollup", "render_rollup",
]
