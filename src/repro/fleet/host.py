"""Host — one complete serving pipeline as an instantiable unit.

The single-host workflow (:mod:`repro.workflows.inference`) wires
NIC -> collector -> FPGA decode -> dispatcher -> GPU engines by hand.
A fleet needs that whole stack K times *inside one Environment*, which
is exactly what :class:`Host` packages: the serving pipeline of one
server — CPU pool, link + NIC, optional Supervisor and fault injector,
backend, engines — with every instrument scoped under a per-host metric
``namespace`` (``host03.nic.rx`` instead of a registry collision).

Construction is split in two phases so the K=1 case reproduces the
historical workflow bit-for-bit:

* ``__init__`` builds cpu -> injector -> link -> nic -> supervisor (the
  exact order the workflow used to build them);
* ``start()`` builds engines -> backend and starts both (the order the
  workflow used after starting its clients).

A workflow caller slots its ClientFleet between the two phases and the
event/process creation sequence — hence every simulated result — is
unchanged.  Fleet callers skip the client fabric entirely and feed the
host through :meth:`admit` (the LoadBalancer's entry point).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..backends import (CpuInferenceBackend, DLBoosterInferenceBackend,
                        NvJpegInferenceBackend)
from ..calib import DEFAULT_TESTBED, INFER_MODELS, Testbed
from ..engines import (CpuCorePool, GpuDevice, InferenceEngine,
                       inference_batch_seconds)
from ..faults import FaultInjector, FaultPlan, RetryPolicy
from ..host import BatchSpec
from ..net import Link, Nic
from ..sim import (Counter, Environment, LatencyRecorder, SeedBank,
                   scoped_name)
from ..supervision import SupervisionConfig, Supervisor

__all__ = ["HostConfig", "Host"]

_BACKENDS = ("cpu-online", "nvjpeg", "dlbooster")


@dataclass(frozen=True)
class HostConfig:
    """Shape of one serving host (the per-host slice of the old
    workflow config)."""

    model: str = "googlenet"
    backend: str = "dlbooster"           # cpu-online | nvjpeg | dlbooster
    batch_size: int = 4
    num_gpus: int = 1
    num_fpgas: int = 1
    cpu_cores: Optional[int] = None      # default: testbed.cpu_cores
    max_workers: Optional[int] = None    # cpu-online
    gpu_direct: bool = False             # dlbooster future-work path
    rx_capacity: Optional[int] = None    # default: max(4096, 16 * bs)
    zone: str = ""                       # failure-domain label; a
    # ``zone_outage`` spec crashes every host sharing it.
    supervision: Optional[SupervisionConfig] = None
    # Per-host chaos: ``nic_loss`` specs arm the host's link, FPGA-side
    # specs (``decoder_crash`` etc.) arm its decode path — this is how a
    # fleet experiment degrades exactly one server.
    fault_plan: Optional[FaultPlan] = None
    # Retransmit-table policy for the dlbooster reader; required when a
    # plan can lose cmds (the reader treats an unarmed deadline miss as
    # a deadlock regression and raises).
    retry: Optional[RetryPolicy] = None


class Host:
    """One server of a serving fleet (or the whole of a K=1 workflow)."""

    def __init__(self, env: Environment, cfg: HostConfig,
                 testbed: Testbed = DEFAULT_TESTBED,
                 seeds: Optional[SeedBank] = None,
                 namespace: str = "", rtracker=None):
        if cfg.model not in INFER_MODELS:
            raise ValueError(f"unknown model {cfg.model!r}")
        if cfg.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if cfg.num_gpus < 1 or cfg.num_gpus > testbed.gpu_count:
            raise ValueError(f"num_gpus must be 1..{testbed.gpu_count}")
        if cfg.backend not in _BACKENDS:
            raise ValueError(f"unknown backend {cfg.backend!r}; "
                             f"choose from {_BACKENDS}")
        self.env = env
        self.cfg = cfg
        self.testbed = testbed
        self.seeds = seeds if seeds is not None else SeedBank()
        self.namespace = namespace
        self.name = namespace if namespace else "host"
        self.rtracker = rtracker
        self.spec = INFER_MODELS[cfg.model]
        self.bspec = BatchSpec(batch_size=cfg.batch_size,
                               out_h=self.spec.input_hw[0],
                               out_w=self.spec.input_hw[1],
                               channels=self.spec.channels)

        # -- phase 1: ingress side, in the workflow's historical order --
        cores = cfg.cpu_cores if cfg.cpu_cores is not None \
            else testbed.cpu_cores
        self.cpu = CpuCorePool(env, cores,
                               name=scoped_name(namespace, "cpu"))
        self.injector = None
        if cfg.fault_plan:
            self.injector = FaultInjector(env, cfg.fault_plan,
                                          seeds=self.seeds.spawn("faults"))
        self.link = Link(env, testbed.nic_rate, mtu=testbed.nic_mtu,
                         injector=self.injector,
                         name=scoped_name(namespace, "link"))
        rx_capacity = cfg.rx_capacity if cfg.rx_capacity is not None \
            else max(4096, 16 * cfg.batch_size)
        self.nic = Nic(env, self.link, self.cpu.tracker,
                       per_packet_s=testbed.nic_per_packet_s,
                       rx_capacity=rx_capacity,
                       name=scoped_name(namespace, "nic"),
                       rtracker=rtracker)
        sup_cfg = cfg.supervision
        self.supervisor = (Supervisor(env, sup_cfg, namespace=namespace)
                           if sup_cfg is not None and sup_cfg.enabled
                           else None)

        # -- fleet-side accounting (pure instruments: no events, no
        #    processes, so the K=1 workflow stays bit-identical) --------
        self.handled = Counter(env, name=self._scoped("host.handled"))
        self.completed = Counter(env, name=self._scoped("host.completed"))
        self.failed = Counter(env, name=self._scoped("host.failed"))
        # End-to-end turnaround of requests admitted via admit():
        # cumulative for the rollup, plus a swappable window the
        # autoscaler reads p99-burn from.
        self.turnaround = LatencyRecorder(
            name=self._scoped("host.turnaround"))
        self.window = LatencyRecorder(name=self._scoped("host.window"))
        self.in_flight = 0
        self.draining = False
        self.crashed = False
        self.zone = cfg.zone
        self.engines: list[InferenceEngine] = []
        self.backend = None
        self._started = False

    def _scoped(self, name: str) -> str:
        return scoped_name(self.namespace, name)

    # -- phase 2 ---------------------------------------------------------
    def start(self) -> None:
        """Build and start engines + backend (the workflow's tail half)."""
        if self._started:
            raise RuntimeError(f"{self.name} already started")
        self._started = True
        cfg = self.cfg
        ns = self.namespace
        for g in range(cfg.num_gpus):
            gpu = GpuDevice(self.env, self.testbed, g,
                            name=scoped_name(ns, f"gpu{g}") if ns else None)
            engine = InferenceEngine(self.env, gpu, self.spec, self.cpu,
                                     self.testbed,
                                     batch_size=cfg.batch_size)
            engine.start()
            self.engines.append(engine)
        if self.supervisor is not None and self.rtracker is not None:
            self.supervisor.attach_tracker(self.rtracker)
        self.backend = self._make_backend()
        self.backend.start(self.engines)

    def _make_backend(self):
        cfg = self.cfg
        if cfg.supervision is not None and cfg.backend != "dlbooster":
            raise ValueError(f"supervision is only supported by the "
                             f"dlbooster backend, not {cfg.backend!r}")
        args = (self.env, self.testbed, self.cpu, self.nic, self.bspec)
        if cfg.backend == "cpu-online":
            return CpuInferenceBackend(*args, max_workers=cfg.max_workers,
                                       namespace=self.namespace)
        if cfg.backend == "nvjpeg":
            return NvJpegInferenceBackend(*args, namespace=self.namespace)
        if cfg.backend == "dlbooster":
            return DLBoosterInferenceBackend(
                *args, num_fpgas=cfg.num_fpgas, gpu_direct=cfg.gpu_direct,
                supervisor=self.supervisor, rtracker=self.rtracker,
                injector=self.injector, retry=cfg.retry,
                namespace=self.namespace)
        raise ValueError(f"unknown backend {cfg.backend!r}")

    # -- fleet entry point -----------------------------------------------
    @property
    def accepting(self) -> bool:
        return self._started and not self.draining and not self.crashed

    def admit(self, request) -> bool:
        """Inject one request into this host's RX ring (the LB's path,
        bypassing the client wire — the LB sits server-side).

        Returns True when the request was *handled*: enqueued, or shed
        at admission by an armed deadline policy (the issuer has already
        been failed with DeadlineExceeded in that case).  Returns False
        — without touching ``done_event`` — when the host refuses
        (draining, or RX ring overflow), so the caller can try another
        host before failing the issuer.
        """
        if not self.accepting:
            return False
        request.received_at = self.env.now
        if not self.nic.rx_queue.try_put(request):
            self.nic.drops.add()
            return False
        self.handled.add()
        done = request.done_event
        if done is not None:
            self.in_flight += 1
            done.callbacks.append(
                lambda event, _req=request: self._request_done(_req, event))
        return True

    def _request_done(self, request, event) -> None:
        self.in_flight -= 1
        if event._ok:
            self.completed.add()
            latency = self.env.now - request.sent_at
            self.turnaround.record(latency)
            self.window.record(latency)
        else:
            self.failed.add()

    # -- lifecycle -------------------------------------------------------
    def drain(self) -> None:
        """Stop accepting new work; in-flight requests run to completion."""
        self.draining = True

    def undrain(self) -> None:
        self.draining = False

    def crash(self) -> None:
        """The whole pipeline dies (``host_crash`` / ``zone_outage``).

        The host stops accepting and the HealthView classifies it DEAD;
        the simulated silicon keeps draining whatever was queued, but a
        chaos-armed balancer discards those completions (the client's
        connection died with the host), so admitted-but-unfinished
        requests are black-holed until re-dispatch or the deadline
        sweep reclaims them.  Host-level conservation still holds: the
        stranded requests stay ``in_flight`` until their attempt proxies
        are settled.
        """
        self.crashed = True

    @property
    def drained(self) -> bool:
        return self.draining and self.in_flight == 0

    # -- signals the balancer / health view / autoscaler read ------------
    def load(self) -> float:
        """Normalized load: in-flight requests per second of capacity —
        roughly the seconds of work queued on this host."""
        return self.in_flight / max(self.capacity_estimate(), 1e-9)

    def queue_depth(self) -> int:
        return len(self.nic.rx_queue)

    def capacity_estimate(self) -> float:
        """Analytic knee: aggregate GPU inference rate, img/s."""
        cfg = self.cfg
        return cfg.num_gpus * cfg.batch_size / inference_batch_seconds(
            self.spec, cfg.batch_size)

    def predictions(self) -> int:
        return int(sum(e.predictions.total for e in self.engines))

    def shed_breakdown(self) -> dict[str, int]:
        out = {"rx": self.nic.rx_queue.shed_total}
        backend = self.backend
        reader = getattr(backend, "reader", None)
        if reader is not None:
            out["reader"] = int(reader.shed_expired.total)
        dispatcher = getattr(backend, "dispatcher", None)
        if dispatcher is not None:
            out["dispatcher"] = int(dispatcher.items_shed.total)
        return out

    def shed_total(self) -> int:
        return sum(self.shed_breakdown().values())

    def breaker_open(self) -> bool:
        breaker = getattr(self.backend, "breaker", None)
        return breaker is not None and breaker.is_open

    def stalls_detected(self) -> int:
        if self.supervisor is None:
            return 0
        return int(self.supervisor.watchdog.stalls_detected.total)

    def take_window(self) -> LatencyRecorder:
        """Swap out the windowed turnaround recorder (autoscaler p99
        burn); the same-name replacement keeps reseeding deterministic."""
        window, self.window = self.window, LatencyRecorder(
            name=self._scoped("host.window"))
        return window

    # -- invariants ------------------------------------------------------
    def conservation_ok(self) -> bool:
        """Every admitted request is resolved or in flight, and the
        backend's own item conservation holds."""
        requests_ok = (int(self.handled.total)
                       == int(self.completed.total) + int(self.failed.total)
                       + self.in_flight)
        backend_ok = (self.backend is None
                      or getattr(self.backend, "conservation_ok",
                                 lambda: True)())
        return requests_ok and backend_ok
