"""Fleet-scope fault injection: the chaos controller.

:class:`FleetChaos` is the bridge between a :class:`~repro.faults.plan.
FaultPlan`'s fleet-site specs and the running fleet.  It owns a private
:class:`~repro.faults.injector.FaultInjector` whose ``site`` argument is
always a **host name** (or zone name), so every stochastic decision
draws from a per-host-namespaced stream (``faults/<kind>/<host>``) and
``(seed, plan, K)`` replays bit-identically no matter how hosts
interleave.

Fault kinds and where they bite:

* ``host_crash`` / ``zone_outage`` — scheduled: one process per doomed
  host sleeps until ``spec.start`` and flips ``host.crash()``.  The
  host stops accepting; its in-flight work keeps draining inside the
  simulated silicon, but every completion is discarded at the balancer
  (the client's connection died with the host) — black-holing, until
  re-dispatch or the deadline sweep intervenes.
* ``host_hang`` — gray failure, evaluated per completion at the
  balancer relay: the completion is swallowed with the armed rate.
  Host-internal counters stay green; only client-side stats see it.
* ``host_slow`` — evaluated per completion: the relay is delayed by the
  armed inflation.
* ``link_partition`` / ``link_flap`` — evaluated per dispatch in
  :meth:`LoadBalancer.route`: the dispatch is dropped before admission
  (the host never sees it), and the balancer falls back to budgeted
  alternates.

A controller built from a plan with **no** fleet-site specs reports
``active = False`` and the balancer keeps its legacy PR 6 path — armed-
with-an-empty-plan is bit-identical to unarmed, by construction.
"""

from __future__ import annotations

from typing import Optional

from ..faults import FaultInjector, FaultPlan
from ..sim import Counter, Environment, SeedBank

__all__ = ["FleetChaos"]


class FleetChaos:
    """Schedules crashes and answers per-dispatch / per-completion
    fault queries for one fleet."""

    def __init__(self, env: Environment, plan: FaultPlan,
                 seeds: Optional[SeedBank] = None, tracer=None,
                 name: str = "chaos"):
        self.env = env
        self.name = name
        fleet_specs = plan.fleet_specs()
        self.plan = FaultPlan(fleet_specs, name=f"{plan.name}/fleet")
        self.active = bool(fleet_specs)
        self.injector = FaultInjector(
            env, self.plan,
            seeds=seeds if seeds is not None else SeedBank(0xF1EE7),
            tracer=tracer, name=name)
        self.balancer = None
        self.crashes = Counter(env, name=f"{name}.host_crashes")
        self.crashed_log: list[tuple] = []    # (t, host_name, kind)
        self._watched: set[str] = set()
        self._has_hang = bool(self.plan.by_kind("host_hang"))
        self._has_slow = bool(self.plan.by_kind("host_slow"))
        self._has_link = bool(self.plan.by_kind("link_partition")
                              or self.plan.by_kind("link_flap"))

    # -- wiring ----------------------------------------------------------
    def attach(self, balancer) -> None:
        """Adopt a balancer's fleet; called by the LoadBalancer when the
        controller is handed to it.  Idempotent per host."""
        self.balancer = balancer
        if not self.active:
            return
        for host in balancer.hosts:
            self.watch_host(host)

    def watch_host(self, host) -> None:
        """Arm any crash/outage spec targeting this host (or its zone).
        Hosts added later (autoscaler scale-up) are watched on add."""
        if not self.active or host.name in self._watched:
            return
        self._watched.add(host.name)
        spec = self.injector.crash_due("host_crash", host.name)
        if spec is not None:
            self.env.process(self._crash_at(host, spec, host.name),
                             name=f"chaos-crash-{host.name}")
        zone = getattr(host, "zone", "")
        if zone:
            spec = self.injector.crash_due("zone_outage", zone)
            if spec is not None:
                self.env.process(self._crash_at(host, spec, zone),
                                 name=f"chaos-outage-{host.name}")

    def _crash_at(self, host, spec, site: str):
        delay = spec.start - self.env.now
        if delay > 0:
            yield self.env.timeout(delay)
        if host.crashed:
            return
        self.injector.fire_crash(spec, site)
        host.crash()
        self.crashes.add()
        self.crashed_log.append((self.env.now, host.name, spec.kind))
        if self.balancer is not None:
            self.balancer.on_host_death(host)

    # -- per-dispatch hook (LoadBalancer.route) --------------------------
    def link_down(self, host_name: str) -> bool:
        if not self._has_link:
            return False
        return self.injector.link_down(host_name)

    # -- per-completion hooks (FlightTable relay) ------------------------
    def discard_completion(self, host) -> bool:
        """Crashed host: the answer exists but the connection doesn't."""
        return bool(getattr(host, "crashed", False))

    def hang_blackhole(self, host) -> bool:
        if not self._has_hang:
            return False
        return self.injector.hang_blackhole(host.name)

    def slow_extra_s(self, host) -> float:
        if not self._has_slow:
            return 0.0
        return self.injector.slow_extra_s(host.name)
