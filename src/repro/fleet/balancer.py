"""Front-end tier: LoadBalancer + open-loop traffic source.

The LoadBalancer is the fleet's single entry point: each request is
routed by a pluggable :mod:`~repro.fleet.routing` policy over the
health-filtered candidate set and injected into the chosen host's RX
ring.  It sits server-side (think L4 VIP in the same rack), so the
client wire is out of the picture — matching the single-host overload
experiment's methodology.

:class:`OpenLoopSource` is the fleet's arrival process: deterministic
inter-arrival gap at a settable rate, client ids drawn from an
optionally *skewed* (Zipf-like) mix — the workload under which
client-affine and load-aware policies actually differ.

Chaos + recovery (PR 7)
-----------------------
Handing the balancer a :class:`~repro.fleet.chaos.FleetChaos` with an
armed fleet plan, or a :class:`~repro.fleet.recovery.RecoveryConfig`,
switches ``route()`` onto the *flight* path: every request becomes a
:class:`~repro.fleet.recovery.Flight`, each dispatched copy travels
with its own proxy done-event, and hedges / re-dispatches are extra
copies under first-completion-wins.  All extra dispatches — the legacy
alternate retry included — draw from one token-bucket
:class:`~repro.fleet.recovery.RetryBudget`, so recovery can never
amplify a fault into a retry storm.  With neither armed, ``route()``
is the PR 6 path, bit-identically (no proxy events, no processes).
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from ..data import jpeg_size_sampler
from ..net import NetRequest
from ..sim import Counter, Environment
from ..supervision import DeadlineExceeded
from .recovery import FlightTable, RecoveryConfig, RetryBudget
from .routing import RoutingPolicy

__all__ = ["LoadBalancer", "OpenLoopSource"]


class LoadBalancer:
    """Routes requests over the fleet through one policy."""

    def __init__(self, env: Environment, hosts, policy: RoutingPolicy,
                 name: str = "lb", chaos=None,
                 recovery: Optional[RecoveryConfig] = None,
                 budget: Optional[RetryBudget] = None):
        self.env = env
        self.name = name
        self.policy = policy
        self.health = None           # optional HealthView, attached later
        self.hosts = []
        self.dispatched = Counter(env, name=f"{name}.dispatched")
        self.rejected = Counter(env, name=f"{name}.rejected")
        # Satellite: the alternate retry is budgeted and metered now.
        self.retries = Counter(env, name=f"{name}.retries")
        self.budget_exhausted = Counter(env, name=f"{name}.budget_exhausted")
        self.link_drops = Counter(env, name=f"{name}.link_drops")
        self.hedges = Counter(env, name=f"{name}.hedges")
        self.redispatches = Counter(env, name=f"{name}.redispatches")
        self.recovery = recovery
        self.chaos = chaos if (chaos is not None and chaos.active) else None
        if budget is None:
            if recovery is not None:
                budget = RetryBudget(env, recovery.budget_rate_per_s,
                                     recovery.budget_burst,
                                     name=f"{name}.budget")
            else:
                budget = RetryBudget(env, name=f"{name}.budget")
        self.budget = budget
        # The flight table (proxy events + sweep process) exists only
        # when chaos or recovery is armed: an unarmed balancer runs the
        # legacy route() path with zero extra simulation state.
        self.flights: Optional[FlightTable] = None
        if self.chaos is not None or recovery is not None:
            self.flights = FlightTable(env, chaos=self.chaos,
                                       recovery=recovery,
                                       name=f"{name}.flights")
            self.flights.start()
        self.per_host: dict[str, Counter] = {}
        for host in hosts:
            self.add_host(host)
        if self.chaos is not None:
            self.chaos.attach(self)

    def attach_health(self, health) -> None:
        self.health = health

    def add_host(self, host) -> None:
        if host.name in self.per_host:
            raise ValueError(f"duplicate host name {host.name!r}")
        self.hosts.append(host)
        self.per_host[host.name] = Counter(
            self.env, name=f"{self.name}.to.{host.name}")
        if self.chaos is not None and self.chaos.balancer is self:
            self.chaos.watch_host(host)

    def active_hosts(self) -> list:
        return [h for h in self.hosts if h.accepting]

    def candidates(self) -> list:
        if self.health is not None:
            return self.health.candidates()
        return self.active_hosts()

    def route(self, request) -> bool:
        """Route one request; True when some host accepted it.

        On a refused first choice (draining race, RX overflow) other
        candidates are tried — each extra try paid for by the retry
        budget — before giving up; a rejected request's issuer is
        failed so open- and closed-loop sources both learn the outcome.
        """
        if self.flights is not None and request.done_event is not None:
            return self._route_flight(request)
        return self._route_legacy(request)

    def _route_legacy(self, request) -> bool:
        candidates = self.candidates()
        if candidates:
            host = self.policy.choose(candidates, request)
            if host.admit(request):
                self._count(host)
                return True
            rest = [h for h in candidates if h is not host]
            if rest:
                if self.budget.take():
                    self.retries.add()
                    alt = self.policy.choose(rest, request)
                    if alt.admit(request):
                        self._count(alt)
                        return True
                else:
                    self.budget_exhausted.add()
        self.rejected.add()
        done = request.done_event
        if done is not None and not done.triggered:
            done.fail(ConnectionError(
                f"no route for request {request.request_id}"))
        return False

    # -- flight path (chaos / recovery armed) -----------------------------
    def _route_flight(self, request) -> bool:
        flight = self.flights.open(request)
        if not self._dispatch(flight, "primary"):
            self.rejected.add()
            self.flights.reject(flight)
            return False
        if self.recovery is not None and self.recovery.hedging \
                and len(self.hosts) > 1:
            self.env.process(self._hedge_watch(flight),
                             name="hedge-watch")
        return True

    def _dispatch(self, flight, kind: str) -> bool:
        """Admit one copy of the flight somewhere.  The first try is
        free; every alternate after a refusal or link drop consumes one
        budget token.  Hedge/re-dispatch copies never land on a host
        that already holds one."""
        candidates = self.candidates()
        if kind != "primary":
            tried = {a.host.name for a in flight.attempts}
            candidates = [h for h in candidates if h.name not in tried]
        request = flight.request
        free = True
        while candidates:
            if not free:
                if not self.budget.take():
                    self.budget_exhausted.add()
                    return False
                self.retries.add()
            free = False
            host = self.policy.choose(candidates, request)
            if self.chaos is not None and self.chaos.link_down(host.name):
                # Dropped on the LB->host path: the host never saw it.
                self.link_drops.add()
                candidates = [h for h in candidates if h is not host]
                continue
            attempt, copy = self.flights.make_attempt(flight, host, kind)
            if host.admit(copy):
                self.flights.admitted(flight, attempt)
                self._count(host)
                return True
            candidates = [h for h in candidates if h is not host]
        return False

    def _hedge_watch(self, flight):
        """Speculative second dispatch after a p99-derived delay."""
        delay = self.flights.hedge_delay()
        if delay is None:
            deadline = flight.request.deadline_at
            if math.isinf(deadline):
                return
            delay = max(self.recovery.hedge_min_delay_s,
                        self.recovery.hedge_fallback_frac
                        * (deadline - self.env.now))
        yield self.env.timeout(delay)
        if flight.resolved or self.env.now >= flight.request.deadline_at:
            return
        if not self.budget.take():
            self.budget_exhausted.add()
            return
        if self._dispatch(flight, "hedge"):
            self.hedges.add()

    def on_host_death(self, host) -> None:
        """Death/ejection notification: re-dispatch the still-within-
        deadline requests stranded on this host (budget-gated; the
        sweep expires whatever can't be saved)."""
        if self.flights is None or self.recovery is None \
                or not self.recovery.redispatch:
            return
        now = self.env.now
        for flight, attempt in self.flights.pending_on(host):
            if flight.resolved or attempt.settled or attempt.redispatched:
                continue
            if now >= flight.request.deadline_at:
                continue
            if not self.budget.take():
                self.budget_exhausted.add()
                break
            attempt.redispatched = True
            if self._dispatch(flight, "redispatch"):
                self.redispatches.add()

    def client_stats(self) -> Optional[dict]:
        """Per-host client-side stats (the HealthView's ejection feed);
        None when no flight table is armed."""
        return self.flights.host_stats if self.flights is not None else None

    def in_flight_requests(self) -> int:
        """Client-perspective in-flight count: open flights when armed
        (duplicates collapse to one), host in-flight sums otherwise."""
        if self.flights is not None:
            return self.flights.open_count
        return sum(h.in_flight for h in self.hosts)

    def _count(self, host) -> None:
        self.dispatched.add()
        self.per_host[host.name].add()

    def dispatch_shares(self) -> dict[str, float]:
        """Fraction of dispatched traffic each host received."""
        total = max(self.dispatched.total, 1.0)
        return {name: counter.total / total
                for name, counter in self.per_host.items()}

    def conservation_ok(self) -> bool:
        """LB dispatch counts match the hosts' admission counts (per
        dispatched *copy* when the flight path is armed), and the
        flight ledgers close when present."""
        by_hosts = sum(int(h.handled.total) for h in self.hosts)
        by_lb = sum(int(c.total) for c in self.per_host.values())
        counts_ok = (int(self.dispatched.total) == by_lb
                     and by_lb == by_hosts)
        if self.flights is not None:
            return counts_ok and self.flights.conservation_ok()
        return counts_ok


def zipf_weights(n: int, skew: float) -> np.ndarray:
    """Zipf-like client popularity: weight of client *i* is
    ``1 / (i + 1) ** skew`` (``skew=0`` is uniform)."""
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** -skew
    return weights / weights.sum()


class OpenLoopSource:
    """Deterministic open-loop arrivals fanned through a LoadBalancer."""

    def __init__(self, env: Environment, balancer: LoadBalancer,
                 rate: float, image_hw: tuple[int, int],
                 rng: np.random.Generator, num_clients: int = 32,
                 skew: float = 0.0, deadline_s: Optional[float] = None,
                 size_sampler: Optional[Callable] = None,
                 name: str = "source"):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if num_clients < 1:
            raise ValueError("num_clients must be >= 1")
        self.env = env
        self.balancer = balancer
        self.rate = rate
        self.image_hw = image_hw
        self.rng = rng
        self.num_clients = num_clients
        self.deadline_s = deadline_s
        self._cdf = np.cumsum(zipf_weights(num_clients, skew))
        self._sampler = size_sampler if size_sampler is not None \
            else jpeg_size_sampler()
        self.sent = Counter(env, name=f"{name}.sent")
        self.completed = Counter(env, name=f"{name}.completed")
        self.expired = Counter(env, name=f"{name}.expired")
        self.failed = Counter(env, name=f"{name}.failed")
        # Outcome observers (e.g. the SLO evaluator): called as
        # ``obs(request, done_event)`` when a request resolves.  Empty
        # by default — no callbacks are even allocated then, so the
        # unobserved path is untouched.  Observers must be passive:
        # evaluator-private accounting only, never sim state.
        self.observers: list = []
        self._next_id = 0
        self.running = False

    def set_rate(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self.env.process(self._loop(), name="openloop-source")

    def stop(self) -> None:
        self.running = False

    def _on_done(self, event) -> None:
        if event._ok:
            self.completed.add()
        elif isinstance(event._value, DeadlineExceeded):
            self.expired.add()
        else:
            self.failed.add()

    def _loop(self):
        h, w = self.image_hw
        while self.running:
            yield self.env.timeout(1.0 / self.rate)
            now = self.env.now
            draw = self.rng.random()
            client = int(np.searchsorted(self._cdf, draw, side="right"))
            done = self.env.event()
            done.callbacks.append(self._on_done)
            request = self._make_request(client, done, now, h, w)
            self._next_id += 1
            self.sent.add()
            self.balancer.route(request)

    def _make_request(self, client, done, now, h, w):
        request = NetRequest(
            request_id=self._next_id, client_id=client,
            size_bytes=int(self._sampler(self.rng)),
            height=h, width=w, channels=3,
            sent_at=now, received_at=now, done_event=done,
            deadline_at=(now + self.deadline_s
                         if self.deadline_s is not None else math.inf))
        if self.observers:
            for obs in self.observers:
                done.callbacks.append(
                    lambda event, _req=request, _obs=obs: _obs(_req, event))
        return request

    def conservation_ok(self) -> bool:
        """Every request the source issued has exactly one outcome (or
        is still in flight inside some host)."""
        in_flight = self.balancer.in_flight_requests()
        # Rejected requests are failed by the balancer, so they already
        # land in ``failed`` via the done-event callback.
        resolved = (int(self.completed.total) + int(self.expired.total)
                    + int(self.failed.total))
        return int(self.sent.total) == resolved + in_flight
