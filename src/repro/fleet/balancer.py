"""Front-end tier: LoadBalancer + open-loop traffic source.

The LoadBalancer is the fleet's single entry point: each request is
routed by a pluggable :mod:`~repro.fleet.routing` policy over the
health-filtered candidate set and injected into the chosen host's RX
ring.  It sits server-side (think L4 VIP in the same rack), so the
client wire is out of the picture — matching the single-host overload
experiment's methodology.

:class:`OpenLoopSource` is the fleet's arrival process: deterministic
inter-arrival gap at a settable rate, client ids drawn from an
optionally *skewed* (Zipf-like) mix — the workload under which
client-affine and load-aware policies actually differ.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from ..data import jpeg_size_sampler
from ..net import NetRequest
from ..sim import Counter, Environment
from ..supervision import DeadlineExceeded
from .routing import RoutingPolicy

__all__ = ["LoadBalancer", "OpenLoopSource"]


class LoadBalancer:
    """Routes requests over the fleet through one policy."""

    def __init__(self, env: Environment, hosts, policy: RoutingPolicy,
                 name: str = "lb"):
        self.env = env
        self.name = name
        self.policy = policy
        self.health = None           # optional HealthView, attached later
        self.hosts = []
        self.dispatched = Counter(env, name=f"{name}.dispatched")
        self.rejected = Counter(env, name=f"{name}.rejected")
        self.per_host: dict[str, Counter] = {}
        for host in hosts:
            self.add_host(host)

    def attach_health(self, health) -> None:
        self.health = health

    def add_host(self, host) -> None:
        if host.name in self.per_host:
            raise ValueError(f"duplicate host name {host.name!r}")
        self.hosts.append(host)
        self.per_host[host.name] = Counter(
            self.env, name=f"{self.name}.to.{host.name}")

    def active_hosts(self) -> list:
        return [h for h in self.hosts if h.accepting]

    def candidates(self) -> list:
        if self.health is not None:
            return self.health.candidates()
        return self.active_hosts()

    def route(self, request) -> bool:
        """Route one request; True when some host accepted it.

        On a refused first choice (draining race, RX overflow) one
        different candidate is tried before giving up; a rejected
        request's issuer is failed so open- and closed-loop sources
        both learn the outcome.
        """
        candidates = self.candidates()
        if candidates:
            host = self.policy.choose(candidates, request)
            if host.admit(request):
                self._count(host)
                return True
            rest = [h for h in candidates if h is not host]
            if rest:
                alt = self.policy.choose(rest, request)
                if alt.admit(request):
                    self._count(alt)
                    return True
        self.rejected.add()
        done = request.done_event
        if done is not None and not done.triggered:
            done.fail(ConnectionError(
                f"no route for request {request.request_id}"))
        return False

    def _count(self, host) -> None:
        self.dispatched.add()
        self.per_host[host.name].add()

    def dispatch_shares(self) -> dict[str, float]:
        """Fraction of dispatched traffic each host received."""
        total = max(self.dispatched.total, 1.0)
        return {name: counter.total / total
                for name, counter in self.per_host.items()}

    def conservation_ok(self) -> bool:
        """LB dispatch counts match the hosts' admission counts."""
        by_hosts = sum(int(h.handled.total) for h in self.hosts)
        by_lb = sum(int(c.total) for c in self.per_host.values())
        return (int(self.dispatched.total) == by_lb
                and by_lb == by_hosts)


def zipf_weights(n: int, skew: float) -> np.ndarray:
    """Zipf-like client popularity: weight of client *i* is
    ``1 / (i + 1) ** skew`` (``skew=0`` is uniform)."""
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** -skew
    return weights / weights.sum()


class OpenLoopSource:
    """Deterministic open-loop arrivals fanned through a LoadBalancer."""

    def __init__(self, env: Environment, balancer: LoadBalancer,
                 rate: float, image_hw: tuple[int, int],
                 rng: np.random.Generator, num_clients: int = 32,
                 skew: float = 0.0, deadline_s: Optional[float] = None,
                 size_sampler: Optional[Callable] = None,
                 name: str = "source"):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if num_clients < 1:
            raise ValueError("num_clients must be >= 1")
        self.env = env
        self.balancer = balancer
        self.rate = rate
        self.image_hw = image_hw
        self.rng = rng
        self.num_clients = num_clients
        self.deadline_s = deadline_s
        self._cdf = np.cumsum(zipf_weights(num_clients, skew))
        self._sampler = size_sampler if size_sampler is not None \
            else jpeg_size_sampler()
        self.sent = Counter(env, name=f"{name}.sent")
        self.completed = Counter(env, name=f"{name}.completed")
        self.expired = Counter(env, name=f"{name}.expired")
        self.failed = Counter(env, name=f"{name}.failed")
        self._next_id = 0
        self.running = False

    def set_rate(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self.env.process(self._loop(), name="openloop-source")

    def stop(self) -> None:
        self.running = False

    def _on_done(self, event) -> None:
        if event._ok:
            self.completed.add()
        elif isinstance(event._value, DeadlineExceeded):
            self.expired.add()
        else:
            self.failed.add()

    def _loop(self):
        h, w = self.image_hw
        while self.running:
            yield self.env.timeout(1.0 / self.rate)
            now = self.env.now
            draw = self.rng.random()
            client = int(np.searchsorted(self._cdf, draw, side="right"))
            done = self.env.event()
            done.callbacks.append(self._on_done)
            request = NetRequest(
                request_id=self._next_id, client_id=client,
                size_bytes=int(self._sampler(self.rng)),
                height=h, width=w, channels=3,
                sent_at=now, received_at=now, done_event=done,
                deadline_at=(now + self.deadline_s
                             if self.deadline_s is not None else math.inf))
            self._next_id += 1
            self.sent.add()
            self.balancer.route(request)

    def conservation_ok(self) -> bool:
        """Every request the source issued has exactly one outcome (or
        is still in flight inside some host)."""
        in_flight = sum(h.in_flight for h in self.balancer.hosts)
        # Rejected requests are failed by the balancer, so they already
        # land in ``failed`` via the done-event callback.
        resolved = (int(self.completed.total) + int(self.expired.total)
                    + int(self.failed.total))
        return int(self.sent.total) == resolved + in_flight
