"""Recovery machinery for a fleet under fault: retry budgets, request
flights, hedging/re-dispatch bookkeeping, and the deadline sweep.

The central object is the :class:`FlightTable` — the LoadBalancer's
client-side ledger.  When the fleet is chaos-armed (or recovery is
enabled), every request the balancer routes becomes a :class:`Flight`:
the client's real ``done_event`` is held by the table, and each
dispatched copy (primary, hedge, or re-dispatch) travels with its own
per-attempt *proxy* event.  The first attempt to complete wins and
settles the client; every other copy is cancelled and counted.  This is
what makes duplicates safe: host-side ledgers stay per-attempt exact,
while the client sees exactly one outcome per request.

Chaos interference happens on the completion path, through hooks the
attached :class:`~repro.fleet.chaos.FleetChaos` controller answers:

* a **crashed** host's completions are discarded (the connection died
  with the host — counted ``blackholed``);
* a **hung** host's completions are swallowed with the armed
  probability (gray failure: the host looks healthy from the inside);
* a **slow** host's completions are delayed by the armed inflation
  before they reach the client.

Requests whose every copy was black-holed are *reaped* by a periodic
sweep once their deadline passes: the client learns (``expired``), the
stranded per-attempt proxies are reclaimed so host ledgers close, and
the failure is attributed to the hosts that sat on the work — the
signal balancer-side outlier ejection feeds on.

None of this exists on an unarmed balancer: no proxy events, no sweep
process, no flights — the PR 6 fleet path is untouched, which is what
keeps fault-free runs bit-identical.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Optional

from ..sim import Counter, Environment, LatencyRecorder
from ..supervision import DeadlineExceeded

__all__ = ["AttemptCancelled", "RetryBudget", "RecoveryConfig",
           "Attempt", "Flight", "FlightTable"]


class AttemptCancelled(ConnectionError):
    """A dispatched copy was cancelled because its flight already
    resolved (a duplicate lost the race) or because the sweep reclaimed
    it from a dead host."""


class RetryBudget:
    """Token bucket gating every extra dispatch the balancer makes.

    Alternate retries, hedges and re-dispatches all draw from one
    bucket, so recovery can never amplify an outage into a retry storm:
    once the bucket is dry, extra copies stop and requests fall through
    to their normal outcome.  Refill is lazy (computed from ``env.now``
    at each take), so an armed-but-idle budget costs no events.
    """

    def __init__(self, env: Environment, rate_per_s: float = 1000.0,
                 burst: float = 100.0, name: str = "lb.budget"):
        if rate_per_s < 0 or burst <= 0:
            raise ValueError("need rate_per_s >= 0 and burst > 0")
        self.env = env
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._tokens = burst
        self._last = env.now
        self.granted = Counter(env, name=f"{name}.granted")
        self.exhausted = Counter(env, name=f"{name}.exhausted")

    def _refill(self) -> None:
        now = self.env.now
        if now > self._last:
            self._tokens = min(self.burst,
                               self._tokens
                               + (now - self._last) * self.rate_per_s)
            self._last = now

    def available(self) -> float:
        self._refill()
        return self._tokens

    def take(self) -> bool:
        """Consume one token; False (and counted) when the bucket is dry."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.granted.add()
            return True
        self.exhausted.add()
        return False


@dataclass(frozen=True)
class RecoveryConfig:
    """Knobs for the balancer's recovery machinery.

    ``hedge_delay_s=None`` derives the hedge delay from the windowed
    p99 of resolved client latencies (falling back to
    ``hedge_fallback_frac`` of the deadline until ``hedge_min_samples``
    resolutions exist).  The budget parameters bound *all* extra
    dispatches — alternate retries, hedges and re-dispatches share one
    bucket.  ``sweep_period_s`` paces the deadline reaper that turns
    black-holed requests into ``expired`` outcomes.
    """

    redispatch: bool = True
    hedging: bool = True
    hedge_delay_s: Optional[float] = None
    hedge_min_samples: int = 32
    hedge_fallback_frac: float = 0.6     # x deadline, before p99 exists
    hedge_min_delay_s: float = 0.002
    budget_rate_per_s: float = 1000.0
    budget_burst: float = 100.0
    sweep_period_s: float = 0.005
    deadline_grace_s: float = 0.0

    def __post_init__(self):
        if self.sweep_period_s <= 0:
            raise ValueError("sweep_period_s must be positive")
        if self.hedge_min_delay_s < 0 or self.deadline_grace_s < 0:
            raise ValueError("delays must be >= 0")


class Attempt:
    """One dispatched copy of a request."""

    __slots__ = ("host", "proxy", "kind", "dispatched_at", "settled",
                 "cancelled", "reclaimed", "redispatched", "blackholed")

    def __init__(self, host, proxy, kind: str, dispatched_at: float):
        self.host = host
        self.proxy = proxy
        self.kind = kind                  # primary | hedge | redispatch
        self.dispatched_at = dispatched_at
        self.settled = False
        self.cancelled = False            # we failed the proxy ourselves
        self.reclaimed = False            # ...from a dead host, at sweep
        self.redispatched = False         # a replacement copy was issued
        self.blackholed = False           # completion swallowed by chaos


class Flight:
    """One client request's lifetime across all its dispatched copies."""

    __slots__ = ("key", "request", "real_done", "attempts", "resolved",
                 "outcome", "opened_at")

    def __init__(self, key: int, request, real_done, opened_at: float):
        self.key = key
        self.request = request            # the client's original object
        self.real_done = real_done
        self.attempts: list[Attempt] = []
        self.resolved = False
        self.outcome: str = "open"
        self.opened_at = opened_at

    @property
    def deadline_at(self) -> float:
        return getattr(self.request, "deadline_at", math.inf)

    def pending_attempts(self) -> list[Attempt]:
        return [a for a in self.attempts if not a.settled]


class FlightTable:
    """Client-side ledger: flights, attempts, outcomes, conservation.

    Request-level identity (exact at any instant)::

        flights == completed + redispatched_completed + expired
                   + shed + failed + rejected + open

    Attempt-level identity (dispatched copies)::

        attempts == wins + attempt_shed + attempt_failed
                    + cancelled_duplicates + blackholed + outstanding

    where ``wins == completed + redispatched_completed`` and
    ``cancelled_duplicates`` includes the stranded copies the sweep
    reclaimed from dead hosts (``stranded_reclaimed`` sub-counts them).
    """

    def __init__(self, env: Environment, chaos=None,
                 recovery: Optional[RecoveryConfig] = None,
                 name: str = "lb.flights"):
        self.env = env
        self.chaos = chaos
        self.recovery = recovery if recovery is not None else RecoveryConfig()
        self.name = name
        self._seq = 0
        self._open: dict[int, Flight] = {}
        # host name -> {flight key -> (flight, attempt)} of unsettled
        # attempts; what re-dispatch walks on a death notification.
        self._pending: dict[str, dict[int, tuple]] = {}
        # host name -> cumulative client-side stats (HealthView ejection
        # takes window deltas of these).
        self.host_stats: dict[str, dict] = {}
        # request-level outcomes
        self.flights = Counter(env, name=f"{name}.opened")
        self.completed = Counter(env, name=f"{name}.completed")
        self.redispatched_completed = Counter(
            env, name=f"{name}.redispatched_completed")
        self.expired = Counter(env, name=f"{name}.expired")
        self.shed = Counter(env, name=f"{name}.shed")
        self.failed = Counter(env, name=f"{name}.failed")
        self.rejected = Counter(env, name=f"{name}.rejected")
        # attempt-level outcomes
        self.attempts = Counter(env, name=f"{name}.attempts")
        self.attempt_shed = Counter(env, name=f"{name}.attempt_shed")
        self.attempt_failed = Counter(env, name=f"{name}.attempt_failed")
        self.cancelled_duplicates = Counter(
            env, name=f"{name}.cancelled_duplicates")
        self.stranded_reclaimed = Counter(
            env, name=f"{name}.stranded_reclaimed")
        self.blackholed = Counter(env, name=f"{name}.blackholed")
        # client-side latency of resolved-ok flights (hedge delay + the
        # rollup's client-perceived percentiles when armed)
        self.client_latency = LatencyRecorder(name=f"{name}.client")
        # completions currently delayed inside a chaos slow-relay: they
        # have left the host ledger but not yet reached a flight outcome
        self._relaying = 0
        self.running = False

    # -- opening / dispatching -------------------------------------------
    @property
    def open_count(self) -> int:
        return len(self._open)

    def open(self, request) -> Flight:
        """Begin tracking one routed request; the client's done event is
        detached here and settled only by this table."""
        self._seq += 1
        flight = Flight(self._seq, request, request.done_event,
                        self.env.now)
        self._open[flight.key] = flight
        self.flights.add()
        return flight

    def make_attempt(self, flight: Flight, host, kind: str):
        """A per-attempt request copy carrying its own proxy event.

        The copy shares payload/deadline/identity with the original but
        never the client's ``done_event`` — a late shed deep inside one
        host can only ever settle its own attempt.
        """
        proxy = self.env.event()
        attempt = Attempt(host, proxy, kind, self.env.now)
        proxy.callbacks.append(
            lambda event, f=flight, a=attempt: self._on_settled(f, a, event))
        copy = dataclasses.replace(
            flight.request, done_event=proxy,
            trace=flight.request.trace if kind == "primary" else None)
        return attempt, copy

    def admitted(self, flight: Flight, attempt: Attempt) -> None:
        """Record an attempt that a host accepted."""
        flight.attempts.append(attempt)
        self.attempts.add()
        self._pending.setdefault(attempt.host.name, {})[flight.key] = \
            (flight, attempt)

    def reject(self, flight: Flight) -> None:
        """No host admitted any copy: fail the client like the legacy
        path does (ConnectionError -> the source counts ``failed``)."""
        flight.resolved = True
        flight.outcome = "rejected"
        self.rejected.add()
        if flight.real_done is not None \
                and not flight.real_done.triggered:
            flight.real_done.fail(ConnectionError(
                f"no route for request {flight.request.request_id}"))
        self._close(flight)

    def pending_on(self, host) -> list[tuple]:
        """(flight, attempt) pairs outstanding on one host, in dispatch
        order — the re-dispatch walk."""
        return list(self._pending.get(host.name, {}).values())

    # -- per-host client-side stats --------------------------------------
    def _stat(self, host_name: str) -> dict:
        stat = self.host_stats.get(host_name)
        if stat is None:
            stat = {"ok": 0, "fail": 0, "lat_sum": 0.0}
            self.host_stats[host_name] = stat
        return stat

    # -- settlement -------------------------------------------------------
    def _unindex(self, flight: Flight, attempt: Attempt) -> None:
        pending = self._pending.get(attempt.host.name)
        if pending is not None:
            entry = pending.get(flight.key)
            if entry is not None and entry[1] is attempt:
                del pending[flight.key]

    def _on_settled(self, flight: Flight, attempt: Attempt, event) -> None:
        attempt.settled = True
        self._unindex(flight, attempt)
        if event._ok:
            self._on_attempt_ok(flight, attempt)
        else:
            self._on_attempt_fail(flight, attempt, event._value)

    def _on_attempt_ok(self, flight: Flight, attempt: Attempt) -> None:
        if flight.resolved:
            self.cancelled_duplicates.add()
            return
        chaos = self.chaos
        if chaos is not None:
            if chaos.discard_completion(attempt.host):
                # The host died with the answer in flight: the client's
                # connection is gone, the completion evaporates.
                attempt.blackholed = True
                self.blackholed.add()
                return
            if chaos.hang_blackhole(attempt.host):
                attempt.blackholed = True
                self.blackholed.add()
                return
            extra = chaos.slow_extra_s(attempt.host)
            if extra > 0.0:
                self._relaying += 1
                self.env.process(self._slow_relay(flight, attempt, extra),
                                 name="chaos-slow-relay")
                return
        self._resolve_ok(flight, attempt)

    def _slow_relay(self, flight: Flight, attempt: Attempt, extra: float):
        yield self.env.timeout(extra)
        self._relaying -= 1
        if flight.resolved:
            self.cancelled_duplicates.add()
            return
        self._resolve_ok(flight, attempt)

    def _resolve_ok(self, flight: Flight, attempt: Attempt) -> None:
        flight.resolved = True
        latency = self.env.now - flight.request.sent_at
        stat = self._stat(attempt.host.name)
        stat["ok"] += 1
        stat["lat_sum"] += latency
        self.client_latency.record(latency)
        if attempt.kind == "primary":
            flight.outcome = "completed"
            self.completed.add()
        else:
            flight.outcome = "redispatched_completed"
            self.redispatched_completed.add()
        if flight.real_done is not None \
                and not flight.real_done.triggered:
            flight.real_done.succeed()
        self._cancel_pending(flight, reclaim=False)
        self._close(flight)

    def _on_attempt_fail(self, flight: Flight, attempt: Attempt,
                         exc) -> None:
        if attempt.cancelled:
            self.cancelled_duplicates.add()
            if attempt.reclaimed:
                self.stranded_reclaimed.add()
            return
        if flight.resolved:
            self.cancelled_duplicates.add()
            return
        self._stat(attempt.host.name)["fail"] += 1
        is_shed = isinstance(exc, DeadlineExceeded)
        if is_shed:
            self.attempt_shed.add()
        else:
            self.attempt_failed.add()
        if flight.pending_attempts():
            # A hedge or re-dispatch is still out — the flight lives on.
            return
        if any(a.blackholed for a in flight.attempts):
            # Someone swallowed a completion; the sweep will expire the
            # flight at its deadline so the black-holing is *counted*.
            return
        flight.resolved = True
        if is_shed:
            flight.outcome = "shed"
            self.shed.add()
        else:
            flight.outcome = "failed"
            self.failed.add()
        if flight.real_done is not None \
                and not flight.real_done.triggered:
            flight.real_done.fail(exc)
        self._close(flight)

    def _cancel_pending(self, flight: Flight, reclaim: bool) -> None:
        for attempt in flight.attempts:
            if attempt.settled:
                continue
            attempt.cancelled = True
            attempt.reclaimed = reclaim
            attempt.proxy.fail(AttemptCancelled(
                f"attempt on {attempt.host.name} cancelled "
                f"({'reclaimed' if reclaim else 'duplicate lost'})"))

    def _close(self, flight: Flight) -> None:
        self._open.pop(flight.key, None)

    # -- the deadline sweep (reaper) --------------------------------------
    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self.env.process(self._sweep_loop(), name="flight-sweep")

    def stop(self) -> None:
        self.running = False

    def _sweep_loop(self):
        period = self.recovery.sweep_period_s
        while self.running:
            yield self.env.timeout(period)
            self.sweep()

    def sweep(self) -> int:
        """Expire every open flight whose deadline (+grace) has passed:
        the client learns, stranded attempt proxies are reclaimed (so
        host ledgers close), and the miss is attributed per host."""
        now = self.env.now
        grace = self.recovery.deadline_grace_s
        reaped = 0
        for flight in list(self._open.values()):
            if flight.resolved or now < flight.deadline_at + grace:
                continue
            flight.resolved = True
            flight.outcome = "expired"
            self.expired.add()
            reaped += 1
            for attempt in flight.attempts:
                # The request timed out on every host that held a copy
                # — each one failed it, from where the client stands.
                self._stat(attempt.host.name)["fail"] += 1
            if flight.real_done is not None \
                    and not flight.real_done.triggered:
                flight.real_done.fail(DeadlineExceeded(
                    f"request {flight.request.request_id} black-holed: "
                    f"deadline passed with no completion"))
            self._cancel_pending(flight, reclaim=True)
            self._close(flight)
        return reaped

    # -- hedge delay -------------------------------------------------------
    def hedge_delay(self) -> Optional[float]:
        """The speculative-dispatch delay: configured, or p99-derived
        from resolved client latencies, or a deadline fraction until
        enough resolutions exist.  None disables hedging for now."""
        cfg = self.recovery
        if cfg.hedge_delay_s is not None:
            return max(cfg.hedge_min_delay_s, cfg.hedge_delay_s)
        if self.client_latency.count >= cfg.hedge_min_samples:
            return max(cfg.hedge_min_delay_s, self.client_latency.p99())
        return None

    # -- conservation ------------------------------------------------------
    def conservation(self) -> dict:
        wins = (int(self.completed.total)
                + int(self.redispatched_completed.total))
        outstanding = sum(len(d) for d in self._pending.values())
        flights = int(self.flights.total)
        attempts = int(self.attempts.total)
        request_closed = (int(self.completed.total)
                          + int(self.redispatched_completed.total)
                          + int(self.expired.total) + int(self.shed.total)
                          + int(self.failed.total)
                          + int(self.rejected.total))
        attempt_closed = (wins + int(self.attempt_shed.total)
                          + int(self.attempt_failed.total)
                          + int(self.cancelled_duplicates.total)
                          + int(self.blackholed.total))
        outstanding += self._relaying   # settled at the host, still in
        # the slow-relay pipe — no final outcome yet
        return {
            "flights": flights,
            "attempts": attempts,
            "completed": int(self.completed.total),
            "redispatched_completed": int(self.redispatched_completed.total),
            "expired": int(self.expired.total),
            "shed": int(self.shed.total),
            "failed": int(self.failed.total),
            "rejected": int(self.rejected.total),
            "attempt_shed": int(self.attempt_shed.total),
            "attempt_failed": int(self.attempt_failed.total),
            "cancelled_duplicates": int(self.cancelled_duplicates.total),
            "stranded_reclaimed": int(self.stranded_reclaimed.total),
            "blackholed": int(self.blackholed.total),
            "open": self.open_count,
            "relaying": self._relaying,
            "outstanding_attempts": outstanding,
            "request_ledger_ok": flights == request_closed + self.open_count,
            "attempt_ledger_ok": attempts == attempt_closed + outstanding,
        }

    def conservation_ok(self) -> bool:
        ledgers = self.conservation()
        return ledgers["request_ledger_ok"] and ledgers["attempt_ledger_ok"]
