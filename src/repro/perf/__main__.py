"""CLI: time the optimized hot paths against their pre-pass selves.

Usage:
    python -m repro.perf                  # table on stdout
    python -m repro.perf --json OUT.json  # also write repro-perf/1 JSON
    python -m repro.perf --quick          # shorter runs (CI smoke)
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from .harness import bench, to_payload, write_payload
from .reference import reference_mode
from .workloads import codec_workload, fig7_config


def run_suite(quick: bool = False):
    """Benchmark decode and fig7 in optimized and reference mode.

    Returns ``(results, derived, rows)`` — BenchResults, the speedup
    ratios for the baseline file, and printable table rows.
    """
    from ..jpeg.decoder import decode
    from ..workflows.inference import run_inference

    k = 3 if quick else 5
    min_time = 0.05 if quick else 0.2

    wl = codec_workload()
    units = {"bytes": float(wl.nbytes)}
    # Interleave the modes so slow machine drift biases neither side.
    news, olds = [], []
    for _ in range(1 if quick else 2):
        news.append(bench(lambda: decode(wl.data), name="codec.decode",
                          k=k, min_time=min_time, units=units))
        with reference_mode():
            olds.append(bench(lambda: decode(wl.data),
                              name="codec.decode_ref",
                              k=k, min_time=min_time, units=units))
    new_dec = min(news, key=lambda r: r.best_s)
    old_dec = min(olds, key=lambda r: r.best_s)
    # Bit-identical contract: same pixels either mode.
    with reference_mode():
        ref_pixels = decode(wl.data)
    if not np.array_equal(decode(wl.data), ref_pixels):
        raise AssertionError("decode output differs between modes")

    cfg = fig7_config()
    run_inference(cfg)  # warm both code and caches

    def time_fig7():
        t0 = time.perf_counter()
        result = run_inference(cfg)
        return time.perf_counter() - t0, result.throughput

    # Interleave the modes round-by-round so slow machine drift hits
    # both sides equally instead of biasing the ratio.
    reps = 1 if quick else 3
    with reference_mode():
        run_inference(cfg)  # warm the reference paths too
    new_runs, old_runs = [], []
    new_tp = old_tp = None
    for _ in range(reps):
        dt, new_tp = time_fig7()
        new_runs.append(dt)
        with reference_mode():
            dt, old_tp = time_fig7()
            old_runs.append(dt)
    if new_tp != old_tp:
        raise AssertionError(
            f"fig7 throughput differs between modes: {new_tp} vs {old_tp}")

    from .harness import BenchResult
    new_sim = BenchResult(name="sim.fig7", best_s=min(new_runs),
                          mean_s=sum(new_runs) / len(new_runs),
                          runs=tuple(new_runs), reps=1,
                          units={"images": new_tp * min(new_runs)})
    old_sim = BenchResult(name="sim.fig7_ref", best_s=min(old_runs),
                          mean_s=sum(old_runs) / len(old_runs),
                          runs=tuple(old_runs), reps=1,
                          units={"images": old_tp * min(old_runs)})

    derived = {
        "codec.decode_speedup": old_dec.best_s / new_dec.best_s,
        "sim.fig7_speedup": old_sim.best_s / new_sim.best_s,
    }
    rows = [
        ("JPEG decode (240x320 q80)",
         f"{wl.nbytes / new_dec.best_s / 1e6:.1f} MB/s",
         f"{wl.nbytes / old_dec.best_s / 1e6:.1f} MB/s",
         f"{derived['codec.decode_speedup']:.2f}x"),
        ("fig7 modeled cell (googlenet/dlbooster)",
         f"{new_sim.best_s:.2f} s",
         f"{old_sim.best_s:.2f} s",
         f"{derived['sim.fig7_speedup']:.2f}x"),
    ]
    return [new_dec, old_dec, new_sim, old_sim], derived, rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf", description=__doc__)
    parser.add_argument("--json", default=None,
                        help="write repro-perf/1 JSON here")
    parser.add_argument("--quick", action="store_true",
                        help="shorter runs (CI smoke profile)")
    args = parser.parse_args(argv)

    results, derived, rows = run_suite(quick=args.quick)
    widths = [max(len(r[i]) for r in rows) for i in range(4)]
    header = ("workload", "optimized", "reference", "speedup")
    widths = [max(w, len(h)) for w, h in zip(widths, header)]
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    print(fmt.format(*header))
    print(fmt.format(*("-" * w for w in widths)))
    for row in rows:
        print(fmt.format(*row))

    if args.json:
        write_payload(args.json, to_payload(results, derived))
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
