"""Minimal, honest microbenchmark harness.

Methodology (the same one ``timeit`` uses, made explicit):

* **Warmup** runs absorb one-time costs (LUT construction, numpy
  first-touch, bytecode specialization) so they are not billed to the
  steady state.
* **Calibration** picks an inner repetition count so one timed run lasts
  at least ``min_time`` — below that, clock granularity and interpreter
  jitter dominate.
* **Min-of-k**: the minimum over ``k`` timed runs estimates the true
  cost; scheduling noise is strictly additive, so the minimum is the
  least contaminated observation (means mix in unrelated OS activity).

Results serialize to the ``repro-perf/1`` JSON schema::

    {"schema": "repro-perf/1",
     "results": {"codec.decode": {"best_s": ..., "mean_s": ...,
                                  "runs": [...], "reps": ...,
                                  "units": {"bytes": 12338},
                                  "rate": {"bytes_per_s": ...}}},
     "derived": {"codec.decode_speedup": 3.4}}

``derived`` holds *ratios* (new vs. reference timed in one process),
which transfer across machines; ``check_regression`` compares those
against a committed baseline with a relative tolerance.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["SCHEMA", "BenchResult", "bench", "to_payload", "merge_payloads",
           "write_payload", "load_payload", "check_regression"]

SCHEMA = "repro-perf/1"


@dataclass(frozen=True)
class BenchResult:
    """One benchmark's timing: ``best_s`` is the headline number."""

    name: str
    best_s: float                    # min over runs, per single call
    mean_s: float                    # mean over runs, per single call
    runs: tuple[float, ...]          # per-call seconds, one entry per run
    reps: int                        # inner repetitions per timed run
    units: dict[str, float] = field(default_factory=dict)

    def rate(self) -> dict[str, float]:
        """Units per second at the best observed speed.

        A non-positive ``best_s`` (an instant sample — e.g. a sweep
        point that modeled zero work) has no finite rate; such results
        report no rates at all rather than dividing by zero or emitting
        ``Infinity`` (which strict JSON cannot carry).
        """
        if self.best_s <= 0:
            return {}
        return {f"{k}_per_s": v / self.best_s for k, v in self.units.items()}

    def to_dict(self) -> dict[str, Any]:
        return {"best_s": self.best_s, "mean_s": self.mean_s,
                "runs": list(self.runs), "reps": self.reps,
                "units": dict(self.units), "rate": self.rate()}


def bench(fn: Callable[[], Any], *, name: str = "bench", warmup: int = 1,
          k: int = 5, min_time: float = 0.05, max_reps: int = 1_000_000,
          units: Optional[dict[str, float]] = None) -> BenchResult:
    """Time ``fn()``: warmup, calibrate repetitions, min-of-``k``.

    ``units`` names what one call processes (e.g. ``{"bytes": 12338}``)
    so rates fall out of the timing.
    """
    if k < 1 or warmup < 0 or min_time <= 0:
        raise ValueError("bench: k >= 1, warmup >= 0, min_time > 0 required")
    perf = time.perf_counter
    for _ in range(warmup):
        fn()
    # Calibrate: grow reps until a run exceeds min_time (the first timed
    # probe doubles as the estimate, so calibration costs ~2*min_time).
    reps = 1
    while reps < max_reps:
        t0 = perf()
        for _ in range(reps):
            fn()
        elapsed = perf() - t0
        if elapsed >= min_time:
            break
        # Aim slightly past min_time to avoid re-probing repeatedly.
        scale = min_time / max(elapsed, 1e-9)
        reps = min(max_reps, max(reps + 1, math.ceil(reps * scale * 1.2)))
    runs = []
    for _ in range(k):
        t0 = perf()
        for _ in range(reps):
            fn()
        runs.append((perf() - t0) / reps)
    return BenchResult(name=name, best_s=min(runs),
                       mean_s=sum(runs) / len(runs), runs=tuple(runs),
                       reps=reps, units=dict(units or {}))


def to_payload(results: list[BenchResult],
               derived: Optional[dict[str, float]] = None) -> dict[str, Any]:
    """Pack results into a ``repro-perf/1`` document."""
    return {"schema": SCHEMA,
            "results": {r.name: r.to_dict() for r in results},
            "derived": dict(derived or {})}


def merge_payloads(*payloads: dict[str, Any]) -> dict[str, Any]:
    """Merge documents (later entries win on name collisions)."""
    merged: dict[str, Any] = {"schema": SCHEMA, "results": {}, "derived": {}}
    for p in payloads:
        if p.get("schema") != SCHEMA:
            raise ValueError(f"cannot merge schema {p.get('schema')!r}")
        merged["results"].update(p.get("results", {}))
        merged["derived"].update(p.get("derived", {}))
    return merged


def write_payload(path: str, payload: dict[str, Any],
                  merge_existing: bool = True) -> None:
    """Write (optionally merging into) a ``repro-perf/1`` JSON file."""
    if merge_existing:
        try:
            payload = merge_payloads(load_payload(path), payload)
        except FileNotFoundError:
            pass
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_payload(path: str) -> dict[str, Any]:
    """Read a ``repro-perf/1`` JSON document, validating its schema."""
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("schema") != SCHEMA:
        raise ValueError(f"{path}: expected schema {SCHEMA!r}, "
                         f"got {payload.get('schema')!r}")
    return payload


def check_regression(current: dict[str, Any], baseline: dict[str, Any],
                     tolerance: float = 0.30) -> list[str]:
    """Compare ``derived`` ratios against a baseline document.

    Returns a list of human-readable failures: one per derived metric
    present in both documents whose current value fell more than
    ``tolerance`` (relative) below the baseline.  Metrics only in one
    document are ignored — adding a benchmark must not break old
    baselines and vice versa.
    """
    failures = []
    base = baseline.get("derived", {})
    cur = current.get("derived", {})
    for key, base_val in sorted(base.items()):
        if key not in cur:
            continue
        floor = base_val * (1.0 - tolerance)
        if cur[key] < floor:
            failures.append(
                f"{key}: {cur[key]:.3f} < {floor:.3f} "
                f"(baseline {base_val:.3f} - {tolerance:.0%})")
    return failures
