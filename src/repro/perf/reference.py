"""Verbatim pre-optimization implementations + ``reference_mode()``.

Every function/method here is the implementation the wall-clock
performance pass replaced, copied unchanged (modulo the ``_ref``
suffix and imports) from the pre-pass tree.  ``reference_mode()``
monkeypatches them over the optimized versions so benchmarks can time
old and new **in the same process on the same machine** — the resulting
speedup ratio is what the committed perf baseline stores, because
ratios transfer across machines while absolute MB/s numbers do not.

Both implementations are bit-exact by contract (the optimized paths
consume identical bits, produce identical pixels/metrics and raise
identical errors), so benchmarks also assert output equality across the
mode switch.

The patch set covers three layers:

* codec — bit-by-bit Huffman ``decode``/``decode_block``, byte-at-a-time
  ``BitReader._pull_byte``, double-converting ``idct2_dequant``,
  full-frame-converting ``resize_bilinear``, stack-allocating
  ``planes_to_image``, per-block-copying ``entropy_decode``;
* sim kernel — ``Event.succeed``/``_run_callbacks`` via ``_push``,
  ``Timeout.__init__`` through ``Event.__init__``, lambda-based
  ``Process._resume``, ``Environment.run`` stepping one event per
  ``step()`` call, waiter-queue-roundtrip ``StorePut``/``StoreGet``,
  attribute-heavy ``Store._drain``;
* telemetry — eager-``insort`` ``LatencyRecorder.record``,
  ``max``/``min``-builtin ``TimeWeighted.set``, property-clock
  ``BusyTracker`` and ``Channel.put``/``get``.
"""

from __future__ import annotations

from bisect import insort
from contextlib import contextmanager
from typing import Any, Optional

import numpy as np

from ..jpeg import bitstream as _bitstream
from ..jpeg import cache as _jpeg_cache
from ..jpeg import decoder as _decoder
from ..jpeg import dct as _dct
from ..jpeg import huffman as _huffman
from ..jpeg import parallel as _parallel
from ..jpeg import resize as _resize
from ..jpeg.bitstream import BitReader, EndOfScan
from ..jpeg.color import upsample_420, ycbcr_to_rgb
from ..jpeg.dct import idct2
from ..jpeg.huffman import (EOB, ZRL, HuffmanTable, decode_magnitude)
from ..jpeg.jfif import JpegFormatError, ParsedJpeg
from ..sim import core as _core
from ..sim import monitor as _monitor
from ..sim import queues as _queues
from ..sim import resources as _resources
from ..sim.core import PENDING, PROCESSED, TRIGGERED, Event, SimulationError

__all__ = ["reference_mode"]


# --------------------------------------------------------------------------
# Codec layer
# --------------------------------------------------------------------------

def _pull_byte_ref(self) -> None:
    data, pos = self._data, self._pos
    if pos >= len(data):
        raise EndOfScan("out of data")
    byte = data[pos]
    pos += 1
    if byte == 0xFF:
        if pos >= len(data):
            raise EndOfScan("truncated after 0xFF")
        nxt = data[pos]
        if nxt == 0x00:
            pos += 1  # stuffed byte: 0xFF is data
        else:
            # A real marker terminates bit-reading here.
            self.marker_found = nxt
            raise EndOfScan(f"marker 0xFF{nxt:02X}")
    self._acc = (self._acc << 8) | byte
    self._nbits += 8
    self._pos = pos


def decode_block_ref(reader: BitReader, pred_dc: int,
                     dc_table: HuffmanTable, ac_table: HuffmanTable,
                     out: Optional[np.ndarray] = None
                     ) -> tuple[np.ndarray, int]:
    """Pre-pass decode_block: one symbol at a time via ``decode_ref``.

    (``out`` is accepted so optimized callers still work under
    reference_mode; the pre-pass allocation behaviour is preserved.)
    """
    zz = np.zeros(64, dtype=np.int32)
    ssss = dc_table.decode_ref(reader)
    diff = decode_magnitude(reader.read(ssss), ssss) if ssss else 0
    dc = pred_dc + diff
    zz[0] = dc

    k = 1
    while k < 64:
        rs = ac_table.decode_ref(reader)
        if rs == EOB:
            break
        run, ssss = rs >> 4, rs & 0x0F
        if ssss == 0:
            if rs != ZRL:
                raise ValueError(f"invalid AC symbol 0x{rs:02X}")
            k += 16
            continue
        k += run
        if k >= 64:
            raise ValueError("AC run overflows block")
        zz[k] = decode_magnitude(reader.read(ssss), ssss)
        k += 1
    if out is not None:
        out[:] = zz
    return zz, dc


def entropy_decode_ref(parsed: ParsedJpeg) -> list[np.ndarray]:
    """Pre-pass entropy_decode: per-block try/except and copy-out."""
    from ..jpeg.errors import (BadHuffmanCodeError, BadMarkerError,
                               TruncatedStreamError)
    frame, scan = parsed.frame, parsed.scan
    order = {c.component_id: i for i, c in enumerate(frame.components)}
    ncomp = len(frame.components)
    mcus_x, mcus_y = frame.mcus_per_row, frame.mcu_rows

    out: list[np.ndarray] = []
    for comp in frame.components:
        out.append(np.zeros(
            (mcus_y * comp.v_samp, mcus_x * comp.h_samp, 64),
            dtype=np.int32))

    scan_idx = [order[c.component_id] for c in scan.components]
    dc_tabs = []
    ac_tabs = []
    for c in scan.components:
        try:
            dc_tabs.append(parsed.dc_tables[c.dc_table_id])
            ac_tabs.append(parsed.ac_tables[c.ac_table_id])
        except KeyError as exc:
            raise JpegFormatError(f"missing Huffman table {exc}") from None

    reader = BitReader(parsed.data, parsed.scan_offset)
    pred = [0] * ncomp
    interval = parsed.restart_interval
    mcu_index = 0
    expected_rst = 0
    for my in range(mcus_y):
        for mx in range(mcus_x):
            if interval and mcu_index and mcu_index % interval == 0:
                try:
                    n = reader.align_and_consume_rst()
                except EndOfScan as exc:
                    raise BadMarkerError(
                        f"restart boundary at MCU {mcu_index}: {exc}"
                    ) from None
                if n != expected_rst:
                    raise BadMarkerError(
                        f"restart marker out of order: RST{n}, "
                        f"expected RST{expected_rst}")
                expected_rst = (expected_rst + 1) % 8
                pred = [0] * ncomp
            for si, ci in enumerate(scan_idx):
                comp = frame.components[ci]
                for by in range(comp.v_samp):
                    for bx in range(comp.h_samp):
                        try:
                            zz, pred[ci] = decode_block_ref(
                                reader, pred[ci], dc_tabs[si], ac_tabs[si])
                        except EndOfScan as exc:
                            raise TruncatedStreamError(
                                f"scan truncated in MCU {mcu_index}: {exc}"
                            ) from None
                        except JpegFormatError:
                            raise
                        except ValueError as exc:
                            raise BadHuffmanCodeError(
                                f"corrupt scan in MCU {mcu_index}: {exc}"
                            ) from None
                        out[ci][my * comp.v_samp + by,
                                mx * comp.h_samp + bx] = zz
            mcu_index += 1
    return out


def idct2_dequant_ref(qcoeffs: np.ndarray, qtable: np.ndarray) -> np.ndarray:
    """Pre-pass idct2_dequant: separate float64 conversions + idct2."""
    qtable = np.asarray(qtable, dtype=np.float64)
    if qtable.shape != (8, 8):
        raise ValueError(f"qtable must be (8, 8), got {qtable.shape}")
    return idct2(np.asarray(qcoeffs, dtype=np.float64) * qtable)


def coefficients_to_planes_ref(parsed, coeffs):
    """Pre-PR8 coefficients_to_planes: one idct2_dequant per component.

    Calls ``_decoder.idct2_dequant`` through the module attribute so it
    composes with the PR 5 ``idct2_dequant_ref`` patch — with both
    active, the full pre-pass per-component path replays.
    """
    frame = parsed.frame
    planes = []
    for comp, zz in zip(frame.components, coeffs):
        try:
            qtable = parsed.qtables[comp.qtable_id]
        except KeyError:
            raise JpegFormatError(
                f"missing quantization table {comp.qtable_id}") from None
        blocks = _decoder.zigzag_unflatten(zz)           # (bh, bw, 8, 8)
        pix = _decoder.idct2_dequant(blocks, qtable) + 128.0
        bh, bw = pix.shape[:2]
        plane = pix.transpose(0, 2, 1, 3).reshape(bh * 8, bw * 8)
        comp_h = -(-frame.height * comp.v_samp // frame.vmax)
        comp_w = -(-frame.width * comp.h_samp // frame.hmax)
        planes.append(np.clip(plane[:comp_h, :comp_w], 0.0, 255.0))
    return planes


def resize_bilinear_ref(img: np.ndarray, out_h: int,
                        out_w: int) -> np.ndarray:
    """Pre-pass resize_bilinear: converts the whole frame before gather."""
    img = np.asarray(img)
    if img.ndim not in (2, 3):
        raise ValueError(f"expected 2-D or 3-D image, got {img.shape}")
    src_h, src_w = img.shape[:2]
    ylo, yhi, yf = _resize._axis_weights(src_h, out_h)
    xlo, xhi, xf = _resize._axis_weights(src_w, out_w)

    work = img.astype(np.float64)
    top = work[ylo]
    bot = work[yhi]
    if img.ndim == 3:
        yf_ = yf[:, None, None]
        xf_ = xf[None, :, None]
    else:
        yf_ = yf[:, None]
        xf_ = xf[None, :]
    rows = top * (1 - yf_) + bot * yf_
    left = rows[:, xlo]
    right = rows[:, xhi]
    out = left * (1 - xf_) + right * xf_
    if img.dtype == np.uint8:
        return np.clip(np.round(out), 0, 255).astype(np.uint8)
    return out


def planes_to_image_ref(parsed: ParsedJpeg,
                        planes: list[np.ndarray]) -> np.ndarray:
    """Pre-pass planes_to_image: np.stack + ycbcr_to_rgb round trip."""
    frame = parsed.frame
    if len(planes) == 1:
        return np.clip(np.round(planes[0]), 0, 255).astype(np.uint8)
    if len(planes) != 3:
        raise JpegFormatError(f"unsupported component count {len(planes)}")
    h, w = frame.height, frame.width
    full = []
    for comp, plane in zip(frame.components, planes):
        if plane.shape == (h, w):
            full.append(plane)
        else:
            full.append(upsample_420(plane, h, w))
    ycc = np.stack(full, axis=-1)
    return ycbcr_to_rgb(ycc)


# --------------------------------------------------------------------------
# Sim kernel
# --------------------------------------------------------------------------

def _succeed_ref(self, value: Any = None) -> Event:
    if self._state != PENDING:
        raise SimulationError("event already triggered")
    self._value = value
    self._ok = True
    self._state = TRIGGERED
    self.env._push(self)
    return self


def _run_callbacks_ref(self) -> None:
    self._state = PROCESSED
    callbacks, self.callbacks = self.callbacks, []
    for cb in callbacks:
        cb(self)


def _timeout_init_ref(self, env, delay: float, value: Any = None):
    if delay < 0:
        raise ValueError(f"negative delay {delay!r}")
    Event.__init__(self, env)
    self.delay = delay
    self._value = value
    self._ok = True
    self._state = TRIGGERED
    env._push(self, delay)


def _resume_ref(self, event: Event) -> None:
    self._waiting_on = None
    if event._ok:
        self._step(lambda: self.generator.send(event._value))
    else:
        self._step(lambda: self.generator.throw(event._value))


def _run_ref(self, until=None) -> Any:
    if isinstance(until, Event):
        stop_evt = until
        while not stop_evt.triggered:
            if not self._queue:
                raise SimulationError(
                    "simulation ran dry before the awaited event fired")
            self.step()
        if not stop_evt._ok:
            raise stop_evt._value
        return stop_evt._value

    if until is not None:
        horizon = float(until)
        if horizon < self._now:
            raise ValueError(
                f"until={horizon} is in the past (now={self._now})")
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        self._now = max(self._now, horizon)
        return None

    while self._queue:
        self.step()
    return None


def _storeput_init_ref(self, store, item: Any):
    Event.__init__(self, store.env)
    self.item = item
    store._put_waiters.append(self)
    store._drain()


def _storeget_init_ref(self, store, filter=None):
    Event.__init__(self, store.env)
    self.filter = filter
    store._get_waiters.append(self)
    store._drain()


def _store_drain_ref(self) -> None:
    progressed = True
    while progressed:
        progressed = False
        # Admit puts while there is room.
        while self._put_waiters and len(self.items) < self.capacity:
            putter = self._put_waiters.popleft()
            self.items.append(putter.item)
            putter.succeed()
            progressed = True
        # Serve getters in arrival order; a filtered getter that cannot
        # match stays at the head (strict FIFO, no overtaking).
        while self._get_waiters:
            getter = self._get_waiters[0]
            if self._match_get(getter):
                self._get_waiters.popleft()
                progressed = True
            else:
                break


# --------------------------------------------------------------------------
# Telemetry
# --------------------------------------------------------------------------

def _tw_set_ref(self, value: float) -> None:
    now = self.env.now
    self._area += self._value * (now - self._last_t)
    self._last_t = now
    self._value = float(value)
    self.max_value = max(self.max_value, self._value)
    self.min_value = min(self.min_value, self._value)


def _bt_begin_ref(self, category: str = "work") -> int:
    token = self._next_token
    self._next_token += 1
    self._open[token] = (category, self.env.now)
    return token


def _bt_end_ref(self, token: int) -> None:
    category, start = self._open.pop(token)
    self._busy[category] = self._busy.get(category, 0.0) + (
        self.env.now - start)


def _lr_record_ref(self, latency: float, trace_id=None) -> None:
    if latency < 0:
        raise ValueError(f"negative latency {latency}")
    self._count += 1
    self._sum += latency
    if latency < self._min:
        self._min = latency
    if latency > self._max:
        self._max = latency
    entry = (latency, self._count, trace_id)
    if len(self._sorted) < self._max_samples:
        insort(self._sorted, entry)
        return
    j = self._rng.randrange(self._count)
    if j < self._max_samples:
        del self._sorted[j]
        insort(self._sorted, entry)


def _channel_put_ref(self, item: Any):
    if self._rejects_at_admit(item):
        return
    yield self._store.put((self.env.now, item))
    self.put_count += 1
    self.occupancy.set(len(self._store))


def _channel_get_ref(self):
    while True:
        stamped = yield self._store.get()
        enq_t, item = stamped
        if self.shed is not None and self.shed.drop_expired_at_dequeue \
                and self.shed.expired(item, self.env.now):
            self.occupancy.set(len(self._store))
            self._shed_item(item, "dequeue")
            continue
        self.get_count += 1
        self.wait.record(self.env.now - enq_t)
        self.occupancy.set(len(self._store))
        return item


def _decode_bitwise(self, reader: BitReader) -> int:
    """Pre-pass HuffmanTable.decode: delegate straight to decode_ref
    (the 8-bit lookahead fast path did not exist)."""
    return HuffmanTable.decode_ref(self, reader)


# --------------------------------------------------------------------------
# The mode switch
# --------------------------------------------------------------------------

# (object-or-module, attribute, reference implementation).  Module-level
# functions must be patched at every `from x import f` binding site;
# class methods patch once and apply everywhere.
_PATCHES: list[tuple[Any, str, Any]] = [
    # codec
    (_jpeg_cache, "_BYPASS", True),     # no memoized decodes in A/B runs
    (_bitstream.BitReader, "_pull_byte", _pull_byte_ref),
    (HuffmanTable, "decode", _decode_bitwise),
    (_huffman, "decode_block", decode_block_ref),
    (_decoder, "decode_block", decode_block_ref),
    (_parallel, "decode_block", decode_block_ref),
    (_decoder, "entropy_decode", entropy_decode_ref),
    (_dct, "idct2_dequant", idct2_dequant_ref),
    (_decoder, "idct2_dequant", idct2_dequant_ref),
    (_decoder, "coefficients_to_planes", coefficients_to_planes_ref),
    (_resize, "resize_bilinear", resize_bilinear_ref),
    (_decoder, "resize_bilinear", resize_bilinear_ref),
    (_decoder, "planes_to_image", planes_to_image_ref),
    # sim kernel — _FORCE_HEAP pins new Environments to the pre-pass
    # binary-heap scheduler so calendar migration can't occur mid-A/B.
    (_core, "_FORCE_HEAP", True),
    (_core.Event, "succeed", _succeed_ref),
    (_core.Event, "_run_callbacks", _run_callbacks_ref),
    (_core.Timeout, "__init__", _timeout_init_ref),
    (_core.Process, "_resume", _resume_ref),
    (_core.Environment, "run", _run_ref),
    (_resources.StorePut, "__init__", _storeput_init_ref),
    (_resources.StoreGet, "__init__", _storeget_init_ref),
    (_resources.Store, "_drain", _store_drain_ref),
    # telemetry
    (_monitor.TimeWeighted, "set", _tw_set_ref),
    (_monitor.BusyTracker, "begin", _bt_begin_ref),
    (_monitor.BusyTracker, "end", _bt_end_ref),
    (_monitor.LatencyRecorder, "record", _lr_record_ref),
    (_queues.Channel, "put", _channel_put_ref),
    (_queues.Channel, "get", _channel_get_ref),
]

# fpga.decoder re-binds several jpeg names at import time; patch those
# sites too (imported lazily to dodge a circular import at module load).


def _fpga_patches() -> list[tuple[Any, str, Any]]:
    from ..fpga import decoder as _fpga_decoder
    return [
        (_fpga_decoder, "entropy_decode", entropy_decode_ref),
        (_fpga_decoder, "coefficients_to_planes", coefficients_to_planes_ref),
        (_fpga_decoder, "planes_to_image", planes_to_image_ref),
        (_fpga_decoder, "resize_bilinear", resize_bilinear_ref),
    ]


@contextmanager
def reference_mode():
    """Swap every optimized hot path for its pre-pass implementation.

    Usage::

        new = bench(lambda: decode(data))
        with reference_mode():
            old = bench(lambda: decode(data))
        speedup = old.best_s / new.best_s

    Not reentrant and not thread-safe (it mutates module/class
    attributes); restores the optimized implementations on exit even if
    the body raises.
    """
    patches = _PATCHES + _fpga_patches()
    saved = [(obj, attr, getattr(obj, attr)) for obj, attr, _ in patches]
    try:
        for obj, attr, fn in patches:
            setattr(obj, attr, fn)
        yield
    finally:
        for obj, attr, fn in saved:
            setattr(obj, attr, fn)
