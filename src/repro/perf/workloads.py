"""Standard benchmark workloads — one definition, every consumer.

Benchmarks, the CI perf-smoke job and ``python -m repro.perf`` must all
measure the same thing or their numbers cannot be compared; these
constructors are that single definition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CodecWorkload", "codec_workload", "fig7_config",
           "FIG7_BATCH", "FIG7_WARMUP_S", "FIG7_MEASURE_S"]


@dataclass(frozen=True)
class CodecWorkload:
    """A JPEG to decode plus its provenance."""

    data: bytes            # encoded JPEG stream
    height: int
    width: int
    quality: int

    @property
    def nbytes(self) -> int:
        return len(self.data)


def codec_workload(height: int = 240, width: int = 320,
                   quality: int = 80, seed: int = 7) -> CodecWorkload:
    """The decode benchmark input: a synthetic photo, 4:2:0, Annex-K
    tables (the common case the lookahead LUT cache is built for)."""
    from ..data.datasets import synthetic_photo
    from ..jpeg.encoder import encode
    img = synthetic_photo(np.random.default_rng(seed), height, width)
    return CodecWorkload(data=encode(img, quality=quality),
                         height=height, width=width, quality=quality)


# fig7 benchmark parameters: long enough that kernel throughput
# dominates, short enough for CI (a few seconds per mode).
FIG7_BATCH = 8
FIG7_WARMUP_S = 0.8
FIG7_MEASURE_S = 2.5


def fig7_config(model: str = "googlenet", backend: str = "dlbooster"):
    """The sim-kernel benchmark: one fig7 inference cell, modeled mode."""
    from ..workflows.inference import InferenceConfig
    return InferenceConfig(model=model, backend=backend,
                           batch_size=FIG7_BATCH, warmup_s=FIG7_WARMUP_S,
                           measure_s=FIG7_MEASURE_S)
