"""Microbenchmark harness and pre-PR reference implementations.

``repro.perf`` answers one question reproducibly: *how much faster is
the current code than the implementation it replaced, on this machine,
right now?*  Three pieces:

* :mod:`repro.perf.harness` — ``bench()``: warmup, calibrated inner
  repetitions, min-of-k timing, machine-readable results
  (``repro-perf/1`` JSON), and a tolerance-based regression checker.
* :mod:`repro.perf.reference` — verbatim pre-optimization
  implementations of every hot path this pass touched, plus
  ``reference_mode()``, a context manager that swaps them in so old and
  new can be timed back-to-back in one process.  Speedup *ratios* are
  machine-portable in a way absolute MB/s numbers are not, so the
  committed baseline (``benchmarks/perf_baseline.json``) stores ratios.
* :mod:`repro.perf.workloads` — the standard inputs every benchmark
  uses (a synthetic photo JPEG, a short fig7 simulation config).

Run ``python -m repro.perf`` for a human-readable table.
"""

from .harness import (BenchResult, bench, check_regression, load_payload,
                      merge_payloads, to_payload, write_payload)
from .reference import reference_mode

__all__ = ["BenchResult", "bench", "check_regression", "load_payload",
           "merge_payloads", "to_payload", "write_payload",
           "reference_mode"]
