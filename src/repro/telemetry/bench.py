"""BENCH_*.json emitters — the repo's machine-readable perf trajectory.

Each growth PR that claims a performance-relevant change records a
baseline here: a flat ``{metric_name: number}`` document the next PR
can diff against.  CI runs the benchmark suite's quick profile, the
telemetry benchmark writes ``BENCH_PR3.json``, and the workflow uploads
every ``BENCH_*.json`` as an artifact — so the trajectory is visible
per-commit without trawling logs.
"""

from __future__ import annotations

import json
import math
from typing import Optional

__all__ = ["emit_bench", "load_bench", "BENCH_SCHEMA"]

BENCH_SCHEMA = "dlbooster-bench/1"


def _finite(value):
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def emit_bench(metrics: dict, path: str, *, label: str,
               meta: Optional[dict] = None) -> dict:
    """Write one benchmark baseline document.

    ``metrics`` maps flat metric names (``infer.p99_ms``,
    ``train.throughput``) to numbers; non-finite values are nulled so
    the file stays strict JSON.  Returns the document written.
    """
    doc = {
        "schema": BENCH_SCHEMA,
        "label": label,
        "metrics": {name: _finite(value)
                    for name, value in sorted(metrics.items())},
    }
    if meta:
        doc["meta"] = meta
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    return doc


def load_bench(path: str) -> dict:
    """Read a baseline back (schema-checked)."""
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"{path}: not a {BENCH_SCHEMA} document")
    return doc
