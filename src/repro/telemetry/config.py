"""TelemetryConfig — one knob block for workflow observability.

Handed to :func:`repro.workflows.run_training` /
:func:`repro.workflows.run_inference` via their configs' ``telemetry``
field.  When present, the workflow builds its whole stack inside an
installed :class:`~repro.telemetry.MetricsRegistry` (every instrument
lands in the namespace), runs a
:class:`~repro.telemetry.QueueDepthSampler` over the hot queues (NIC RX
ring, hugepage free/full batch queues, per-GPU Trans Queues), and
attaches ``{"registry", "metrics", "queue_depths"}`` to the result's
``extras["telemetry"]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["TelemetryConfig"]


@dataclass(frozen=True)
class TelemetryConfig:
    """Observability options for one workflow run.

    ``sample_interval_s`` — queue-depth sampling period (sim seconds).
    ``max_points`` — per-series memory bound; the sampler decimates and
    doubles its interval when a series would exceed it.
    ``export_path`` — when set, the registry snapshot plus depth series
    are written there as JSON after the run.
    ``trace_counters`` — when the run also has a tracer, merge the depth
    series into it as Chrome-trace counter tracks.
    """

    sample_interval_s: float = 0.02
    max_points: int = 4096
    export_path: Optional[str] = None
    trace_counters: bool = True
