"""QueueDepthSampler — periodic depth/occupancy time series.

Instantaneous queue depth is the pipeline's blood pressure: a Trans
Queue pinned at its capacity names the bottleneck, a hugepage pool
pinned at ``unit_count`` explains reader stalls, an RX ring ramping to
its cap predicts drops.  The sim layer's :class:`~repro.sim.TimeWeighted`
gives means and extrema but no *trajectory*; this sampler records one,
as ``(sim_time, value)`` series per watched probe, with bounded memory.

Memory bound: when any series reaches ``max_points`` the sampler halves
every series (keeping every other point) and doubles its interval —
classic trace decimation, so an arbitrarily long run costs a fixed
amount of memory and keeps uniform coverage of the whole run rather
than truncating the tail (the same head-bias the latency recorder fix
removed).

Series merge into a Chrome-trace :class:`~repro.sim.Tracer` as counter
tracks via :meth:`to_trace`, and ride along registry JSON exports via
:meth:`series`.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim import Environment

__all__ = ["QueueDepthSampler"]


class QueueDepthSampler:
    """Samples registered probes every ``interval_s`` sim seconds."""

    def __init__(self, env: Environment, interval_s: float = 0.01,
                 max_points: int = 4096, name: str = "depth-sampler"):
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        if max_points < 8:
            raise ValueError("max_points must be >= 8")
        self.env = env
        self.name = name
        self.interval_s = float(interval_s)
        self.max_points = int(max_points)
        self.decimations = 0
        self._probes: list[tuple[str, Callable[[], float]]] = []
        self._series: dict[str, list[tuple[float, float]]] = {}
        self._proc = None

    # -- registration --------------------------------------------------
    def watch(self, name: str, probe: Callable[[], float]) -> None:
        """Watch an arbitrary zero-arg probe under ``name``."""
        if name in self._series:
            raise ValueError(f"duplicate probe name {name!r}")
        self._probes.append((name, probe))
        self._series[name] = []

    def watch_channel(self, channel, name: Optional[str] = None) -> None:
        """Watch a :class:`~repro.sim.Channel`'s instantaneous depth."""
        self.watch(name or f"{channel.name}.depth",
                   lambda ch=channel: float(len(ch)))

    def watch_pair(self, pair) -> None:
        """Watch both sides of a :class:`~repro.sim.QueuePair`."""
        self.watch_channel(pair.free)
        self.watch_channel(pair.full)

    def watch_pool(self, pool, name: Optional[str] = None) -> None:
        """Watch a :class:`~repro.memory.MemManager`'s units in use."""
        self.watch(name or f"{pool.name}.in_use",
                   lambda p=pool: float(p.in_use))

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        if self._proc is not None:
            raise RuntimeError("sampler already started")
        self._proc = self.env.process(self._run(), name=self.name)

    def _run(self):
        while True:
            now = self.env.now
            for name, probe in self._probes:
                self._series[name].append((now, float(probe())))
            if any(len(s) >= self.max_points for s in self._series.values()):
                self._decimate()
            yield self.env.timeout(self.interval_s)

    def _decimate(self) -> None:
        for name, series in self._series.items():
            self._series[name] = series[::2]
        self.interval_s *= 2.0
        self.decimations += 1

    # -- access / export -----------------------------------------------
    def series(self) -> dict[str, list[tuple[float, float]]]:
        """Copy of every series: name -> [(sim_time, value), ...]."""
        return {name: list(points) for name, points in self._series.items()}

    def last(self, name: str) -> float:
        points = self._series[name]
        return points[-1][1] if points else float("nan")

    def mean(self, name: str) -> float:
        points = self._series[name]
        if not points:
            return float("nan")
        return sum(v for _, v in points) / len(points)

    def peak(self, name: str) -> float:
        points = self._series[name]
        return max((v for _, v in points), default=float("nan"))

    def to_trace(self, tracer) -> None:
        """Merge every series into ``tracer`` as counter tracks."""
        for name, points in self._series.items():
            for when, value in points:
                tracer.counter(name, {"depth": value}, at=when)
