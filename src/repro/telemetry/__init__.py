"""Unified telemetry: metrics registry, queue-depth sampling, exports.

The observability substrate the perf trajectory is judged against:

- :class:`MetricsRegistry` — one hierarchical namespace over every
  sim-layer instrument, with typed snapshots, JSON export and
  Chrome-trace counter merging.
- :class:`QueueDepthSampler` — bounded-memory depth/occupancy time
  series for channels, queue pairs and the hugepage pool.
- :class:`TelemetryConfig` — the workflow-facing knob block.
- :func:`emit_bench` / :func:`load_bench` — ``BENCH_*.json`` perf
  baselines consumed by CI.
"""

from .bench import BENCH_SCHEMA, emit_bench, load_bench
from .config import TelemetryConfig
from .registry import MetricsRegistry
from .sampler import QueueDepthSampler

__all__ = [
    "MetricsRegistry",
    "QueueDepthSampler",
    "TelemetryConfig",
    "emit_bench",
    "load_bench",
    "BENCH_SCHEMA",
]
