"""MetricsRegistry — one hierarchical namespace for every instrument.

The sim layer's instruments (:class:`~repro.sim.Counter`,
:class:`~repro.sim.TimeWeighted`, :class:`~repro.sim.BusyTracker`,
:class:`~repro.sim.LatencyRecorder`, :class:`~repro.sim.IntervalRate`)
are constructed ad hoc all over ``host/``, ``net/``, ``fpga/``,
``backends/`` and ``workflows/``.  A :class:`MetricsRegistry` unifies
them: while installed (``with registry.installed(): ...build...``) every
instrument auto-registers under its dotted name (``nic.rx.wait``,
``fpga-reader.latency``, ``gpu0.trans.full.occupancy``, ...), and the
registry can then snapshot the whole pipeline's state as one nested
document, export it as JSON, or merge it into a Chrome-trace
:class:`~repro.sim.Tracer` as counter tracks.

Names are the namespace: dots separate levels, and ``subtree("nic")``
selects ``nic`` and everything below it.  Duplicate names (two channels
both called ``qpair.free``) get a ``#2``/``#3`` suffix rather than
silently shadowing each other.
"""

from __future__ import annotations

import json
import math
from contextlib import contextmanager
from typing import Optional

from ..sim.monitor import (BusyTracker, Counter, IntervalRate,
                           LatencyRecorder, TimeWeighted,
                           set_active_registry)

__all__ = ["MetricsRegistry"]

_QUANTILES = (50.0, 90.0, 99.0, 99.9)


class MetricsRegistry:
    """A named collection of measurement instruments with snapshot export."""

    def __init__(self, name: str = "metrics"):
        self.name = name
        self._metrics: dict[str, object] = {}

    # -- population ----------------------------------------------------
    def register(self, instrument, name: Optional[str] = None):
        """Adopt an instrument under ``name`` (default: its own ``.name``).

        Registering the same object twice is a no-op; a *different*
        object under a taken name gets a ``#2``-style suffix so both
        stay visible.  Returns the instrument for chaining.
        """
        key = name if name is not None else getattr(
            instrument, "name", type(instrument).__name__)
        existing = self._metrics.get(key)
        if existing is instrument:
            return instrument
        if existing is not None:
            base, n = key, 2
            while key in self._metrics:
                if self._metrics[key] is instrument:
                    return instrument
                key = f"{base}#{n}"
                n += 1
        self._metrics[key] = instrument
        return instrument

    @contextmanager
    def installed(self):
        """Make this registry the ambient auto-registration sink: every
        instrument constructed inside the block registers itself."""
        previous = set_active_registry(self)
        try:
            yield self
        finally:
            set_active_registry(previous)

    # -- factories (explicit registration, for new code) ----------------
    def counter(self, env, name: str) -> Counter:
        return self.register(Counter(env, name=name))

    def gauge(self, env, name: str, initial: float = 0.0) -> TimeWeighted:
        return self.register(TimeWeighted(env, initial, name=name))

    def busy(self, env, name: str) -> BusyTracker:
        return self.register(BusyTracker(env, name=name))

    def latency(self, name: str, max_samples: int = 200_000
                ) -> LatencyRecorder:
        return self.register(LatencyRecorder(name=name,
                                             max_samples=max_samples))

    def rate(self, env, name: str) -> IntervalRate:
        return self.register(IntervalRate(env, name=name))

    # -- lookup --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str):
        return self._metrics[name]

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def subtree(self, prefix: str) -> dict[str, object]:
        """Every instrument at or below ``prefix`` in the namespace."""
        dotted = prefix + "."
        return {key: inst for key, inst in self._metrics.items()
                if key == prefix or key.startswith(dotted)}

    def latencies(self) -> dict[str, LatencyRecorder]:
        """Every latency recorder in the namespace, name-sorted — the
        per-stage reservoirs the sweep harvester merges and the KPI
        layer reads percentiles from."""
        return {key: inst for key, inst in sorted(self._metrics.items())
                if isinstance(inst, LatencyRecorder)}

    # -- snapshot / export ---------------------------------------------
    def snapshot(self) -> dict[str, dict]:
        """One typed stats dict per metric, keyed by namespace name."""
        return {key: _snap(inst)
                for key, inst in sorted(self._metrics.items())}

    def to_json(self, path: Optional[str] = None, indent: int = 2,
                extra: Optional[dict] = None) -> str:
        """Serialize :meth:`snapshot` (plus optional ``extra`` document
        sections, e.g. queue-depth series) as JSON; write when a path is
        given.  Returns the JSON text."""
        doc = {"schema": "repro-metrics/1", "registry": self.name,
               "metrics": self.snapshot()}
        if extra:
            doc.update(extra)
        text = json.dumps(_scrub(doc), indent=indent, allow_nan=False,
                          default=_jsonable)
        if path is not None:
            with open(path, "w") as fh:
                fh.write(text)
        return text

    def to_trace(self, tracer) -> None:
        """Merge the current scalar state into a Chrome-trace tracer as
        one counter sample per metric (time-series merging is the
        :class:`~repro.telemetry.QueueDepthSampler`'s job)."""
        for key, stats in self.snapshot().items():
            values = {label: value for label, value in stats.items()
                      if isinstance(value, (int, float))
                      and not isinstance(value, bool)}
            if values:
                tracer.counter(f"metric:{key}", values)


def _snap(inst) -> dict:
    if isinstance(inst, Counter):
        return {"type": "counter", "total": inst.total,
                "rate": inst.rate()}
    if isinstance(inst, TimeWeighted):
        return {"type": "gauge", "value": inst.value, "mean": inst.mean(),
                "max": inst.max_value, "min": inst.min_value}
    if isinstance(inst, BusyTracker):
        return {"type": "busy", "busy_seconds": inst.busy_seconds(),
                "cores": inst.cores(), "breakdown": inst.breakdown()}
    if isinstance(inst, LatencyRecorder):
        out = {"type": "latency", "count": inst.count,
               "mean": inst.mean(), "min": inst.min(), "max": inst.max(),
               "exact": inst.is_exact,
               "sample_count": inst.sample_count}
        for q in _QUANTILES:
            out[f"p{q:g}"] = inst.percentile(q)
        return out
    if isinstance(inst, IntervalRate):
        return {"type": "interval_rate", "total": inst.total}
    return {"type": type(inst).__name__, "repr": repr(inst)}


def _scrub(value):
    """NaN/Inf (empty recorders, unbounded capacities) -> null, so the
    export is strict JSON any tool can load."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: _scrub(v) for key, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_scrub(v) for v in value]
    return value


def _jsonable(value):
    try:
        return float(value)
    except (TypeError, ValueError):
        return repr(value)
