"""Warm persistent worker pools for sweep fan-out.

The PR 8 runner paid full process-startup tax on every ``run_sweep``
call: a fresh ``multiprocessing.Pool`` whose workers each lazily
imported the point-runner stack (simulation kernel, workflows, fleet,
telemetry) on their first task, then threw it all away at the end of
the call.  Capacity-planner probes — a dozen short sweeps in a binary
search — paid that tax per probe.

:class:`WorkerPool` keeps the workers warm instead:

* **fork platforms**: the parent warms *itself* first (imports the
  runner registry and its heavy dependencies, materializes the default
  functional JPEG corpus) and then forks, so workers inherit everything
  copy-on-write — zero per-worker warmup;
* **spawn platforms**: a pool initializer performs the same warmup once
  per worker process, at pool construction instead of first-task time;
* either way the parent's once-per-process scheduler calibration
  verdict (see :func:`repro.sim.core.scheduler_calibration`) is pinned
  into every worker, so workers neither re-measure nor diverge from the
  parent's choice;
* tasks are dispatched in chunks sized to the task/worker ratio rather
  than one IPC round-trip per point;
* :func:`shared_pool` keeps one pool per (processes, start_method)
  alive across ``run_sweep`` calls — the planner's probes and repeated
  CLI sweeps amortize startup to zero — with atexit teardown.

Pools never change *what* a sweep computes: workers run the same
``_execute`` path and the rollup identity contract (parallel ==
serial, byte for byte) is asserted by tests and CI against both fresh
and reused pools.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from typing import Any, Callable, Iterable, Iterator, Optional

__all__ = ["WorkerPool", "shared_pool", "shutdown_shared_pools",
           "resolve_start_method", "warm_process", "effective_cores"]

_WARMED = False


def resolve_start_method(start_method: Optional[str] = None) -> str:
    """Default to fork where the OS offers it (cheapest warm start)."""
    if start_method is not None:
        return start_method
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def warm_process() -> None:
    """Pre-import the point-runner stack and materialize the shared
    functional JPEG corpus in *this* process.  Idempotent; in the pool
    parent it runs before forking so the warm state is copy-on-write
    free in every fork worker."""
    global _WARMED
    if _WARMED:
        return
    from . import points  # noqa: F401  — fills POINT_RUNNERS
    # The heavy stacks the standard runners import lazily per call:
    from .. import telemetry            # noqa: F401
    from ..workflows import inference   # noqa: F401
    from ..experiments import fleet     # noqa: F401
    from ..data.datasets import default_functional_corpus
    default_functional_corpus()
    _WARMED = True


def _worker_init(verdict: Optional[str], preload: bool) -> None:
    """Pool initializer: pin the parent's scheduler verdict and (for
    spawn workers, which inherit nothing) perform the warmup."""
    from ..sim.core import scheduler_calibration
    if verdict is not None:
        scheduler_calibration(force=verdict)
    if preload:
        warm_process()


class WorkerPool:
    """A warm, reusable process pool for sweep point execution.

    Parameters
    ----------
    processes:
        Worker count (>= 1).
    start_method:
        ``"fork"``/``"spawn"``/``"forkserver"``; default picks fork
        when available.
    warm:
        Pre-import the runner stack and pre-build the functional corpus
        (parent-side before fork; initializer-side on spawn).  Disable
        only in tests that measure cold behaviour.
    """

    def __init__(self, processes: int,
                 start_method: Optional[str] = None,
                 warm: bool = True):
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        self.processes = processes
        self.start_method = resolve_start_method(start_method)
        self._closed = False
        verdict = None
        if warm:
            from ..sim.core import scheduler_calibration
            verdict = scheduler_calibration()
            if self.start_method == "fork":
                # Warm the parent, fork the warmth (copy-on-write).
                warm_process()
        ctx = multiprocessing.get_context(self.start_method)
        preload = warm and self.start_method != "fork"
        self._pool = ctx.Pool(processes=processes,
                              initializer=_worker_init,
                              initargs=(verdict, preload))

    @property
    def closed(self) -> bool:
        return self._closed

    def run(self, func: Callable[[Any], Any], tasks: Iterable[Any],
            chunksize: Optional[int] = None) -> Iterator[Any]:
        """``imap_unordered`` with density-aware chunking.

        Chunks target ~4 chunks per worker so long sweeps batch their
        IPC while short sweeps still load-balance; callers that need
        ordering tag tasks with indices (the sweep runner does).
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        tasks = list(tasks)
        if chunksize is None:
            chunksize = max(1, len(tasks) // (self.processes * 4))
        return self._pool.imap_unordered(func, tasks, chunksize=chunksize)

    def close(self) -> None:
        """Terminate the workers; the pool cannot be reused."""
        if not self._closed:
            self._closed = True
            self._pool.terminate()
            self._pool.join()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# -- shared (cross-call) pools ---------------------------------------------

_SHARED: dict[tuple[int, str], WorkerPool] = {}
_ATEXIT_REGISTERED = False


def shared_pool(processes: int,
                start_method: Optional[str] = None) -> WorkerPool:
    """The process-wide warm pool for (processes, start_method).

    Created on first use, then reused by every subsequent
    ``run_sweep(..., reuse_pool=True)`` — the capacity planner's probe
    loop and repeated CLI sweeps pay pool startup once per process.
    Torn down at interpreter exit (or explicitly via
    :func:`shutdown_shared_pools`).
    """
    global _ATEXIT_REGISTERED
    method = resolve_start_method(start_method)
    key = (processes, method)
    pool = _SHARED.get(key)
    if pool is None or pool.closed:
        pool = WorkerPool(processes, start_method=method)
        _SHARED[key] = pool
        if not _ATEXIT_REGISTERED:
            atexit.register(shutdown_shared_pools)
            _ATEXIT_REGISTERED = True
    return pool


def shutdown_shared_pools() -> None:
    """Close every shared pool (idempotent)."""
    for pool in list(_SHARED.values()):
        pool.close()
    _SHARED.clear()


def effective_cores() -> int:
    """CPU cores actually available to this process — the honest upper
    bound on parallel sweep speedup (affinity-aware where the OS
    exposes it)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:
        return os.cpu_count() or 1
