"""Packed zero-copy result transfer for sweep workers.

Shipping a worker's harvest back to the parent used to pickle whole
``LatencyRecorder`` object graphs — one Python tuple per reservoir
entry, each pickled element by element — plus a nested dict per
``repro-metrics/1`` snapshot.  This module flattens both into compact
buffers at the process boundary:

* a reservoir becomes one packed ``!dqq`` byte string (24 bytes per
  entry: latency, seq, trace_id) plus a one-byte-per-entry presence
  flag for ``trace_id`` (so ``None`` survives exactly), and the exact
  scalar accumulators (count, sum terms, min, max, cap);
* a metrics snapshot becomes one zlib-compressed JSON byte string.

On the parent side, :func:`merge_packed` folds any number of packed
reservoirs into a single :class:`LatencyRecorder` **vectorized**: entry
buffers are concatenated and viewed through numpy, the content-keyed
crc32 bottom-k selection of ``LatencyRecorder.merge()`` is computed
with a table-driven vectorized crc32, and the survivors are sorted with
one lexsort.  Selection semantics are byte-identical to folding the
recorders pairwise through ``merge()``: bottom-k under a total order is
associative, so the global bottom-k over the union equals any sequence
of pairwise bottom-k folds.  The serial sweep path keeps using the
pairwise merge, which makes the serial-vs-parallel identity check a
cross-validation of the two implementations on every run.
"""

from __future__ import annotations

import json
import math
import struct
import zlib
from dataclasses import dataclass
from random import Random
from typing import Any, Optional

import numpy as np

from ..sim.monitor import LatencyRecorder

__all__ = ["PackedRecorder", "pack_recorder", "unpack_recorder",
           "merge_packed", "pack_metrics", "unpack_metrics",
           "encode_result", "decode_result", "crc32_rows"]

_ENTRY = struct.Struct("!dqq")
_ENTRY_BYTES = _ENTRY.size                      # 24
_ROW_DTYPE = np.dtype([("lat", ">f8"), ("seq", ">i8"), ("tid", ">i8")])


@dataclass(frozen=True)
class PackedRecorder:
    """A ``LatencyRecorder`` flattened to buffers for the wire.

    ``entries`` holds the sorted reservoir as consecutive ``!dqq``
    records; ``tid_present`` has one ``0x01`` byte per entry whose
    trace_id is not ``None`` (the packed tid field is ``-1`` for
    ``None``, which a real trace_id may legitimately equal — the flag
    disambiguates).  ``terms`` carries the exact sum terms in merge
    order: ``[own_sum, *merged_sums]``.
    """

    name: str
    max_samples: int
    count: int
    terms: tuple[float, ...]
    min: float
    max: float
    entries: bytes
    tid_present: bytes

    @property
    def sample_count(self) -> int:
        return len(self.entries) // _ENTRY_BYTES


def pack_recorder(rec: LatencyRecorder) -> PackedRecorder:
    """Flatten a recorder into a :class:`PackedRecorder`."""
    rec._flush()
    pack = _ENTRY.pack
    rows = []
    flags = bytearray(len(rec._sorted))
    for i, (latency, seq, trace_id) in enumerate(rec._sorted):
        if trace_id is None:
            rows.append(pack(latency, seq, -1))
        else:
            rows.append(pack(latency, seq, trace_id))
            flags[i] = 1
    return PackedRecorder(
        name=rec.name,
        max_samples=rec._max_samples,
        count=rec._count,
        terms=(rec._sum, *rec._merged_sums),
        min=rec._min,
        max=rec._max,
        entries=b"".join(rows),
        tid_present=bytes(flags))


def _entries_list(packed: PackedRecorder
                  ) -> list[tuple[float, int, Optional[int]]]:
    out = []
    flags = packed.tid_present
    for i, (latency, seq, tid) in enumerate(
            _ENTRY.iter_unpack(packed.entries)):
        out.append((latency, seq, tid if flags[i] else None))
    return out


def _new_recorder(name: str, max_samples: int) -> LatencyRecorder:
    """A bare recorder, bypassing ``__init__``'s auto-registration (the
    parent process has no ambient registry to pollute)."""
    rec = LatencyRecorder.__new__(LatencyRecorder)
    rec.name = name
    rec._sorted = []
    rec._dirty = False
    rec._count = 0
    rec._sum = 0.0
    rec._merged_sums = []
    rec._max_samples = max_samples
    rec._min = math.inf
    rec._max = -math.inf
    rec._rng = Random(zlib.crc32(name.encode()) or 1)
    return rec


def unpack_recorder(packed: PackedRecorder) -> LatencyRecorder:
    """Reconstitute the exact recorder :func:`pack_recorder` flattened.

    Round-trip is bit-exact: same reservoir tuples, same accumulators,
    same RNG stream position as a freshly named recorder (merge and
    pack consume no draws)."""
    rec = _new_recorder(packed.name, packed.max_samples)
    rec._sorted = _entries_list(packed)
    rec._count = packed.count
    rec._sum = packed.terms[0] if packed.terms else 0.0
    rec._merged_sums = list(packed.terms[1:])
    rec._min = packed.min
    rec._max = packed.max
    return rec


# -- vectorized crc32 -------------------------------------------------------

def _crc32_table() -> np.ndarray:
    table = np.empty(256, dtype=np.uint32)
    for i in range(256):
        c = i
        for _ in range(8):
            c = (c >> 1) ^ 0xEDB88320 if c & 1 else c >> 1
        table[i] = c
    return table


_CRC_TABLE = _crc32_table()


def crc32_rows(buf: bytes, row_bytes: int = _ENTRY_BYTES) -> np.ndarray:
    """crc32 of every consecutive ``row_bytes`` slice of ``buf`` at
    once — one table lookup per byte column, vectorized down the rows.
    Matches ``zlib.crc32`` exactly (same polynomial, init, final xor).
    """
    if len(buf) % row_bytes:
        raise ValueError(f"buffer of {len(buf)} bytes is not a multiple "
                         f"of row size {row_bytes}")
    rows = np.frombuffer(buf, dtype=np.uint8).reshape(-1, row_bytes)
    crc = np.full(rows.shape[0], 0xFFFFFFFF, dtype=np.uint32)
    for col in range(row_bytes):
        crc = _CRC_TABLE[(crc ^ rows[:, col]) & 0xFF] ^ (crc >> np.uint32(8))
    return crc ^ np.uint32(0xFFFFFFFF)


def merge_packed(name: str, packs: list[PackedRecorder],
                 max_samples: Optional[int] = None) -> LatencyRecorder:
    """Fold packed reservoirs into one merged :class:`LatencyRecorder`.

    Produces state byte-identical to creating a fresh recorder and
    pairwise-``merge()``-ing the unpacked recorders in list order:

    * exact accumulators — count adds; the sum terms concatenate in
      fold order (rendered later with one ``math.fsum``); min/max fold;
    * the retained reservoir is the union of all entries while it fits
      the cap, else the bottom-``cap`` of the union under the same
      content-keyed priority as ``LatencyRecorder._merge_priority``
      (crc32 of the packed entry, then the entry fields) — computed
      here with vectorized crc32 + one lexsort instead of per-entry
      Python hashing.  Bottom-k under a total order is associative,
      which is exactly why pairwise folds and this global selection
      agree.
    """
    if max_samples is None:
        max_samples = packs[0].max_samples if packs else 200_000
    rec = _new_recorder(name, max_samples)
    nonempty = [p for p in packs if p.count]
    rec._count = sum(p.count for p in nonempty)
    terms: list[float] = []
    for p in nonempty:
        terms.extend(p.terms)
    rec._merged_sums = terms
    if nonempty:
        rec._min = min(p.min for p in nonempty)
        rec._max = max(p.max for p in nonempty)

    buf = b"".join(p.entries for p in packs)
    if not buf:
        return rec
    flags = np.frombuffer(b"".join(p.tid_present for p in packs),
                          dtype=np.uint8)
    rows = np.frombuffer(buf, dtype=_ROW_DTYPE)
    lat = rows["lat"].astype("=f8")
    seq = rows["seq"].astype("=i8")
    tid = rows["tid"].astype("=i8")
    if rows.shape[0] > max_samples:
        # Bottom-cap of the union under (digest, latency, seq,
        # tid-present, tid) — the exact _merge_priority tuple.  lexsort
        # orders by the *last* key first.
        digest = crc32_rows(buf)
        order = np.lexsort((tid, flags, seq, lat, digest))[:max_samples]
        lat, seq, tid, flags = (lat[order], seq[order], tid[order],
                                flags[order])
    # Final ascending reservoir order.  (latency, seq) pairs are unique
    # per recorder and, in practice, across points; tid participates
    # only as the documented third tie-break.
    order = np.lexsort((tid, seq, lat))
    lat, seq, tid, flags = lat[order], seq[order], tid[order], flags[order]
    rec._sorted = [
        (latency, int(s), int(t) if f else None)
        for latency, s, t, f in zip(lat.tolist(), seq.tolist(),
                                    tid.tolist(), flags.tolist())]
    return rec


# -- metrics snapshots ------------------------------------------------------

def pack_metrics(metrics: Optional[dict]) -> Optional[bytes]:
    """One compressed buffer instead of a pickled nested dict.  JSON
    round-trips the snapshot exactly — it was parsed from JSON in the
    worker to begin with."""
    if metrics is None:
        return None
    return zlib.compress(
        json.dumps(metrics, separators=(",", ":")).encode(), 1)


def unpack_metrics(blob: Optional[bytes]) -> Optional[dict]:
    """Inverse of :func:`pack_metrics` (``None`` passes through)."""
    if blob is None:
        return None
    return json.loads(zlib.decompress(blob))


# -- whole-result codec (the worker/parent seam) ----------------------------

def encode_result(result: dict) -> dict:
    """Rewrite a point runner's result for the wire (worker side)."""
    out = dict(result)
    recorders = out.pop("recorders", None)
    if recorders:
        out["recorders_packed"] = {
            name: pack_recorder(rec) for name, rec in recorders.items()}
    metrics = out.pop("metrics", None)
    if metrics is not None:
        out["metrics_z"] = pack_metrics(metrics)
    return out


def decode_result(result: dict) -> dict:
    """Invert :func:`encode_result` (parent side).

    Metrics come back as the original snapshot dict.  Reservoirs stay
    *packed* (under ``"recorders"``) — the merged-rollup path consumes
    them vectorized via :func:`merge_packed` without ever rebuilding
    per-entry tuples for intermediate recorders.
    """
    out = dict(result)
    blob = out.pop("metrics_z", None)
    if blob is not None:
        out["metrics"] = unpack_metrics(blob)
    packed = out.pop("recorders_packed", None)
    if packed is not None:
        out["recorders"] = packed
    return out
