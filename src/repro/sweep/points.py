"""Point runners: the units of work a sweep fans out.

Each runner is a module-level function (picklable by name) taking
``(config, seed)`` and returning a plain dict::

    {"values": {...},        # headline scalars for rows/checks
     "rows": [[...], ...],   # optional report rows
     "metrics": {...},       # optional repro-metrics/1 snapshot
     "recorders": {name: LatencyRecorder}}   # optional, picklable

Runners must be deterministic functions of (config, seed): the parallel
identity contract (serial rollup == parallel rollup, byte for byte)
holds exactly because nothing else flows in.
"""

from __future__ import annotations

import json
from typing import Callable, Optional

__all__ = ["POINT_RUNNERS", "point_runner", "fig7_points"]

POINT_RUNNERS: dict[str, Callable[[dict, Optional[int]], dict]] = {}


def point_runner(name: str):
    """Register a sweep point runner under ``name``."""
    def deco(fn):
        POINT_RUNNERS[name] = fn
        return fn
    return deco


def _harvest(registry) -> tuple[dict, dict]:
    """A registry's ``repro-metrics/1`` snapshot plus its latency
    reservoirs (the only instruments that merge across points — and the
    only ones safe to pickle: no Environment reference)."""
    from ..sim.monitor import LatencyRecorder
    metrics = json.loads(registry.to_json(indent=0))
    recorders = {}
    for name in registry.names():
        inst = registry.get(name)
        if isinstance(inst, LatencyRecorder):
            recorders[name] = inst
    return metrics, recorders


@point_runner("fig7_infer")
def run_fig7_point(config: dict, seed: Optional[int]) -> dict:
    """One (model, backend, batch) inference run.

    ``config["telemetry"]`` (default True) attaches a metrics registry
    whose latency reservoirs are harvested for the merged rollup —
    telemetry is modeled-result-neutral, so rows match a bare run.
    """
    from ..telemetry import TelemetryConfig
    from ..workflows import InferenceConfig, run_inference
    config = dict(config)
    telemetry = config.pop("telemetry", True)
    if seed is not None:
        config["seed"] = seed
    if telemetry:
        config["telemetry"] = TelemetryConfig()
    cfg = InferenceConfig(**config)
    res = run_inference(cfg)
    out = {
        "values": {"throughput": res.throughput,
                   "latency_p50_ms": res.latency_p50_ms,
                   "latency_p99_ms": res.latency_p99_ms,
                   "cpu_cores": res.cpu_cores},
        "rows": [[cfg.model, cfg.backend, cfg.batch_size,
                  res.throughput]],
    }
    if telemetry:
        metrics, recorders = _harvest(res.extras["telemetry"]["registry"])
        out["metrics"] = metrics
        out["recorders"] = recorders
    return out


@point_runner("fleet_serve")
def run_fleet_point(config: dict, seed: Optional[int]) -> dict:
    """One multi-host serving scenario (repro.fleet rollup payload)."""
    from ..experiments import fleet
    config = dict(config)
    if seed is not None:
        config["seed"] = seed
    return {"values": fleet.serve_fleet(**config)}


@point_runner("fleet_autoscale")
def run_autoscale_point(config: dict, seed: Optional[int]) -> dict:
    """One autoscaler surge-and-recover scenario."""
    from ..experiments import fleet
    config = dict(config)
    if seed is not None:
        config["seed"] = seed
    return {"values": fleet.serve_autoscale(**config)}


@point_runner("chaos_serve")
def run_chaos_point(config: dict, seed: Optional[int]) -> dict:
    """One chaos-armed fleet scenario (fault plan + recovery config)."""
    from ..experiments import chaos_fleet
    config = dict(config)
    if seed is not None:
        config["seed"] = seed
    return {"values": chaos_fleet.serve_chaos(**config)}


@point_runner("ps_study")
def run_ps_point(config: dict, seed: Optional[int]) -> dict:
    """One parameter-server contention study point.

    The study is fully deterministic (no RNG anywhere in the ring), so
    ``seed`` is accepted for sweep-axis uniformity but does not alter
    the model — every seed of the same config returns the same values.
    """
    from ..cluster import PsStudyConfig, run_ps_study
    result = run_ps_study(PsStudyConfig(**dict(config)))
    cfg = result.config
    out = {
        "values": {"throughput": result.throughput,
                   "iteration_s": result.iteration_s,
                   "cpu_cores_per_server": result.cpu_cores_per_server,
                   "agg_cores_per_server": result.agg_cores_per_server,
                   "rounds": result.extras["rounds"],
                   "lockstep_ok": result.extras["lockstep_ok"]},
        "rows": [[cfg.model, cfg.backend, cfg.world, result.throughput,
                  result.cpu_cores_per_server]],
    }
    if result.registry is not None:
        metrics, recorders = _harvest(result.registry)
        out["metrics"] = metrics
        out["recorders"] = recorders
    return out


def fig7_points(models=("googlenet",), backends=("dlbooster",),
                batches=(1, 8), seeds=(0,), warmup_s: float = 0.8,
                measure_s: float = 2.5, telemetry: bool = True
                ) -> list:
    """The standard fig7 grid: (model x backend x batch) x seeds, in the
    same nesting order as the serial figure loop."""
    from .runner import SweepPoint
    points = []
    for model in models:
        for backend in backends:
            for batch in batches:
                for seed in seeds:
                    points.append(SweepPoint(
                        runner="fig7_infer",
                        config={"model": model, "backend": backend,
                                "batch_size": batch,
                                "warmup_s": warmup_s,
                                "measure_s": measure_s,
                                "telemetry": telemetry},
                        seed=seed,
                        label=f"{model}/{backend}/bs{batch}/s{seed}"))
    return points
