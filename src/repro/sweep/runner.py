"""Parallel multi-seed sweep runner.

A sweep is an ordered list of :class:`SweepPoint` entries — (point
runner, config, seed) triples — fanned out to worker processes.  Each
point runs its whole simulation inside one worker (per-point
deterministic seeds; nothing is shared), and returns:

* the point's headline ``values``/``rows``,
* a ``repro-metrics/1`` snapshot of the point's metrics registry, and
* the picklable :class:`~repro.sim.monitor.LatencyRecorder` reservoirs
  harvested from that registry.

The parent collects worker results **by point index**, not completion
order, then folds the recorders through ``LatencyRecorder.merge()`` —
which is itself commutative — into one rollup.  Both layers of defence
make the merged ``repro-sweep/1`` document byte-identical to a serial
run of the same points, regardless of how the OS schedules workers.

Wall-clock numbers (which legitimately differ run to run) are kept in a
separate ``repro-perf/1`` payload, never in the identity document.
"""

from __future__ import annotations

import functools
import json
import struct
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Optional

from ..perf.harness import BenchResult, to_payload
from ..sim.core import _add_total, total_events_processed
from ..sim.monitor import LatencyRecorder

__all__ = ["SCHEMA", "SweepPoint", "SweepOutcome", "run_sweep",
           "canonical_json"]

SCHEMA = "repro-sweep/1"


@dataclass(frozen=True)
class SweepPoint:
    """One (experiment, config, seed) point of a sweep.

    ``runner`` names an entry in :data:`repro.sweep.points.POINT_RUNNERS`;
    ``config`` must be picklable (it crosses the process boundary);
    ``seed`` of ``None`` keeps the runner's default seed.
    """

    runner: str
    config: dict = field(default_factory=dict)
    seed: Optional[int] = None
    label: str = ""


def _execute(task: tuple[int, SweepPoint]) -> tuple[int, dict, float, int]:
    """Run one point (in a worker or inline) and meter it."""
    from .points import POINT_RUNNERS  # late: workers import lazily
    index, point = task
    try:
        runner = POINT_RUNNERS[point.runner]
    except KeyError:
        raise ValueError(
            f"unknown sweep point runner {point.runner!r}; known: "
            f"{sorted(POINT_RUNNERS)}") from None
    t0 = time.perf_counter()
    ev0 = total_events_processed()
    result = runner(dict(point.config), point.seed)
    wall = time.perf_counter() - t0
    events = total_events_processed() - ev0
    return index, result, wall, events


def _execute_packed(task: tuple[int, SweepPoint]
                    ) -> tuple[int, dict, float, int]:
    """Worker-side entry: run the point, then flatten reservoirs and
    metrics into packed buffers so the pickle crossing the process
    boundary is a handful of byte strings, not an object graph."""
    from .transport import encode_result
    index, result, wall, events = _execute(task)
    return index, encode_result(result), wall, events


def _point_slug(index: int, point: SweepPoint) -> str:
    text = point.label or point.runner
    safe = "".join(c if c.isalnum() or c in "-._" else "-" for c in text)
    return f"point-{index:03d}-{safe}"


def _execute_profiled(task: tuple[int, SweepPoint], profile_dir: str,
                      packed: bool) -> tuple[int, dict, float, int]:
    """Run one point under cProfile, dumping stats into
    ``profile_dir/<point-slug>.pstats`` (one file per point, written by
    whichever worker ran it)."""
    import cProfile
    import os
    fn = _execute_packed if packed else _execute
    prof = cProfile.Profile()
    prof.enable()
    try:
        out = fn(task)
    finally:
        prof.disable()
        index, point = task
        prof.dump_stats(os.path.join(
            profile_dir, f"{_point_slug(index, point)}.pstats"))
    return out


def _sample_digest(rec: LatencyRecorder) -> int:
    """crc32 over the retained reservoir entries — a compact witness
    that two merged reservoirs are byte-identical without serializing
    up to ``max_samples`` floats into the rollup."""
    rec._flush()
    pack = struct.Struct("!dqq").pack
    # Chained crc32 over rows == crc32 of their concatenation; one C
    # call over one buffer beats a Python-level loop of chained calls.
    return zlib.crc32(b"".join(
        pack(latency, seq, -1 if trace_id is None else trace_id)
        for latency, seq, trace_id in rec._sorted))


@dataclass
class SweepOutcome:
    """Everything a finished sweep produced, index-ordered."""

    points: list[SweepPoint]
    results: list[dict]          # one runner-output dict per point
    walls: list[float]           # per-point wall seconds (not identity)
    events: list[int]            # per-point simulated events
    parallel: int
    wall_s: float                # whole-sweep wall seconds

    def merged_recorders(self) -> dict[str, LatencyRecorder]:
        """Fold every point's harvested reservoirs, by metric name, in
        point-index order (== serial order).

        Serial results carry live :class:`LatencyRecorder` objects and
        fold through the pairwise ``merge()``; parallel results arrive
        as :class:`~repro.sweep.transport.PackedRecorder` buffers and
        fold through the vectorized :func:`merge_packed` — the two are
        byte-identical by construction (and cross-checked by every
        ``--check-identity`` run).
        """
        from .transport import PackedRecorder, merge_packed, pack_recorder
        by_name: dict[str, list] = {}
        for result in self.results:
            for name, rec in sorted(
                    (result.get("recorders") or {}).items()):
                by_name.setdefault(name, []).append(rec)
        merged: dict[str, LatencyRecorder] = {}
        for name, recs in by_name.items():
            if any(isinstance(r, PackedRecorder) for r in recs):
                packs = [r if isinstance(r, PackedRecorder)
                         else pack_recorder(r) for r in recs]
                merged[name] = merge_packed(f"sweep.{name}", packs)
            else:
                target = LatencyRecorder(name=f"sweep.{name}",
                                         max_samples=recs[0]._max_samples)
                for rec in recs:
                    target.merge(rec)
                merged[name] = target
        return merged

    def rollup(self) -> dict[str, Any]:
        """The deterministic ``repro-sweep/1`` document.

        Contains only replay-stable facts: point configs, modeled
        values/rows, per-point ``repro-metrics/1`` snapshots and the
        merged latency reservoirs (stats + content digest).  Wall-clock
        lives in :meth:`perf_payload` instead.
        """
        points_doc = []
        for point, result in zip(self.points, self.results):
            points_doc.append({
                "runner": point.runner,
                "label": point.label,
                "seed": point.seed,
                "config": _jsonable(point.config),
                "values": _jsonable(result.get("values", {})),
                "rows": _jsonable(result.get("rows", [])),
                "metrics": result.get("metrics"),
            })
        latency = {}
        for name, rec in sorted(self.merged_recorders().items()):
            latency[name] = {
                "count": rec.count,
                "mean": rec.mean() if rec.count else None,
                "p50": rec.p50() if rec.count else None,
                "p90": rec.percentile(90) if rec.count else None,
                "p99": rec.p99() if rec.count else None,
                "p999": rec.percentile(99.9) if rec.count else None,
                "min": rec.min() if rec.count else None,
                "max": rec.max() if rec.count else None,
                "sample_count": rec.sample_count,
                "samples_crc32": _sample_digest(rec),
            }
        return {"schema": SCHEMA,
                "num_points": len(self.points),
                "points": points_doc,
                "merged_latency": latency}

    def rollup_json(self) -> str:
        """Canonical serialization of :meth:`rollup` — the byte string
        the serial-vs-parallel identity contract is stated over."""
        return canonical_json(self.rollup())

    def perf_payload(self) -> dict[str, Any]:
        """Timing as a ``repro-perf/1`` payload (excluded from the
        identity document: wall-clock is honest, not replayable)."""
        results = []
        for i, (point, wall, events) in enumerate(
                zip(self.points, self.walls, self.events)):
            name = f"sweep[{i}].{point.label or point.runner}"
            results.append(BenchResult(
                name=name, best_s=wall, mean_s=wall, runs=(wall,),
                reps=1, units={"events": float(events)}))
        total_events = float(sum(self.events))
        derived = {}
        if self.wall_s > 0:
            derived["sweep.events_per_s"] = total_events / self.wall_s
        # Occupancy (sum of per-point walls / elapsed) measures how
        # busy the workers kept the machine — NOT end-to-end speedup,
        # which needs a serial run of the same points to compare against
        # (the CLI's --check-identity and the benchmarks do that).
        if self.wall_s > 0 and self.parallel > 1:
            derived["sweep.worker_occupancy"] = sum(self.walls) / self.wall_s
        results.append(BenchResult(
            name=f"sweep.total[parallel={self.parallel}]",
            best_s=self.wall_s, mean_s=self.wall_s, runs=(self.wall_s,),
            reps=1, units={"events": total_events,
                           "points": float(len(self.points))}))
        return to_payload(results, derived)


def canonical_json(doc: Any) -> str:
    """Sorted-key, fixed-separator JSON — byte-stable across runs."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"),
                      default=repr)


def _jsonable(value: Any) -> Any:
    """Round a config/value tree to JSON-safe types (repr fallback)."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def run_sweep(points: list[SweepPoint], parallel: int = 1,
              start_method: Optional[str] = None,
              pool: Optional[Any] = None, reuse_pool: bool = False,
              profile_dir: Optional[str] = None) -> SweepOutcome:
    """Run every point; fan out to ``parallel`` worker processes.

    ``parallel <= 1`` runs the points inline in order — the serial
    reference the parallel path is byte-identical to.  Workers return
    results tagged with their point index; the parent slots them by
    index, so completion order never matters.  Worker-simulated events
    are folded into the parent's global tally so ``@timed`` experiment
    wrappers report true events/s for parallel runs.

    Parallel execution goes through a warm :class:`~repro.sweep.pool.
    WorkerPool`: pass ``pool`` to bring your own, ``reuse_pool=True``
    to use the process-wide shared pool (amortizes startup across
    calls — the capacity planner's probe loop does this), or neither
    for a fresh pool per call.  ``profile_dir`` wraps every point in
    cProfile and collects per-point ``.pstats`` files there (serial
    and parallel alike).
    """
    if parallel < 1:
        raise ValueError(f"parallel must be >= 1, got {parallel}")
    tasks = list(enumerate(points))
    results: list[Optional[dict]] = [None] * len(points)
    walls = [0.0] * len(points)
    events = [0] * len(points)
    t0 = time.perf_counter()
    if (parallel == 1 or len(points) <= 1) and pool is None:
        for task in tasks:
            if profile_dir is not None:
                index, result, wall, ev = _execute_profiled(
                    task, profile_dir, packed=False)
            else:
                index, result, wall, ev = _execute(task)
            results[index] = result
            walls[index] = wall
            events[index] = ev
    else:
        from .pool import WorkerPool, shared_pool
        from .transport import decode_result
        if profile_dir is not None:
            func: Any = functools.partial(
                _execute_profiled, profile_dir=profile_dir, packed=True)
        else:
            func = _execute_packed
        if pool is not None:
            own = None
        elif reuse_pool:
            pool = shared_pool(parallel, start_method)
            own = None
        else:
            pool = own = WorkerPool(min(parallel, len(points)),
                                    start_method=start_method)
        try:
            for index, result, wall, ev in pool.run(func, tasks):
                results[index] = decode_result(result)
                walls[index] = wall
                events[index] = ev
                # The worker's simulated events happened in another
                # process; fold them into this one's tally.
                _add_total(ev)
        finally:
            if own is not None:
                own.close()
    wall_s = time.perf_counter() - t0
    missing = [i for i, r in enumerate(results) if r is None]
    if missing:
        raise RuntimeError(f"sweep points {missing} returned no result")
    return SweepOutcome(points=list(points), results=results,  # type: ignore[arg-type]
                        walls=walls, events=events,
                        parallel=parallel, wall_s=wall_s)
