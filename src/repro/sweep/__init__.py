"""Parallel multi-seed sweep runner (ROADMAP item 3).

Fans (experiment, config, seed) points out to worker processes and
merges the per-worker ``repro-metrics/1`` snapshots + latency
reservoirs into one ``repro-sweep/1`` rollup that is byte-identical to
a serial run of the same points, regardless of worker completion order.

Quickstart::

    from repro.sweep import fig7_points, run_sweep
    outcome = run_sweep(fig7_points(seeds=(0, 1, 2)), parallel=4)
    print(outcome.rollup_json())          # deterministic document
    print(outcome.perf_payload())         # wall-clock (repro-perf/1)

CLI: ``python -m repro.sweep --help``.
"""

from .points import POINT_RUNNERS, fig7_points, point_runner
from .pool import (WorkerPool, effective_cores, shared_pool,
                   shutdown_shared_pools, warm_process)
from .runner import (SCHEMA, SweepOutcome, SweepPoint, canonical_json,
                     run_sweep)

__all__ = ["SCHEMA", "SweepPoint", "SweepOutcome", "run_sweep",
           "canonical_json", "POINT_RUNNERS", "point_runner",
           "fig7_points", "WorkerPool", "shared_pool",
           "shutdown_shared_pools", "warm_process", "effective_cores"]
