"""CLI: run a multi-seed fig7 sweep, serially or in parallel.

Usage:
    python -m repro.sweep --seeds 3 --parallel 4
    python -m repro.sweep --models googlenet,resnet50 --batches 1,8,32
    python -m repro.sweep --check-identity --parallel 2 --reuse-pool
    python -m repro.sweep --parallel 2 --profile prof/

``--check-identity`` runs the same points both serially and in
parallel and asserts the merged rollups are byte-identical — the
sweep's core determinism contract — then reports the speedup.
``--profile`` wraps every point in cProfile (inside whichever worker
runs it) and collects per-point ``.pstats`` files.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from ..perf.harness import merge_payloads, write_payload
from .points import fig7_points
from .runner import run_sweep


def _csv(text: str) -> list[str]:
    return [part for part in text.split(",") if part]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep", description=__doc__)
    parser.add_argument("--models", default="googlenet", type=_csv,
                        help="comma-separated model list")
    parser.add_argument("--backends", default="dlbooster", type=_csv,
                        help="comma-separated backend list")
    parser.add_argument("--batches", default="1,8",
                        type=lambda s: [int(b) for b in _csv(s)],
                        help="comma-separated batch sizes")
    parser.add_argument("--seeds", default=2, type=int,
                        help="number of seeds (0..N-1) per grid point")
    parser.add_argument("--parallel", default=1, type=int,
                        help="worker processes (1 = serial)")
    parser.add_argument("--warmup-s", default=0.8, type=float)
    parser.add_argument("--measure-s", default=2.5, type=float)
    parser.add_argument("--check-identity", action="store_true",
                        help="also run serially and assert the merged "
                             "rollup is byte-identical")
    parser.add_argument("--reuse-pool", action="store_true",
                        help="run through the process-wide shared warm "
                             "WorkerPool (amortizes startup across "
                             "repeated sweeps in one process)")
    parser.add_argument("--start-method", default=None,
                        choices=("fork", "spawn", "forkserver"),
                        help="worker start method (default: fork where "
                             "available)")
    parser.add_argument("--profile", nargs="?", const=".", default=None,
                        metavar="DIR",
                        help="cProfile every point (in whichever worker "
                             "runs it) and dump point-NNN-{label}.pstats "
                             "into DIR (default: cwd); inspect with "
                             "python -m pstats or snakeviz")
    parser.add_argument("--out", default=None,
                        help="write the repro-sweep/1 rollup JSON here")
    parser.add_argument("--perf-out", default=None,
                        help="write the repro-perf/1 timing payload here")
    args = parser.parse_args(argv)

    if args.profile is not None:
        # Fail on an unwritable dir before burning sweep minutes.
        try:
            os.makedirs(args.profile, exist_ok=True)
        except OSError as exc:
            print(f"cannot create --profile directory "
                  f"{args.profile!r}: {exc}", file=sys.stderr)
            return 2

    points = fig7_points(models=args.models, backends=args.backends,
                         batches=args.batches,
                         seeds=tuple(range(args.seeds)),
                         warmup_s=args.warmup_s,
                         measure_s=args.measure_s)
    print(f"sweep: {len(points)} points, parallel={args.parallel}"
          + (", reused pool" if args.reuse_pool else ""))
    outcome = run_sweep(points, parallel=args.parallel,
                        start_method=args.start_method,
                        reuse_pool=args.reuse_pool,
                        profile_dir=args.profile)
    if args.profile is not None:
        print(f"profiles -> {args.profile}/point-*.pstats")
    rollup_json = outcome.rollup_json()
    perf = outcome.perf_payload()

    for point, result, wall in zip(outcome.points, outcome.results,
                                   outcome.walls):
        throughput = result["values"].get("throughput")
        print(f"  {point.label:<40} {throughput:>10,.0f} img/s "
              f"({wall:.2f}s wall)")
    print(f"total wall {outcome.wall_s:.2f}s, "
          f"{sum(outcome.events):,} simulated events")

    if args.check_identity:
        serial = run_sweep(points, parallel=1)
        identical = serial.rollup_json() == rollup_json
        speedup = serial.wall_s / outcome.wall_s if outcome.wall_s else 0
        print(f"identity check: serial rollup == parallel rollup: "
              f"{identical}; speedup {speedup:.2f}x "
              f"(serial {serial.wall_s:.2f}s)")
        perf = merge_payloads(perf, {
            "schema": "repro-perf/1", "results": {},
            "derived": {"sweep.check_identity_speedup": speedup}})
        if not identical:
            print("FAIL: parallel rollup diverged from serial",
                  file=sys.stderr)
            return 1

    if args.out:
        doc = json.loads(rollup_json)
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"rollup -> {args.out}")
    if args.perf_out:
        write_payload(args.perf_out, perf)
        print(f"perf -> {args.perf_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
