"""Discrete-event simulation kernel.

A minimal, dependency-free event loop in the style of SimPy: simulation
actors are Python generators that ``yield`` :class:`Event` objects and are
resumed when those events fire.  The kernel is deterministic — given the
same seed streams (see :mod:`repro.sim.rand`) a simulation replays
identically, which the test suite relies on.

Virtual time is a ``float`` in **seconds**.  Nothing in the kernel sleeps
on the wall clock; large cluster runs execute in milliseconds of real time.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "SimulationError",
    "total_events_processed",
]


class SimulationError(Exception):
    """Raised for kernel-level misuse (double trigger, bad yield, ...)."""


class Interrupt(Exception):
    """Raised inside a process that another actor interrupted.

    The ``cause`` attribute carries whatever the interrupter supplied.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event lifecycle states.
PENDING = 0
TRIGGERED = 1  # scheduled on the event queue, callbacks not yet run
PROCESSED = 2  # callbacks have run

# Process-wide event tally across every Environment, so experiment
# runners can report events/s without holding a reference to each env
# their sweeps create.
_total_events = 0


def _add_total(processed: int) -> None:
    global _total_events
    _total_events += processed


def total_events_processed() -> int:
    """Events processed by all Environments since interpreter start."""
    return _total_events


class Event:
    """A happening at a point in simulated time.

    Events move through three states: *pending* (created), *triggered*
    (given a value/exception and scheduled), *processed* (callbacks ran).
    Processes wait on events by ``yield``-ing them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_state")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state = PENDING

    # -- inspection ------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state >= TRIGGERED

    @property
    def processed(self) -> bool:
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        if self._state == PENDING:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._state == PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != PENDING:
            raise SimulationError("event already triggered")
        self._value = value
        self._ok = True
        self._state = TRIGGERED
        # Inline env._push: succeed() fires once per queue grant /
        # process completion, the second-hottest scheduling site.
        env = self.env
        heapq.heappush(env._queue, (env._now, next(env._eid), self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every waiting process.
        """
        if self._state != PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._value = exception
        self._ok = False
        self._state = TRIGGERED
        self.env._push(self)
        return self

    def _run_callbacks(self) -> None:
        self._state = PROCESSED
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = []
            for cb in callbacks:
                cb(self)


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        # Direct slot initialization (no Event.__init__ call): a Timeout
        # is born triggered, and this constructor runs once per modeled
        # stage latency — the hottest allocation site in the kernel.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._state = TRIGGERED
        self.delay = delay
        heapq.heappush(env._queue, (env._now + delay, next(env._eid), self))


class Initialize(Event):
    """Internal: starts a freshly created :class:`Process`."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._value = None
        self._ok = True
        self._state = TRIGGERED
        self.callbacks.append(process._resume)
        env._push(self)


class Process(Event):
    """A running simulation actor wrapping a generator.

    The process *is itself an event* that triggers when the generator
    returns (value = its return value) or raises (failure).  Other
    processes may ``yield proc`` to join on it, or call
    :meth:`interrupt` to raise :class:`Interrupt` inside it.
    """

    __slots__ = ("generator", "name", "_waiting_on")

    def __init__(self, env: "Environment", generator: Generator,
                 name: Optional[str] = None):
        if not hasattr(generator, "send"):
            raise TypeError(f"process() needs a generator, got {generator!r}")
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return self._state == PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name}")
        if self._waiting_on is not None:
            target = self._waiting_on
            if self._resume in target.callbacks:
                target.callbacks.remove(self._resume)
            # An interrupted wait on a resource request withdraws the
            # request — otherwise the slot would later be granted to a
            # process that is no longer listening and leak forever.
            cancel = getattr(target, "cancel", None)
            if callable(cancel) and not target.triggered:
                cancel()
            self._waiting_on = None
        hook = Event(self.env)
        hook.callbacks.append(self._resume_interrupt(cause))
        hook.succeed()

    def _resume_interrupt(self, cause: Any) -> Callable[[Event], None]:
        def do_resume(_evt: Event) -> None:
            if not self.is_alive:  # finished before the interrupt landed
                return
            self._step(lambda: self.generator.throw(Interrupt(cause)))
        return do_resume

    def _resume(self, event: Event) -> None:
        # The kernel's hottest function: one call per process wake-up.
        # Advance the generator directly (no per-resume closure) and
        # handle the yielded event inline.
        self._waiting_on = None
        env = self.env
        env._active_process = self
        try:
            if event._ok:
                target = self.generator.send(event._value)
            else:
                target = self.generator.throw(event._value)
        except StopIteration as stop:
            env._active_process = None
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            env._active_process = None
            self.fail(exc)
            return
        except BaseException as exc:
            env._active_process = None
            if env.strict:
                raise
            self.fail(exc)
            return
        env._active_process = None
        self._wait_on(target)

    def _step(self, advance: Callable[[], Any]) -> None:
        self.env._active_process = self
        try:
            target = advance()
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # An uncaught Interrupt terminates the process as a failure.
            self.env._active_process = None
            self.fail(exc)
            return
        except BaseException as exc:
            self.env._active_process = None
            if self.env.strict:
                raise
            self.fail(exc)
            return
        self.env._active_process = None
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; only Event "
                f"instances may be yielded")
        if target._state == PROCESSED:
            # Already complete: resume immediately via a fresh hook so the
            # event queue stays the single source of ordering.
            hook = Event(self.env)
            hook._value, hook._ok = target._value, target._ok
            hook.callbacks.append(self._resume)
            hook._state = TRIGGERED
            self.env._push(hook)
            self._waiting_on = hook
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target


class Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` composite waits."""

    __slots__ = ("events", "_pending_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._pending_count = 0
        for evt in self.events:
            if evt._state == PROCESSED:
                self._observe(evt)
            else:
                evt.callbacks.append(self._observe)
                self._pending_count += 1
        self._check_trivial()

    def _check_trivial(self) -> None:
        raise NotImplementedError

    def _observe(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(Condition):
    """Triggers when every constituent event has triggered.

    Value is a dict mapping each event to its value.
    """

    __slots__ = ("_done",)

    def __init__(self, env: "Environment", events: Iterable[Event]):
        self._done = 0
        super().__init__(env, events)

    def _check_trivial(self) -> None:
        if self._state == PENDING and self._done == len(self.events):
            self.succeed({e: e._value for e in self.events})

    def _observe(self, event: Event) -> None:
        if self._state != PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._done += 1
        if self._done == len(self.events):
            self.succeed({e: e._value for e in self.events})


class AnyOf(Condition):
    """Triggers as soon as any constituent event triggers.

    Value is a dict of the events that had triggered at that moment.
    """

    __slots__ = ()

    def _check_trivial(self) -> None:
        if self._state == PENDING and any(
                e._state == PROCESSED for e in self.events):
            self.succeed({e: e._value for e in self.events
                          if e._state == PROCESSED})

    def _observe(self, event: Event) -> None:
        if self._state != PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed({e: e._value for e in self.events
                      if e._state == PROCESSED})


class Environment:
    """The simulation clock plus the event queue.

    Parameters
    ----------
    initial_time:
        Starting value of :attr:`now`.
    strict:
        When True (the default), an exception escaping a process propagates
        out of :meth:`run` immediately instead of failing the process
        event — the right behaviour for tests.
    """

    def __init__(self, initial_time: float = 0.0, strict: bool = True):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._eid = itertools.count()
        self._active_process: Optional[Process] = None
        self.strict = strict
        #: Total events whose callbacks have run (step() / run() loops).
        self.events_processed = 0

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event constructors ----------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator,
                name: Optional[str] = None) -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------
    def _push(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self._now + delay, next(self._eid), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process one event; advances :attr:`now` to its timestamp."""
        global _total_events
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _, event = heapq.heappop(self._queue)
        self._now = when
        self.events_processed += 1
        _total_events += 1
        event._run_callbacks()

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be a time (stop when the clock would pass it), an
        :class:`Event` (stop when it triggers, returning its value), or
        ``None`` (run until no events remain).

        Each loop below inlines :meth:`step` with the heap and pop
        hoisted into locals — the dispatch loop itself is a measurable
        slice of large modeled runs.
        """
        queue = self._queue
        pop = heapq.heappop
        if isinstance(until, Event):
            stop_evt = until
            processed = 0
            try:
                while not stop_evt._state:          # PENDING
                    if not queue:
                        raise SimulationError(
                            "simulation ran dry before the awaited event "
                            "fired")
                    when, _, event = pop(queue)
                    self._now = when
                    processed += 1
                    event._run_callbacks()
            finally:
                self.events_processed += processed
                _add_total(processed)
            if not stop_evt._ok:
                raise stop_evt._value
            return stop_evt._value

        if until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(
                    f"until={horizon} is in the past (now={self._now})")
            processed = 0
            try:
                while queue and queue[0][0] <= horizon:
                    when, _, event = pop(queue)
                    self._now = when
                    processed += 1
                    event._run_callbacks()
            finally:
                self.events_processed += processed
                _add_total(processed)
            self._now = max(self._now, horizon)
            return None

        processed = 0
        try:
            while queue:
                when, _, event = pop(queue)
                self._now = when
                processed += 1
                event._run_callbacks()
        finally:
            self.events_processed += processed
            _add_total(processed)
        return None
