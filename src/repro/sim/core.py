"""Discrete-event simulation kernel.

A minimal, dependency-free event loop in the style of SimPy: simulation
actors are Python generators that ``yield`` :class:`Event` objects and are
resumed when those events fire.  The kernel is deterministic — given the
same seed streams (see :mod:`repro.sim.rand`) a simulation replays
identically, which the test suite relies on.

Virtual time is a ``float`` in **seconds**.  Nothing in the kernel sleeps
on the wall clock; large cluster runs execute in milliseconds of real time.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "CalendarQueue",
    "SimulationError",
    "total_events_processed",
]


class SimulationError(Exception):
    """Raised for kernel-level misuse (double trigger, bad yield, ...)."""


class Interrupt(Exception):
    """Raised inside a process that another actor interrupted.

    The ``cause`` attribute carries whatever the interrupter supplied.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event lifecycle states.
PENDING = 0
TRIGGERED = 1  # scheduled on the event queue, callbacks not yet run
PROCESSED = 2  # callbacks have run

# Process-wide event tally across every Environment, so experiment
# runners can report events/s without holding a reference to each env
# their sweeps create.
_total_events = 0


def _add_total(processed: int) -> None:
    global _total_events
    _total_events += processed


def total_events_processed() -> int:
    """Events processed by all Environments since interpreter start."""
    return _total_events


# -- scheduler selection ---------------------------------------------------
# An Environment starts on a binary heap and may migrate to a
# CalendarQueue when, at a run()/step() boundary, the pending set is
# dense enough that bucketing beats log-n sifts.  Migration never
# happens mid-loop: the push fast paths branch on ``env._cal`` per call,
# so a queue representation is stable for the whole of one run() loop.
SCHEDULERS = ("auto", "heap", "calendar")

#: Pending events at a run()/step() boundary before "auto" migrates.
_CAL_THRESHOLD = 512

#: Target mean occupancy per calendar bucket when sizing the width.
#: Larger buckets amortize one ``list.sort()`` (C Timsort) over many
#: O(1) tail pops, which measures faster than per-item heap sifts.
_CAL_PER_BUCKET = 128

#: An active bucket this many times over target marks the widths stale
#: (event density shifted since migration) and triggers a lazy rebuild
#: at the next run()/step() boundary.
_CAL_REBUILD_FACTOR = 32

#: Late pushes accumulated since the last (re)build before the queue
#: re-derives its bucket width from the *current* pending density,
#: mid-run.  This rescues the common degenerate migration: the pending
#: set at migration time is all at one instant (process Initialize
#: events), the span-based width collapses to one bucket, and every
#: subsequent push would be an O(bucket) insort forever.
_CAL_REBUCKET_LATE = 512

#: Rebuckets allowed per queue before we conclude the workload is
#: genuinely hostile to bucketing (always pushes at now) and leave the
#: rest to the boundary demotion guard.
_CAL_MAX_REBUILDS = 16

#: "auto" demotes back to the heap when more than this fraction of
#: pushes land in the already-draining bucket — each such push is an
#: O(bucket) insort, the calendar's only pathological case.  The
#: denominator is events processed since migration (≈ pushes in steady
#: state) so the hot push path doesn't have to maintain a counter.
_CAL_LATE_FRACTION = 0.25

#: Events processed since migration before the late-fraction demotion
#: guard may fire (small counts are all noise).
_CAL_GUARD_MIN_EVENTS = 4096

#: reference_mode() sets this True so A/B runs replay on the exact
#: pre-pass heap scheduler.  Only consulted at migration points.
_FORCE_HEAP = False

# Process-level calibration verdict for the "auto" policy: "calendar"
# or "heap", measured once by scheduler_calibration().  None = not yet
# measured.
_AUTO_VERDICT: Optional[str] = None


class CalendarQueue:
    """Bucketed event queue (a one-tier calendar / ladder queue).

    Items are ``(time, eid, event)`` triples.  Buckets of ``width``
    seconds are keyed by ``int(time * inv_width)``; the *active* bucket
    (everything at or before the bucket currently being drained) is kept
    **sorted descending**, so the next event is always ``active[-1]``
    and a pop is an O(1) ``list.pop()`` — no sift at all.  Future
    buckets stay as unsorted lists that are sorted (one C Timsort call)
    only when the clock reaches them.  For dense pending sets this
    replaces two O(log n) heap sifts per event with an append, a tail
    pop and 1/``per_bucket``-th of a sort.

    Pops come out in exactly ``(time, eid)`` order — the same total
    order as the binary heap — so swapping representations can never
    change a simulation's event order.

    The queue also keeps cheap structural counters (``_late``,
    ``_needs_rebuild``, ``_rebuilds``) that the Environment reads at
    run()/step() boundaries to drive density-adaptive rebuilds and the
    "auto" policy's demote-to-heap guard.
    """

    __slots__ = ("width", "_inv", "_cur", "_active", "_future",
                 "_bucket_ids", "per_bucket", "_late",
                 "_needs_rebuild", "_rebuilds")

    def __init__(self, width: float, per_bucket: int = _CAL_PER_BUCKET):
        if not (width > 0 and math.isfinite(width)):
            raise ValueError(f"bucket width must be finite and > 0, "
                             f"got {width!r}")
        self.width = width
        self._inv = 1.0 / width
        self.per_bucket = per_bucket
        self._cur = -(1 << 62)  # bucket id currently draining
        self._active: list[tuple[float, int, Event]] = []   # sorted desc
        self._future: dict[int, list[tuple[float, int, Event]]] = {}
        self._bucket_ids: list[int] = []  # heap of future bucket ids
        self._late = 0      # pushes that landed in the draining bucket
        self._needs_rebuild = False
        self._rebuilds = 0

    def __len__(self) -> int:
        # Computed, not maintained: keeping a counter would cost two
        # attribute ops on every push AND pop of the hot loops, and
        # emptiness (the only hot question) falls out of
        # ``_active``/``_bucket_ids`` for free.
        n = len(self._active)
        for bucket in self._future.values():
            n += len(bucket)
        return n

    def push(self, item: tuple[float, int, Event]) -> None:
        # NOTE: the body of this fast path is replicated inline at the
        # three hot scheduling sites (Timeout.__init__, Event.succeed,
        # Environment._push) — a method call per push would cost more
        # than the heap's single C heappush.  Keep them in sync.
        try:
            b = int(item[0] * self._inv)
        except (OverflowError, ValueError):  # inf/nan timestamps
            b = 1 << 62
        if b > self._cur:
            try:
                self._future[b].append(item)
            except KeyError:
                self._future[b] = [item]
                heapq.heappush(self._bucket_ids, b)
        else:
            self._push_late(item)

    def _push_late(self, item: tuple[float, int, Event]) -> None:
        """Slow path: push into the bucket being drained (a zero-delay
        event scheduled by a callback) — binary-insert into the
        descending active list so pops stay in total order."""
        self._late += 1
        active = self._active
        lo, hi = 0, len(active)
        while lo < hi:
            mid = (lo + hi) >> 1
            if active[mid] > item:
                lo = mid + 1
            else:
                hi = mid
        active.insert(lo, item)
        if (self._late >= _CAL_REBUCKET_LATE
                and len(active) > self.per_bucket
                and self._rebuilds < _CAL_MAX_REBUILDS):
            # The widths are wrong for the live density (classic case:
            # migration snapshot was all same-instant events, span 0,
            # one giant bucket).  Re-derive them now.
            self._rebucket()

    def _advance(self) -> None:
        b = heapq.heappop(self._bucket_ids)
        items = self._future.pop(b)
        self._cur = b
        items.sort(reverse=True)
        self._active = items
        if len(items) > _CAL_REBUILD_FACTOR * self.per_bucket:
            # Density shifted since the widths were chosen; ask for a
            # recompaction at the next safe boundary.
            self._needs_rebuild = True

    def pop(self) -> tuple[float, int, Event]:
        """Remove and return the earliest item; caller checks len()."""
        if not self._active:
            self._advance()
        return self._active.pop()

    def min_time(self) -> float:
        """Timestamp of the earliest item, or ``inf`` when empty."""
        if not self._active:
            if not self._bucket_ids:
                return float("inf")
            self._advance()
        return self._active[-1][0]

    # -- structural health (read by Environment at boundaries) ----------
    def drain_items(self) -> list[tuple[float, int, Event]]:
        """Remove and return every pending item (order unspecified) —
        the demotion/rebuild path back to a flat list."""
        items = list(self._active)
        for bucket in self._future.values():
            items.extend(bucket)
        self._active = []
        self._future = {}
        self._bucket_ids = []
        return items

    def _rebucket(self) -> None:
        """Re-derive the bucket width from the current pending density
        and redistribute every item — O(n), amortized by the late
        pushes it eliminates.  Pop order is unaffected (the items and
        their total order don't change, only the bucketing)."""
        items = self.drain_items()
        lo = math.inf
        hi = -math.inf
        for it in items:
            t = it[0]
            if t < lo:
                lo = t
            if t > hi:
                hi = t
        span = hi - lo
        if span > 0 and math.isfinite(span):
            width = max(span * self.per_bucket / len(items), 1e-12)
            self.width = width
            self._inv = 1.0 / width
        # else: keep the old width; the counter reset below still stops
        # rebucket attempts from looping on every late push.
        self._cur = -(1 << 62)   # everything lands in future buckets
        for it in items:
            self.push(it)
        self._late = 0
        self._needs_rebuild = False
        self._rebuilds += 1

    @classmethod
    def from_items(cls, items: list[tuple[float, int, Event]],
                   per_bucket: int = _CAL_PER_BUCKET) -> "CalendarQueue":
        """Build a queue sized from the density of ``items``.

        Width is chosen so a bucket holds ~``per_bucket`` of the current
        pending items on average — the event-density heuristic.  A
        degenerate span (all items at one instant) degrades gracefully
        to a single bucket, i.e. plain sorted-list behaviour.
        """
        lo = math.inf
        hi = -math.inf
        for it in items:
            t = it[0]
            if t < lo:
                lo = t
            if t > hi:
                hi = t
        span = hi - lo
        if not (span > 0 and math.isfinite(span)):
            width = 1.0
        else:
            width = max(span * per_bucket / len(items), 1e-12)
        q = cls(width, per_bucket=per_bucket)
        for it in items:
            q.push(it)
        q._late = 0     # construction pushes are not runtime signal
        return q


def _calibration_trial(n: int = 1024, rounds: int = 4096) -> tuple[float,
                                                                   float]:
    """One timed head-to-head of the two queue representations.

    Both run the same synthetic hold pattern (pop the minimum, push a
    replacement a fixed horizon ahead — the canonical event-loop access
    pattern) over the same items; returns (heap_s, calendar_s).
    """
    import time as _time
    items = [((i * 0.6180339887498949) % 1.0, i, None) for i in range(n)]
    horizon = 0.33

    heap = sorted(items)
    t0 = _time.perf_counter()
    eid = n
    for _ in range(rounds):
        when, _, _obj = heapq.heappop(heap)
        heapq.heappush(heap, (when + horizon, eid, None))
        eid += 1
    heap_s = _time.perf_counter() - t0

    cal = CalendarQueue.from_items(list(items))
    push, pop = cal.push, cal.pop
    t0 = _time.perf_counter()
    eid = n
    for _ in range(rounds):
        when, _, _obj = pop()
        push((when + horizon, eid, None))
        eid += 1
    cal_s = _time.perf_counter() - t0
    return heap_s, cal_s


def scheduler_calibration(force: Optional[str] = None, trials: int = 3
                          ) -> str:
    """The "auto" policy's measured verdict: "calendar" or "heap".

    Runs a short (few-ms, once per process) head-to-head of the two
    queue representations on this interpreter and caches the winner.
    "auto" only migrates off the heap when the calendar *measurably*
    wins here — an honest adaptive policy instead of a hopeful one.
    Pass ``force`` to pin the verdict (tests), or ``force=""`` to clear
    the cache and re-measure.
    """
    global _AUTO_VERDICT
    if force is not None:
        _AUTO_VERDICT = force or None
        if _AUTO_VERDICT is not None and _AUTO_VERDICT not in ("heap",
                                                               "calendar"):
            raise ValueError(f"force must be 'heap' or 'calendar', "
                             f"got {force!r}")
    if _AUTO_VERDICT is None:
        heap_best = math.inf
        cal_best = math.inf
        for _ in range(trials):
            heap_s, cal_s = _calibration_trial()
            heap_best = min(heap_best, heap_s)
            cal_best = min(cal_best, cal_s)
        _AUTO_VERDICT = "calendar" if cal_best <= heap_best else "heap"
    return _AUTO_VERDICT


class Event:
    """A happening at a point in simulated time.

    Events move through three states: *pending* (created), *triggered*
    (given a value/exception and scheduled), *processed* (callbacks ran).
    Processes wait on events by ``yield``-ing them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_state")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state = PENDING

    # -- inspection ------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state >= TRIGGERED

    @property
    def processed(self) -> bool:
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        if self._state == PENDING:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._state == PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != PENDING:
            raise SimulationError("event already triggered")
        self._value = value
        self._ok = True
        self._state = TRIGGERED
        # Inline env._push: succeed() fires once per queue grant /
        # process completion, the second-hottest scheduling site.
        # The calendar branch replicates CalendarQueue.push's fast path
        # (see the NOTE there) — a method call per push costs more than
        # the whole bucket computation.
        env = self.env
        cal = env._cal
        when = env._now
        item = (when, next(env._eid), self)
        if cal is None:
            heapq.heappush(env._queue, item)
        else:
            try:
                b = int(when * cal._inv)
            except (OverflowError, ValueError):
                b = 1 << 62
            if b > cal._cur:
                try:
                    cal._future[b].append(item)
                except KeyError:
                    cal._future[b] = [item]
                    heapq.heappush(cal._bucket_ids, b)
            else:
                cal._push_late(item)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every waiting process.
        """
        if self._state != PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._value = exception
        self._ok = False
        self._state = TRIGGERED
        self.env._push(self)
        return self

    def _run_callbacks(self) -> None:
        self._state = PROCESSED
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = []
            for cb in callbacks:
                cb(self)


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        # Direct slot initialization (no Event.__init__ call): a Timeout
        # is born triggered, and this constructor runs once per modeled
        # stage latency — the hottest allocation site in the kernel.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._state = TRIGGERED
        self.delay = delay
        cal = env._cal
        when = env._now + delay
        item = (when, next(env._eid), self)
        if cal is None:
            heapq.heappush(env._queue, item)
        else:
            # Replicates CalendarQueue.push's fast path (see the NOTE
            # there): this is the hottest scheduling site in the kernel.
            try:
                b = int(when * cal._inv)
            except (OverflowError, ValueError):
                b = 1 << 62
            if b > cal._cur:
                try:
                    cal._future[b].append(item)
                except KeyError:
                    cal._future[b] = [item]
                    heapq.heappush(cal._bucket_ids, b)
            else:
                cal._push_late(item)


class Initialize(Event):
    """Internal: starts a freshly created :class:`Process`."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._value = None
        self._ok = True
        self._state = TRIGGERED
        self.callbacks.append(process._resume)
        env._push(self)


class Process(Event):
    """A running simulation actor wrapping a generator.

    The process *is itself an event* that triggers when the generator
    returns (value = its return value) or raises (failure).  Other
    processes may ``yield proc`` to join on it, or call
    :meth:`interrupt` to raise :class:`Interrupt` inside it.
    """

    __slots__ = ("generator", "name", "_waiting_on")

    def __init__(self, env: "Environment", generator: Generator,
                 name: Optional[str] = None):
        if not hasattr(generator, "send"):
            raise TypeError(f"process() needs a generator, got {generator!r}")
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return self._state == PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name}")
        if self._waiting_on is not None:
            target = self._waiting_on
            if self._resume in target.callbacks:
                target.callbacks.remove(self._resume)
            # An interrupted wait on a resource request withdraws the
            # request — otherwise the slot would later be granted to a
            # process that is no longer listening and leak forever.
            cancel = getattr(target, "cancel", None)
            if callable(cancel) and not target.triggered:
                cancel()
            self._waiting_on = None
        hook = Event(self.env)
        hook.callbacks.append(self._resume_interrupt(cause))
        hook.succeed()

    def _resume_interrupt(self, cause: Any) -> Callable[[Event], None]:
        def do_resume(_evt: Event) -> None:
            if not self.is_alive:  # finished before the interrupt landed
                return
            self._step(lambda: self.generator.throw(Interrupt(cause)))
        return do_resume

    def _resume(self, event: Event) -> None:
        # The kernel's hottest function: one call per process wake-up.
        # Advance the generator directly (no per-resume closure) and
        # handle the yielded event inline.
        self._waiting_on = None
        env = self.env
        env._active_process = self
        try:
            if event._ok:
                target = self.generator.send(event._value)
            else:
                target = self.generator.throw(event._value)
        except StopIteration as stop:
            env._active_process = None
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            env._active_process = None
            self.fail(exc)
            return
        except BaseException as exc:
            env._active_process = None
            if env.strict:
                raise
            self.fail(exc)
            return
        env._active_process = None
        self._wait_on(target)

    def _step(self, advance: Callable[[], Any]) -> None:
        self.env._active_process = self
        try:
            target = advance()
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # An uncaught Interrupt terminates the process as a failure.
            self.env._active_process = None
            self.fail(exc)
            return
        except BaseException as exc:
            self.env._active_process = None
            if self.env.strict:
                raise
            self.fail(exc)
            return
        self.env._active_process = None
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; only Event "
                f"instances may be yielded")
        if target._state == PROCESSED:
            # Already complete: resume immediately via a fresh hook so the
            # event queue stays the single source of ordering.
            hook = Event(self.env)
            hook._value, hook._ok = target._value, target._ok
            hook.callbacks.append(self._resume)
            hook._state = TRIGGERED
            self.env._push(hook)
            self._waiting_on = hook
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target


class Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` composite waits."""

    __slots__ = ("events", "_pending_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._pending_count = 0
        for evt in self.events:
            if evt._state == PROCESSED:
                self._observe(evt)
            else:
                evt.callbacks.append(self._observe)
                self._pending_count += 1
        self._check_trivial()

    def _check_trivial(self) -> None:
        raise NotImplementedError

    def _observe(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(Condition):
    """Triggers when every constituent event has triggered.

    Value is a dict mapping each event to its value.
    """

    __slots__ = ("_done",)

    def __init__(self, env: "Environment", events: Iterable[Event]):
        self._done = 0
        super().__init__(env, events)

    def _check_trivial(self) -> None:
        if self._state == PENDING and self._done == len(self.events):
            self.succeed({e: e._value for e in self.events})

    def _observe(self, event: Event) -> None:
        if self._state != PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._done += 1
        if self._done == len(self.events):
            self.succeed({e: e._value for e in self.events})


class AnyOf(Condition):
    """Triggers as soon as any constituent event triggers.

    Value is a dict of the events that had triggered at that moment.
    """

    __slots__ = ()

    def _check_trivial(self) -> None:
        if self._state == PENDING and any(
                e._state == PROCESSED for e in self.events):
            self.succeed({e: e._value for e in self.events
                          if e._state == PROCESSED})

    def _observe(self, event: Event) -> None:
        if self._state != PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed({e: e._value for e in self.events
                      if e._state == PROCESSED})


class Environment:
    """The simulation clock plus the event queue.

    Parameters
    ----------
    initial_time:
        Starting value of :attr:`now`.
    strict:
        When True (the default), an exception escaping a process propagates
        out of :meth:`run` immediately instead of failing the process
        event — the right behaviour for tests.
    scheduler:
        ``"auto"`` (default) starts on a binary heap and migrates to a
        :class:`CalendarQueue` at a run()/step() boundary once the
        pending set reaches ``_CAL_THRESHOLD`` events *and* the
        once-per-process :func:`scheduler_calibration` microbenchmark
        says the calendar wins on this interpreter; after migration it
        demotes back to the heap (permanently, per env) if the
        calendar's late-push fraction shows the workload is hostile to
        bucketing.  ``"heap"`` pins the binary heap; ``"calendar"``
        migrates at the first non-empty boundary and never demotes.
        Both schedulers pop in identical ``(time, eid)`` order, so the
        choice never changes simulated results.
    """

    __slots__ = ("_now", "_queue", "_cal", "_scheduler", "_eid",
                 "_active_process", "strict", "events_processed",
                 "_cal_banned", "_cal_mark")

    def __init__(self, initial_time: float = 0.0, strict: bool = True,
                 scheduler: str = "auto"):
        if scheduler not in SCHEDULERS:
            raise ValueError(f"scheduler must be one of {SCHEDULERS}, "
                             f"got {scheduler!r}")
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._cal: Optional[CalendarQueue] = None
        self._scheduler = scheduler
        self._eid = itertools.count()
        self._active_process: Optional[Process] = None
        self.strict = strict
        #: Total events whose callbacks have run (step() / run() loops).
        self.events_processed = 0
        # "auto" demoted this env back to the heap once: stay there —
        # flapping between representations would churn for nothing.
        self._cal_banned = False
        # events_processed at calendar migration; the demotion guard's
        # denominator (events since ≈ pushes since, in steady state).
        self._cal_mark = 0

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event constructors ----------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator,
                name: Optional[str] = None) -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------
    def _push(self, event: Event, delay: float = 0.0) -> None:
        cal = self._cal
        item = (self._now + delay, next(self._eid), event)
        if cal is None:
            heapq.heappush(self._queue, item)
        else:
            cal.push(item)

    def _maybe_switch(self) -> None:
        """Pick the queue representation at a run()/step() boundary.

        Heap -> calendar when the pending set is dense enough AND — for
        "auto" — the per-process calibration says the calendar actually
        wins on this interpreter.  An already-migrated "auto" env is
        health-checked: if the calendar reports pathological behaviour
        (late-push fraction past :data:`_CAL_LATE_FRACTION`), it demotes
        back to the heap and stays there.  Stale bucket widths trigger a
        density-adaptive rebuild instead.  Representation changes happen
        only here, never mid-loop, and both sides pop in identical
        ``(time, eid)`` order, so none of this can change simulated
        results.  ``reference_mode()`` pins ``_FORCE_HEAP`` so A/B
        replays stay on the pre-pass heap.
        """
        cal = self._cal
        if cal is not None:
            done = self.events_processed - self._cal_mark
            if (self._scheduler == "auto"
                    and done >= _CAL_GUARD_MIN_EVENTS
                    and cal._late > done * _CAL_LATE_FRACTION):
                # Post-migration pop/push cost regressed: demote.
                self._queue = cal.drain_items()
                heapq.heapify(self._queue)
                self._cal = None
                self._cal_banned = True
            elif cal._needs_rebuild and (cal._active or cal._bucket_ids):
                self._cal = CalendarQueue.from_items(cal.drain_items(),
                                                     per_bucket=cal.per_bucket)
                self._cal_mark = self.events_processed
            return
        if _FORCE_HEAP or self._cal_banned:
            return
        mode = self._scheduler
        if mode == "heap":
            return
        n = len(self._queue)
        if not n:
            return
        if mode == "calendar" or (n >= _CAL_THRESHOLD
                                  and scheduler_calibration() == "calendar"):
            self._cal = CalendarQueue.from_items(self._queue)
            self._queue = []
            self._cal_mark = self.events_processed

    @property
    def scheduler_active(self) -> str:
        """Queue representation currently in use: "heap" or "calendar"."""
        return "heap" if self._cal is None else "calendar"

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._cal is not None:
            return self._cal.min_time()
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process one event; advances :attr:`now` to its timestamp."""
        global _total_events
        self._maybe_switch()
        cal = self._cal
        if cal is None:
            if not self._queue:
                raise SimulationError("step() on an empty event queue")
            when, _, event = heapq.heappop(self._queue)
        else:
            if not (cal._active or cal._bucket_ids):
                raise SimulationError("step() on an empty event queue")
            when, _, event = cal.pop()
        self._now = when
        self.events_processed += 1
        _total_events += 1
        event._run_callbacks()

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be a time (stop when the clock would pass it), an
        :class:`Event` (stop when it triggers, returning its value), or
        ``None`` (run until no events remain).

        Each loop below inlines :meth:`step` with the heap and pop
        hoisted into locals — the dispatch loop itself is a measurable
        slice of large modeled runs.
        """
        self._maybe_switch()
        if self._cal is not None:
            return self._run_calendar(until)
        queue = self._queue
        pop = heapq.heappop
        if isinstance(until, Event):
            stop_evt = until
            processed = 0
            try:
                while not stop_evt._state:          # PENDING
                    if not queue:
                        raise SimulationError(
                            "simulation ran dry before the awaited event "
                            "fired")
                    when, _, event = pop(queue)
                    self._now = when
                    processed += 1
                    event._run_callbacks()
            finally:
                self.events_processed += processed
                _add_total(processed)
            if not stop_evt._ok:
                raise stop_evt._value
            return stop_evt._value

        if until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(
                    f"until={horizon} is in the past (now={self._now})")
            processed = 0
            try:
                while queue and queue[0][0] <= horizon:
                    when, _, event = pop(queue)
                    self._now = when
                    processed += 1
                    event._run_callbacks()
            finally:
                self.events_processed += processed
                _add_total(processed)
            self._now = max(self._now, horizon)
            return None

        processed = 0
        try:
            while queue:
                when, _, event = pop(queue)
                self._now = when
                processed += 1
                event._run_callbacks()
        finally:
            self.events_processed += processed
            _add_total(processed)
        return None

    def _run_calendar(self, until: Optional[float | Event]) -> Any:
        """The run() loops against a migrated :class:`CalendarQueue`.

        Mirrors the heap loops exactly — same stop conditions, same
        accounting — with pops inlined against the calendar's sorted
        active bucket (next event is always ``active[-1]``), which
        yields the identical ``(time, eid)`` order.
        """
        cal = self._cal
        assert cal is not None
        if isinstance(until, Event):
            stop_evt = until
            processed = 0
            try:
                while not stop_evt._state:          # PENDING
                    active = cal._active
                    if not active:
                        if not cal._bucket_ids:
                            raise SimulationError(
                                "simulation ran dry before the awaited "
                                "event fired")
                        cal._advance()
                        active = cal._active
                    when, _, event = active.pop()
                    self._now = when
                    processed += 1
                    event._run_callbacks()
            finally:
                self.events_processed += processed
                _add_total(processed)
            if not stop_evt._ok:
                raise stop_evt._value
            return stop_evt._value

        if until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(
                    f"until={horizon} is in the past (now={self._now})")
            processed = 0
            try:
                while True:
                    active = cal._active
                    if not active:
                        if not cal._bucket_ids:
                            break
                        cal._advance()
                        active = cal._active
                    when = active[-1][0]
                    if when > horizon:
                        break
                    _, _, event = active.pop()
                    self._now = when
                    processed += 1
                    event._run_callbacks()
            finally:
                self.events_processed += processed
                _add_total(processed)
            self._now = max(self._now, horizon)
            return None

        processed = 0
        try:
            while True:
                active = cal._active
                if not active:
                    if not cal._bucket_ids:
                        break
                    cal._advance()
                    active = cal._active
                when, _, event = active.pop()
                self._now = when
                processed += 1
                event._run_callbacks()
        finally:
            self.events_processed += processed
            _add_total(processed)
        return None
