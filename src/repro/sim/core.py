"""Discrete-event simulation kernel.

A minimal, dependency-free event loop in the style of SimPy: simulation
actors are Python generators that ``yield`` :class:`Event` objects and are
resumed when those events fire.  The kernel is deterministic — given the
same seed streams (see :mod:`repro.sim.rand`) a simulation replays
identically, which the test suite relies on.

Virtual time is a ``float`` in **seconds**.  Nothing in the kernel sleeps
on the wall clock; large cluster runs execute in milliseconds of real time.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "CalendarQueue",
    "SimulationError",
    "total_events_processed",
]


class SimulationError(Exception):
    """Raised for kernel-level misuse (double trigger, bad yield, ...)."""


class Interrupt(Exception):
    """Raised inside a process that another actor interrupted.

    The ``cause`` attribute carries whatever the interrupter supplied.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event lifecycle states.
PENDING = 0
TRIGGERED = 1  # scheduled on the event queue, callbacks not yet run
PROCESSED = 2  # callbacks have run

# Process-wide event tally across every Environment, so experiment
# runners can report events/s without holding a reference to each env
# their sweeps create.
_total_events = 0


def _add_total(processed: int) -> None:
    global _total_events
    _total_events += processed


def total_events_processed() -> int:
    """Events processed by all Environments since interpreter start."""
    return _total_events


# -- scheduler selection ---------------------------------------------------
# An Environment starts on a binary heap and may migrate to a
# CalendarQueue when, at a run()/step() boundary, the pending set is
# dense enough that bucketing beats log-n sifts.  Migration never
# happens mid-loop: the push fast paths branch on ``env._cal`` per call,
# so a queue representation is stable for the whole of one run() loop.
SCHEDULERS = ("auto", "heap", "calendar")

#: Pending events at a run()/step() boundary before "auto" migrates.
_CAL_THRESHOLD = 512

#: Target mean occupancy per calendar bucket when sizing the width.
_CAL_PER_BUCKET = 8

#: reference_mode() sets this True so A/B runs replay on the exact
#: pre-pass heap scheduler.  Only consulted at migration points.
_FORCE_HEAP = False


class CalendarQueue:
    """Bucketed event queue (a one-tier calendar / ladder queue).

    Items are ``(time, eid, event)`` triples.  Buckets of ``width``
    seconds are keyed by ``int(time / width)``; the *active* bucket
    (everything at or before the bucket currently being drained) is kept
    as a small heap, while future buckets stay as unsorted lists that
    are heapified only when the clock reaches them.  For dense pending
    sets this turns most pushes into an O(1) list append instead of an
    O(log n) sift.

    Pops come out in exactly ``(time, eid)`` order — the same total
    order as the binary heap — so swapping representations can never
    change a simulation's event order.
    """

    __slots__ = ("width", "_cur", "_active", "_future", "_bucket_ids",
                 "_len")

    def __init__(self, width: float):
        if not (width > 0 and math.isfinite(width)):
            raise ValueError(f"bucket width must be finite and > 0, "
                             f"got {width!r}")
        self.width = width
        self._cur = -(1 << 62)  # bucket id currently draining
        self._active: list[tuple[float, int, Event]] = []
        self._future: dict[int, list[tuple[float, int, Event]]] = {}
        self._bucket_ids: list[int] = []  # heap of future bucket ids
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def push(self, item: tuple[float, int, Event]) -> None:
        try:
            b = int(item[0] / self.width)
        except (OverflowError, ValueError):  # inf/nan timestamps
            b = 1 << 62
        if b <= self._cur:
            # Late push into the bucket being drained (a zero-delay
            # event scheduled by a callback): must stay heap-ordered.
            heapq.heappush(self._active, item)
        else:
            bucket = self._future.get(b)
            if bucket is None:
                self._future[b] = [item]
                heapq.heappush(self._bucket_ids, b)
            else:
                bucket.append(item)
        self._len += 1

    def _advance(self) -> None:
        b = heapq.heappop(self._bucket_ids)
        items = self._future.pop(b)
        self._cur = b
        heapq.heapify(items)
        self._active = items

    def pop(self) -> tuple[float, int, Event]:
        """Remove and return the earliest item; caller checks len()."""
        if not self._active:
            self._advance()
        self._len -= 1
        return heapq.heappop(self._active)

    def min_time(self) -> float:
        """Timestamp of the earliest item, or ``inf`` when empty."""
        if not self._len:
            return float("inf")
        if not self._active:
            self._advance()
        return self._active[0][0]

    @classmethod
    def from_items(cls, items: list[tuple[float, int, Event]],
                   per_bucket: int = _CAL_PER_BUCKET) -> "CalendarQueue":
        """Build a queue sized from the density of ``items``.

        Width is chosen so a bucket holds ~``per_bucket`` of the current
        pending items on average — the event-density heuristic.  A
        degenerate span (all items at one instant) degrades gracefully
        to a single bucket, i.e. plain heap behaviour.
        """
        lo = math.inf
        hi = -math.inf
        for it in items:
            t = it[0]
            if t < lo:
                lo = t
            if t > hi:
                hi = t
        span = hi - lo
        if not (span > 0 and math.isfinite(span)):
            width = 1.0
        else:
            width = max(span * per_bucket / len(items), 1e-12)
        q = cls(width)
        for it in items:
            q.push(it)
        return q


class Event:
    """A happening at a point in simulated time.

    Events move through three states: *pending* (created), *triggered*
    (given a value/exception and scheduled), *processed* (callbacks ran).
    Processes wait on events by ``yield``-ing them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_state")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state = PENDING

    # -- inspection ------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state >= TRIGGERED

    @property
    def processed(self) -> bool:
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        if self._state == PENDING:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._state == PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != PENDING:
            raise SimulationError("event already triggered")
        self._value = value
        self._ok = True
        self._state = TRIGGERED
        # Inline env._push: succeed() fires once per queue grant /
        # process completion, the second-hottest scheduling site.
        env = self.env
        cal = env._cal
        if cal is None:
            heapq.heappush(env._queue, (env._now, next(env._eid), self))
        else:
            cal.push((env._now, next(env._eid), self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every waiting process.
        """
        if self._state != PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._value = exception
        self._ok = False
        self._state = TRIGGERED
        self.env._push(self)
        return self

    def _run_callbacks(self) -> None:
        self._state = PROCESSED
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = []
            for cb in callbacks:
                cb(self)


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        # Direct slot initialization (no Event.__init__ call): a Timeout
        # is born triggered, and this constructor runs once per modeled
        # stage latency — the hottest allocation site in the kernel.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._state = TRIGGERED
        self.delay = delay
        cal = env._cal
        if cal is None:
            heapq.heappush(env._queue,
                           (env._now + delay, next(env._eid), self))
        else:
            cal.push((env._now + delay, next(env._eid), self))


class Initialize(Event):
    """Internal: starts a freshly created :class:`Process`."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._value = None
        self._ok = True
        self._state = TRIGGERED
        self.callbacks.append(process._resume)
        env._push(self)


class Process(Event):
    """A running simulation actor wrapping a generator.

    The process *is itself an event* that triggers when the generator
    returns (value = its return value) or raises (failure).  Other
    processes may ``yield proc`` to join on it, or call
    :meth:`interrupt` to raise :class:`Interrupt` inside it.
    """

    __slots__ = ("generator", "name", "_waiting_on")

    def __init__(self, env: "Environment", generator: Generator,
                 name: Optional[str] = None):
        if not hasattr(generator, "send"):
            raise TypeError(f"process() needs a generator, got {generator!r}")
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return self._state == PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name}")
        if self._waiting_on is not None:
            target = self._waiting_on
            if self._resume in target.callbacks:
                target.callbacks.remove(self._resume)
            # An interrupted wait on a resource request withdraws the
            # request — otherwise the slot would later be granted to a
            # process that is no longer listening and leak forever.
            cancel = getattr(target, "cancel", None)
            if callable(cancel) and not target.triggered:
                cancel()
            self._waiting_on = None
        hook = Event(self.env)
        hook.callbacks.append(self._resume_interrupt(cause))
        hook.succeed()

    def _resume_interrupt(self, cause: Any) -> Callable[[Event], None]:
        def do_resume(_evt: Event) -> None:
            if not self.is_alive:  # finished before the interrupt landed
                return
            self._step(lambda: self.generator.throw(Interrupt(cause)))
        return do_resume

    def _resume(self, event: Event) -> None:
        # The kernel's hottest function: one call per process wake-up.
        # Advance the generator directly (no per-resume closure) and
        # handle the yielded event inline.
        self._waiting_on = None
        env = self.env
        env._active_process = self
        try:
            if event._ok:
                target = self.generator.send(event._value)
            else:
                target = self.generator.throw(event._value)
        except StopIteration as stop:
            env._active_process = None
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            env._active_process = None
            self.fail(exc)
            return
        except BaseException as exc:
            env._active_process = None
            if env.strict:
                raise
            self.fail(exc)
            return
        env._active_process = None
        self._wait_on(target)

    def _step(self, advance: Callable[[], Any]) -> None:
        self.env._active_process = self
        try:
            target = advance()
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # An uncaught Interrupt terminates the process as a failure.
            self.env._active_process = None
            self.fail(exc)
            return
        except BaseException as exc:
            self.env._active_process = None
            if self.env.strict:
                raise
            self.fail(exc)
            return
        self.env._active_process = None
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; only Event "
                f"instances may be yielded")
        if target._state == PROCESSED:
            # Already complete: resume immediately via a fresh hook so the
            # event queue stays the single source of ordering.
            hook = Event(self.env)
            hook._value, hook._ok = target._value, target._ok
            hook.callbacks.append(self._resume)
            hook._state = TRIGGERED
            self.env._push(hook)
            self._waiting_on = hook
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target


class Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` composite waits."""

    __slots__ = ("events", "_pending_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._pending_count = 0
        for evt in self.events:
            if evt._state == PROCESSED:
                self._observe(evt)
            else:
                evt.callbacks.append(self._observe)
                self._pending_count += 1
        self._check_trivial()

    def _check_trivial(self) -> None:
        raise NotImplementedError

    def _observe(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(Condition):
    """Triggers when every constituent event has triggered.

    Value is a dict mapping each event to its value.
    """

    __slots__ = ("_done",)

    def __init__(self, env: "Environment", events: Iterable[Event]):
        self._done = 0
        super().__init__(env, events)

    def _check_trivial(self) -> None:
        if self._state == PENDING and self._done == len(self.events):
            self.succeed({e: e._value for e in self.events})

    def _observe(self, event: Event) -> None:
        if self._state != PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._done += 1
        if self._done == len(self.events):
            self.succeed({e: e._value for e in self.events})


class AnyOf(Condition):
    """Triggers as soon as any constituent event triggers.

    Value is a dict of the events that had triggered at that moment.
    """

    __slots__ = ()

    def _check_trivial(self) -> None:
        if self._state == PENDING and any(
                e._state == PROCESSED for e in self.events):
            self.succeed({e: e._value for e in self.events
                          if e._state == PROCESSED})

    def _observe(self, event: Event) -> None:
        if self._state != PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed({e: e._value for e in self.events
                      if e._state == PROCESSED})


class Environment:
    """The simulation clock plus the event queue.

    Parameters
    ----------
    initial_time:
        Starting value of :attr:`now`.
    strict:
        When True (the default), an exception escaping a process propagates
        out of :meth:`run` immediately instead of failing the process
        event — the right behaviour for tests.
    scheduler:
        ``"auto"`` (default) starts on a binary heap and migrates to a
        :class:`CalendarQueue` at a run()/step() boundary once the
        pending set reaches ``_CAL_THRESHOLD`` events; ``"heap"`` pins
        the binary heap; ``"calendar"`` migrates at the first non-empty
        boundary.  Both schedulers pop in identical ``(time, eid)``
        order, so the choice never changes simulated results.
    """

    __slots__ = ("_now", "_queue", "_cal", "_scheduler", "_eid",
                 "_active_process", "strict", "events_processed")

    def __init__(self, initial_time: float = 0.0, strict: bool = True,
                 scheduler: str = "auto"):
        if scheduler not in SCHEDULERS:
            raise ValueError(f"scheduler must be one of {SCHEDULERS}, "
                             f"got {scheduler!r}")
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._cal: Optional[CalendarQueue] = None
        self._scheduler = scheduler
        self._eid = itertools.count()
        self._active_process: Optional[Process] = None
        self.strict = strict
        #: Total events whose callbacks have run (step() / run() loops).
        self.events_processed = 0

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event constructors ----------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator,
                name: Optional[str] = None) -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------
    def _push(self, event: Event, delay: float = 0.0) -> None:
        cal = self._cal
        item = (self._now + delay, next(self._eid), event)
        if cal is None:
            heapq.heappush(self._queue, item)
        else:
            cal.push(item)

    def _maybe_switch(self) -> None:
        """Migrate heap -> calendar when the pending set is dense enough.

        Called only at run()/step() entry so a queue representation is
        stable for the whole of one dispatch loop.  ``reference_mode()``
        pins ``_FORCE_HEAP`` so A/B replays stay on the pre-pass heap.
        """
        if self._cal is not None or _FORCE_HEAP:
            return
        mode = self._scheduler
        if mode == "heap":
            return
        n = len(self._queue)
        if n and (mode == "calendar" or n >= _CAL_THRESHOLD):
            self._cal = CalendarQueue.from_items(self._queue)
            self._queue = []

    @property
    def scheduler_active(self) -> str:
        """Queue representation currently in use: "heap" or "calendar"."""
        return "heap" if self._cal is None else "calendar"

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._cal is not None:
            return self._cal.min_time()
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process one event; advances :attr:`now` to its timestamp."""
        global _total_events
        self._maybe_switch()
        cal = self._cal
        if cal is None:
            if not self._queue:
                raise SimulationError("step() on an empty event queue")
            when, _, event = heapq.heappop(self._queue)
        else:
            if not cal._len:
                raise SimulationError("step() on an empty event queue")
            when, _, event = cal.pop()
        self._now = when
        self.events_processed += 1
        _total_events += 1
        event._run_callbacks()

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be a time (stop when the clock would pass it), an
        :class:`Event` (stop when it triggers, returning its value), or
        ``None`` (run until no events remain).

        Each loop below inlines :meth:`step` with the heap and pop
        hoisted into locals — the dispatch loop itself is a measurable
        slice of large modeled runs.
        """
        self._maybe_switch()
        if self._cal is not None:
            return self._run_calendar(until)
        queue = self._queue
        pop = heapq.heappop
        if isinstance(until, Event):
            stop_evt = until
            processed = 0
            try:
                while not stop_evt._state:          # PENDING
                    if not queue:
                        raise SimulationError(
                            "simulation ran dry before the awaited event "
                            "fired")
                    when, _, event = pop(queue)
                    self._now = when
                    processed += 1
                    event._run_callbacks()
            finally:
                self.events_processed += processed
                _add_total(processed)
            if not stop_evt._ok:
                raise stop_evt._value
            return stop_evt._value

        if until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(
                    f"until={horizon} is in the past (now={self._now})")
            processed = 0
            try:
                while queue and queue[0][0] <= horizon:
                    when, _, event = pop(queue)
                    self._now = when
                    processed += 1
                    event._run_callbacks()
            finally:
                self.events_processed += processed
                _add_total(processed)
            self._now = max(self._now, horizon)
            return None

        processed = 0
        try:
            while queue:
                when, _, event = pop(queue)
                self._now = when
                processed += 1
                event._run_callbacks()
        finally:
            self.events_processed += processed
            _add_total(processed)
        return None

    def _run_calendar(self, until: Optional[float | Event]) -> Any:
        """The run() loops against a migrated :class:`CalendarQueue`.

        Mirrors the heap loops exactly — same stop conditions, same
        accounting — with pops routed through the calendar, which
        yields the identical ``(time, eid)`` order.
        """
        cal = self._cal
        assert cal is not None
        if isinstance(until, Event):
            stop_evt = until
            processed = 0
            try:
                while not stop_evt._state:          # PENDING
                    if not cal._len:
                        raise SimulationError(
                            "simulation ran dry before the awaited event "
                            "fired")
                    when, _, event = cal.pop()
                    self._now = when
                    processed += 1
                    event._run_callbacks()
            finally:
                self.events_processed += processed
                _add_total(processed)
            if not stop_evt._ok:
                raise stop_evt._value
            return stop_evt._value

        if until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(
                    f"until={horizon} is in the past (now={self._now})")
            processed = 0
            try:
                while cal._len and cal.min_time() <= horizon:
                    when, _, event = cal.pop()
                    self._now = when
                    processed += 1
                    event._run_callbacks()
            finally:
                self.events_processed += processed
                _add_total(processed)
            self._now = max(self._now, horizon)
            return None

        processed = 0
        try:
            while cal._len:
                when, _, event = cal.pop()
                self._now = when
                processed += 1
                event._run_callbacks()
        finally:
            self.events_processed += processed
            _add_total(processed)
        return None
