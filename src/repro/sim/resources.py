"""Shared-resource primitives built on the event kernel.

Three families:

* :class:`Resource` — a counted semaphore with FIFO (or priority) queueing;
  models CPU-core pools, DMA engines, PCIe lanes, database reader slots.
* :class:`Store` — a buffer of discrete items with put/get blocking; the
  basis of every queue in the system (FIFO cmd queues, batch queues,
  Trans Queues).
* :class:`Container` — a continuous level (bytes in a buffer, joules).

All waiters are served in strict FIFO order within the same priority so
simulations are deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Optional

from .core import Environment, Event, SimulationError

__all__ = ["Request", "Release", "Resource", "PriorityResource",
           "Preempted", "Store", "FilterStore", "Container"]


class Request(Event):
    """Pending acquisition of one slot of a :class:`Resource`.

    Usable as a context manager in generator code::

        req = resource.request()
        yield req
        ...critical section...
        resource.release(req)
    """

    __slots__ = ("resource", "priority", "enqueued_at")

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self.enqueued_at = resource.env.now
        resource._enqueue(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request."""
        self.resource._cancel(self)


class Release(Event):
    """Immediate-fire event acknowledging a release (for symmetry)."""

    __slots__ = ()


class Resource:
    """Counted FIFO resource with ``capacity`` slots."""

    def __init__(self, env: Environment, capacity: int = 1,
                 name: str = "resource"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._users: list[Request] = []
        self._waiters: deque[Request] = deque()

    # -- public API --------------------------------------------------
    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_len(self) -> int:
        return len(self._waiters)

    def request(self, priority: int = 0) -> Request:
        return Request(self, priority)

    def release(self, request: Request) -> Release:
        if request not in self._users:
            raise SimulationError(
                f"release of a request not holding {self.name}")
        self._users.remove(request)
        self._grant_next()
        evt = Release(self.env)
        evt.succeed()
        return evt

    # -- internals -----------------------------------------------------
    def _enqueue(self, request: Request) -> None:
        self._waiters.append(request)
        self._grant_next()

    def _cancel(self, request: Request) -> None:
        try:
            self._waiters.remove(request)
        except ValueError:
            pass

    def _grant_next(self) -> None:
        while self._waiters and len(self._users) < self.capacity:
            nxt = self._waiters.popleft()
            self._users.append(nxt)
            nxt.succeed(nxt)


class Preempted(Exception):
    """Cause object delivered when a priority resource preempts a holder."""

    def __init__(self, by: Request, usage_since: float):
        super().__init__(f"preempted at priority {by.priority}")
        self.by = by
        self.usage_since = usage_since


class PriorityResource(Resource):
    """Resource whose waiters are served lowest-priority-value-first."""

    def __init__(self, env: Environment, capacity: int = 1,
                 name: str = "priority-resource"):
        super().__init__(env, capacity, name)
        self._pq: list[tuple[int, int, Request]] = []
        self._seq = itertools.count()

    def _enqueue(self, request: Request) -> None:
        heapq.heappush(self._pq, (request.priority, next(self._seq), request))
        self._grant_next()

    def _cancel(self, request: Request) -> None:
        self._pq = [(p, s, r) for (p, s, r) in self._pq if r is not request]
        heapq.heapify(self._pq)

    def _grant_next(self) -> None:
        while self._pq and len(self._users) < self.capacity:
            _, _, nxt = heapq.heappop(self._pq)
            self._users.append(nxt)
            nxt.succeed(nxt)

    @property
    def queue_len(self) -> int:
        return len(self._pq)


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        # Direct slot initialization (no Event.__init__): one StorePut
        # is created per queue operation — a kernel-hot allocation.
        self.env = store.env
        self.callbacks = []
        self._value = None
        self._ok = True
        self._state = 0                 # PENDING
        self.item = item
        items = store.items
        if not store._put_waiters and len(items) < store.capacity:
            # Immediate admit: no earlier putter to overtake, room in the
            # buffer.  succeed() first, then serve any waiting getter —
            # the exact order _drain() would produce.
            items.append(item)
            self.succeed()
            if store._get_waiters:
                store._drain()
        else:
            store._put_waiters.append(self)
            store._drain()


class StoreGet(Event):
    __slots__ = ("filter",)

    def __init__(self, store: "Store",
                 filter: Optional[Callable[[Any], bool]] = None):
        self.env = store.env
        self.callbacks = []
        self._value = None
        self._ok = True
        self._state = 0                 # PENDING
        self.filter = filter
        items = store.items
        if filter is None and items and not store._get_waiters:
            # Immediate serve: item available, no earlier getter to
            # overtake.  succeed() first, then admit any putter freed by
            # the vacated slot — the exact order _drain() would produce.
            self.succeed(items.popleft())
            if store._put_waiters:
                store._drain()
        else:
            store._get_waiters.append(self)
            # Putters only wait while the buffer is full, so an empty
            # buffer proves there is nothing to drain.
            if items:
                store._drain()


class Store:
    """A buffer of items with blocking put/get.

    ``capacity`` bounds the number of buffered items; a full store blocks
    putters, an empty one blocks getters.  FIFO both ways.
    """

    def __init__(self, env: Environment, capacity: float = float("inf"),
                 name: str = "store"):
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.items: deque[Any] = deque()
        self._put_waiters: deque[StorePut] = deque()
        self._get_waiters: deque[StoreGet] = deque()

    # -- public API --------------------------------------------------
    def put(self, item: Any) -> StorePut:
        return StorePut(self, item)

    def get(self) -> StoreGet:
        return StoreGet(self)

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; False when the store is full."""
        if len(self.items) >= self.capacity:
            return False
        self.items.append(item)
        self._drain()
        return True

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; ``(False, None)`` when empty."""
        if not self.items:
            return False, None
        item = self.items.popleft()
        self._drain()
        return True, item

    def __len__(self) -> int:
        return len(self.items)

    @property
    def level(self) -> int:
        return len(self.items)

    # -- internals -----------------------------------------------------
    def _match_get(self, getter: StoreGet) -> bool:
        if getter.filter is None:
            if self.items:
                getter.succeed(self.items.popleft())
                return True
            return False
        for idx, item in enumerate(self.items):
            if getter.filter(item):
                del self.items[idx]
                getter.succeed(item)
                return True
        return False

    def _drain(self) -> None:
        # Hot path: runs on every put/get.  Deques and capacity live in
        # locals, and the common unfiltered get is matched inline;
        # succeed() only schedules callbacks (no reentrancy), so the
        # grant order is exactly the original admit-then-serve loop's.
        items = self.items
        puts = self._put_waiters
        gets = self._get_waiters
        capacity = self.capacity
        while True:
            progressed = False
            # Admit puts while there is room.
            while puts and len(items) < capacity:
                putter = puts.popleft()
                items.append(putter.item)
                putter.succeed()
                progressed = True
            # Serve getters in arrival order; a filtered getter that cannot
            # match stays at the head (strict FIFO, no overtaking).
            while gets:
                getter = gets[0]
                if getter.filter is None:
                    if not items:
                        break
                    gets.popleft()
                    getter.succeed(items.popleft())
                    progressed = True
                elif self._match_get(getter):
                    gets.popleft()
                    progressed = True
                else:
                    break
            if not progressed:
                return


class FilterStore(Store):
    """Store whose getters may select items by predicate.

    Unlike the base store, a blocked filtered getter does not stall the
    getters queued behind it.
    """

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        return StoreGet(self, filter)

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._put_waiters and len(self.items) < self.capacity:
                putter = self._put_waiters.popleft()
                self.items.append(putter.item)
                putter.succeed()
                progressed = True
            still_waiting: deque[StoreGet] = deque()
            while self._get_waiters:
                getter = self._get_waiters.popleft()
                if self._match_get(getter):
                    progressed = True
                else:
                    still_waiting.append(getter)
            self._get_waiters = still_waiting


class ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError(f"amount must be > 0, got {amount}")
        super().__init__(container.env)
        self.amount = amount
        container._put_waiters.append(self)
        container._drain()


class ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError(f"amount must be > 0, got {amount}")
        super().__init__(container.env)
        self.amount = amount
        container._get_waiters.append(self)
        container._drain()


class Container:
    """A continuous quantity with blocking put/get (e.g. bytes of buffer)."""

    def __init__(self, env: Environment, capacity: float = float("inf"),
                 init: float = 0.0, name: str = "container"):
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        if not 0 <= init <= capacity:
            raise ValueError(f"init {init} outside [0, {capacity}]")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._level = float(init)
        self._put_waiters: deque[ContainerPut] = deque()
        self._get_waiters: deque[ContainerGet] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> ContainerPut:
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        return ContainerGet(self, amount)

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._put_waiters:
                putter = self._put_waiters[0]
                if self._level + putter.amount <= self.capacity:
                    self._put_waiters.popleft()
                    self._level += putter.amount
                    putter.succeed()
                    progressed = True
            if self._get_waiters:
                getter = self._get_waiters[0]
                if self._level >= getter.amount:
                    self._get_waiters.popleft()
                    self._level -= getter.amount
                    getter.succeed()
                    progressed = True
