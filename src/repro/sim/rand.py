"""Deterministic random streams.

Every stochastic element of the simulation (image sizes, client think
times, service jitter) draws from a named child stream spawned off one
root seed, so adding a new consumer never perturbs existing streams and
whole experiments replay bit-identically.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["SeedBank"]


class SeedBank:
    """Spawns independent, reproducible ``numpy`` generators by name."""

    def __init__(self, root_seed: int = 0xD1B0_05_7E):
        self.root_seed = int(root_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.root_seed}:{name}".encode()).digest()
            seed = int.from_bytes(digest[:8], "little")
            self._streams[name] = np.random.default_rng(seed)
        return self._streams[name]

    def reset(self) -> None:
        """Forget all streams; next access re-creates them from scratch."""
        self._streams.clear()

    def spawn(self, name: str) -> "SeedBank":
        """A child bank whose streams are independent of this bank's."""
        digest = hashlib.sha256(f"{self.root_seed}/{name}".encode()).digest()
        return SeedBank(int.from_bytes(digest[:8], "little"))
