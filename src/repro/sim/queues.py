"""Instrumented blocking queues — the channels gluing DLBooster together.

Every arrow in the paper's Figure 3 (FIFO cmd queues, Free/Full batch
queues, Trans Queues, packet/block queues) is a :class:`Channel`: a
bounded FIFO with occupancy and wait-time instrumentation built in, so
experiments can report where time is spent without extra plumbing.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .core import Environment
from .monitor import LatencyRecorder, TimeWeighted
from .resources import Store

__all__ = ["Channel", "QueuePair"]


class Channel:
    """A bounded FIFO channel with built-in occupancy/wait metrics."""

    def __init__(self, env: Environment, capacity: float = float("inf"),
                 name: str = "channel"):
        self.env = env
        self.name = name
        self._store = Store(env, capacity=capacity, name=name)
        self.occupancy = TimeWeighted(env, 0, name=f"{name}.occupancy")
        self.wait = LatencyRecorder(name=f"{name}.wait")
        self.put_count = 0
        self.get_count = 0

    @property
    def capacity(self) -> float:
        return self._store.capacity

    def __len__(self) -> int:
        return len(self._store)

    def put(self, item: Any) -> Generator:
        """Generator: blocks while the channel is full."""
        yield self._store.put((self.env.now, item))
        self.put_count += 1
        self.occupancy.set(len(self._store))

    def get(self) -> Generator:
        """Generator: blocks while the channel is empty; returns the item."""
        stamped = yield self._store.get()
        enq_t, item = stamped
        self.get_count += 1
        self.wait.record(self.env.now - enq_t)
        self.occupancy.set(len(self._store))
        return item

    def try_put(self, item: Any) -> bool:
        ok = self._store.try_put((self.env.now, item))
        if ok:
            self.put_count += 1
            self.occupancy.set(len(self._store))
        return ok

    def try_get(self) -> tuple[bool, Any]:
        ok, stamped = self._store.try_get()
        if not ok:
            return False, None
        enq_t, item = stamped
        self.get_count += 1
        self.wait.record(self.env.now - enq_t)
        self.occupancy.set(len(self._store))
        return True, item

    def drain(self) -> list[Any]:
        """Non-blocking: remove and return everything currently buffered."""
        out = []
        while True:
            ok, item = self.try_get()
            if not ok:
                return out
            out.append(item)


class QueuePair:
    """A free/full queue pair — the recycling idiom of Algorithms 2 & 3.

    ``free`` holds idle carriers (memory units, device batches); ``full``
    holds loaded ones.  Conservation — every carrier is in exactly one of
    {free, full, in-flight} — is checked by :meth:`in_flight`.
    """

    def __init__(self, env: Environment, capacity: float = float("inf"),
                 name: str = "qpair"):
        self.env = env
        self.name = name
        self.free = Channel(env, capacity, name=f"{name}.free")
        self.full = Channel(env, capacity, name=f"{name}.full")
        self._population = 0

    def seed(self, carriers: list[Any]) -> None:
        """Load initial carriers into the free queue (non-blocking)."""
        for c in carriers:
            if not self.free.try_put(c):
                raise OverflowError(f"{self.name}: seed exceeds capacity")
            self._population += 1

    @property
    def population(self) -> int:
        return self._population

    def in_flight(self) -> int:
        """Carriers currently held by neither queue."""
        return self._population - len(self.free) - len(self.full)
