"""Instrumented blocking queues — the channels gluing DLBooster together.

Every arrow in the paper's Figure 3 (FIFO cmd queues, Free/Full batch
queues, Trans Queues, packet/block queues) is a :class:`Channel`: a
bounded FIFO with occupancy and wait-time instrumentation built in, so
experiments can report where time is spent without extra plumbing.

Channels can additionally be armed with a :class:`ShedPolicy` — the
admission-control half of the supervision layer.  A shed-armed channel
rejects items whose deadline has already passed at enqueue
(*reject-on-admit*) and/or discards expired items transparently at
dequeue (*drop-expired-at-dequeue*), counting every shed.  An unarmed
channel (the default) is byte-identical to a build without this
feature: every hot-path hook is one ``is None`` test.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from .core import Environment
from .monitor import Counter, LatencyRecorder, TimeWeighted
from .resources import Store

__all__ = ["Channel", "QueuePair", "ShedPolicy", "deadline_of"]


def deadline_of(item: Any) -> float:
    """Default deadline extractor: the item's absolute ``deadline_at``
    (``inf`` — never sheds — when the item carries no deadline)."""
    return getattr(item, "deadline_at", math.inf)


@dataclass(frozen=True)
class ShedPolicy:
    """Deadline-aware admission control for one :class:`Channel`.

    ``reject_on_admit`` drops an already-expired item instead of
    enqueuing it (the cheapest place to shed: the work never occupies a
    slot).  ``drop_expired_at_dequeue`` makes ``get``/``try_get`` skip
    items that expired while queued, so consumers only ever see live
    work.  ``on_shed(item, where)`` — ``where`` in ``{"admit",
    "dequeue"}`` — lets callers complete per-item bookkeeping (e.g.
    failing a request's ``done_event`` so closed-loop clients reissue).
    """

    deadline_of: Callable[[Any], float] = deadline_of
    reject_on_admit: bool = False
    drop_expired_at_dequeue: bool = True
    on_shed: Optional[Callable[[Any, str], None]] = None

    def expired(self, item: Any, now: float) -> bool:
        return self.deadline_of(item) <= now


class Channel:
    """A bounded FIFO channel with built-in occupancy/wait metrics."""

    def __init__(self, env: Environment, capacity: float = float("inf"),
                 name: str = "channel", shed: Optional[ShedPolicy] = None):
        self.env = env
        self.name = name
        self._store = Store(env, capacity=capacity, name=name)
        self.occupancy = TimeWeighted(env, 0, name=f"{name}.occupancy")
        self.wait = LatencyRecorder(name=f"{name}.wait")
        self.put_count = 0
        self.get_count = 0
        self.shed: Optional[ShedPolicy] = None
        self._shed_count: Optional[Counter] = None
        if shed is not None:
            self.arm_shed(shed)

    def arm_shed(self, policy: ShedPolicy) -> None:
        """Attach a deadline shed policy (e.g. by a Supervisor, after the
        channel's owner constructed it)."""
        self.shed = policy
        if self._shed_count is None:
            self._shed_count = Counter(self.env, name=f"{self.name}.shed")

    @property
    def shed_total(self) -> int:
        """Items shed by the armed policy (0 when unarmed)."""
        return int(self._shed_count.total) if self._shed_count else 0

    def _shed_item(self, item: Any, where: str) -> None:
        self._shed_count.add()
        if self.shed.on_shed is not None:
            self.shed.on_shed(item, where)

    def _rejects_at_admit(self, item: Any) -> bool:
        if self.shed is not None and self.shed.reject_on_admit \
                and self.shed.expired(item, self.env.now):
            self._shed_item(item, "admit")
            return True
        return False

    @property
    def capacity(self) -> float:
        return self._store.capacity

    def __len__(self) -> int:
        return len(self._store)

    def put(self, item: Any) -> Generator:
        """Generator: blocks while the channel is full.

        With a ``reject_on_admit`` shed policy armed, an already-expired
        item is shed instead of enqueued (and the put returns at once).
        """
        if self.shed is not None and self._rejects_at_admit(item):
            return
        store = self._store
        yield store.put((self.env._now, item))
        self.put_count += 1
        self.occupancy.set(len(store.items))

    def get(self) -> Generator:
        """Generator: blocks while the channel is empty; returns the item.

        With a ``drop_expired_at_dequeue`` shed policy armed, items that
        expired while queued are discarded (counted, never returned) and
        the get keeps waiting for live work.
        """
        store = self._store
        while True:
            enq_t, item = yield store.get()
            if self.shed is not None and self.shed.drop_expired_at_dequeue \
                    and self.shed.expired(item, self.env._now):
                self.occupancy.set(len(store.items))
                self._shed_item(item, "dequeue")
                continue
            self.get_count += 1
            self.wait.record(self.env._now - enq_t)
            self.occupancy.set(len(store.items))
            return item

    def try_put(self, item: Any) -> bool:
        """Non-blocking put.  Returns True when the item was *handled* —
        enqueued, or shed by an armed reject-on-admit policy."""
        if self._rejects_at_admit(item):
            return True
        ok = self._store.try_put((self.env.now, item))
        if ok:
            self.put_count += 1
            self.occupancy.set(len(self._store.items))
        return ok

    def try_get(self) -> tuple[bool, Any]:
        while True:
            ok, stamped = self._store.try_get()
            if not ok:
                return False, None
            enq_t, item = stamped
            if self.shed is not None and self.shed.drop_expired_at_dequeue \
                    and self.shed.expired(item, self.env.now):
                self.occupancy.set(len(self._store.items))
                self._shed_item(item, "dequeue")
                continue
            self.get_count += 1
            self.wait.record(self.env.now - enq_t)
            self.occupancy.set(len(self._store.items))
            return True, item

    def drain(self) -> list[Any]:
        """Non-blocking: remove and return everything currently buffered."""
        out = []
        while True:
            ok, item = self.try_get()
            if not ok:
                return out
            out.append(item)


class QueuePair:
    """A free/full queue pair — the recycling idiom of Algorithms 2 & 3.

    ``free`` holds idle carriers (memory units, device batches); ``full``
    holds loaded ones.  Conservation — every carrier is in exactly one of
    {free, full, in-flight} — is checked by :meth:`in_flight`.
    """

    def __init__(self, env: Environment, capacity: float = float("inf"),
                 name: str = "qpair"):
        self.env = env
        self.name = name
        self.free = Channel(env, capacity, name=f"{name}.free")
        self.full = Channel(env, capacity, name=f"{name}.full")
        self._population = 0

    def seed(self, carriers: list[Any]) -> None:
        """Load initial carriers into the free queue (non-blocking)."""
        for c in carriers:
            if not self.free.try_put(c):
                raise OverflowError(f"{self.name}: seed exceeds capacity")
            self._population += 1

    @property
    def population(self) -> int:
        return self._population

    def in_flight(self) -> int:
        """Carriers currently held by neither queue."""
        return self._population - len(self.free) - len(self.full)
