"""Span tracing for simulations, exportable as Chrome trace JSON.

A :class:`Tracer` collects *spans* (named intervals on a named track),
*instants*, *counter samples* and *flow events*; ``to_chrome_trace()``
writes the ``chrome://tracing`` / Perfetto JSON array format, with
simulated seconds mapped to microseconds.  Components accept an
optional tracer, so a decode run can be opened in a trace viewer to see
every pipeline stage — the visual counterpart of the paper's Figure 4.
Flow events (``ph:"s"``/``"f"``) draw arrows between spans on different
tracks; :mod:`repro.tracing` uses them to tie one request's journey
together across the pipeline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from .core import Environment

__all__ = ["Span", "Tracer"]


@dataclass(frozen=True)
class Span:
    name: str
    track: str
    start: float
    end: float
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Collects spans/instants/counter samples/flows; bounded to
    ``max_events`` per event list to keep big simulations cheap (the
    tail is dropped, never the head)."""

    def __init__(self, env: Environment, max_events: int = 500_000):
        self.env = env
        self.max_events = max_events
        self.spans: list[Span] = []
        self.instants: list[tuple[str, str, float]] = []
        self.counters: list[tuple[str, float, dict]] = []
        self.flows: list[tuple[str, str, str, int, float]] = []
        self._open: dict[int, tuple[str, str, float, dict]] = {}
        self._next = 0
        self._next_flow = 0
        self.dropped = 0
        #: Spans still open at the last export — begin() tokens whose
        #: end() never ran.  They are invisible in the output unless
        #: :meth:`flush_open` closed them first, so the export counts
        #: them into the drop accounting instead of losing them silently.
        self.dropped_open = 0

    # -- recording -----------------------------------------------------
    def begin(self, name: str, track: str, **args) -> int:
        token = self._next
        self._next += 1
        self._open[token] = (name, track, self.env.now, args)
        return token

    def end(self, token: int) -> None:
        entry = self._open.pop(token, None)
        if entry is None:
            raise KeyError(
                f"Tracer.end({token!r}): no span is open under this token — "
                f"either it was never returned by begin(), or end() already "
                f"consumed it (tokens are single-use); {len(self._open)} "
                f"span(s) currently open")
        name, track, start, args = entry
        self._record_span(Span(name, track, start, self.env.now, args))

    def span_at(self, name: str, track: str, start: float, end: float,
                **args) -> None:
        """Record a span with explicit endpoints — for events whose
        extent is only known after the fact (a request trace's segments,
        a batch's assembly window)."""
        self._record_span(Span(name, track, start, end, args))

    def _record_span(self, span: Span) -> None:
        if len(self.spans) >= self.max_events:
            self.dropped += 1
            return
        self.spans.append(span)

    def flush_open(self) -> int:
        """Close every still-open span at the current sim time (token
        order, so output is deterministic).  Call before export to keep
        in-flight work visible instead of silently dropped; returns the
        number of spans closed."""
        closed = 0
        for token in sorted(self._open):
            name, track, start, args = self._open.pop(token)
            self._record_span(Span(name, track, start, self.env.now,
                                   dict(args, flushed=True)))
            closed += 1
        return closed

    @property
    def open_spans(self) -> int:
        """begin() tokens not yet end()ed (or flushed)."""
        return len(self._open)

    @property
    def total_dropped(self) -> int:
        """Events missing from the last export: capacity drops plus the
        spans that were still open when it ran."""
        return self.dropped + self.dropped_open

    def instant(self, name: str, track: str = "events") -> None:
        if len(self.instants) >= self.max_events:
            self.dropped += 1
            return
        self.instants.append((name, track, self.env.now))

    def counter(self, name: str, values: dict,
                at: Optional[float] = None) -> None:
        """Record one sample of a counter track (Chrome ``"ph": "C"``).

        ``values`` maps series label -> number; samples on the same
        ``name`` render as a stacked counter track in the viewer.  ``at``
        backdates the sample (used when merging telemetry time series
        collected elsewhere); default is the current sim time.
        """
        if len(self.counters) >= self.max_events:
            self.dropped += 1
            return
        when = self.env.now if at is None else at
        self.counters.append((name, when, dict(values)))

    def next_flow_id(self) -> int:
        """A fresh id pairing one ``flow(..., "s")`` with its ``"f"``."""
        fid = self._next_flow
        self._next_flow += 1
        return fid

    def flow(self, name: str, track: str, phase: str, flow_id: int,
             at: Optional[float] = None) -> None:
        """Record one endpoint of a flow arrow (``phase`` is ``"s"`` for
        the start, ``"f"`` for the finish; both ends share ``flow_id``).
        """
        if phase not in ("s", "f"):
            raise ValueError(f"flow phase must be 's' or 'f', not {phase!r}")
        if len(self.flows) >= self.max_events:
            self.dropped += 1
            return
        when = self.env.now if at is None else at
        self.flows.append((name, track, phase, flow_id, when))

    # -- analysis -----------------------------------------------------
    def spans_on(self, track: str) -> list[Span]:
        return [s for s in self.spans if s.track == track]

    def busy_time(self, track: str) -> float:
        return sum(s.duration for s in self.spans_on(track))

    def tracks(self) -> list[str]:
        seen = dict.fromkeys(s.track for s in self.spans)
        return list(seen)

    # -- export -----------------------------------------------------
    def to_chrome_trace(self, path: Optional[str] = None) -> str:
        """Serialize to the Chrome trace-event JSON array format.

        Tracks map to thread ids; simulated seconds map to trace
        microseconds.  Events are emitted in timestamp order (metadata
        first).  Spans still open at export time are *not* emitted —
        they are tallied into :attr:`dropped_open` (and thus
        :attr:`total_dropped`); call :meth:`flush_open` first to close
        and keep them.  Returns the JSON string (and writes it when a
        path is given).
        """
        self.dropped_open = len(self._open)
        tids = {track: i for i, track in enumerate(self.tracks())}
        for _, track, _ in self.instants:
            tids.setdefault(track, len(tids))
        for _, track, _, _, _ in self.flows:
            tids.setdefault(track, len(tids))
        events = []
        for track, tid in tids.items():
            events.append({"ph": "M", "pid": 1, "tid": tid,
                           "name": "thread_name",
                           "args": {"name": track}})
        timed = []
        for span in self.spans:
            timed.append({
                "ph": "X", "pid": 1, "tid": tids[span.track],
                "name": span.name,
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "args": span.args,
            })
        for name, track, when in self.instants:
            timed.append({"ph": "i", "pid": 1, "tid": tids[track],
                          "name": name, "ts": when * 1e6, "s": "t"})
        for name, when, values in self.counters:
            timed.append({"ph": "C", "pid": 1, "name": name,
                          "ts": when * 1e6, "args": values})
        for name, track, phase, fid, when in self.flows:
            evt = {"ph": phase, "pid": 1, "tid": tids[track], "cat": "flow",
                   "name": name, "ts": when * 1e6, "id": fid}
            if phase == "f":
                evt["bp"] = "e"   # bind the arrow to the enclosing slice
            timed.append(evt)
        timed.sort(key=lambda e: e["ts"])
        events.extend(timed)
        text = json.dumps(events)
        if path is not None:
            with open(path, "w") as fh:
                fh.write(text)
        return text
