"""Span tracing for simulations, exportable as Chrome trace JSON.

A :class:`Tracer` collects *spans* (named intervals on a named track)
and *instants*; ``to_chrome_trace()`` writes the ``chrome://tracing`` /
Perfetto JSON array format, with simulated seconds mapped to
microseconds.  Components accept an optional tracer, so a decode run
can be opened in a trace viewer to see every pipeline stage — the
visual counterpart of the paper's Figure 4.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from .core import Environment

__all__ = ["Span", "Tracer"]


@dataclass(frozen=True)
class Span:
    name: str
    track: str
    start: float
    end: float
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Collects spans/instants/counter samples; bounded to ``max_events``
    to keep big simulations cheap (the tail is dropped, never the head)."""

    def __init__(self, env: Environment, max_events: int = 500_000):
        self.env = env
        self.max_events = max_events
        self.spans: list[Span] = []
        self.instants: list[tuple[str, str, float]] = []
        self.counters: list[tuple[str, float, dict]] = []
        self._open: dict[int, tuple[str, str, float, dict]] = {}
        self._next = 0
        self.dropped = 0

    # -- recording -----------------------------------------------------
    def begin(self, name: str, track: str, **args) -> int:
        token = self._next
        self._next += 1
        self._open[token] = (name, track, self.env.now, args)
        return token

    def end(self, token: int) -> None:
        name, track, start, args = self._open.pop(token)
        if len(self.spans) >= self.max_events:
            self.dropped += 1
            return
        self.spans.append(Span(name, track, start, self.env.now, args))

    def instant(self, name: str, track: str = "events") -> None:
        if len(self.instants) >= self.max_events:
            self.dropped += 1
            return
        self.instants.append((name, track, self.env.now))

    def counter(self, name: str, values: dict,
                at: Optional[float] = None) -> None:
        """Record one sample of a counter track (Chrome ``"ph": "C"``).

        ``values`` maps series label -> number; samples on the same
        ``name`` render as a stacked counter track in the viewer.  ``at``
        backdates the sample (used when merging telemetry time series
        collected elsewhere); default is the current sim time.
        """
        if len(self.counters) >= self.max_events:
            self.dropped += 1
            return
        when = self.env.now if at is None else at
        self.counters.append((name, when, dict(values)))

    # -- analysis -----------------------------------------------------
    def spans_on(self, track: str) -> list[Span]:
        return [s for s in self.spans if s.track == track]

    def busy_time(self, track: str) -> float:
        return sum(s.duration for s in self.spans_on(track))

    def tracks(self) -> list[str]:
        seen = dict.fromkeys(s.track for s in self.spans)
        return list(seen)

    # -- export -----------------------------------------------------
    def to_chrome_trace(self, path: Optional[str] = None) -> str:
        """Serialize to the Chrome trace-event JSON array format.

        Tracks map to thread ids; simulated seconds map to trace
        microseconds.  Returns the JSON string (and writes it when a
        path is given).
        """
        tids = {track: i for i, track in enumerate(self.tracks())}
        for _, track, _ in self.instants:
            tids.setdefault(track, len(tids))
        events = []
        for track, tid in tids.items():
            events.append({"ph": "M", "pid": 1, "tid": tid,
                           "name": "thread_name",
                           "args": {"name": track}})
        for span in self.spans:
            events.append({
                "ph": "X", "pid": 1, "tid": tids[span.track],
                "name": span.name,
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "args": span.args,
            })
        for name, track, when in self.instants:
            events.append({"ph": "i", "pid": 1, "tid": tids[track],
                           "name": name, "ts": when * 1e6, "s": "t"})
        for name, when, values in self.counters:
            events.append({"ph": "C", "pid": 1, "name": name,
                           "ts": when * 1e6, "args": values})
        text = json.dumps(events)
        if path is not None:
            with open(path, "w") as fh:
                fh.write(text)
        return text
