"""Discrete-event simulation substrate for the DLBooster reproduction.

The kernel (:mod:`~repro.sim.core`) is a from-scratch generator-based
event loop; :mod:`~repro.sim.resources` adds semaphores/stores/containers;
:mod:`~repro.sim.queues` the instrumented channels; :mod:`~repro.sim.monitor`
the measurement instruments; :mod:`~repro.sim.rand` deterministic RNG
streams.
"""

from .core import (AllOf, AnyOf, CalendarQueue, Environment, Event, Interrupt,
                   Process, SimulationError, Timeout, total_events_processed)
from .monitor import (BusyTracker, Counter, IntervalRate, LatencyRecorder,
                      TimeWeighted, scoped_name, set_active_registry)
from .queues import Channel, QueuePair, ShedPolicy, deadline_of
from .rand import SeedBank
from .resources import (Container, FilterStore, PriorityResource, Resource,
                        Store)
from .trace import Span, Tracer

__all__ = [
    "Environment", "Event", "Timeout", "Process", "Interrupt",
    "total_events_processed",
    "AllOf", "AnyOf", "CalendarQueue", "SimulationError",
    "Resource", "PriorityResource", "Store", "FilterStore", "Container",
    "Channel", "QueuePair", "ShedPolicy", "deadline_of",
    "Counter", "TimeWeighted", "BusyTracker", "LatencyRecorder",
    "IntervalRate", "set_active_registry", "scoped_name",
    "SeedBank",
    "Tracer", "Span",
]
