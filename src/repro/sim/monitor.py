"""Measurement instruments for simulations.

Everything the experiment harness reports — throughput, CPU cores burned,
GPU utilization, latency percentiles — is integrated by these classes from
raw simulation activity; no result is ever entered by hand.
"""

from __future__ import annotations

import math
import struct
import zlib
from bisect import insort
from random import Random
from typing import Optional

from .core import Environment

__all__ = ["Counter", "TimeWeighted", "BusyTracker", "LatencyRecorder",
           "IntervalRate", "set_active_registry", "scoped_name"]


def scoped_name(namespace: str, name: str) -> str:
    """Prefix ``name`` with a per-instance metric namespace.

    ``scoped_name("host03", "nic")`` -> ``"host03.nic"``; an empty
    namespace returns ``name`` unchanged, so single-host callers keep
    their historical flat names (and, with them, every name-seeded RNG
    stream) byte-identical.
    """
    return f"{namespace}.{name}" if namespace else name


# Ambient metrics registry (see repro.telemetry).  While one is active —
# ``MetricsRegistry.installed()`` sets it around component construction —
# every instrument built here announces itself, so the whole pipeline's
# metrics land in one hierarchical namespace with zero plumbing changes.
_ACTIVE_REGISTRY = None


def set_active_registry(registry) -> Optional[object]:
    """Install ``registry`` as the ambient auto-registration sink (or
    ``None`` to clear it).  Returns the previously active registry so
    callers can restore it — :class:`repro.telemetry.MetricsRegistry`
    wraps this in a context manager."""
    global _ACTIVE_REGISTRY
    previous = _ACTIVE_REGISTRY
    _ACTIVE_REGISTRY = registry
    return previous


def _autoregister(instrument) -> None:
    if _ACTIVE_REGISTRY is not None:
        _ACTIVE_REGISTRY.register(instrument)


class Counter:
    """A monotonically increasing event count with rate helpers."""

    def __init__(self, env: Environment, name: str = "counter"):
        self.env = env
        self.name = name
        self.total = 0.0
        self._t0 = env.now
        _autoregister(self)

    def add(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.total += n

    def reset(self) -> None:
        self.total = 0.0
        self._t0 = self.env.now

    def rate(self, since: Optional[float] = None) -> float:
        """Average events/second since ``since`` (default: creation/reset)."""
        start = self._t0 if since is None else since
        elapsed = self.env.now - start
        return self.total / elapsed if elapsed > 0 else 0.0


class TimeWeighted:
    """Tracks a piecewise-constant value and its time-weighted mean/max.

    Used for queue depths, memory-pool occupancy and outstanding-command
    counts.
    """

    def __init__(self, env: Environment, initial: float = 0.0,
                 name: str = "level"):
        self.env = env
        self.name = name
        self._value = float(initial)
        self._last_t = env.now
        self._area = 0.0
        self._t0 = env.now
        self.max_value = float(initial)
        self.min_value = float(initial)
        _autoregister(self)

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        # Hot path: one call per queue push/pop.  Reads the clock slot
        # directly and branches instead of calling max()/min().
        now = self.env._now
        self._area += self._value * (now - self._last_t)
        self._last_t = now
        self._value = value = float(value)
        if value > self.max_value:
            self.max_value = value
        elif value < self.min_value:
            self.min_value = value

    def adjust(self, delta: float) -> None:
        self.set(self._value + delta)

    def mean(self) -> float:
        elapsed = self.env.now - self._t0
        if elapsed <= 0:
            return self._value
        area = self._area + self._value * (self.env.now - self._last_t)
        return area / elapsed


class BusyTracker:
    """Integrates busy time of a multi-slot device into "cores used".

    Each ``begin()``/``end()`` pair contributes its duration; the headline
    number is ``busy_time / wall_time`` — e.g. two workers each busy half
    the time report 1.0 cores.  Nested/concurrent intervals accumulate, so
    a pool of N workers reports up to N.  Categories let Fig. 6(d)-style
    breakdowns fall out of one tracker.
    """

    def __init__(self, env: Environment, name: str = "busy"):
        self.env = env
        self.name = name
        self._t0 = env.now
        self._busy: dict[str, float] = {}
        self._open: dict[int, tuple[str, float]] = {}
        self._next_token = 0
        _autoregister(self)

    def begin(self, category: str = "work") -> int:
        token = self._next_token
        self._next_token += 1
        self._open[token] = (category, self.env._now)
        return token

    def end(self, token: int) -> None:
        category, start = self._open.pop(token)
        self._busy[category] = self._busy.get(category, 0.0) + (
            self.env._now - start)

    def charge(self, duration: float, category: str = "work") -> None:
        """Directly account ``duration`` seconds of busy time."""
        if duration < 0:
            raise ValueError("negative busy duration")
        self._busy[category] = self._busy.get(category, 0.0) + duration

    def busy_seconds(self, category: Optional[str] = None) -> float:
        closed = (sum(self._busy.values()) if category is None
                  else self._busy.get(category, 0.0))
        # Include still-open intervals up to now.
        for cat, start in self._open.values():
            if category is None or cat == category:
                closed += self.env.now - start
        return closed

    def cores(self, category: Optional[str] = None,
              since: Optional[float] = None) -> float:
        start = self._t0 if since is None else since
        elapsed = self.env.now - start
        if elapsed <= 0:
            return 0.0
        return self.busy_seconds(category) / elapsed

    def breakdown(self) -> dict[str, float]:
        """Cores by category (Fig. 6(d) style)."""
        elapsed = self.env.now - self._t0
        if elapsed <= 0:
            return {}
        out: dict[str, float] = {}
        for cat in self._busy:
            out[cat] = self.busy_seconds(cat) / elapsed
        for cat, _ in self._open.values():
            out.setdefault(cat, self.busy_seconds(cat) / elapsed)
        return out


class LatencyRecorder:
    """Collects per-item latencies; reports mean/percentiles.

    Memory is bounded by **uniform reservoir sampling** (Vitter's
    Algorithm R): the first ``max_samples`` values are kept exactly
    (sorted on insertion, so percentiles are exact); once the stream
    exceeds the cap, the i-th value replaces a uniformly random reservoir
    entry with probability ``max_samples / i``, so the reservoir remains
    a uniform sample of *everything seen so far* — late-arriving tails
    are represented with their true weight rather than silently dropped.
    Beyond the cap, percentiles are therefore unbiased estimates (rank
    error ~ ``sqrt(q*(1-q)/max_samples)``); ``mean``/``min``/``max`` and
    ``count`` stay exact over the full stream regardless.

    Replacement choices come from a private deterministic RNG seeded
    from the recorder's name, so simulations stay reproducible.

    **Exemplar linking** (see :mod:`repro.tracing`): ``record()``
    optionally takes the trace_id of the request the latency belongs
    to.  Each reservoir entry keeps its trace_id alongside the value,
    so a percentile doesn't stop at a number — ``exemplar_for(99)``
    names an actual request whose full trace explains *why* the p99 is
    what it is.  Reservoir entries are ``(latency, seq, trace_id)``
    tuples where ``seq`` is the unique arrival index: ties on equal
    latencies break on ``seq`` before ``trace_id`` is ever compared, so
    eviction/ordering behaviour is identical with or without exemplars.
    """

    def __init__(self, name: str = "latency", max_samples: int = 200_000):
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self.name = name
        # Below the cap, entries are appended and sorted lazily (on
        # first read, or when the cap is reached); past the cap the list
        # is kept sorted by the reservoir replacement.  Sorting is
        # deferred work, not different work: entry tuples are unique
        # (the arrival index breaks ties), so sorted content — and with
        # it every percentile, exemplar and eviction decision — is
        # identical to eager insort.
        self._sorted: list[tuple[float, int, Optional[int]]] = []
        self._dirty = False
        self._count = 0
        self._sum = 0.0
        # Own-stream sums of recorders folded in via merge(), kept as
        # separate terms: pairwise `+=` of floats is not associative,
        # so the combined sum is instead rendered with math.fsum over
        # the term multiset — exact, hence identical for every merge
        # order.  Empty until the first merge; record() never touches it.
        self._merged_sums: list[float] = []
        self._max_samples = max_samples
        self._min = math.inf
        self._max = -math.inf
        self._rng = Random(zlib.crc32(name.encode()) or 1)
        _autoregister(self)

    def _flush(self) -> None:
        if self._dirty:
            self._sorted.sort()
            self._dirty = False

    def record(self, latency: float, trace_id: Optional[int] = None) -> None:
        if latency < 0:
            raise ValueError(f"negative latency {latency}")
        self._count += 1
        self._sum += latency
        if latency < self._min:
            self._min = latency
        if latency > self._max:
            self._max = latency
        entry = (latency, self._count, trace_id)
        reservoir = self._sorted
        if len(reservoir) < self._max_samples:
            reservoir.append(entry)
            self._dirty = True
            if len(reservoir) == self._max_samples:
                self._flush()       # reservoir phase needs sorted order
            return
        # Algorithm R: keep the newcomer with probability cap/count,
        # evicting a uniformly random incumbent.  Index j is uniform on
        # [0, count); j < cap both decides acceptance *and* names the
        # victim (positions in a sorted reservoir are exchangeable).
        j = self._rng.randrange(self._count)
        if j < self._max_samples:
            del reservoir[j]
            insort(reservoir, entry)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sample_count(self) -> int:
        """Samples currently retained (== count while below the cap)."""
        return len(self._sorted)

    @property
    def is_exact(self) -> bool:
        """True while every recorded value is retained, i.e. percentiles
        are exact order statistics rather than reservoir estimates."""
        return self._count == len(self._sorted)

    @property
    def samples(self) -> tuple[float, ...]:
        """The retained (sorted) samples — the whole stream while below
        the cap, a uniform sample of it beyond."""
        self._flush()
        return tuple(entry[0] for entry in self._sorted)

    def exemplars(self) -> tuple[tuple[float, int], ...]:
        """The retained ``(latency, trace_id)`` pairs that carry a trace
        link, sorted by latency — the bridge from a percentile to the
        flight recorder's full traces."""
        self._flush()
        return tuple((lat, tid) for lat, _, tid in self._sorted
                     if tid is not None)

    def exemplar_for(self, q: float) -> Optional[int]:
        """trace_id of the retained sample nearest the q-th percentile
        (``None`` when no linked sample is close — e.g. exemplars were
        never recorded)."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile {q} outside [0, 100]")
        self._flush()
        n = len(self._sorted)
        if n == 0:
            return None
        idx = round((q / 100.0) * (n - 1))
        # Nearest linked sample, scanning outward from the target rank.
        for off in range(n):
            for pos in (idx - off, idx + off):
                if 0 <= pos < n and self._sorted[pos][2] is not None:
                    return self._sorted[pos][2]
        return None

    @staticmethod
    def _merge_priority(
            entry: tuple[float, int, Optional[int]]) -> tuple:
        """Content-keyed selection priority for over-cap merges.

        Hashing the entry itself (not the merge order, not RNG state)
        makes bottom-k selection a pure function of the combined sample
        *set*: merging any permutation of the same recorders keeps the
        same entries.  The entry fields tie-break hash collisions so the
        order is total (``trace_id`` may be None, hence the presence
        flag before the value).
        """
        latency, seq, trace_id = entry
        tid = -1 if trace_id is None else trace_id
        digest = zlib.crc32(struct.pack("!dqq", latency, seq, tid))
        return (digest, latency, seq, trace_id is not None, tid)

    def merge(self, other: "LatencyRecorder") -> None:
        """Fold another recorder's state into this one.

        ``count``/``mean``/``min``/``max`` stay exact over the combined
        stream (the other side's exact accumulators add in, even when
        its reservoir retains fewer samples than it saw).  The retained
        samples become the union of both reservoirs while that fits
        this recorder's cap — the common case of per-engine windows
        merged into one report, where percentiles stay exact — and
        otherwise the bottom-``cap`` of the union under a content-keyed
        hash priority (:meth:`_merge_priority`), which keeps the merged
        reservoir an unbiased-enough sample while making the selection a
        pure function of the combined set.

        Merge is therefore **commutative and order-insensitive**:
        folding the same recorders in any order — or on any worker
        completion schedule — produces byte-identical merged state.  No
        RNG draws are consumed, so a later ``record()`` stream on the
        merged recorder is also unaffected by merge order.  Trace links
        survive the merge.
        """
        if other is self:
            raise ValueError("cannot merge a recorder into itself")
        self._flush()
        other._flush()
        if other._count:
            self._count += other._count
            # Keep the other side's sum as a separate term rather than
            # folding it into self._sum: float += is order-sensitive in
            # the last ulp, fsum over the term multiset is not.
            self._merged_sums.append(other._sum)
            self._merged_sums.extend(other._merged_sums)
            if other._min < self._min:
                self._min = other._min
            if other._max > self._max:
                self._max = other._max
        if not other._sorted:
            return
        combined = self._sorted + other._sorted
        cap = self._max_samples
        if len(combined) > cap:
            combined.sort(key=self._merge_priority)
            del combined[cap:]
        combined.sort()
        self._sorted = combined
        self._dirty = False

    def total(self) -> float:
        """Exact sum of every recorded latency (own stream plus merged
        streams, combined with a single correctly-rounded fsum so the
        value is independent of merge order)."""
        if self._merged_sums:
            return math.fsum([self._sum, *self._merged_sums])
        return self._sum

    def mean(self) -> float:
        return self.total() / self._count if self._count else math.nan

    def percentile(self, q: float) -> float:
        """q in [0, 100]; linear interpolation between order statistics
        of the retained samples (exact below the cap, a uniform-reservoir
        estimate beyond it)."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile {q} outside [0, 100]")
        if not self._sorted:
            return math.nan
        self._flush()
        n = len(self._sorted)
        pos = (q / 100.0) * (n - 1)
        lo = int(math.floor(pos))
        hi = int(math.ceil(pos))
        if lo == hi:
            return self._sorted[lo][0]
        frac = pos - lo
        return self._sorted[lo][0] * (1 - frac) + self._sorted[hi][0] * frac

    def p50(self) -> float:
        return self.percentile(50)

    def p99(self) -> float:
        return self.percentile(99)

    def max(self) -> float:
        """Exact maximum over the full stream (never subsampled)."""
        return self._max if self._count else math.nan

    def min(self) -> float:
        """Exact minimum over the full stream (never subsampled)."""
        return self._min if self._count else math.nan


class IntervalRate:
    """Windowed throughput: items completed between mark() calls."""

    def __init__(self, env: Environment, name: str = "rate"):
        self.env = env
        self.name = name
        self._count = 0.0
        self._mark_t = env.now
        self._mark_count = 0.0
        _autoregister(self)

    def add(self, n: float = 1.0) -> None:
        self._count += n

    def mark(self) -> float:
        """Rate since the previous mark; resets the window.

        A zero-length window has no defined rate — it returns
        ``math.nan`` (not ``0.0``, which would read as a measured zero
        throughput) and leaves the window open, so counts land in the
        next mark with a real time span.  Callers polling faster than
        the sim clock advances should treat NaN as "no new window yet".
        """
        now = self.env.now
        dt = now - self._mark_t
        if dt <= 0:
            return math.nan
        dn = self._count - self._mark_count
        self._mark_t = now
        self._mark_count = self._count
        return dn / dt

    @property
    def total(self) -> float:
        return self._count
