"""Measurement instruments for simulations.

Everything the experiment harness reports — throughput, CPU cores burned,
GPU utilization, latency percentiles — is integrated by these classes from
raw simulation activity; no result is ever entered by hand.
"""

from __future__ import annotations

import math
from bisect import insort
from typing import Optional

from .core import Environment

__all__ = ["Counter", "TimeWeighted", "BusyTracker", "LatencyRecorder",
           "IntervalRate"]


class Counter:
    """A monotonically increasing event count with rate helpers."""

    def __init__(self, env: Environment, name: str = "counter"):
        self.env = env
        self.name = name
        self.total = 0.0
        self._t0 = env.now

    def add(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.total += n

    def reset(self) -> None:
        self.total = 0.0
        self._t0 = self.env.now

    def rate(self, since: Optional[float] = None) -> float:
        """Average events/second since ``since`` (default: creation/reset)."""
        start = self._t0 if since is None else since
        elapsed = self.env.now - start
        return self.total / elapsed if elapsed > 0 else 0.0


class TimeWeighted:
    """Tracks a piecewise-constant value and its time-weighted mean/max.

    Used for queue depths, memory-pool occupancy and outstanding-command
    counts.
    """

    def __init__(self, env: Environment, initial: float = 0.0,
                 name: str = "level"):
        self.env = env
        self.name = name
        self._value = float(initial)
        self._last_t = env.now
        self._area = 0.0
        self._t0 = env.now
        self.max_value = float(initial)
        self.min_value = float(initial)

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        now = self.env.now
        self._area += self._value * (now - self._last_t)
        self._last_t = now
        self._value = float(value)
        self.max_value = max(self.max_value, self._value)
        self.min_value = min(self.min_value, self._value)

    def adjust(self, delta: float) -> None:
        self.set(self._value + delta)

    def mean(self) -> float:
        elapsed = self.env.now - self._t0
        if elapsed <= 0:
            return self._value
        area = self._area + self._value * (self.env.now - self._last_t)
        return area / elapsed


class BusyTracker:
    """Integrates busy time of a multi-slot device into "cores used".

    Each ``begin()``/``end()`` pair contributes its duration; the headline
    number is ``busy_time / wall_time`` — e.g. two workers each busy half
    the time report 1.0 cores.  Nested/concurrent intervals accumulate, so
    a pool of N workers reports up to N.  Categories let Fig. 6(d)-style
    breakdowns fall out of one tracker.
    """

    def __init__(self, env: Environment, name: str = "busy"):
        self.env = env
        self.name = name
        self._t0 = env.now
        self._busy: dict[str, float] = {}
        self._open: dict[int, tuple[str, float]] = {}
        self._next_token = 0

    def begin(self, category: str = "work") -> int:
        token = self._next_token
        self._next_token += 1
        self._open[token] = (category, self.env.now)
        return token

    def end(self, token: int) -> None:
        category, start = self._open.pop(token)
        self._busy[category] = self._busy.get(category, 0.0) + (
            self.env.now - start)

    def charge(self, duration: float, category: str = "work") -> None:
        """Directly account ``duration`` seconds of busy time."""
        if duration < 0:
            raise ValueError("negative busy duration")
        self._busy[category] = self._busy.get(category, 0.0) + duration

    def busy_seconds(self, category: Optional[str] = None) -> float:
        closed = (sum(self._busy.values()) if category is None
                  else self._busy.get(category, 0.0))
        # Include still-open intervals up to now.
        for cat, start in self._open.values():
            if category is None or cat == category:
                closed += self.env.now - start
        return closed

    def cores(self, category: Optional[str] = None,
              since: Optional[float] = None) -> float:
        start = self._t0 if since is None else since
        elapsed = self.env.now - start
        if elapsed <= 0:
            return 0.0
        return self.busy_seconds(category) / elapsed

    def breakdown(self) -> dict[str, float]:
        """Cores by category (Fig. 6(d) style)."""
        elapsed = self.env.now - self._t0
        if elapsed <= 0:
            return {}
        out: dict[str, float] = {}
        for cat in self._busy:
            out[cat] = self.busy_seconds(cat) / elapsed
        for cat, _ in self._open.values():
            out.setdefault(cat, self.busy_seconds(cat) / elapsed)
        return out


class LatencyRecorder:
    """Collects per-item latencies; reports mean/percentiles.

    Samples are kept sorted on insertion so percentile queries are O(log n)
    lookups; memory is bounded by optional reservoir capping.
    """

    def __init__(self, name: str = "latency", max_samples: int = 200_000):
        self.name = name
        self._sorted: list[float] = []
        self._count = 0
        self._sum = 0.0
        self._max_samples = max_samples

    def record(self, latency: float) -> None:
        if latency < 0:
            raise ValueError(f"negative latency {latency}")
        self._count += 1
        self._sum += latency
        if len(self._sorted) < self._max_samples:
            insort(self._sorted, latency)

    @property
    def count(self) -> int:
        return self._count

    def mean(self) -> float:
        return self._sum / self._count if self._count else math.nan

    def percentile(self, q: float) -> float:
        """q in [0, 100]; linear interpolation between order statistics."""
        if not self._sorted:
            return math.nan
        if not 0 <= q <= 100:
            raise ValueError(f"percentile {q} outside [0, 100]")
        n = len(self._sorted)
        pos = (q / 100.0) * (n - 1)
        lo = int(math.floor(pos))
        hi = int(math.ceil(pos))
        if lo == hi:
            return self._sorted[lo]
        frac = pos - lo
        return self._sorted[lo] * (1 - frac) + self._sorted[hi] * frac

    def p50(self) -> float:
        return self.percentile(50)

    def p99(self) -> float:
        return self.percentile(99)

    def max(self) -> float:
        return self._sorted[-1] if self._sorted else math.nan

    def min(self) -> float:
        return self._sorted[0] if self._sorted else math.nan


class IntervalRate:
    """Windowed throughput: items completed between mark() calls."""

    def __init__(self, env: Environment, name: str = "rate"):
        self.env = env
        self.name = name
        self._count = 0.0
        self._mark_t = env.now
        self._mark_count = 0.0

    def add(self, n: float = 1.0) -> None:
        self._count += n

    def mark(self) -> float:
        """Rate since the previous mark; resets the window."""
        now = self.env.now
        dt = now - self._mark_t
        dn = self._count - self._mark_count
        self._mark_t = now
        self._mark_count = self._count
        return dn / dt if dt > 0 else 0.0

    @property
    def total(self) -> float:
        return self._count
