"""Offline-training workflow driver (the S5.2 experiments).

Builds the full stack — corpus, CPU pool, GPUs + solvers + gradient
sync, the chosen preprocessing backend — runs a warm-up, then measures
a steady-state window and reports throughput and CPU cores exactly as
Figs. 5 and 6 do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..backends import (CpuOnlineBackend, DLBoosterBackend, LmdbBackend,
                        SyntheticBackend)
from ..calib import DEFAULT_TESTBED, TRAIN_MODELS, Testbed
from ..engines import (CpuCorePool, GpuDevice, SyncGroup, TrainingSolver,
                       allreduce_seconds, train_iteration_seconds)
from ..faults import FaultPlan, RetryPolicy
from ..host import BatchSpec
from ..data import imagenet_like_manifest, mnist_like_manifest
from ..sim import Environment, SeedBank
from ..storage import NvmeDisk
from ..sim.trace import Tracer
from ..supervision import SupervisionConfig, Supervisor
from ..telemetry import MetricsRegistry, QueueDepthSampler, TelemetryConfig
from ..tracing import RequestTracker, TracingConfig
from .metrics import CounterWindow, CpuWindow, HealthWindow, ResilienceWindow

__all__ = ["TrainingConfig", "TrainingResult", "run_training",
           "ideal_training_throughput", "TRAINING_BACKENDS"]

TRAINING_BACKENDS = ("synthetic", "cpu-online", "lmdb", "dlbooster")

# Default corpus sizes: MNIST is its real 60k; the ILSVRC12 stand-in is
# shrunk from 12.8M to 400k samples — still far beyond the page cache
# (so no backend can cheat by caching, as on the real corpus) while
# keeping epochs long relative to the measurement window.
MNIST_N = 60_000
IMAGENET_N = 400_000


@dataclass(frozen=True)
class TrainingConfig:
    model: str                       # lenet5 | alexnet | resnet18
    backend: str                     # TRAINING_BACKENDS
    num_gpus: int = 1
    batch_size: Optional[int] = None
    dataset_size: Optional[int] = None
    warmup_s: float = 2.0
    measure_s: float = 8.0
    seed: int = 0
    # backend-specific knobs
    max_workers: Optional[int] = None    # cpu-online
    num_fpgas: int = 1                   # dlbooster
    huffman_ways: Optional[int] = None   # dlbooster ablations
    resizer_ways: Optional[int] = None
    # chaos engineering (dlbooster): armed fault plan + recovery policy
    fault_plan: Optional[FaultPlan] = None
    retry: Optional[RetryPolicy] = None
    # pipeline supervision (dlbooster): watchdog + integrity verification
    supervision: Optional[SupervisionConfig] = None
    # unified observability: registry + queue-depth series in extras
    telemetry: Optional[TelemetryConfig] = None
    # causal per-request tracing (dlbooster): traces minted at reader
    # ingest, critical-path attribution, flight recorder, post-mortems
    # and Chrome-trace export.  ``None`` (or ``enabled=False``)
    # constructs nothing and leaves the run bit-identical.
    tracing: Optional[TracingConfig] = None


@dataclass
class TrainingResult:
    config: TrainingConfig
    throughput: float                    # images/s, all GPUs
    per_gpu_throughput: float
    ideal_throughput: float              # GPU performance bound
    cpu_cores: float                     # total cores burned in window
    cpu_cores_per_gpu: float
    cpu_breakdown: dict[str, float] = field(default_factory=dict)
    epochs_done: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def efficiency(self) -> float:
        """Fraction of the GPU bound this backend sustains."""
        return self.throughput / self.ideal_throughput \
            if self.ideal_throughput else 0.0


def ideal_training_throughput(model: str, num_gpus: int,
                              batch_size: Optional[int] = None,
                              testbed: Testbed = DEFAULT_TESTBED) -> float:
    """The "Performance Upper Boundary" of Figs. 2/5: compute + allreduce
    with preprocessing removed."""
    spec = TRAIN_MODELS[model]
    bs = batch_size or spec.batch_size
    iter_s = train_iteration_seconds(spec, bs) \
        + allreduce_seconds(spec, num_gpus, testbed)
    return num_gpus * bs / iter_s


def _make_manifest(model: str, n: Optional[int], seeds: SeedBank):
    if model == "lenet5":
        return mnist_like_manifest(n or MNIST_N, seeds)
    return imagenet_like_manifest(n or IMAGENET_N, seeds)


def _make_backend(cfg: TrainingConfig, env, testbed, cpu, manifest, spec,
                  seeds, disk, tracer=None, supervisor=None, rtracker=None):
    if cfg.fault_plan is not None and cfg.backend != "dlbooster":
        raise ValueError(f"fault_plan is only supported by the dlbooster "
                         f"backend, not {cfg.backend!r}")
    if cfg.supervision is not None and cfg.backend != "dlbooster":
        raise ValueError(f"supervision is only supported by the dlbooster "
                         f"backend, not {cfg.backend!r}")
    if cfg.backend == "synthetic":
        return SyntheticBackend(env, testbed, cpu, manifest, spec, seeds)
    if cfg.backend == "cpu-online":
        return CpuOnlineBackend(env, testbed, cpu, manifest, spec, seeds,
                                max_workers=cfg.max_workers, disk=disk)
    if cfg.backend == "lmdb":
        # The KV backend's record service time already folds in its
        # (sequentialized) page IO.
        return LmdbBackend(env, testbed, cpu, manifest, spec, seeds)
    if cfg.backend == "dlbooster":
        return DLBoosterBackend(env, testbed, cpu, manifest, spec, seeds,
                                num_fpgas=cfg.num_fpgas,
                                huffman_ways=cfg.huffman_ways,
                                resizer_ways=cfg.resizer_ways,
                                disk=disk, fault_plan=cfg.fault_plan,
                                retry=cfg.retry, supervisor=supervisor,
                                tracer=tracer, rtracker=rtracker)
    raise ValueError(f"unknown backend {cfg.backend!r}; "
                     f"choose from {TRAINING_BACKENDS}")


def run_training(cfg: TrainingConfig,
                 testbed: Testbed = DEFAULT_TESTBED,
                 tracer_factory=None) -> TrainingResult:
    """Execute one training experiment and report its window metrics.

    ``tracer_factory`` (optional) is called with the run's Environment
    and must return a tracer (e.g. ``repro.sim.Tracer``); the instance
    lands in ``result.extras["tracer"]`` for Chrome-trace export.

    With ``cfg.telemetry`` set, the stack is built inside an installed
    :class:`~repro.telemetry.MetricsRegistry`, queue depths are sampled
    periodically, and — when a tracer is present — the depth series and
    final metric state merge into it as Chrome-trace counter tracks.
    """
    if cfg.telemetry is None:
        return _run_training(cfg, testbed, tracer_factory, None)
    registry = MetricsRegistry(name=f"training.{cfg.backend}")
    with registry.installed():
        return _run_training(cfg, testbed, tracer_factory, registry)


def _run_training(cfg: TrainingConfig, testbed: Testbed, tracer_factory,
                  registry: Optional[MetricsRegistry]) -> TrainingResult:
    if cfg.model not in TRAIN_MODELS:
        raise ValueError(f"unknown model {cfg.model!r}")
    if cfg.num_gpus < 1 or cfg.num_gpus > testbed.gpu_count:
        raise ValueError(f"num_gpus must be 1..{testbed.gpu_count}")

    env = Environment()
    seeds = SeedBank(cfg.seed)
    model_spec = TRAIN_MODELS[cfg.model]
    bs = cfg.batch_size or model_spec.batch_size
    bspec = BatchSpec(batch_size=bs, out_h=model_spec.input_hw[0],
                      out_w=model_spec.input_hw[1],
                      channels=model_spec.channels)
    cpu = CpuCorePool(env, testbed.cpu_cores)
    manifest = _make_manifest(cfg.model, cfg.dataset_size, seeds)

    sync = SyncGroup(env, cfg.num_gpus, model_spec, testbed)
    solvers = []
    for g in range(cfg.num_gpus):
        gpu = GpuDevice(env, testbed, g)
        solver = TrainingSolver(env, gpu, model_spec, sync, cpu, testbed,
                                batch_size=bs)
        solver.start()
        solvers.append(solver)

    disk = NvmeDisk(env, testbed)
    tracer = tracer_factory(env) if tracer_factory is not None else None
    # Causal tracing: tracker exists only when asked for, so an untraced
    # run constructs byte-identical state.  An externally supplied tracer
    # (tracer_factory) is reused so request spans and the caller's own
    # annotations land in one timeline.
    rtracker = None
    if cfg.tracing is not None and cfg.tracing.enabled:
        if tracer is None:
            tracer = Tracer(env, max_events=cfg.tracing.max_events)
        rtracker = RequestTracker(
            env, tracer=tracer,
            flight_capacity=cfg.tracing.flight_recorder_size,
            emit_spans=cfg.tracing.emit_spans)
    supervisor = (Supervisor(env, cfg.supervision, tracer=tracer)
                  if cfg.supervision is not None and cfg.supervision.enabled
                  else None)
    if supervisor is not None and rtracker is not None:
        supervisor.attach_tracker(rtracker)
    backend = _make_backend(cfg, env, testbed, cpu, manifest, bspec, seeds,
                            disk, tracer=tracer, supervisor=supervisor,
                            rtracker=rtracker)
    backend.start(solvers)

    sampler = None
    if registry is not None:
        sampler = QueueDepthSampler(
            env, interval_s=cfg.telemetry.sample_interval_s,
            max_points=cfg.telemetry.max_points)
        pool = getattr(backend, "pool", None)
        if pool is not None:
            sampler.watch_pool(pool)
            sampler.watch_pair(pool.queues)
        for solver in solvers:
            sampler.watch_pair(solver.trans_queues)
        sampler.start()

    # For cacheable corpora the warm-up must cover the first (decode)
    # epoch so the window measures the steady cached regime, as the
    # paper's MNIST discussion describes.
    warmup = cfg.warmup_s
    if backend.cache.fits and cfg.backend != "synthetic":
        first_epoch_floor = len(manifest) / max(
            ideal_training_throughput(cfg.model, cfg.num_gpus, bs, testbed),
            1.0)
        warmup = max(warmup, 2.5 * first_epoch_floor)

    env.run(until=warmup)
    images = CounterWindow(env, [s.images_trained for s in solvers])
    cores = CpuWindow(env, cpu)
    resilience = (ResilienceWindow(env, backend)
                  if cfg.backend == "dlbooster" else None)
    health = (HealthWindow(env, supervisor)
              if supervisor is not None else None)
    images.mark()
    cores.mark()
    if resilience is not None:
        resilience.mark()
    if health is not None:
        health.mark()
    env.run(until=warmup + cfg.measure_s)

    throughput = images.rate()
    breakdown = cores.breakdown()
    total_cores = sum(breakdown.values())
    extras = {}
    if cfg.backend == "dlbooster":
        extras["decoder_utilizations"] = backend.decoder_utilizations()
        extras["pool_conservation"] = backend.pool.conservation_ok()
        extras["resilience"] = resilience.deltas()
        extras["fault_totals"] = backend.fault_metrics()
        extras["item_conservation"] = backend.conservation_ok()
        extras["quarantine_reasons"] = backend.quarantine.reasons()
        if backend.breaker is not None:
            extras["breaker_state"] = backend.breaker.state
        if health is not None:
            extras["health"] = health.deltas()
            extras["stall_reports"] = [
                r.render() for r in supervisor.stall_reports]
    if registry is not None:
        extras["telemetry"] = {"registry": registry,
                               "metrics": registry.snapshot(),
                               "queue_depths": sampler.series()}
        if cfg.telemetry.export_path:
            registry.to_json(cfg.telemetry.export_path,
                             extra={"queue_depths": sampler.series()})
        if tracer is not None and cfg.telemetry.trace_counters:
            sampler.to_trace(tracer)
            registry.to_trace(tracer)
    if tracer is not None:
        extras["tracer"] = tracer
    if rtracker is not None:
        tracing_extras = {
            "tracker": rtracker,
            "stats": rtracker.stats(),
            "critical_path": rtracker.attribution.report(),
            "critical_path_render": rtracker.attribution.render(),
            "postmortems": [pm.render() for pm in rtracker.postmortems],
            "flight_recorder": rtracker.recorder.snapshot(),
        }
        reader = getattr(backend, "reader", None)
        if reader is not None and hasattr(reader, "decode_latency"):
            tracing_extras["p99_exemplar"] = \
                reader.decode_latency.exemplar_for(99)
        extras["tracing"] = tracing_extras
        if cfg.tracing.export_path:
            rtracker.export_chrome(cfg.tracing.export_path)
    if cfg.backend == "lmdb":
        extras["ingest_seconds"] = backend.ingest_seconds
    extras["cache_active"] = backend.cache.active
    extras["disk_utilization"] = disk.utilization()

    return TrainingResult(
        config=cfg,
        throughput=throughput,
        per_gpu_throughput=throughput / cfg.num_gpus,
        ideal_throughput=ideal_training_throughput(
            cfg.model, cfg.num_gpus, bs, testbed),
        cpu_cores=total_cores,
        cpu_cores_per_gpu=total_cores / cfg.num_gpus,
        cpu_breakdown=breakdown,
        epochs_done=backend.epochs_done,
        extras=extras)
