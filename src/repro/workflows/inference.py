"""Online-inference workflow driver (the S5.3 experiments).

5 closed-loop clients stream JPEGs over the 40 Gbps fabric to a serving
stack of {backend, TensorRT engine}; the driver measures steady-state
throughput, serving latency (NIC receive -> prediction) and CPU cores —
the three panels of Figs. 7, 8 and 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..calib import DEFAULT_TESTBED, INFER_MODELS, Testbed
from ..data import jpeg_size_sampler
from ..faults import FaultPlan
from ..fleet import Host, HostConfig
from ..net import ClientFleet
from ..sim import Environment, LatencyRecorder, SeedBank
from ..sim.trace import Tracer
from ..supervision import SupervisionConfig
from ..telemetry import MetricsRegistry, QueueDepthSampler, TelemetryConfig
from ..tracing import RequestTracker, TracingConfig
from .metrics import CounterWindow, CpuWindow, HealthWindow

__all__ = ["InferenceConfig", "InferenceResult", "run_inference",
           "INFERENCE_BACKENDS"]

INFERENCE_BACKENDS = ("cpu-online", "nvjpeg", "dlbooster")


@dataclass(frozen=True)
class InferenceConfig:
    model: str                       # googlenet | vgg16 | resnet50
    backend: str                     # INFERENCE_BACKENDS
    batch_size: int = 1
    num_gpus: int = 1
    num_clients: Optional[int] = None    # default: testbed (5)
    warmup_s: float = 1.0
    measure_s: float = 4.0
    seed: int = 0
    max_workers: Optional[int] = None    # cpu-online
    num_fpgas: int = 1                   # dlbooster
    gpu_direct: bool = False             # dlbooster future-work (S7 (2))
    # Unloaded mode: exactly one batch outstanding, so latency is pure
    # pipeline time (the paper's "ultralow latency" bs=1 numbers are
    # unloaded minima; under closed-loop saturation Little's law ties
    # latency to the population instead).
    unloaded: bool = False
    # Chaos engineering: ``nic_loss`` specs apply to the client->server
    # link (lost packet bursts are retransmitted, costing wire time).
    fault_plan: Optional[FaultPlan] = None
    # Pipeline supervision (dlbooster, staged path): watchdog heartbeats,
    # deadline shedding, integrity verification.  ``deadline_s`` in the
    # config also stamps every client request with an absolute deadline.
    supervision: Optional[SupervisionConfig] = None
    # Unified observability (repro.telemetry): metrics registry over
    # every instrument + queue-depth time series; results land in
    # ``extras["telemetry"]`` and optionally a JSON export.
    telemetry: Optional[TelemetryConfig] = None
    # Causal per-request tracing (repro.tracing): traces minted at NIC
    # RX, critical-path attribution, flight recorder, post-mortems and
    # Chrome-trace export.  ``None`` (or ``enabled=False``) constructs
    # nothing and leaves the run bit-identical.
    tracing: Optional[TracingConfig] = None


@dataclass
class InferenceResult:
    config: InferenceConfig
    throughput: float
    latency_mean_ms: float
    latency_p50_ms: float
    latency_p99_ms: float
    cpu_cores: float
    cpu_breakdown: dict[str, float] = field(default_factory=dict)
    gpu_compute_util: float = 0.0
    gpu_decode_util: float = 0.0
    extras: dict = field(default_factory=dict)


def run_inference(cfg: InferenceConfig,
                  testbed: Testbed = DEFAULT_TESTBED) -> InferenceResult:
    """Execute one serving experiment and report its window metrics.

    With ``cfg.telemetry`` set, the whole stack is built inside an
    installed :class:`~repro.telemetry.MetricsRegistry` and a
    :class:`~repro.telemetry.QueueDepthSampler` records the hot queues;
    both land in ``result.extras["telemetry"]``.
    """
    if cfg.telemetry is None:
        return _run_inference(cfg, testbed, None)
    registry = MetricsRegistry(name=f"inference.{cfg.backend}")
    with registry.installed():
        return _run_inference(cfg, testbed, registry)


def _run_inference(cfg: InferenceConfig, testbed: Testbed,
                   registry: Optional[MetricsRegistry]) -> InferenceResult:
    if cfg.model not in INFER_MODELS:
        raise ValueError(f"unknown model {cfg.model!r}")
    if cfg.batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if cfg.num_gpus < 1 or cfg.num_gpus > testbed.gpu_count:
        raise ValueError(f"num_gpus must be 1..{testbed.gpu_count}")

    if cfg.backend not in INFERENCE_BACKENDS:
        raise ValueError(f"unknown backend {cfg.backend!r}; "
                         f"choose from {INFERENCE_BACKENDS}")
    env = Environment()
    seeds = SeedBank(cfg.seed)

    # Causal tracing: tracker + tracer exist only when asked for, so an
    # untraced run constructs byte-identical state.
    rtracker = None
    if cfg.tracing is not None and cfg.tracing.enabled:
        rtracker = RequestTracker(
            env, tracer=Tracer(env, max_events=cfg.tracing.max_events),
            flight_capacity=cfg.tracing.flight_recorder_size,
            emit_spans=cfg.tracing.emit_spans)

    # The whole serving pipeline is one fleet Host (K=1): the phased
    # construction — ingress in __init__, engines + backend in start()
    # with the client fleet in between — reproduces the historical
    # flat-wiring order, so single-host results are bit-identical.
    host = Host(env, HostConfig(
        model=cfg.model, backend=cfg.backend, batch_size=cfg.batch_size,
        num_gpus=cfg.num_gpus, num_fpgas=cfg.num_fpgas,
        max_workers=cfg.max_workers, gpu_direct=cfg.gpu_direct,
        supervision=cfg.supervision, fault_plan=cfg.fault_plan),
        testbed=testbed, seeds=seeds, rtracker=rtracker)
    cpu, nic, injector = host.cpu, host.nic, host.injector
    link, supervisor = host.link, host.supervisor
    num_clients = cfg.num_clients or testbed.inference_clients
    # Closed-loop credit: ~2.5 batches per GPU outstanding — one being
    # inferred, one being decoded, headroom for the copy — so the server
    # saturates while the latency metric reflects pipeline time rather
    # than unbounded queue build-up.
    if cfg.unloaded:
        total_window = cfg.batch_size * cfg.num_gpus
        num_clients = min(num_clients, total_window)
    else:
        total_window = max(num_clients,
                           int(2.5 * cfg.batch_size * cfg.num_gpus) + 2)
    window = -(-total_window // num_clients)
    sup_cfg = cfg.supervision
    fleet = ClientFleet(env, nic, num_clients=num_clients,
                        image_hw=testbed.client_image_hw,
                        rng=seeds.stream("clients"), window=window,
                        size_sampler=jpeg_size_sampler(),
                        deadline_s=(sup_cfg.deadline_s
                                    if supervisor is not None else None))
    fleet.start()

    host.start()
    engines = host.engines
    backend = host.backend

    sampler = None
    if registry is not None:
        sampler = QueueDepthSampler(
            env, interval_s=cfg.telemetry.sample_interval_s,
            max_points=cfg.telemetry.max_points)
        sampler.watch_channel(nic.rx_queue)
        pool = getattr(backend, "pool", None)
        if pool is not None:
            sampler.watch_pool(pool)
            sampler.watch_pair(pool.queues)
        for engine in engines:
            sampler.watch_pair(engine.trans_queues)
        sampler.start()

    env.run(until=cfg.warmup_s)
    predictions = CounterWindow(env, [e.predictions for e in engines])
    cores = CpuWindow(env, cpu)
    health = None
    if supervisor is not None:
        extra = {}
        if backend.reader is not None:
            extra["reader_shed_expired"] = backend.reader.shed_expired
            extra["integrity_rejected"] = backend.reader.integrity_rejected
        if backend.dispatcher is not None:
            extra["dispatcher_items_shed"] = backend.dispatcher.items_shed
            extra["dispatcher_batches_shed"] = backend.dispatcher.batches_shed
        if nic.rx_queue._shed_count is not None:
            extra["rx_shed"] = nic.rx_queue._shed_count
        extra["client_expired"] = fleet.expired
        health = HealthWindow(env, supervisor, extra_counters=extra)
    predictions.mark()
    cores.mark()
    if health is not None:
        health.mark()
    gpu_busy_mark = {e.gpu.name: (e.gpu.busy.busy_seconds("infer"),
                                  e.gpu.busy.busy_seconds("nvjpeg"))
                     for e in engines}
    for engine in engines:  # fresh latency windows
        engine.latency = LatencyRecorder(name=f"{engine.gpu.name}.latency")
    env.run(until=cfg.warmup_s + cfg.measure_s)

    lat_all = LatencyRecorder(name="serving.latency")
    for engine in engines:
        lat_all.merge(engine.latency)

    breakdown = cores.breakdown()
    window_s = cfg.measure_s
    compute_util = sum(
        e.gpu.busy.busy_seconds("infer") - gpu_busy_mark[e.gpu.name][0]
        for e in engines) / (window_s * cfg.num_gpus)
    decode_util = sum(
        e.gpu.busy.busy_seconds("nvjpeg") - gpu_busy_mark[e.gpu.name][1]
        for e in engines) / (window_s * cfg.num_gpus)

    extras = {"client_rtt_ms": fleet.rtt.mean() * 1e3,
              "rx_drops": nic.drops.total}
    if injector is not None:
        extras["faults_injected"] = int(injector.injected.total)
        extras["retransmitted_packets"] = int(
            link.retransmitted_packets.total)
    if cfg.backend == "dlbooster":
        extras["decoder_utilizations"] = [
            d.mirror.stage_utilizations() for d in backend.devices]
    if health is not None:
        extras["health"] = health.deltas()
        extras["stall_reports"] = [
            r.render() for r in supervisor.stall_reports]
    if registry is not None:
        extras["telemetry"] = {"registry": registry,
                               "metrics": registry.snapshot(),
                               "queue_depths": sampler.series()}
        if cfg.telemetry.export_path:
            registry.to_json(cfg.telemetry.export_path,
                             extra={"queue_depths": sampler.series()})
    if rtracker is not None:
        if sampler is not None and cfg.telemetry.trace_counters:
            # Join the queue-depth time series onto the request spans so
            # the exported trace shows *why* a wait segment is long.
            sampler.to_trace(rtracker.tracer)
        extras["tracing"] = {
            "tracker": rtracker,
            "stats": rtracker.stats(),
            "critical_path": rtracker.attribution.report(),
            "critical_path_render": rtracker.attribution.render(),
            "postmortems": [pm.render() for pm in rtracker.postmortems],
            "flight_recorder": rtracker.recorder.snapshot(),
            "p99_exemplar": lat_all.exemplar_for(99),
        }
        if cfg.tracing.export_path:
            rtracker.export_chrome(cfg.tracing.export_path)

    return InferenceResult(
        config=cfg,
        throughput=predictions.rate(),
        latency_mean_ms=lat_all.mean() * 1e3,
        latency_p50_ms=lat_all.p50() * 1e3,
        latency_p99_ms=lat_all.p99() * 1e3,
        cpu_cores=sum(breakdown.values()),
        cpu_breakdown=breakdown,
        gpu_compute_util=compute_util,
        gpu_decode_util=decode_util,
        extras=extras)
