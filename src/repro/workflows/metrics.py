"""Measurement-window helpers for the workflow drivers.

Experiments warm the pipeline up, *mark*, run a measurement window and
report deltas — so ramp-up (pipeline fill, first-epoch decode) never
pollutes steady-state numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engines import CpuCorePool
from ..sim import Counter, Environment

__all__ = ["CpuWindow", "CounterWindow", "ResilienceWindow",
           "HealthWindow"]


@dataclass
class CounterWindow:
    """Delta-rate measurement over one or more counters."""

    env: Environment
    counters: list[Counter]
    _mark_t: float = 0.0
    _mark_totals: list[float] = field(default_factory=list)

    def mark(self) -> None:
        self._mark_t = self.env.now
        self._mark_totals = [c.total for c in self.counters]

    def rate(self) -> float:
        elapsed = self.env.now - self._mark_t
        if elapsed <= 0:
            return 0.0
        delta = sum(c.total for c in self.counters) - sum(self._mark_totals)
        return delta / elapsed

    def delta(self) -> float:
        return sum(c.total for c in self.counters) - sum(self._mark_totals)


class ResilienceWindow:
    """Windowed deltas of a backend's fault/retry/failover metrics.

    Wraps any object exposing ``fault_metrics() -> dict[str, int]``
    (``DLBoosterBackend`` does); the same mark/delta discipline as
    :class:`CounterWindow` keeps warm-up faults out of the numbers.
    """

    def __init__(self, env: Environment, backend):
        self.env = env
        self.backend = backend
        self._mark: dict[str, int] = {}

    def mark(self) -> None:
        self._mark = dict(self.backend.fault_metrics())

    def deltas(self) -> dict[str, int]:
        now = self.backend.fault_metrics()
        return {key: value - self._mark.get(key, 0)
                for key, value in now.items()}


class HealthWindow:
    """Windowed deltas of a Supervisor's health/overload metrics.

    Wraps :meth:`repro.supervision.Supervisor.health_metrics` (stall
    detections, watchdog scans, integrity stamp/verify/mismatch counts)
    with the same mark/delta discipline as :class:`ResilienceWindow`.
    Extra named counters (e.g. reader/dispatcher shed counters) can ride
    along so overload experiments report everything from one window.
    """

    def __init__(self, env: Environment, supervisor,
                 extra_counters: dict[str, Counter] | None = None):
        self.env = env
        self.supervisor = supervisor
        self.extra = dict(extra_counters or {})
        self._mark: dict[str, int] = {}

    def _now(self) -> dict[str, int]:
        out = dict(self.supervisor.health_metrics())
        for key, counter in self.extra.items():
            out[key] = int(counter.total)
        return out

    def mark(self) -> None:
        self._mark = self._now()

    def deltas(self) -> dict[str, int]:
        return {key: value - self._mark.get(key, 0)
                for key, value in self._now().items()}


class CpuWindow:
    """Windowed cores-used breakdown over a :class:`CpuCorePool`."""

    def __init__(self, env: Environment, cpu: CpuCorePool):
        self.env = env
        self.cpu = cpu
        self._mark_t = env.now
        self._mark_busy: dict[str, float] = {}

    def _categories(self) -> list[str]:
        # Sorted, not set order: breakdown() sums float shares in this
        # order, and set iteration follows the per-process string hash
        # seed — a spawn worker would drift from its parent by an ulp.
        tracker = self.cpu.tracker
        cats = set(tracker._busy)
        cats.update(cat for cat, _ in tracker._open.values())
        return sorted(cats)

    def mark(self) -> None:
        self._mark_t = self.env.now
        self._mark_busy = {cat: self.cpu.tracker.busy_seconds(cat)
                           for cat in self._categories()}

    def breakdown(self) -> dict[str, float]:
        elapsed = self.env.now - self._mark_t
        if elapsed <= 0:
            return {}
        out = {}
        for cat in self._categories():
            delta = (self.cpu.tracker.busy_seconds(cat)
                     - self._mark_busy.get(cat, 0.0))
            out[cat] = delta / elapsed
        return out

    def total_cores(self) -> float:
        return sum(self.breakdown().values())
