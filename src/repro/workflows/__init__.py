"""End-to-end workflow drivers: offline training (S5.2) and online
inference (S5.3), plus windowed metrics."""

from .inference import (INFERENCE_BACKENDS, InferenceConfig,
                        InferenceResult, run_inference)
from .metrics import CounterWindow, CpuWindow
from .training import (TRAINING_BACKENDS, TrainingConfig, TrainingResult,
                       ideal_training_throughput, run_training)

__all__ = ["TrainingConfig", "TrainingResult", "run_training",
           "ideal_training_throughput", "TRAINING_BACKENDS",
           "InferenceConfig", "InferenceResult", "run_inference",
           "INFERENCE_BACKENDS", "CounterWindow", "CpuWindow"]
