"""Point-to-point link model (the 40 Gbps fabric of S5.3).

Transmissions serialize on the link's bandwidth and are chopped into
MTU-sized packets; each packet also charges a small per-packet host cost
on the receive side (interrupt/softirq work) to the NIC's CPU tracker.

An armed :class:`~repro.faults.FaultInjector` can lose a burst of
packets per transmit (``nic_loss``); the lost packets are retransmitted,
so the transfer pays extra wire time and the ``retransmitted_packets``
counter records the loss.
"""

from __future__ import annotations

from ..sim import BusyTracker, Counter, Environment, Resource

__all__ = ["Link"]


class Link:
    """A shared full-duplex pipe; we model the client->server direction."""

    def __init__(self, env: Environment, rate_bytes_per_s: float,
                 mtu: int = 9000, name: str = "link", injector=None):
        if rate_bytes_per_s <= 0:
            raise ValueError("link rate must be positive")
        if mtu <= 0:
            raise ValueError("mtu must be positive")
        self.env = env
        self.name = name
        self.rate = rate_bytes_per_s
        self.mtu = mtu
        self.injector = injector
        self._serializer = Resource(env, capacity=1, name=f"{name}.tx")
        self.bytes_sent = Counter(env, name=f"{name}.bytes")
        self.retransmitted_packets = Counter(env, name=f"{name}.rexmit")
        self.busy = BusyTracker(env, name=f"{name}.busy")

    def packets_for(self, nbytes: int) -> int:
        return -(-nbytes // self.mtu)

    def transmit(self, nbytes: int):
        """Generator: completes when the last byte is on the wire."""
        if nbytes <= 0:
            raise ValueError(f"transmit size must be positive, got {nbytes}")
        wire_bytes = nbytes
        if self.injector is not None:
            lost = self.injector.nic_loss_burst(self.name)
            if lost:
                # Lost packets ride the wire twice; goodput stays nbytes.
                lost = min(lost, self.packets_for(nbytes))
                self.retransmitted_packets.add(lost)
                wire_bytes += lost * self.mtu
        grant = self._serializer.request()
        yield grant
        tok = self.busy.begin("tx")
        try:
            yield self.env.timeout(wire_bytes / self.rate)
            self.bytes_sent.add(nbytes)
        finally:
            self.busy.end(tok)
            self._serializer.release(grant)

    def utilization(self) -> float:
        return self.busy.cores("tx")
