"""Server NIC: RX rings, per-packet host cost, DMA placement metadata.

Incoming images land in an RX queue as :class:`NetRequest` items; the
DataCollector's ``load_from_net`` drains this queue and generates the
placement metadata (physical addresses) for the FPGA decoder — the
"generates the metadata (i.e., physical address of memory) that
describes where the data are placed by NICs" path of S3.4.1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..sim import BusyTracker, Channel, Counter, Environment
from .link import Link

__all__ = ["NetRequest", "Nic"]


@dataclass
class NetRequest:
    """One client image in flight through the serving stack."""

    request_id: int
    client_id: int
    size_bytes: int
    height: int
    width: int
    channels: int
    sent_at: float
    received_at: float = 0.0
    payload: Optional[bytes] = None       # real JPEG in functional mode
    dma_phy_addr: int = 0                 # where the NIC placed the bytes
    done_event: object = field(default=None, repr=False)
    deadline_at: float = math.inf         # absolute; inf = no deadline
    trace: object = field(default=None, repr=False)  # RequestTrace, if traced

    @property
    def pixels(self) -> int:
        return self.height * self.width

    @property
    def decode_work_pixels(self) -> int:
        return self.pixels if self.channels == 1 else self.pixels * 3 // 2


class Nic:
    """Receive path of the server NIC."""

    def __init__(self, env: Environment, link: Link, cpu_tracker: BusyTracker,
                 per_packet_s: float, rx_capacity: int = 4096,
                 name: str = "nic", rtracker=None):
        self.env = env
        self.link = link
        self.name = name
        self.per_packet_s = per_packet_s
        self._cpu = cpu_tracker
        self.rtracker = rtracker   # repro.tracing.RequestTracker, optional
        self.rx_queue = Channel(env, capacity=rx_capacity, name=f"{name}.rx")
        self.packets = Counter(env, name=f"{name}.packets")
        self.drops = Counter(env, name=f"{name}.drops")

    def deliver(self, request: NetRequest):
        """Generator: wire transfer + host RX processing + enqueue."""
        yield from self.link.transmit(request.size_bytes)
        npkts = self.link.packets_for(request.size_bytes)
        self.packets.add(npkts)
        # Host-side packet processing (interrupt + protocol) burns CPU.
        self._cpu.charge(npkts * self.per_packet_s, "net-rx")
        request.received_at = self.env.now
        if self.rtracker is not None:
            # Trace origin: the request exists for the pipeline the
            # moment the NIC has its bytes; everything until the
            # collector drains it is RX-queue wait.
            request.trace = self.rtracker.start(
                "nic.rx", kind="wait",
                baggage={"request_id": request.request_id,
                         "client_id": request.client_id,
                         "size_bytes": request.size_bytes})
        if not self.rx_queue.try_put(request):
            # RX ring overflow: the request is dropped (the clients'
            # closed-loop window normally prevents this).
            self.drops.add()
            if request.trace is not None:
                request.trace.abort("rx-drop")
            if request.done_event is not None:
                request.done_event.fail(
                    ConnectionError(f"rx drop of request {request.request_id}"))
            return
