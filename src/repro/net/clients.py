"""Inference traffic generators — "5 clients send color JPEG-formatted
images in real time" over the 40 Gbps fabric (S5.3).

Clients are closed-loop: each keeps ``window`` requests outstanding and
issues a new one the moment a prediction returns.  A saturating client
fleet makes the *server* the bottleneck (which is what the paper's
throughput figures measure) while keeping queues — and hence the
latency metric — finite, matching how the paper reports both metrics
from the same runs.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from ..sim import Counter, Environment, LatencyRecorder, scoped_name
from ..supervision import DeadlineExceeded
from .nic import NetRequest, Nic

__all__ = ["ClientFleet"]


class ClientFleet:
    """A set of closed-loop image-sending clients."""

    def __init__(self, env: Environment, nic: Nic, num_clients: int,
                 image_hw: tuple[int, int], rng: np.random.Generator,
                 window: int = 16,
                 size_sampler: Optional[Callable[[np.random.Generator],
                                                 int]] = None,
                 payload_factory: Optional[Callable[[int], bytes]] = None,
                 think_time_s: float = 0.0,
                 deadline_s: Optional[float] = None,
                 namespace: str = ""):
        if num_clients <= 0 or window <= 0:
            raise ValueError("num_clients and window must be positive")
        self.env = env
        self.nic = nic
        self.num_clients = num_clients
        self.window = window
        self.image_hw = image_hw
        self.rng = rng
        self.think_time_s = think_time_s
        self.deadline_s = deadline_s
        self.expired = Counter(env,
                               name=scoped_name(namespace, "clients.expired"))
        self._size_sampler = size_sampler or self._default_size
        self._payload_factory = payload_factory
        self.sent = Counter(env, name=scoped_name(namespace, "clients.sent"))
        self.completed = Counter(
            env, name=scoped_name(namespace, "clients.completed"))
        self.rtt = LatencyRecorder(name=scoped_name(namespace, "clients.rtt"))
        self._next_id = 0
        self._stopped = False

    def _default_size(self, rng: np.random.Generator) -> int:
        """JPEG size distribution around the paper's 500x375 average
        (~0.58 bits/pixel at typical web quality -> ~110 KB mean)."""
        h, w = self.image_hw
        mean = h * w * 0.58 / 8 * 4.3  # empirical bytes for q~75 color
        return max(4096, int(rng.lognormal(np.log(mean), 0.35)))

    def start(self) -> None:
        for cid in range(self.num_clients):
            self.env.process(self._client_loop(cid), name=f"client-{cid}")

    def stop(self) -> None:
        self._stopped = True

    def _client_loop(self, client_id: int):
        # Each slot of the window is an independent request chain.
        for _ in range(self.window):
            self.env.process(self._request_chain(client_id))
        return
        yield  # pragma: no cover - makes this a generator

    def _request_chain(self, client_id: int):
        h, w = self.image_hw
        while not self._stopped:
            rid = self._next_id
            self._next_id += 1
            size = int(self._size_sampler(self.rng))
            done = self.env.event()
            request = NetRequest(
                request_id=rid, client_id=client_id, size_bytes=size,
                height=h, width=w, channels=3, sent_at=self.env.now,
                payload=(self._payload_factory(rid)
                         if self._payload_factory else None),
                done_event=done,
                deadline_at=(self.env.now + self.deadline_s
                             if self.deadline_s is not None else math.inf))
            self.sent.add()
            yield from self.nic.deliver(request)
            try:
                yield done  # the serving stack succeeds this on prediction
            except DeadlineExceeded:
                self.expired.add()
                continue  # shed by the server: reissue
            except ConnectionError:
                continue  # rx drop: reissue
            self.completed.add()
            trace = getattr(request, "trace", None)
            self.rtt.record(
                self.env.now - request.sent_at,
                trace_id=trace.trace_id if trace is not None else None)
            if self.think_time_s:
                yield self.env.timeout(self.think_time_s)
