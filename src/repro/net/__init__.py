"""Network substrate: 40 Gbps link, server NIC RX path, client fleet."""

from .clients import ClientFleet
from .link import Link
from .nic import NetRequest, Nic

__all__ = ["Link", "Nic", "NetRequest", "ClientFleet"]
