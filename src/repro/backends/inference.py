"""Online-inference backends (S5.3): CPU-based, nvJPEG, DLBooster.

Each backend drains the NIC RX queue, preprocesses its way, and feeds
per-GPU TensorRT engines through their Trans Queues.  "Backends such as
LMDB cannot boost the performance for online inference ... because each
input is used only once" — so the offline backend has no inference
counterpart, exactly as in the paper.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..calib import Testbed
from ..engines import CpuCorePool, InferenceEngine
from ..faults import (CircuitBreaker, FaultInjector, FaultPlan, QuarantineLog,
                      RetryPolicy)
from ..fpga import DecodeCmd, FpgaDevice, FPGAChannel, ImageDecoderMirror
from ..host import BatchSpec, DataCollector, Dispatcher, FPGAReader
from ..memory import MemManager
from ..net import Nic
from ..sim import Counter, Environment, Resource, SeedBank, scoped_name

__all__ = ["CpuInferenceBackend", "NvJpegInferenceBackend",
           "DLBoosterInferenceBackend"]


class _InferenceBackendBase:
    name = "abstract"

    def __init__(self, env: Environment, testbed: Testbed, cpu: CpuCorePool,
                 nic: Nic, spec: BatchSpec, namespace: str = ""):
        self.env = env
        self.testbed = testbed
        self.cpu = cpu
        self.nic = nic
        self.spec = spec
        # Per-host metric namespace: ``"host03"`` prefixes every
        # instrument this backend constructs, so K serving pipelines in
        # one Environment never collide in the registry.  Empty (the
        # default) keeps the historical flat names.
        self.namespace = namespace
        self.collector = DataCollector(
            env, name=scoped_name(namespace, f"{self.name}-collector"))
        self.collector.load_from_net(nic)
        self._started = False

    def _scoped(self, name: str) -> str:
        return scoped_name(self.namespace, name)

    def _check_start(self, engines: Sequence[InferenceEngine]) -> None:
        if self._started:
            raise RuntimeError(f"{self.name} already started")
        if not engines:
            raise ValueError("no engines")
        self._started = True


class CpuInferenceBackend(_InferenceBackendBase):
    """Decode workers on host cores -> serial batcher -> PCIe -> engine."""

    name = "cpu-online"

    def __init__(self, *args, max_workers: Optional[int] = None, **kwargs):
        super().__init__(*args, **kwargs)
        workers = (max_workers if max_workers is not None
                   else self.testbed.cpu_infer_max_workers)
        if workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = workers
        self._slots = Resource(self.env, capacity=workers,
                               name=self._scoped("cpu-infer-workers"))
        self.decoded = Counter(self.env, name=self._scoped("cpu-infer.decoded"))

    def start(self, engines: Sequence[InferenceEngine]) -> None:
        self._check_start(engines)
        from ..sim import Channel
        decoded_q = Channel(self.env, capacity=4 * self.spec.batch_size,
                            name=self._scoped("cpu-infer.decoded-q"))
        for w in range(self.max_workers):
            self.env.process(self._worker(decoded_q), name=f"cpu-dec-{w}")
        for engine in engines:
            self.env.process(self._batcher(engine, decoded_q),
                             name=f"cpu-batcher-{engine.gpu.index}")

    def _worker(self, decoded_q):
        tb = self.testbed
        while True:
            item = yield from self.collector.next_from_net()
            yield from self.cpu.run(
                tb.cpu_decode_seconds(item.size_bytes, item.work_pixels),
                "preprocess")
            self.decoded.add()
            yield from decoded_q.put(item)

    def _batcher(self, engine: InferenceEngine, decoded_q):
        tb = self.testbed
        bs = self.spec.batch_size
        item_bytes = self.spec.item_bytes
        per_item = (tb.per_item_copy_seconds(item_bytes)
                    + tb.transform_seconds(self.spec.out_h * self.spec.out_w))
        while True:
            items = []
            for _ in range(bs):
                item = yield from decoded_q.get()
                items.append(item)
            dev_batch = yield from engine.trans_queues.free.get()
            yield from self.cpu.run(per_item * len(items), "transform")
            copy = engine.gpu.memcpy_async(item_bytes * len(items))
            self.cpu.charge_unaccounted(tb.cuda_launch_overhead_s,
                                        "transform")
            yield copy
            dev_batch.item_count = len(items)
            dev_batch.payload = items
            yield from engine.trans_queues.full.put(dev_batch)


class NvJpegInferenceBackend(_InferenceBackendBase):
    """GPU-decoding backend: raw JPEGs ship to the device, decode kernels
    steal SMs from the inference engine (the contention of S5.3)."""

    name = "nvjpeg"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.decoded = Counter(self.env, name=self._scoped("nvjpeg.decoded"))

    def start(self, engines: Sequence[InferenceEngine]) -> None:
        self._check_start(engines)
        for engine in engines:
            self.env.process(self._feed(engine),
                             name=f"nvjpeg-feed-{engine.gpu.index}")

    def _feed(self, engine: InferenceEngine):
        """Assemble batches and hand each to an overlapped decode chain.

        The kernel-chain *launch* latency (host side) overlaps with the
        previous batch's decode execution — consecutive batches pipeline
        on the decode stream — so launch overhead adds latency without
        capping throughput below the decode kernels themselves.
        """
        bs = self.spec.batch_size
        inflight = Resource(self.env, capacity=2,
                            name=self._scoped("nvjpeg-inflight"))
        while True:
            items = []
            raw_bytes = 0
            for _ in range(bs):
                item = yield from self.collector.next_from_net()
                items.append(item)
                raw_bytes += item.size_bytes
            slot = inflight.request()
            yield slot
            self.env.process(
                self._decode_chain(engine, items, raw_bytes, inflight, slot))

    def _decode_chain(self, engine: InferenceEngine, items, raw_bytes,
                      inflight, slot):
        tb = self.testbed
        gpu = engine.gpu
        dev_batch = yield from engine.trans_queues.free.get()
        # The decode kernels stay resident on their SM share for the
        # whole in-flight window (nvJPEG pre-allocates its contexts), so
        # concurrent inference kernels see the ~30% steal whenever any
        # decode batch is outstanding — the persistent contention the
        # paper measures (S5.3).
        gpu.begin_decode_kernel(tb.nvjpeg_sm_share)
        try:
            # Ship the *encoded* JPEGs over PCIe (small), then decode.
            yield gpu.memcpy_async(max(raw_bytes, 1))
            # Host side: launch chain + busy loop ("1~2 CPU cores").
            self.cpu.charge_unaccounted(
                tb.nvjpeg_cpu_per_image_s * len(items), "preprocess")
            yield self.env.timeout(tb.nvjpeg_batch_launch_s)
            decode = gpu.decode_stream.submit(
                len(items) / tb.nvjpeg_peak_rate, "nvjpeg")
            yield decode
        finally:
            gpu.end_decode_kernel()
        self.decoded.add(len(items))
        dev_batch.item_count = len(items)
        dev_batch.payload = items
        yield from engine.trans_queues.full.put(dev_batch)
        inflight.release(slot)


class DLBoosterInferenceBackend(_InferenceBackendBase):
    """NIC -> FPGA decoder -> hugepage pool -> dispatcher -> engine.

    ``gpu_direct=True`` enables the paper's future-work item (2)
    ("directly writing the processed data to GPU devices for lower
    latency", S7): the decoder's DMA engine targets device memory
    peer-to-peer, skipping the host staging buffer and the dispatcher's
    PCIe copy entirely.
    """

    name = "dlbooster"

    def __init__(self, *args, num_fpgas: int = 1, pool_units: int = 8,
                 functional: bool = False, gpu_direct: bool = False,
                 supervisor=None, rtracker=None,
                 fault_plan: Optional[FaultPlan] = None,
                 injector: Optional[FaultInjector] = None,
                 retry: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 seeds: Optional[SeedBank] = None,
                 **kwargs):
        super().__init__(*args, **kwargs)
        self.gpu_direct = gpu_direct
        self.rtracker = rtracker
        if num_fpgas < 1:
            raise ValueError("num_fpgas must be >= 1")
        # Supervision (repro.supervision): watchdog heartbeats, deadline
        # shedding at the NIC/reader/dispatcher boundaries, integrity
        # verification.  None (or a disabled config) adds nothing.
        self.supervisor = supervisor \
            if supervisor is not None and supervisor.config.enabled else None
        sup = self.supervisor
        if sup is not None:
            if sup.sheds_deadlines:
                self.collector.deadline_s = sup.config.deadline_s
            self.collector.integrity = sup.integrity
            sup.arm_admission(self.nic.rx_queue)
        # Fault layer (repro.faults), mirroring the training backend:
        # only materialised when a plan is armed, so the default serving
        # build is byte-identical to a fault-free one.  This is what
        # lets a fleet degrade *one* host's FPGA (decoder_crash ->
        # breaker opens -> CPU failover) while its peers stay healthy.
        self.injector = injector
        if self.injector is None and fault_plan:
            self.injector = FaultInjector(
                self.env, fault_plan,
                seeds=(seeds if seeds is not None
                       else SeedBank()).spawn("faults"))
        armed = self.injector is not None or fault_plan
        self.breaker = breaker
        if self.breaker is None and (armed or retry is not None):
            self.breaker = CircuitBreaker(
                self.env, name=self._scoped("breaker"))
        if self.breaker is not None and rtracker is not None:
            self.breaker.rtracker = rtracker
        self.quarantine = (
            QuarantineLog(self.env,
                          name=self._scoped("dlbooster-infer-quarantine"))
            if (armed or retry is not None) else None)
        self.pool = MemManager(self.env, unit_size=self.spec.batch_bytes,
                               unit_count=pool_units,
                               allocate_arena=functional,
                               name=self._scoped("dlbooster-infer-pool"))
        self.devices = []
        self.channels = []
        for i in range(num_fpgas):
            device = FpgaDevice(self.env, self.testbed,
                                name=self._scoped(f"fpga{i}"))
            mirror = ImageDecoderMirror(
                self.env, self.testbed, functional=functional,
                host_pool=self.pool if functional else None,
                name=self._scoped(f"infer-decoder-{i}"),
                injector=self.injector, site=f"fpga{i}")
            device.load_mirror(mirror)
            self.devices.append(device)
            self.channels.append(FPGAChannel(
                self.env, mirror, queue_id=i, injector=self.injector,
                site=f"fpga{i}", name=self._scoped(f"ch{i}")))
        # The reader's completion pump would consume FINISH records the
        # gpu-direct feed needs, so it exists only on the staged path.
        self.reader = None if gpu_direct else FPGAReader(
            self.env, self.testbed, self.channels[0], self.pool,
            self.spec, cpu=self.cpu, channels=self.channels,
            name=self._scoped("fpga-reader"),
            injector=self.injector, retry=retry,
            breaker=self.breaker, quarantine=self.quarantine,
            heartbeat=(sup.register("fpga-reader")
                       if sup is not None else None),
            integrity=sup.integrity if sup is not None else None,
            shed_deadlines=(sup is not None and sup.sheds_deadlines
                            and sup.config.shed_at_reader),
            rtracker=rtracker)
        if sup is not None and not gpu_direct:
            sup.watch_channel(self.pool.full_batch_queue)
            sup.watch_channel(self.pool.free_batch_queue)
            sup.watch_channel(self.nic.rx_queue)
        self._next_cmd = 0
        self.dispatcher: Optional[Dispatcher] = None

    def start(self, engines: Sequence[InferenceEngine]) -> None:
        self._check_start(engines)
        if self.gpu_direct:
            # Peer-to-peer path: one feed per engine, no dispatcher, no
            # host staging — the decoder DMAs straight into the device
            # batch buffer.
            for engine in engines:
                self.env.process(self._gpu_direct_feed(engine),
                                 name=f"dlb-direct-{engine.gpu.index}")
        else:
            sup = self.supervisor
            self.dispatcher = Dispatcher(
                self.env, self.testbed, self.pool, engines, cpu=self.cpu,
                name=self._scoped("dispatcher"),
                heartbeat=(sup.register("dispatcher") if sup is not None
                           else None),
                shed_deadlines=(sup is not None and sup.sheds_deadlines
                                and sup.config.shed_at_dispatcher),
                tracer=(self.rtracker.tracer if self.rtracker is not None
                        else None),
                rtracker=self.rtracker)
            self.dispatcher.start()
            if sup is not None:
                for i, engine in enumerate(engines):
                    engine.heartbeat = sup.register(f"engine-{i}")
                    sup.watch_channel(engine.trans_queues.full)
                    sup.watch_channel(engine.trans_queues.free)
                sup.track_stoppable(self.dispatcher)
                sup.start()
            self.env.process(
                self.reader.run_stream(self.collector.next_from_net),
                name="dlbooster-infer-feed")
            self.env.process(self._poll_ticker(
                self.testbed.dispatcher_poll_core_frac, "transform"))
        self.env.process(self._poll_ticker(
            self.testbed.reader_poll_core_frac, "preprocess"))

    def _gpu_direct_feed(self, engine: InferenceEngine):
        """Assemble device batches by submitting cmds whose destination
        is GPU memory; completion publishes straight to the engine.

        Batches overlap: while one batch's decode drains, the next
        batch's cmds are already streaming into the FIFO.  The engine's
        Trans-Queue depth bounds the overlap; a demux pump routes FINISH
        records to the right open batch.
        """
        tb = self.testbed
        bs = self.spec.batch_size
        channel = self.channels[engine.gpu.index % len(self.channels)]
        item_bytes = self.spec.item_bytes
        waiters: dict[object, list] = {}  # tag -> [remaining, done_event]
        self.env.process(self._direct_pump(channel, waiters),
                         name=f"dlb-direct-pump-{engine.gpu.index}")
        seq = 0
        while True:
            dev_batch = yield from engine.trans_queues.free.get()
            tag = ("direct", engine.gpu.index, seq)
            seq += 1
            done = self.env.event()
            waiters[tag] = [bs, done]
            opened_at = self.env.now
            items = []
            for slot in range(bs):
                item = yield from self.collector.next_from_net()
                items.append(item)
                trace = getattr(item, "trace", None)
                if trace is not None and not trace.is_finished:
                    trace.mark("reader.submit", "service")
                cmd = DecodeCmd(
                    cmd_id=self._next_cmd, source=item.source,
                    size_bytes=item.size_bytes,
                    work_pixels=item.work_pixels,
                    out_h=self.spec.out_h, out_w=self.spec.out_w,
                    channels=self.spec.channels,
                    dest_phy=dev_batch.device_addr,
                    dest_offset=slot * item_bytes,
                    batch_tag=tag, payload=item.payload,
                    trace=trace,
                    trace_attempt=trace.attempt if trace is not None else 0)
                self._next_cmd += 1
                self.cpu.charge_unaccounted(tb.reader_cmd_cost_s,
                                            "preprocess")
                yield from channel.submit_cmd(cmd)
            self.env.process(
                self._direct_publish(engine, dev_batch, items, done,
                                     tag, opened_at))

    def _direct_pump(self, channel: FPGAChannel, waiters: dict):
        while True:
            record = yield from channel.wait_one()
            entry = waiters.get(record.batch_tag)
            if entry is None:
                raise RuntimeError(
                    f"FINISH for unknown direct batch {record.batch_tag}")
            entry[0] -= 1
            if entry[0] == 0:
                del waiters[record.batch_tag]
                entry[1].succeed()

    def _direct_publish(self, engine: InferenceEngine, dev_batch, items,
                        done, tag=None, opened_at: float = 0.0):
        yield done
        if self.rtracker is not None:
            traces = [t for t in (getattr(it, "trace", None) for it in items)
                      if t is not None and not t.is_finished]
            if traces:
                # Fan-in happens device-side on this path: N cmds DMA'd
                # straight into one device batch buffer.
                self.rtracker.batch_fanin(tag, traces,
                                          start=opened_at, end=self.env.now)
            for t in traces:
                t.mark("gpu.trans", "wait")
        dev_batch.item_count = len(items)
        dev_batch.payload = items
        yield from engine.trans_queues.full.put(dev_batch)

    def conservation_ok(self) -> bool:
        """Item conservation on the staged path (mirrors the training
        backend's invariant)::

            accepted == fpga_decoded + cpu_failover + quarantined
                        + shed_expired + integrity_rejected
                        + unresolved-slots-of-open-batches

        Trivially true on the gpu-direct path (no reader bookkeeping).
        """
        if self.reader is None:
            return True
        r = self.reader
        integrity_rejected = int(r.integrity_rejected.total)
        quarantined_other = r.quarantine.total - integrity_rejected
        resolved = (int(r.items_decoded_fpga.total)
                    + int(r.failover_items.total) + quarantined_other
                    + integrity_rejected + int(r.shed_expired.total))
        unresolved = sum(b.filled - b.done for b in r._open.values())
        return int(r.items_accepted.total) == resolved + unresolved

    def _poll_ticker(self, core_frac: float, category: str,
                     tick_s: float = 0.01):
        while True:
            yield self.env.timeout(tick_s)
            self.cpu.charge_unaccounted(core_frac * tick_s, category)
