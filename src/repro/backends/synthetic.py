"""Synthetic (ideal) backend — the GPU performance upper boundary.

Feeds solvers instantly-ready batches with zero preprocessing cost,
reproducing the "Performance Upper Boundary" line of Fig. 2 / Fig. 5 and
the synthetic-data training the paper's footnote 4 calls out in prior
work ("they only use synthetic datasets and skip the data
preprocessing step").
"""

from __future__ import annotations

from typing import Sequence

from .base import TrainingBackend

__all__ = ["SyntheticBackend"]


class SyntheticBackend(TrainingBackend):
    """Zero-cost feed: the GPU performance upper boundary."""

    name = "synthetic"

    def start(self, solvers: Sequence) -> None:
        self._check_start(solvers)
        for solver in solvers:
            self.env.process(self._feed(solver),
                             name=f"synthetic-feed-{solver.gpu.index}")

    def _feed(self, solver):
        while True:
            batch = yield from solver.trans_queues.free.get()
            batch.item_count = self.spec.batch_size
            batch.payload = None
            yield from solver.trans_queues.full.put(batch)
