"""CPU-based online preprocessing backend (the paper's first baseline).

Structure mirrors Caffe/NVCaffe's data layer: a pool of decode workers
("burning CPU cores", S2.2) feeds a *single per-GPU loader thread* that
transforms and copies each datum into the staging buffer in small
pieces before the batch is shipped to the device — the per-item copy
path whose overhead the paper measures at ~20% on LeNet-5 (S5.2).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..engines import CpuCorePool
from ..host import WorkItem
from ..sim import Counter, Resource
from .base import TrainingBackend, epoch_stream

__all__ = ["CpuOnlineBackend"]


class CpuOnlineBackend(TrainingBackend):
    """Online decode on host cores + per-item copy loader (Caffe-style)."""

    name = "cpu-online"

    def __init__(self, *args, max_workers: Optional[int] = None,
                 prefetch_batches: int = 3, disk=None, **kwargs):
        super().__init__(*args, **kwargs)
        self.prefetch_batches = prefetch_batches
        self.disk = disk  # NvmeDisk; None models an unconstrained source
        # "We offer the CPU resources with the best effort" (Fig. 5
        # caption): by default decode may use every core the pool grants;
        # a cap models constrained deployments (Fig. 2 default config).
        cores = self.testbed.cpu_cores
        self.max_workers = max_workers if max_workers is not None else cores
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self._worker_slots = Resource(self.env, capacity=self.max_workers,
                                      name="cpu-decode-workers")
        self.decoded = Counter(self.env, name="cpu-backend.decoded")

    def start(self, solvers: Sequence) -> None:
        self._check_start(solvers)
        for solver in solvers:
            self.env.process(self._solver_feed(solver),
                             name=f"cpu-feed-{solver.gpu.index}")

    # -- per-solver pipeline ------------------------------------------------
    def _solver_feed(self, solver):
        """Decode prefetcher (parallel) -> serial loader -> device."""
        from ..sim import Channel
        ready_q = Channel(self.env, capacity=self.prefetch_batches,
                          name=f"cpu-ready-{solver.gpu.index}")
        self.env.process(self._prefetcher(ready_q),
                         name=f"cpu-prefetch-{solver.gpu.index}")
        yield from self._loader(solver, ready_q)

    def _prefetcher(self, ready_q):
        """Group the epoch stream into batches and decode them in
        parallel on the worker pool."""
        bs = self.spec.batch_size
        epoch = 0
        while True:
            rng = self._epoch_rng()
            batch_items: list[WorkItem] = []
            for item in epoch_stream(self.manifest, rng, epoch):
                batch_items.append(item)
                if len(batch_items) == bs:
                    yield from self._decode_batch(batch_items)
                    yield from ready_q.put(batch_items)
                    batch_items = []
            if batch_items:
                yield from self._decode_batch(batch_items)
                yield from ready_q.put(batch_items)
            epoch += 1
            self.epochs_done += 1
            self.cache.on_epoch_done()

    def _decode_batch(self, items):
        """Fan decode work out to the worker pool; wait for the makespan.

        Items are dealt round-robin to ``min(ways, len(items))`` worker
        jobs (one per core the backend may claim), which models the
        thread pool's makespan at batch granularity without one
        simulation event per image.
        """
        if self.cache.active:
            return  # decoded data already in memory
        if self.disk is not None:
            # Raw JPEGs stream off the NVMe device before decode ("has
            # to be loaded by CPU from disk to memory periodically").
            yield from self.disk.read(sum(i.size_bytes for i in items))
        ways = min(self.max_workers, len(items))
        chunks: list[float] = [0.0] * ways
        for i, item in enumerate(items):
            chunks[i % ways] += self.testbed.cpu_decode_seconds(
                item.size_bytes, item.work_pixels)
        jobs = [self.env.process(self._decode_chunk(seconds))
                for seconds in chunks]
        yield self.env.all_of(jobs)
        self.decoded.add(len(items))

    def _decode_chunk(self, seconds: float):
        slot = self._worker_slots.request()
        yield slot
        try:
            yield from self.cpu.run(seconds, "preprocess")
        finally:
            self._worker_slots.release(slot)

    def _loader(self, solver, ready_q):
        """The single data-layer thread: per-item transform + small-piece
        copies, then the batched PCIe transfer."""
        tb = self.testbed
        item_bytes = self.spec.item_bytes
        while True:
            items = yield from ready_q.get()
            dev_batch = yield from solver.trans_queues.free.get()
            per_item = (tb.per_item_copy_seconds(item_bytes)
                        + tb.transform_seconds(self.spec.out_h
                                               * self.spec.out_w))
            yield from self.cpu.run(per_item * len(items), "transform")
            copy_done = solver.gpu.memcpy_async(item_bytes * len(items))
            self.cpu.charge_unaccounted(tb.cuda_launch_overhead_s,
                                        "transform")
            yield copy_done
            dev_batch.item_count = len(items)
            dev_batch.payload = items
            yield from solver.trans_queues.full.put(dev_batch)
