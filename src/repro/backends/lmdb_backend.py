"""LMDB offline backend (the paper's second training baseline).

Datums are pre-converted once (the multi-hour ingest of S2.2) into an
LMDB-style store holding *decoded* records, so training-time service is
record fetch + transform + copy — no JPEG decode.  All GPUs read the
one shared environment; reads serialize on its B-tree/reader-table,
which is the "competition on the shared DB backend as more GPUs are
used" that costs 30% at 2 GPUs in Figs. 2/5(b).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..sim import Counter, Resource
from ..storage import KVStore
from .base import TrainingBackend, epoch_stream

__all__ = ["LmdbBackend", "ingest_manifest"]

RECORD_HEADER_BYTES = 64  # datum framing (shape, label, checksum)


def ingest_manifest(manifest, spec, testbed) -> float:
    """Offline conversion cost (seconds) of preparing the store.

    "We spent more than 2 hours to prepare the LMDB backend for
    ILSVRC12" (S2.2) — decode + resize + write for every sample at the
    calibrated ingest rate.
    """
    return len(manifest) / testbed.lmdb_ingest_rate


class LmdbBackend(TrainingBackend):
    """Offline records from one shared KV environment (reads serialize)."""

    name = "lmdb"

    def __init__(self, *args, store: Optional[KVStore] = None,
                 store_hw: Optional[tuple[int, int]] = None, **kwargs):
        super().__init__(*args, **kwargs)
        # Stored datum geometry: Caffe's ImageNet recipe stores 256x256
        # raw; MNIST stores the native 28x28.
        if store_hw is None:
            big = max(self.spec.out_h, self.spec.out_w) > 64
            store_hw = (256, 256) if big else (self.spec.out_h,
                                               self.spec.out_w)
        self.store_hw = store_hw
        self.record_bytes = (store_hw[0] * store_hw[1] * self.spec.channels
                             + RECORD_HEADER_BYTES)
        self.store = store  # real KVStore in functional runs (optional)
        # One shared environment: reads serialize here.
        self._environment = Resource(self.env, capacity=1, name="lmdb-env")
        self.records_read = Counter(self.env, name="lmdb.reads")
        self.ingest_seconds = ingest_manifest(self.manifest, self.spec,
                                              self.testbed)

    def start(self, solvers: Sequence) -> None:
        self._check_start(solvers)
        for solver in solvers:
            self.env.process(self._loader(solver),
                             name=f"lmdb-feed-{solver.gpu.index}")

    def _read_record(self):
        """One cursor step against the shared environment."""
        if self.cache.active:
            # Page-cache-hot store: no environment round trip; cost folds
            # into the loader's per-item copy below.
            return
        grant = self._environment.request()
        yield grant
        try:
            yield from self.cpu.run(
                self.testbed.lmdb_record_seconds(self.record_bytes),
                "preprocess")
        finally:
            self._environment.release(grant)
        self.records_read.add()

    def _loader(self, solver):
        """Caffe's LMDB data layer: cursor -> transform -> copy, serial."""
        tb = self.testbed
        bs = self.spec.batch_size
        item_bytes = self.spec.item_bytes
        per_item_cpu = (tb.per_item_copy_seconds(item_bytes)
                        + tb.transform_seconds(self.spec.out_h
                                               * self.spec.out_w))
        epoch = 0
        while True:
            rng = self._epoch_rng()
            count_in_batch = 0
            dev_batch = yield from solver.trans_queues.free.get()
            for item in epoch_stream(self.manifest, rng, epoch):
                yield from self._read_record()
                yield from self.cpu.run(per_item_cpu, "transform")
                count_in_batch += 1
                if count_in_batch == bs:
                    copy = solver.gpu.memcpy_async(item_bytes * bs)
                    self.cpu.charge_unaccounted(tb.cuda_launch_overhead_s,
                                                "transform")
                    yield copy
                    dev_batch.item_count = bs
                    yield from solver.trans_queues.full.put(dev_batch)
                    count_in_batch = 0
                    dev_batch = yield from solver.trans_queues.free.get()
            if count_in_batch:
                copy = solver.gpu.memcpy_async(item_bytes * count_in_batch)
                yield copy
                dev_batch.item_count = count_in_batch
                yield from solver.trans_queues.full.put(dev_batch)
            else:
                dev_batch.reset()
                yield from solver.trans_queues.free.put(dev_batch)
            epoch += 1
            self.epochs_done += 1
            self.cache.on_epoch_done()
