"""Data-preprocessing backends: the paper's baselines and DLBooster.

Training backends (Fig. 2/5/6): :class:`SyntheticBackend` (GPU bound),
:class:`CpuOnlineBackend`, :class:`LmdbBackend`, :class:`DLBoosterBackend`.
Inference backends (Fig. 7/8/9): :class:`CpuInferenceBackend`,
:class:`NvJpegInferenceBackend`, :class:`DLBoosterInferenceBackend`.
"""

from .base import DatasetCache, TrainingBackend, epoch_stream
from .cpu_backend import CpuOnlineBackend
from .dlbooster import DLBoosterBackend
from .inference import (CpuInferenceBackend, DLBoosterInferenceBackend,
                        NvJpegInferenceBackend)
from .lmdb_backend import LmdbBackend, ingest_manifest
from .synthetic import SyntheticBackend

__all__ = ["TrainingBackend", "DatasetCache", "epoch_stream",
           "SyntheticBackend", "CpuOnlineBackend", "LmdbBackend",
           "ingest_manifest", "DLBoosterBackend", "CpuInferenceBackend",
           "NvJpegInferenceBackend", "DLBoosterInferenceBackend"]
