"""Common backend machinery: the feed contract and the epoch cache.

A *training backend* keeps each solver's FULL Trans Queue supplied with
device batches, looping over the dataset epoch after epoch, until the
workflow stops measuring.  An *inference backend* does the same fed from
the NIC.  Both report their preprocessing CPU through the shared
:class:`~repro.engines.CpuCorePool` categories so Figs. 6/9 fall out of
one accounting mechanism.

The epoch cache implements the paper's hybrid primitive (S3.1):
"DLBooster preprocesses all data in the first epoch and caches them in
memory as it can" — and the same OS-page-cache effect benefits the
baselines on MNIST ("the MNIST dataset is so small that it can be
cached in memory after the first epoch", S5.2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, Optional, Sequence

import numpy as np

from ..calib import Testbed
from ..engines import CpuCorePool
from ..host import BatchSpec, WorkItem
from ..sim import Environment, SeedBank
from ..storage import FileManifest

__all__ = ["TrainingBackend", "DatasetCache", "epoch_stream"]


def epoch_stream(manifest: FileManifest, rng: Optional[np.random.Generator],
                 epoch: int) -> Iterator[WorkItem]:
    """WorkItems for one training epoch (shuffled when rng given)."""
    for idx in manifest.epoch_order(rng):
        entry = manifest[int(idx)]
        yield WorkItem(source="disk", size_bytes=entry.size_bytes,
                       work_pixels=entry.decode_work_pixels,
                       channels=entry.channels, label=entry.label,
                       payload=entry.payload, entry=entry)


class DatasetCache:
    """Decoded-dataset memory cache with a capacity policy."""

    def __init__(self, testbed: Testbed, manifest: FileManifest,
                 spec: BatchSpec):
        self.testbed = testbed
        decoded_bytes = len(manifest) * spec.item_bytes
        self.fits = decoded_bytes <= testbed.cache_capacity_bytes
        self.decoded_bytes = decoded_bytes
        self.warm = False

    def on_epoch_done(self) -> None:
        if self.fits:
            self.warm = True

    @property
    def active(self) -> bool:
        return self.warm and self.fits


class TrainingBackend(ABC):
    """Base class wiring env/cpu/dataset/spec plus the epoch loop."""

    name = "abstract"

    def __init__(self, env: Environment, testbed: Testbed, cpu: CpuCorePool,
                 manifest: FileManifest, spec: BatchSpec,
                 seeds: Optional[SeedBank] = None):
        self.env = env
        self.testbed = testbed
        self.cpu = cpu
        self.manifest = manifest
        self.spec = spec
        self.seeds = seeds or SeedBank()
        self.cache = DatasetCache(testbed, manifest, spec)
        self.epochs_done = 0
        self._started = False

    @abstractmethod
    def start(self, solvers: Sequence) -> None:
        """Spawn the feed processes for these solvers and return."""

    def _check_start(self, solvers: Sequence) -> None:
        if self._started:
            raise RuntimeError(f"{self.name} backend already started")
        if not solvers:
            raise ValueError("no solvers")
        self._started = True

    # -- shared helpers --------------------------------------------------
    def _epoch_rng(self) -> np.random.Generator:
        return self.seeds.stream(f"{self.name}-shuffle")

    def _poll_ticker(self, core_frac: float, category: str,
                     tick_s: float = 0.01):
        """Charge a busy-poll duty cycle while the backend runs."""
        while True:
            yield self.env.timeout(tick_s)
            self.cpu.charge_unaccounted(core_frac * tick_s, category)
