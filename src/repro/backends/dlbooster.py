"""The DLBooster backend: FPGA decode + hugepage pool + dispatcher.

Wires together every piece of Figure 3: DataCollector (data plane),
FPGA decoder mirror + FPGAChannel (decoder plane), FPGAReader +
MemManager + Dispatcher (host bridger) and the solvers' Trans Queues
(compute engine).  Supports multiple FPGA devices ("the bottleneck can
be overcome by plugging more FPGA devices", S5.3) and the epoch cache
of the hybrid primitive (S3.1).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..calib import Testbed
from ..engines import CpuCorePool
from ..faults import (CircuitBreaker, FaultInjector, FaultPlan, QuarantineLog,
                      RetryPolicy)
from ..fpga import FpgaDevice, FPGAChannel, ImageDecoderMirror
from ..host import BatchSpec, DataCollector, Dispatcher, FPGAReader
from ..memory import MemManager
from ..sim import SeedBank
from ..storage import FileManifest, NvmeDisk
from .base import TrainingBackend, epoch_stream

__all__ = ["DLBoosterBackend"]

# Host batch buffers in the hugepage pool; ">1 GB in continuous space"
# sliced into pieces (S3.4.2) — 8 units covers fill + DMA + dispatch +
# in-copy overlap for two GPUs.
POOL_UNITS = 8


class DLBoosterBackend(TrainingBackend):
    """FPGA decode + hugepage pool + dispatcher (the paper's system)."""

    name = "dlbooster"

    def __init__(self, env, testbed: Testbed, cpu: CpuCorePool,
                 manifest: FileManifest, spec: BatchSpec,
                 seeds: Optional[SeedBank] = None,
                 num_fpgas: int = 1,
                 huffman_ways: Optional[int] = None,
                 resizer_ways: Optional[int] = None,
                 functional: bool = False,
                 disk: Optional[NvmeDisk] = None,
                 pool_units: int = POOL_UNITS,
                 fault_plan: Optional[FaultPlan] = None,
                 retry: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 supervisor=None,
                 tracer=None,
                 rtracker=None):
        super().__init__(env, testbed, cpu, manifest, spec, seeds)
        if num_fpgas < 1:
            raise ValueError("num_fpgas must be >= 1")
        # Supervision layer (repro.supervision): only consulted when a
        # Supervisor with an enabled config is handed in, so the default
        # build is byte-identical to an unsupervised one.
        self.supervisor = supervisor \
            if supervisor is not None and supervisor.config.enabled else None
        # Fault layer: only materialised when a plan is armed, so the
        # default build is byte-identical to a fault-free one.
        self.injector = None
        if fault_plan:
            self.injector = FaultInjector(
                env, fault_plan, seeds=self.seeds.spawn("faults"),
                tracer=tracer)
            if disk is not None and disk.injector is None:
                disk.injector = self.injector
        self.rtracker = rtracker
        self.tracer = tracer
        self.breaker = breaker
        if self.breaker is None and (fault_plan or retry is not None):
            self.breaker = CircuitBreaker(env, tracer=tracer)
        if self.breaker is not None and rtracker is not None:
            self.breaker.rtracker = rtracker
        self.quarantine = QuarantineLog(env, name="dlbooster-quarantine")
        self.pool = MemManager(env, unit_size=spec.batch_bytes,
                               unit_count=pool_units,
                               allocate_arena=functional,
                               name="dlbooster-pool")
        self.devices: list[FpgaDevice] = []
        self.channels: list[FPGAChannel] = []
        for i in range(num_fpgas):
            device = FpgaDevice(env, testbed, name=f"fpga{i}")
            mirror = ImageDecoderMirror(
                env, testbed, huffman_ways=huffman_ways,
                resizer_ways=resizer_ways, functional=functional,
                host_pool=self.pool if functional else None,
                disk=disk, name=f"image-decoder-{i}",
                injector=self.injector, site=f"fpga{i}")
            device.load_mirror(mirror)
            self.devices.append(device)
            self.channels.append(FPGAChannel(env, mirror, queue_id=i,
                                             injector=self.injector))
        sup = self.supervisor
        self.collector = DataCollector(
            env, integrity=sup.integrity if sup is not None else None)
        self.collector.load_from_disk(manifest)
        self.reader = FPGAReader(
            env, testbed, self.channels[0], self.pool,
            spec, cpu=cpu, channels=self.channels,
            injector=self.injector, retry=retry,
            breaker=self.breaker,
            quarantine=self.quarantine, tracer=tracer,
            heartbeat=sup.register("fpga-reader") if sup is not None else None,
            integrity=sup.integrity if sup is not None else None,
            shed_deadlines=(sup is not None and sup.sheds_deadlines
                            and sup.config.shed_at_reader),
            rtracker=rtracker)
        if sup is not None:
            sup.watch_channel(self.pool.full_batch_queue)
            sup.watch_channel(self.pool.free_batch_queue)
        self.dispatcher: Optional[Dispatcher] = None

    def start(self, solvers: Sequence) -> None:
        self._check_start(solvers)
        sup = self.supervisor
        self.dispatcher = Dispatcher(
            self.env, self.testbed, self.pool, solvers, cpu=self.cpu,
            heartbeat=(sup.register("dispatcher") if sup is not None
                       else None),
            shed_deadlines=(sup is not None and sup.sheds_deadlines
                            and sup.config.shed_at_dispatcher),
            tracer=self.tracer, rtracker=self.rtracker)
        self.dispatcher.start()
        if sup is not None:
            for i, solver in enumerate(solvers):
                solver.heartbeat = sup.register(f"solver-{i}")
                sup.watch_channel(solver.trans_queues.full)
                sup.watch_channel(solver.trans_queues.free)
            sup.track_stoppable(self.dispatcher)
            sup.start()
        self.env.process(self._feed(), name="dlbooster-feed")
        # Daemon-thread busy-poll duty cycles (Fig. 6d breakdown).
        self.env.process(self._poll_ticker(
            self.testbed.reader_poll_core_frac, "preprocess"))
        self.env.process(self._poll_ticker(
            self.testbed.dispatcher_poll_core_frac, "transform"))

    def _feed(self):
        epoch = 0
        while True:
            if self.cache.active:
                yield from self._feed_from_cache()
            else:
                rng = self._epoch_rng()
                yield from self.reader.run_epoch(
                    epoch_stream(self.manifest, rng, epoch))
            epoch += 1
            self.epochs_done += 1
            self.cache.on_epoch_done()

    def _feed_from_cache(self):
        """Epochs after the first, dataset cached decoded in memory: the
        reader bypasses the FPGA and stages batches straight from DRAM."""
        bs = self.spec.batch_size
        n_batches = -(-len(self.manifest) // bs)
        for b in range(n_batches):
            unit = yield from self.pool.get_item()
            count = min(bs, len(self.manifest) - b * bs)
            unit.item_count = count
            unit.used_bytes = count * self.spec.item_bytes
            if not self.pool.full_batch_queue.try_put(unit):
                raise RuntimeError("Full_Batch_Queue overflow")
            self.reader.batches_produced.add()

    # -- diagnostics ---------------------------------------------------------
    def decoder_utilizations(self) -> list[dict[str, float]]:
        return [d.mirror.stage_utilizations() for d in self.devices]

    def fault_metrics(self) -> dict[str, int]:
        """Resilience bookkeeping for the metrics layer and reports."""
        r = self.reader
        out = {
            "faults_injected": (int(self.injector.injected.total)
                                if self.injector is not None else 0),
            "cmds_dropped": sum(int(ch.dropped.total)
                                for ch in self.channels),
            "decode_errors": sum(int(d.mirror.decode_errors.total)
                                 for d in self.devices),
            "retries": int(r.retries.total),
            "timeouts": int(r.timeouts.total),
            "duplicate_finishes": int(r.duplicate_finishes.total),
            "quarantined": self.quarantine.total,
            "failover_items": int(r.failover_items.total),
            "failovers": (int(self.breaker.failovers.total)
                          if self.breaker is not None else 0),
            "recoveries": (int(self.breaker.recoveries.total)
                           if self.breaker is not None else 0),
            "shed_expired": int(r.shed_expired.total),
            "integrity_rejected": int(r.integrity_rejected.total),
        }
        if self.dispatcher is not None:
            out["dispatcher_items_shed"] = \
                int(self.dispatcher.items_shed.total)
        return out

    def conservation_ok(self) -> bool:
        """Every accepted item is decoded, failed over, quarantined,
        shed, integrity-rejected, or still open.

        ``accepted == fpga_decoded + cpu_failover + quarantined +
        shed_expired + integrity_rejected +
        unresolved-slots-of-open-batches`` — nothing lost, nothing
        double-counted, under any fault plan and shed policy.
        (``quarantined`` here excludes integrity rejects, which land in
        the same quarantine log but are counted on their own.)
        """
        r = self.reader
        integrity_rejected = int(r.integrity_rejected.total)
        quarantined_other = self.quarantine.total - integrity_rejected
        resolved = (int(r.items_decoded_fpga.total)
                    + int(r.failover_items.total) + quarantined_other
                    + integrity_rejected + int(r.shed_expired.total))
        unresolved = sum(b.filled - b.done for b in r._open.values())
        return int(r.items_accepted.total) == resolved + unresolved
