"""Fault injection & resilience for the offload pipeline.

The paper's prototype assumes the FPGA decoder, NVMe disk and NIC never
fail; a production offload pipeline must survive corrupt inputs, device
stalls and command loss.  This package supplies both halves:

* **Injection** — :class:`FaultPlan` / :class:`FaultInjector`, a
  deterministic, seeded fault layer with pluggable fault models wired
  into :mod:`repro.fpga.channel`, :mod:`repro.fpga.decoder`,
  :mod:`repro.storage.nvme` and :mod:`repro.net.link` via zero-cost
  hooks (no behavior change when no plan is armed).
* **Resilience** — :class:`RetryPolicy` (per-cmd deadline + exponential
  backoff resubmit), :class:`QuarantineLog` (poison-item isolation) and
  :class:`CircuitBreaker` (CPU-failover + probe-based re-admission),
  consumed by ``FPGAReader`` and ``DLBoosterBackend``.

See ``repro.experiments.chaos`` for the degradation-curve experiments.
"""

from .injector import FaultInjector
from .plan import FAULT_KINDS, FLEET_FAULT_KINDS, FaultPlan, FaultSpec
from .resilience import (CircuitBreaker, QuarantineEntry, QuarantineLog,
                         RetryPolicy)

__all__ = ["FAULT_KINDS", "FLEET_FAULT_KINDS", "FaultPlan", "FaultSpec",
           "FaultInjector", "RetryPolicy", "QuarantineLog",
           "QuarantineEntry", "CircuitBreaker"]
