"""Declarative fault plans.

A :class:`FaultPlan` is an immutable list of :class:`FaultSpec` entries,
each describing one fault model armed against one injection *site* (a
component name, or ``"*"`` for every site that consults that kind).
Plans are pure data — they carry no randomness of their own; the
:class:`~repro.faults.injector.FaultInjector` draws every stochastic
decision from named :class:`~repro.sim.rand.SeedBank` streams, so a
given ``(seed, plan)`` pair replays bit-identically.

Fault kinds
-----------
``payload_corrupt``   flip bytes inside the JPEG scan (functional mode)
                      or poison the cmd's metadata (modeled mode); the
                      decoder raises a typed :class:`JpegDecodeError`
                      and emits an *error* FINISH record.
``payload_truncate``  cut the JPEG payload short — same error surface,
                      classified as a truncated stream.
``payload_bitflip``   *silent* corruption: bytes change but the decoder
                      still reports a successful FINISH (bit flips in
                      the entropy-coded scan that still parse).  Only
                      end-to-end integrity verification
                      (:mod:`repro.supervision`) catches it.
``cmd_drop``          the cmd vanishes between host and FPGA FIFO; no
                      FINISH record will ever arrive (Algorithm 1's
                      silent-loss case).
``finish_stall``      the FINISH record is delayed by ``magnitude``
                      seconds after the DMA write — exercising the
                      reader's deadline + duplicate-suppression path.
``decoder_crash``     the decoder is dark during ``[start, stop)``:
                      every cmd accepted in the window is lost.  Drives
                      the circuit-breaker failover.
``nvme_error``        a disk read fails with ``NvmeReadError``.
``nvme_latency``      a disk read pays ``magnitude`` extra seconds of
                      access latency (device stall / GC pause).
``nic_loss``          a transmit loses a burst of ``magnitude`` packets
                      which must be retransmitted (extra wire time).

Fleet-site fault kinds (consumed by :mod:`repro.fleet.chaos`, never by
in-host components; ``site`` names a *host* — or a *zone* for
``zone_outage``):

``host_crash``        the whole pipeline dies at ``start``: the host
                      stops accepting, and every in-flight request is
                      black-holed (its completion, if the simulated
                      silicon still produces one, is discarded at the
                      balancer — the client's connection is dead).
``host_hang``         gray failure: the host keeps admitting requests
                      but its completion rate collapses — each
                      completion is silently swallowed with probability
                      ``rate`` during ``[start, stop)``.  Invisible to
                      supervisor signals (the host looks busy and
                      healthy from the inside); only balancer-side
                      outlier ejection catches it.
``host_slow``         uniform service-time inflation: every completion
                      is delayed by ``magnitude`` extra seconds during
                      the window (degraded preprocessing worker /
                      straggler).
``link_partition``    the LB<->host dispatch path is down for the whole
                      ``[start, stop)`` window: every dispatch to the
                      host is dropped before admission.
``link_flap``         lossy dispatch path: each dispatch to the host is
                      dropped with probability ``rate`` during the
                      window.
``zone_outage``       correlated ``host_crash`` of every host whose
                      configured ``zone`` equals ``site``, at ``start``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Optional

__all__ = ["FAULT_KINDS", "FLEET_FAULT_KINDS", "FaultSpec", "FaultPlan"]

FAULT_KINDS = (
    "payload_corrupt",
    "payload_truncate",
    "payload_bitflip",
    "cmd_drop",
    "finish_stall",
    "decoder_crash",
    "nvme_error",
    "nvme_latency",
    "nic_loss",
    "host_crash",
    "host_hang",
    "host_slow",
    "link_partition",
    "link_flap",
    "zone_outage",
)

# The subset that targets fleet sites (hosts / zones) rather than
# in-host components; repro.fleet.chaos consumes exactly these.
FLEET_FAULT_KINDS = (
    "host_crash",
    "host_hang",
    "host_slow",
    "link_partition",
    "link_flap",
    "zone_outage",
)


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault model.

    ``rate`` is the per-opportunity Bernoulli probability (ignored by
    ``decoder_crash``, which is a deterministic outage window).
    ``magnitude`` is kind-specific: stall/extra-latency seconds, or the
    lost-packet burst length for ``nic_loss``.  ``limit`` caps the total
    number of injections (``None`` = unlimited).
    """

    kind: str
    site: str = "*"
    rate: float = 0.0
    start: float = 0.0
    stop: float = math.inf
    magnitude: float = 0.0
    limit: Optional[int] = None

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"choose from {FAULT_KINDS}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.start < 0 or self.stop < self.start:
            raise ValueError(f"bad window [{self.start}, {self.stop})")
        if self.magnitude < 0:
            raise ValueError(f"negative magnitude {self.magnitude}")
        if self.limit is not None and self.limit < 1:
            raise ValueError(f"limit must be >= 1, got {self.limit}")

    def matches(self, site: str) -> bool:
        return self.site == "*" or self.site == site

    def active(self, now: float) -> bool:
        return self.start <= now < self.stop


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, hashable collection of armed fault specs."""

    specs: tuple[FaultSpec, ...] = ()
    name: str = "plan"

    def __post_init__(self):
        object.__setattr__(self, "specs", tuple(self.specs))

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def with_spec(self, spec: FaultSpec) -> "FaultPlan":
        return FaultPlan(self.specs + (spec,), name=self.name)

    def by_kind(self, kind: str) -> tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if s.kind == kind)

    def fleet_specs(self) -> tuple[FaultSpec, ...]:
        """The specs whose kinds target fleet sites (hosts / zones)."""
        return tuple(s for s in self.specs if s.kind in FLEET_FAULT_KINDS)

    def host_specs(self) -> tuple[FaultSpec, ...]:
        """The specs in-host components consume (everything else)."""
        return tuple(s for s in self.specs
                     if s.kind not in FLEET_FAULT_KINDS)

    # -- convenience constructors ----------------------------------------
    @classmethod
    def of(cls, *specs: FaultSpec, name: str = "plan") -> "FaultPlan":
        return cls(tuple(specs), name=name)

    @staticmethod
    def cmd_drop(rate: float, site: str = "*", **kw) -> FaultSpec:
        return FaultSpec("cmd_drop", site=site, rate=rate, **kw)

    @staticmethod
    def finish_stall(rate: float, stall_s: float, site: str = "*",
                     **kw) -> FaultSpec:
        return FaultSpec("finish_stall", site=site, rate=rate,
                         magnitude=stall_s, **kw)

    @staticmethod
    def payload_corrupt(rate: float, site: str = "*", **kw) -> FaultSpec:
        return FaultSpec("payload_corrupt", site=site, rate=rate, **kw)

    @staticmethod
    def payload_truncate(rate: float, site: str = "*", **kw) -> FaultSpec:
        return FaultSpec("payload_truncate", site=site, rate=rate, **kw)

    @staticmethod
    def payload_bitflip(rate: float, site: str = "*", **kw) -> FaultSpec:
        return FaultSpec("payload_bitflip", site=site, rate=rate, **kw)

    @staticmethod
    def decoder_crash(start: float, stop: float,
                      site: str = "*") -> FaultSpec:
        return FaultSpec("decoder_crash", site=site, rate=1.0,
                         start=start, stop=stop)

    @staticmethod
    def nvme_error(rate: float, site: str = "*", **kw) -> FaultSpec:
        return FaultSpec("nvme_error", site=site, rate=rate, **kw)

    @staticmethod
    def nvme_latency(rate: float, extra_s: float, site: str = "*",
                     **kw) -> FaultSpec:
        return FaultSpec("nvme_latency", site=site, rate=rate,
                         magnitude=extra_s, **kw)

    @staticmethod
    def nic_loss(rate: float, burst_packets: int = 4, site: str = "*",
                 **kw) -> FaultSpec:
        return FaultSpec("nic_loss", site=site, rate=rate,
                         magnitude=float(burst_packets), **kw)

    # -- fleet-site constructors (sites are host names / zone names) -----
    @staticmethod
    def host_crash(at: float, site: str) -> FaultSpec:
        return FaultSpec("host_crash", site=site, rate=1.0, start=at)

    @staticmethod
    def host_hang(start: float, stop: float, site: str,
                  rate: float = 1.0) -> FaultSpec:
        return FaultSpec("host_hang", site=site, rate=rate,
                         start=start, stop=stop)

    @staticmethod
    def host_slow(start: float, stop: float, extra_s: float,
                  site: str) -> FaultSpec:
        return FaultSpec("host_slow", site=site, rate=1.0,
                         start=start, stop=stop, magnitude=extra_s)

    @staticmethod
    def link_partition(start: float, stop: float, site: str) -> FaultSpec:
        return FaultSpec("link_partition", site=site, rate=1.0,
                         start=start, stop=stop)

    @staticmethod
    def link_flap(start: float, stop: float, site: str,
                  rate: float = 0.5) -> FaultSpec:
        return FaultSpec("link_flap", site=site, rate=rate,
                         start=start, stop=stop)

    @staticmethod
    def zone_outage(at: float, zone: str) -> FaultSpec:
        return FaultSpec("zone_outage", site=zone, rate=1.0, start=at)
