"""Deterministic, seeded fault injection.

The :class:`FaultInjector` is the single stochastic authority for every
armed fault: components call cheap site hooks (``drop_cmd``,
``finish_stall_s``, ...) at each injection *opportunity*, and the
injector answers from per-``(kind, site)`` :class:`~repro.sim.rand`
streams.  Two disciplines keep replays bit-identical:

* every hook with a matching active spec draws **exactly one** variate
  per opportunity, whether or not the fault fires — so arming a second
  fault kind never perturbs the first kind's stream;
* streams are named ``faults/<kind>/<site>``, spawned off a dedicated
  child :class:`SeedBank`, so the injector never touches the streams
  the workload itself consumes (image sizes, shuffles, think times).

Components hold ``injector=None`` by default and guard every hook call
with an ``is not None`` check — an unarmed pipeline pays a single
attribute test per opportunity and behaves bit-identically to a build
without this subsystem.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..sim import Counter, Environment, SeedBank
from .plan import FAULT_KINDS, FaultPlan, FaultSpec

__all__ = ["FaultInjector"]


class FaultInjector:
    """Evaluates a :class:`FaultPlan` against injection opportunities."""

    def __init__(self, env: Environment, plan: FaultPlan,
                 seeds: Optional[SeedBank] = None, tracer=None,
                 name: str = "faults"):
        self.env = env
        self.plan = plan
        self.seeds = seeds if seeds is not None else SeedBank(0xFA017)
        self.tracer = tracer
        self.name = name
        self.injected = Counter(env, name=f"{name}.injected")
        self.by_kind: dict[str, Counter] = {
            kind: Counter(env, name=f"{name}.{kind}")
            for kind in FAULT_KINDS if plan.by_kind(kind)}
        self._specs: dict[str, tuple[FaultSpec, ...]] = {
            kind: plan.by_kind(kind) for kind in FAULT_KINDS}
        self._uses: dict[FaultSpec, int] = {}

    # -- plumbing --------------------------------------------------------
    def _stream(self, kind: str, site: str) -> np.random.Generator:
        return self.seeds.stream(f"faults/{kind}/{site}")

    def _match(self, kind: str, site: str) -> Optional[FaultSpec]:
        now = self.env.now
        for spec in self._specs[kind]:
            if not (spec.matches(site) and spec.active(now)):
                continue
            if spec.limit is not None \
                    and self._uses.get(spec, 0) >= spec.limit:
                continue
            return spec
        return None

    def _roll(self, kind: str, site: str) -> Optional[FaultSpec]:
        """One Bernoulli opportunity; returns the spec iff it fires."""
        spec = self._match(kind, site)
        if spec is None:
            return None
        # Always draw when a spec is armed, so outcomes never shift the
        # stream position of later opportunities.
        hit = self._stream(kind, site).random() < spec.rate
        return spec if hit else None

    def _fire(self, spec: FaultSpec, site: str) -> None:
        self._uses[spec] = self._uses.get(spec, 0) + 1
        self.injected.add()
        self.by_kind[spec.kind].add()
        if self.tracer is not None:
            self.tracer.instant(f"fault:{spec.kind}@{site}", track="faults")

    def count(self, kind: str) -> int:
        counter = self.by_kind.get(kind)
        return int(counter.total) if counter is not None else 0

    # -- site hooks ------------------------------------------------------
    def drop_cmd(self, site: str) -> bool:
        """FPGAChannel: lose this cmd between host and FIFO?"""
        spec = self._roll("cmd_drop", site)
        if spec is None:
            return False
        self._fire(spec, site)
        return True

    def decoder_down(self, site: str) -> bool:
        """FPGAChannel: is this decoder inside a crash window?"""
        spec = self._match("decoder_crash", site)
        if spec is None:
            return False
        self._fire(spec, site)
        return True

    def finish_stall_s(self, site: str) -> float:
        """ImageDecoderMirror: extra delay before raising FINISH."""
        spec = self._roll("finish_stall", site)
        if spec is None:
            return 0.0
        self._fire(spec, site)
        return spec.magnitude

    def maybe_poison_cmd(self, cmd, site: str = "reader") -> bool:
        """FPGAReader: corrupt/truncate the cmd's source bytes.

        In functional mode the JPEG payload is really mutated (the
        decoder then raises a typed :class:`JpegDecodeError`); in
        modeled mode the cmd is flagged ``poisoned`` and the mirror's
        parser stage rejects it.  Returns True when poisoned.
        """
        spec = self._roll("payload_truncate", site)
        kind = "payload_truncate" if spec is not None else None
        if spec is None:
            spec = self._roll("payload_corrupt", site)
            kind = "payload_corrupt" if spec is not None else None
        if spec is None:
            return False
        payload = getattr(cmd, "payload", None)
        if payload is not None and len(payload) > 8:
            rng = self._stream(kind, site)
            if kind == "payload_truncate":
                cut = int(rng.integers(2, max(3, len(payload) // 2)))
                cmd.payload = bytes(payload[:cut])
            else:
                data = bytearray(payload)
                # Flip bytes in the back half — inside the entropy-coded
                # scan for any real JPEG, past the SOI/header markers.
                for _ in range(3):
                    pos = int(rng.integers(len(data) // 2, len(data) - 2))
                    data[pos] ^= 0x55
                cmd.payload = bytes(data)
        cmd.poisoned = True
        self._fire(spec, site)
        return True

    def maybe_bitflip_cmd(self, cmd, site: str = "reader") -> bool:
        """FPGAReader: *silently* corrupt the cmd's travelling bytes.

        Unlike :meth:`maybe_poison_cmd` the cmd is **not** flagged
        ``poisoned``: the decoder still reports a successful FINISH, so
        the corruption rides into a batch unless end-to-end integrity
        verification (:mod:`repro.supervision`) re-hashes the travelled
        bytes against the ingest stamp.  Returns True when flipped.
        """
        spec = self._roll("payload_bitflip", site)
        if spec is None:
            return False
        payload = getattr(cmd, "payload", None)
        if payload is not None and len(payload) > 8:
            rng = self._stream("payload_bitflip", site)
            data = bytearray(payload)
            # One low bit deep in the entropy-coded scan: still parses,
            # pixels are garbage.
            pos = int(rng.integers(len(data) // 2, len(data) - 2))
            data[pos] ^= 0x01
            cmd.payload = bytes(data)
        else:
            # Modeled mode: no bytes to flip — skew the metadata the cmd
            # carries so the travelled fingerprint no longer matches.
            cmd.size_bytes ^= 1
        self._fire(spec, site)
        return True

    def nvme_read_error(self, site: str = "nvme") -> bool:
        """NvmeDisk: fail this read with a device error?"""
        spec = self._roll("nvme_error", site)
        if spec is None:
            return False
        self._fire(spec, site)
        return True

    def nvme_extra_latency_s(self, site: str = "nvme") -> float:
        """NvmeDisk: extra access latency (stall / GC pause)."""
        spec = self._roll("nvme_latency", site)
        if spec is None:
            return 0.0
        self._fire(spec, site)
        return spec.magnitude

    def nic_loss_burst(self, site: str = "link") -> int:
        """Link: number of packets lost (to be retransmitted)."""
        spec = self._roll("nic_loss", site)
        if spec is None:
            return 0
        self._fire(spec, site)
        return max(1, int(spec.magnitude))

    # -- fleet-site hooks (repro.fleet.chaos; ``site`` is a host name,
    #    so every stream is per-host-namespaced: faults/<kind>/<host>) --
    def crash_due(self, kind: str, site: str) -> Optional[FaultSpec]:
        """FleetChaos: the armed ``host_crash``/``zone_outage`` spec for
        this site, if any (scheduling, not a Bernoulli opportunity —
        the caller fires it exactly once at ``spec.start``)."""
        for spec in self._specs[kind]:
            if spec.matches(site):
                return spec
        return None

    def fire_crash(self, spec: FaultSpec, site: str) -> None:
        """FleetChaos: account the one-shot crash of ``site``."""
        self._fire(spec, site)

    def hang_blackhole(self, site: str) -> bool:
        """FleetChaos: swallow this host's next completion? (gray
        failure: the host admits work but the answer never leaves)."""
        spec = self._roll("host_hang", site)
        if spec is None:
            return False
        self._fire(spec, site)
        return True

    def slow_extra_s(self, site: str) -> float:
        """FleetChaos: uniform service-time inflation for this host's
        next completion (0.0 outside the armed window)."""
        spec = self._match("host_slow", site)
        if spec is None:
            return 0.0
        self._fire(spec, site)
        return spec.magnitude

    def link_down(self, site: str) -> bool:
        """FleetChaos: is the LB->host dispatch dropped right now?
        ``link_partition`` drops the whole window; ``link_flap`` drops
        each dispatch with its Bernoulli rate."""
        spec = self._match("link_partition", site)
        if spec is not None:
            self._fire(spec, site)
            return True
        spec = self._roll("link_flap", site)
        if spec is None:
            return False
        self._fire(spec, site)
        return True
