"""Resilience policies: retry, quarantine, circuit breaker.

These are the host-side answers to the fault models of
:mod:`repro.faults.plan`:

* :class:`RetryPolicy` — per-cmd deadline + exponential-backoff
  resubmission parameters for FPGAReader's retransmit table.
* :class:`QuarantineLog` — poison items (inputs that keep failing after
  ``max_attempts``) are set aside, not retried forever; the conservation
  invariant becomes ``accepted == decoded + quarantined``.
* :class:`CircuitBreaker` — after ``failure_threshold`` consecutive cmd
  timeouts the FPGA path is declared down and batches re-route to the
  CPU decode pool; while open, one probe cmd per ``probe_interval_s`` is
  let through, and ``probe_successes`` consecutive good FINISHes close
  the circuit and re-admit the decoder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..sim import Counter, Environment

__all__ = ["RetryPolicy", "QuarantineLog", "QuarantineEntry",
           "CircuitBreaker"]


@dataclass(frozen=True)
class RetryPolicy:
    """Deadline/backoff knobs for the FPGAReader retransmit table.

    ``deadline_s=None`` derives a per-cmd deadline from the cmd's own
    decode-work estimate times ``deadline_safety`` (so tiny MNIST cmds
    and big ImageNet cmds each get a proportionate patience).  Each
    failed attempt multiplies the next deadline by ``backoff_base`` —
    the exponential backoff that keeps a congested decoder from being
    buried under resubmissions.
    """

    deadline_s: Optional[float] = None
    deadline_safety: float = 8.0
    backoff_base: float = 2.0
    max_attempts: int = 3

    def __post_init__(self):
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if self.deadline_safety <= 0:
            raise ValueError("deadline_safety must be positive")
        if self.backoff_base < 1.0:
            raise ValueError("backoff_base must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def deadline_for(self, estimate_s: float, attempts: int) -> float:
        base = self.deadline_s if self.deadline_s is not None \
            else estimate_s * self.deadline_safety
        return base * (self.backoff_base ** attempts)


@dataclass(frozen=True)
class QuarantineEntry:
    when: float
    reason: str
    item: object


class QuarantineLog:
    """Items set aside after exhausting their retry budget."""

    def __init__(self, env: Environment, name: str = "quarantine",
                 keep: int = 10_000):
        self.env = env
        self.name = name
        self.keep = keep
        self.count = Counter(env, name=f"{name}.count")
        self.entries: list[QuarantineEntry] = []

    def add(self, item, reason: str) -> None:
        self.count.add()
        if len(self.entries) < self.keep:
            self.entries.append(
                QuarantineEntry(self.env.now, reason, item))

    def reasons(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for e in self.entries:
            out[e.reason] = out.get(e.reason, 0) + 1
        return out

    @property
    def total(self) -> int:
        return int(self.count.total)


class CircuitBreaker:
    """Consecutive-failure breaker guarding the FPGA decode path.

    States: *closed* (all traffic to the FPGA), *open* (traffic
    re-routed to the CPU pool, probes trickling through).  A FINISH of
    any status counts as proof of life; only cmd *timeouts* count as
    failures — a poison JPEG is a data problem, not a device problem.
    """

    CLOSED = "closed"
    OPEN = "open"

    def __init__(self, env: Environment, failure_threshold: int = 5,
                 probe_interval_s: float = 0.02, probe_successes: int = 2,
                 tracer=None, name: str = "breaker"):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if probe_interval_s <= 0:
            raise ValueError("probe_interval_s must be positive")
        if probe_successes < 1:
            raise ValueError("probe_successes must be >= 1")
        self.env = env
        self.name = name
        self.failure_threshold = failure_threshold
        self.probe_interval_s = probe_interval_s
        self.probe_successes = probe_successes
        self.tracer = tracer
        self.rtracker = None   # repro.tracing.RequestTracker, when wired
        self.state = self.CLOSED
        self.failovers = Counter(env, name=f"{name}.failovers")
        self.recoveries = Counter(env, name=f"{name}.recoveries")
        self._consecutive_failures = 0
        self._probe_ok = 0
        self._last_probe_t = -float("inf")
        self.opened_at: Optional[float] = None
        self.transitions: list[tuple[float, str]] = []

    # -- signal intake ---------------------------------------------------
    def record_failure(self) -> None:
        self._consecutive_failures += 1
        self._probe_ok = 0
        if self.state == self.CLOSED \
                and self._consecutive_failures >= self.failure_threshold:
            self._transition(self.OPEN)
            self.failovers.add()
            self.opened_at = self.env.now
            if self.rtracker is not None:
                # The FPGA path was just declared down: dump the flight
                # recorder so the trip comes with the stuck requests.
                self.rtracker.postmortem("circuit-break", stage=self.name)

    def record_success(self) -> None:
        self._consecutive_failures = 0
        if self.state == self.OPEN:
            self._probe_ok += 1
            if self._probe_ok >= self.probe_successes:
                self._transition(self.CLOSED)
                self.recoveries.add()
                self._probe_ok = 0

    def _transition(self, state: str) -> None:
        self.state = state
        self.transitions.append((self.env.now, state))
        if self.tracer is not None:
            self.tracer.instant(f"breaker:{state}", track="faults")

    # -- routing decisions -----------------------------------------------
    @property
    def is_open(self) -> bool:
        return self.state == self.OPEN

    def take_probe(self) -> bool:
        """While open: may this item go to the FPGA as a health probe?"""
        if self.state != self.OPEN:
            return True
        if self.env.now - self._last_probe_t >= self.probe_interval_s:
            self._last_probe_t = self.env.now
            return True
        return False
