"""FPGAChannel — the host-side abstraction over one FPGA decoder.

Table 1 of the paper defines the surface: ``submit_cmd`` ("submit cmd to
FPGA decoder and launch decoding operation") and ``drain_out`` ("query
the FPGA decoder processing signal asynchronously").  "Each FPGAChannel
is bound to one FPGA decoder and works independently" (S3.4.1).
"""

from __future__ import annotations

from typing import Optional

from ..sim import Counter, Environment, TimeWeighted
from .decoder import DecodeCmd, FinishRecord, ImageDecoderMirror

__all__ = ["FPGAChannel"]


class FPGAChannel:
    """Bound to one decoder mirror; owns its FIFO cmd queue."""

    def __init__(self, env: Environment, mirror: ImageDecoderMirror,
                 queue_id: int = 0):
        self.env = env
        self.mirror = mirror
        self.queue_id = queue_id
        self.submitted = Counter(env, name=f"ch{queue_id}.submitted")
        self.completed = Counter(env, name=f"ch{queue_id}.completed")
        self.outstanding = TimeWeighted(env, 0, name=f"ch{queue_id}.inflight")
        self._recycled = False

    # -- Table 1 API ------------------------------------------------------
    def submit_cmd(self, cmd: DecodeCmd):
        """Generator: push one packeted cmd into the FPGA FIFO queue.

        Blocks when the FIFO is at its hardware depth — the natural
        backpressure FPGAReader leans on.  Returns any completions that
        were already available (the "mem_carriers" of Algorithm 1 line 13).
        """
        self._check()
        yield from self.mirror.cmd_queue.put(cmd)
        self.submitted.add()
        self.outstanding.set(self.submitted.total - self.completed.total)
        return self.drain_out()

    def try_submit_cmd(self, cmd: DecodeCmd) -> bool:
        """Non-blocking submit; False when the FIFO is full."""
        self._check()
        ok = self.mirror.cmd_queue.try_put(cmd)
        if ok:
            self.submitted.add()
            self.outstanding.set(self.submitted.total - self.completed.total)
        return ok

    def drain_out(self) -> list[FinishRecord]:
        """Non-blocking: collect every FINISH signal currently pending."""
        self._check()
        records = self.mirror.finish_queue.drain()
        if records:
            self.completed.add(len(records))
            self.outstanding.set(self.submitted.total - self.completed.total)
        return records

    def wait_one(self):
        """Generator: block until at least one FINISH record arrives."""
        self._check()
        record = yield from self.mirror.finish_queue.get()
        self.completed.add()
        self.outstanding.set(self.submitted.total - self.completed.total)
        return record

    def recycle(self) -> None:
        """Algorithm 1 line 18: release channel state at shutdown."""
        self._recycled = True

    # -- inspection ----------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return int(self.submitted.total - self.completed.total)

    def _check(self) -> None:
        if self._recycled:
            raise RuntimeError("FPGAChannel used after recycle()")


def fpga_init(env: Environment, mirror: ImageDecoderMirror,
              queue_id: int = 0) -> FPGAChannel:
    """The paper's ``FPGAInit(Queue_ID)`` (Algorithm 1 line 2)."""
    return FPGAChannel(env, mirror, queue_id=queue_id)
