"""FPGAChannel — the host-side abstraction over one FPGA decoder.

Table 1 of the paper defines the surface: ``submit_cmd`` ("submit cmd to
FPGA decoder and launch decoding operation") and ``drain_out`` ("query
the FPGA decoder processing signal asynchronously").  "Each FPGAChannel
is bound to one FPGA decoder and works independently" (S3.4.1).

The channel is also an injection site for :mod:`repro.faults`: an armed
``cmd_drop`` spec loses cmds between host and FIFO, and a
``decoder_crash`` window blacks out the intake entirely — in both cases
the cmd counts as submitted but no FINISH record will ever arrive,
which is exactly the failure FPGAReader's retransmit table covers.
With ``injector=None`` (the default) every hook is a single attribute
test.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Counter, Environment, TimeWeighted
from ..tracing.context import mark_cmd
from .decoder import DecodeCmd, FinishRecord, ImageDecoderMirror

__all__ = ["FPGAChannel"]


class FPGAChannel:
    """Bound to one decoder mirror; owns its FIFO cmd queue."""

    def __init__(self, env: Environment, mirror: ImageDecoderMirror,
                 queue_id: int = 0, injector=None,
                 site: Optional[str] = None, name: Optional[str] = None):
        self.env = env
        self.mirror = mirror
        self.queue_id = queue_id
        self.injector = injector
        self.site = site if site is not None else f"fpga{queue_id}"
        name = name if name is not None else f"ch{queue_id}"
        self.name = name
        self.submitted = Counter(env, name=f"{name}.submitted")
        self.completed = Counter(env, name=f"{name}.completed")
        self.dropped = Counter(env, name=f"{name}.dropped")
        self.outstanding = TimeWeighted(env, 0, name=f"{name}.inflight")
        self._recycled = False

    def _lost_in_transit(self) -> bool:
        if self.injector is None:
            return False
        return (self.injector.decoder_down(self.site)
                or self.injector.drop_cmd(self.site))

    # -- Table 1 API ------------------------------------------------------
    def submit_cmd(self, cmd: DecodeCmd):
        """Generator: push one packeted cmd into the FPGA FIFO queue.

        Blocks when the FIFO is at its hardware depth — the natural
        backpressure FPGAReader leans on.  Returns any completions that
        were already available (the "mem_carriers" of Algorithm 1 line 13).
        """
        self._check()
        if self._lost_in_transit():
            self.submitted.add()
            self.dropped.add()
            self._track()
            return self.drain_out()
        mark_cmd(cmd, "fpga.fifo", "wait")
        yield from self.mirror.cmd_queue.put(cmd)
        self.submitted.add()
        self._track()
        return self.drain_out()

    def try_submit_cmd(self, cmd: DecodeCmd) -> bool:
        """Non-blocking submit; False when the FIFO is full."""
        self._check()
        if self._lost_in_transit():
            self.submitted.add()
            self.dropped.add()
            self._track()
            return True
        ok = self.mirror.cmd_queue.try_put(cmd)
        if ok:
            mark_cmd(cmd, "fpga.fifo", "wait")
            self.submitted.add()
            self._track()
        return ok

    def drain_out(self) -> list[FinishRecord]:
        """Non-blocking: collect every FINISH signal currently pending."""
        self._check()
        records = self.mirror.finish_queue.drain()
        if records:
            self.completed.add(len(records))
            self._track()
        return records

    def wait_one(self):
        """Generator: block until at least one FINISH record arrives."""
        self._check()
        record = yield from self.mirror.finish_queue.get()
        self.completed.add()
        self._track()
        return record

    def recycle(self) -> None:
        """Algorithm 1 line 18: release channel state at shutdown."""
        if self._recycled:
            raise RuntimeError(
                f"FPGAChannel {self.queue_id} recycled twice")
        self._recycled = True

    # -- inspection ----------------------------------------------------------
    def _track(self) -> None:
        self.outstanding.set(self.in_flight)

    @property
    def in_flight(self) -> int:
        # Dropped cmds were never in the FIFO: they are lost, not pending.
        return int(self.submitted.total - self.completed.total
                   - self.dropped.total)

    def _check(self) -> None:
        if self._recycled:
            raise RuntimeError("FPGAChannel used after recycle()")


def fpga_init(env: Environment, mirror: ImageDecoderMirror,
              queue_id: int = 0, injector=None,
              site: Optional[str] = None) -> FPGAChannel:
    """The paper's ``FPGAInit(Queue_ID)`` (Algorithm 1 line 2)."""
    return FPGAChannel(env, mirror, queue_id=queue_id, injector=injector,
                       site=site)
